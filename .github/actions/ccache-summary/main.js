// Zero the ccache statistics at job start so the post-step report covers
// exactly this job's compiles (the restored cache carries its lifetime
// totals otherwise).  Tolerate a missing binary: jobs that end up not
// installing ccache should not fail here, they just get no summary.
const { execFileSync } = require("child_process");

try {
  execFileSync("ccache", ["--zero-stats"], { stdio: "inherit" });
} catch (err) {
  console.log(`ccache-summary: skipping zero-stats (${err.message})`);
}
