// Post step: append this job's ccache statistics (hit rate included) to the
// job summary.  Runs after the build steps and before ccache-action's cache
// save, so the numbers are final for this job.
const { execFileSync } = require("child_process");
const fs = require("fs");

const title = process.env.INPUT_TITLE || "ccache";
const summaryPath = process.env.GITHUB_STEP_SUMMARY;

let stats;
try {
  stats = execFileSync("ccache", ["--show-stats"], { encoding: "utf8" });
} catch (err) {
  console.log(`ccache-summary: skipping report (${err.message})`);
  process.exit(0);
}

const block = `### ccache (${title})\n\n\`\`\`\n${stats.trimEnd()}\n\`\`\`\n`;
if (summaryPath) {
  fs.appendFileSync(summaryPath, block);
} else {
  console.log(block);
}
