# Empty compiler generated dependencies file for protocol2_test.
# This may be replaced when dependencies are built.
