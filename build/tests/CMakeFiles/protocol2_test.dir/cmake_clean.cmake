file(REMOVE_RECURSE
  "CMakeFiles/protocol2_test.dir/protocol2_test.cpp.o"
  "CMakeFiles/protocol2_test.dir/protocol2_test.cpp.o.d"
  "protocol2_test"
  "protocol2_test.pdb"
  "protocol2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
