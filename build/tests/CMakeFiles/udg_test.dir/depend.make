# Empty dependencies file for udg_test.
# This may be replaced when dependencies are built.
