file(REMOVE_RECURSE
  "CMakeFiles/udg_test.dir/udg_test.cpp.o"
  "CMakeFiles/udg_test.dir/udg_test.cpp.o.d"
  "udg_test"
  "udg_test.pdb"
  "udg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
