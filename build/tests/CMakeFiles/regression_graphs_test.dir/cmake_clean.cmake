file(REMOVE_RECURSE
  "CMakeFiles/regression_graphs_test.dir/regression_graphs_test.cpp.o"
  "CMakeFiles/regression_graphs_test.dir/regression_graphs_test.cpp.o.d"
  "regression_graphs_test"
  "regression_graphs_test.pdb"
  "regression_graphs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_graphs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
