# Empty dependencies file for regression_graphs_test.
# This may be replaced when dependencies are built.
