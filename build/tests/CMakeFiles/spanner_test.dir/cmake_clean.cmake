file(REMOVE_RECURSE
  "CMakeFiles/spanner_test.dir/spanner_test.cpp.o"
  "CMakeFiles/spanner_test.dir/spanner_test.cpp.o.d"
  "spanner_test"
  "spanner_test.pdb"
  "spanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
