# Empty compiler generated dependencies file for spanner_test.
# This may be replaced when dependencies are built.
