# Empty dependencies file for bench_support_test.
# This may be replaced when dependencies are built.
