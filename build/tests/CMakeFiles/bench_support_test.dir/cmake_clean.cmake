file(REMOVE_RECURSE
  "CMakeFiles/bench_support_test.dir/bench_support_test.cpp.o"
  "CMakeFiles/bench_support_test.dir/bench_support_test.cpp.o.d"
  "bench_support_test"
  "bench_support_test.pdb"
  "bench_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
