file(REMOVE_RECURSE
  "CMakeFiles/async_test.dir/async_test.cpp.o"
  "CMakeFiles/async_test.dir/async_test.cpp.o.d"
  "async_test"
  "async_test.pdb"
  "async_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
