# Empty dependencies file for async_test.
# This may be replaced when dependencies are built.
