# Empty dependencies file for maintenance_test.
# This may be replaced when dependencies are built.
