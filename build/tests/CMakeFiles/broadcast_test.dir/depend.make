# Empty dependencies file for broadcast_test.
# This may be replaced when dependencies are built.
