file(REMOVE_RECURSE
  "CMakeFiles/broadcast_test.dir/broadcast_test.cpp.o"
  "CMakeFiles/broadcast_test.dir/broadcast_test.cpp.o.d"
  "broadcast_test"
  "broadcast_test.pdb"
  "broadcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
