# Empty compiler generated dependencies file for routing_protocol_test.
# This may be replaced when dependencies are built.
