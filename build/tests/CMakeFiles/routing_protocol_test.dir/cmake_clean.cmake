file(REMOVE_RECURSE
  "CMakeFiles/routing_protocol_test.dir/routing_protocol_test.cpp.o"
  "CMakeFiles/routing_protocol_test.dir/routing_protocol_test.cpp.o.d"
  "routing_protocol_test"
  "routing_protocol_test.pdb"
  "routing_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
