file(REMOVE_RECURSE
  "CMakeFiles/wcds_verify_test.dir/wcds_verify_test.cpp.o"
  "CMakeFiles/wcds_verify_test.dir/wcds_verify_test.cpp.o.d"
  "wcds_verify_test"
  "wcds_verify_test.pdb"
  "wcds_verify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
