# Empty compiler generated dependencies file for wcds_verify_test.
# This may be replaced when dependencies are built.
