# Empty dependencies file for mis_maintenance_test.
# This may be replaced when dependencies are built.
