file(REMOVE_RECURSE
  "CMakeFiles/mis_maintenance_test.dir/mis_maintenance_test.cpp.o"
  "CMakeFiles/mis_maintenance_test.dir/mis_maintenance_test.cpp.o.d"
  "mis_maintenance_test"
  "mis_maintenance_test.pdb"
  "mis_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
