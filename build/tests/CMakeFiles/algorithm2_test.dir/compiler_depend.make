# Empty compiler generated dependencies file for algorithm2_test.
# This may be replaced when dependencies are built.
