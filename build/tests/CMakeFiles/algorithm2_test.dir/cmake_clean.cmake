file(REMOVE_RECURSE
  "CMakeFiles/algorithm2_test.dir/algorithm2_test.cpp.o"
  "CMakeFiles/algorithm2_test.dir/algorithm2_test.cpp.o.d"
  "algorithm2_test"
  "algorithm2_test.pdb"
  "algorithm2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
