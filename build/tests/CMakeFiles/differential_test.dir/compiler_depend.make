# Empty compiler generated dependencies file for differential_test.
# This may be replaced when dependencies are built.
