# Empty compiler generated dependencies file for protocol1_test.
# This may be replaced when dependencies are built.
