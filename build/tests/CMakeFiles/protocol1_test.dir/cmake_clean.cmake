file(REMOVE_RECURSE
  "CMakeFiles/protocol1_test.dir/protocol1_test.cpp.o"
  "CMakeFiles/protocol1_test.dir/protocol1_test.cpp.o.d"
  "protocol1_test"
  "protocol1_test.pdb"
  "protocol1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
