# Empty compiler generated dependencies file for algorithm1_test.
# This may be replaced when dependencies are built.
