file(REMOVE_RECURSE
  "CMakeFiles/algorithm1_test.dir/algorithm1_test.cpp.o"
  "CMakeFiles/algorithm1_test.dir/algorithm1_test.cpp.o.d"
  "algorithm1_test"
  "algorithm1_test.pdb"
  "algorithm1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
