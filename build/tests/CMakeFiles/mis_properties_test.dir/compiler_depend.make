# Empty compiler generated dependencies file for mis_properties_test.
# This may be replaced when dependencies are built.
