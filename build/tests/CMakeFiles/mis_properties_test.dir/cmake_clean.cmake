file(REMOVE_RECURSE
  "CMakeFiles/mis_properties_test.dir/mis_properties_test.cpp.o"
  "CMakeFiles/mis_properties_test.dir/mis_properties_test.cpp.o.d"
  "mis_properties_test"
  "mis_properties_test.pdb"
  "mis_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mis_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
