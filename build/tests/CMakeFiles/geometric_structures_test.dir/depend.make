# Empty dependencies file for geometric_structures_test.
# This may be replaced when dependencies are built.
