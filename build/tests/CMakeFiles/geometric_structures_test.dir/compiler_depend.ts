# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for geometric_structures_test.
