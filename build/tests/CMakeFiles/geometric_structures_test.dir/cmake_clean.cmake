file(REMOVE_RECURSE
  "CMakeFiles/geometric_structures_test.dir/geometric_structures_test.cpp.o"
  "CMakeFiles/geometric_structures_test.dir/geometric_structures_test.cpp.o.d"
  "geometric_structures_test"
  "geometric_structures_test.pdb"
  "geometric_structures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometric_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
