# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/udg_test[1]_include.cmake")
include("/root/repo/build/tests/mis_test[1]_include.cmake")
include("/root/repo/build/tests/mis_properties_test[1]_include.cmake")
include("/root/repo/build/tests/wcds_verify_test[1]_include.cmake")
include("/root/repo/build/tests/algorithm1_test[1]_include.cmake")
include("/root/repo/build/tests/algorithm2_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/protocol1_test[1]_include.cmake")
include("/root/repo/build/tests/protocol2_test[1]_include.cmake")
include("/root/repo/build/tests/spanner_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/routing_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/mis_maintenance_test[1]_include.cmake")
include("/root/repo/build/tests/bench_support_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/broadcast_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/async_test[1]_include.cmake")
include("/root/repo/build/tests/regression_graphs_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/geometric_structures_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
