# Empty dependencies file for wcds.
# This may be replaced when dependencies are built.
