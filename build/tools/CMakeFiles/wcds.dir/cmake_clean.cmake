file(REMOVE_RECURSE
  "CMakeFiles/wcds.dir/wcds_cli.cpp.o"
  "CMakeFiles/wcds.dir/wcds_cli.cpp.o.d"
  "wcds"
  "wcds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
