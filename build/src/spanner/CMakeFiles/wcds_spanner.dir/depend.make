# Empty dependencies file for wcds_spanner.
# This may be replaced when dependencies are built.
