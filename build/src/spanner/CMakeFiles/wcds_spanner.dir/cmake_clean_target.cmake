file(REMOVE_RECURSE
  "libwcds_spanner.a"
)
