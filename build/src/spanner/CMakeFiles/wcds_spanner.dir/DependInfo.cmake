
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spanner/analysis.cpp" "src/spanner/CMakeFiles/wcds_spanner.dir/analysis.cpp.o" "gcc" "src/spanner/CMakeFiles/wcds_spanner.dir/analysis.cpp.o.d"
  "/root/repo/src/spanner/geometric_structures.cpp" "src/spanner/CMakeFiles/wcds_spanner.dir/geometric_structures.cpp.o" "gcc" "src/spanner/CMakeFiles/wcds_spanner.dir/geometric_structures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/wcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/wcds/CMakeFiles/wcds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/wcds_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wcds_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
