file(REMOVE_RECURSE
  "CMakeFiles/wcds_spanner.dir/analysis.cpp.o"
  "CMakeFiles/wcds_spanner.dir/analysis.cpp.o.d"
  "CMakeFiles/wcds_spanner.dir/geometric_structures.cpp.o"
  "CMakeFiles/wcds_spanner.dir/geometric_structures.cpp.o.d"
  "libwcds_spanner.a"
  "libwcds_spanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_spanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
