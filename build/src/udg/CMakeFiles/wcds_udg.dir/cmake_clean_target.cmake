file(REMOVE_RECURSE
  "libwcds_udg.a"
)
