# Empty dependencies file for wcds_udg.
# This may be replaced when dependencies are built.
