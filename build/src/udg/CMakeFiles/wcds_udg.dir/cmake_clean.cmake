file(REMOVE_RECURSE
  "CMakeFiles/wcds_udg.dir/udg.cpp.o"
  "CMakeFiles/wcds_udg.dir/udg.cpp.o.d"
  "libwcds_udg.a"
  "libwcds_udg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_udg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
