# Empty dependencies file for wcds_sim.
# This may be replaced when dependencies are built.
