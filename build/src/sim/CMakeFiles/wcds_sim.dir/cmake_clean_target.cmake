file(REMOVE_RECURSE
  "libwcds_sim.a"
)
