file(REMOVE_RECURSE
  "CMakeFiles/wcds_sim.dir/dynamic_runtime.cpp.o"
  "CMakeFiles/wcds_sim.dir/dynamic_runtime.cpp.o.d"
  "CMakeFiles/wcds_sim.dir/runtime.cpp.o"
  "CMakeFiles/wcds_sim.dir/runtime.cpp.o.d"
  "libwcds_sim.a"
  "libwcds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
