# Empty dependencies file for wcds_mobility.
# This may be replaced when dependencies are built.
