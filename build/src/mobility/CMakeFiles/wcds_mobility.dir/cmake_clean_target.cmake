file(REMOVE_RECURSE
  "libwcds_mobility.a"
)
