file(REMOVE_RECURSE
  "CMakeFiles/wcds_mobility.dir/models.cpp.o"
  "CMakeFiles/wcds_mobility.dir/models.cpp.o.d"
  "libwcds_mobility.a"
  "libwcds_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
