file(REMOVE_RECURSE
  "libwcds_io.a"
)
