file(REMOVE_RECURSE
  "CMakeFiles/wcds_io.dir/svg.cpp.o"
  "CMakeFiles/wcds_io.dir/svg.cpp.o.d"
  "CMakeFiles/wcds_io.dir/text_format.cpp.o"
  "CMakeFiles/wcds_io.dir/text_format.cpp.o.d"
  "libwcds_io.a"
  "libwcds_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
