# Empty dependencies file for wcds_io.
# This may be replaced when dependencies are built.
