# Empty compiler generated dependencies file for wcds_mis.
# This may be replaced when dependencies are built.
