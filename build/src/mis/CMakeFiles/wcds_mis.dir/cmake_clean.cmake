file(REMOVE_RECURSE
  "CMakeFiles/wcds_mis.dir/mis.cpp.o"
  "CMakeFiles/wcds_mis.dir/mis.cpp.o.d"
  "CMakeFiles/wcds_mis.dir/properties.cpp.o"
  "CMakeFiles/wcds_mis.dir/properties.cpp.o.d"
  "CMakeFiles/wcds_mis.dir/ranking.cpp.o"
  "CMakeFiles/wcds_mis.dir/ranking.cpp.o.d"
  "libwcds_mis.a"
  "libwcds_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
