file(REMOVE_RECURSE
  "libwcds_mis.a"
)
