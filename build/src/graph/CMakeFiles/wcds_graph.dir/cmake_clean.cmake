file(REMOVE_RECURSE
  "CMakeFiles/wcds_graph.dir/bfs.cpp.o"
  "CMakeFiles/wcds_graph.dir/bfs.cpp.o.d"
  "CMakeFiles/wcds_graph.dir/diameter.cpp.o"
  "CMakeFiles/wcds_graph.dir/diameter.cpp.o.d"
  "CMakeFiles/wcds_graph.dir/dijkstra.cpp.o"
  "CMakeFiles/wcds_graph.dir/dijkstra.cpp.o.d"
  "CMakeFiles/wcds_graph.dir/graph.cpp.o"
  "CMakeFiles/wcds_graph.dir/graph.cpp.o.d"
  "CMakeFiles/wcds_graph.dir/spanning_tree.cpp.o"
  "CMakeFiles/wcds_graph.dir/spanning_tree.cpp.o.d"
  "CMakeFiles/wcds_graph.dir/subgraph.cpp.o"
  "CMakeFiles/wcds_graph.dir/subgraph.cpp.o.d"
  "libwcds_graph.a"
  "libwcds_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
