# Empty compiler generated dependencies file for wcds_graph.
# This may be replaced when dependencies are built.
