file(REMOVE_RECURSE
  "libwcds_graph.a"
)
