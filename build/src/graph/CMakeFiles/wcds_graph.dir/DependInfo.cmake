
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cpp" "src/graph/CMakeFiles/wcds_graph.dir/bfs.cpp.o" "gcc" "src/graph/CMakeFiles/wcds_graph.dir/bfs.cpp.o.d"
  "/root/repo/src/graph/diameter.cpp" "src/graph/CMakeFiles/wcds_graph.dir/diameter.cpp.o" "gcc" "src/graph/CMakeFiles/wcds_graph.dir/diameter.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/graph/CMakeFiles/wcds_graph.dir/dijkstra.cpp.o" "gcc" "src/graph/CMakeFiles/wcds_graph.dir/dijkstra.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/wcds_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/wcds_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/spanning_tree.cpp" "src/graph/CMakeFiles/wcds_graph.dir/spanning_tree.cpp.o" "gcc" "src/graph/CMakeFiles/wcds_graph.dir/spanning_tree.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/graph/CMakeFiles/wcds_graph.dir/subgraph.cpp.o" "gcc" "src/graph/CMakeFiles/wcds_graph.dir/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/wcds_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
