# Empty compiler generated dependencies file for wcds_protocols.
# This may be replaced when dependencies are built.
