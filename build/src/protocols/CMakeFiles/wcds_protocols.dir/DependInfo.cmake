
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/algorithm1_protocol.cpp" "src/protocols/CMakeFiles/wcds_protocols.dir/algorithm1_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/wcds_protocols.dir/algorithm1_protocol.cpp.o.d"
  "/root/repo/src/protocols/algorithm2_protocol.cpp" "src/protocols/CMakeFiles/wcds_protocols.dir/algorithm2_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/wcds_protocols.dir/algorithm2_protocol.cpp.o.d"
  "/root/repo/src/protocols/mis_maintenance_protocol.cpp" "src/protocols/CMakeFiles/wcds_protocols.dir/mis_maintenance_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/wcds_protocols.dir/mis_maintenance_protocol.cpp.o.d"
  "/root/repo/src/protocols/routing_protocol.cpp" "src/protocols/CMakeFiles/wcds_protocols.dir/routing_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/wcds_protocols.dir/routing_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/wcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/wcds/CMakeFiles/wcds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wcds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/wcds_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/wcds_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wcds_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
