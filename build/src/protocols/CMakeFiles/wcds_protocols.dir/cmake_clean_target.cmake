file(REMOVE_RECURSE
  "libwcds_protocols.a"
)
