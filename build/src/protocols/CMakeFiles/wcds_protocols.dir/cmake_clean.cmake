file(REMOVE_RECURSE
  "CMakeFiles/wcds_protocols.dir/algorithm1_protocol.cpp.o"
  "CMakeFiles/wcds_protocols.dir/algorithm1_protocol.cpp.o.d"
  "CMakeFiles/wcds_protocols.dir/algorithm2_protocol.cpp.o"
  "CMakeFiles/wcds_protocols.dir/algorithm2_protocol.cpp.o.d"
  "CMakeFiles/wcds_protocols.dir/mis_maintenance_protocol.cpp.o"
  "CMakeFiles/wcds_protocols.dir/mis_maintenance_protocol.cpp.o.d"
  "CMakeFiles/wcds_protocols.dir/routing_protocol.cpp.o"
  "CMakeFiles/wcds_protocols.dir/routing_protocol.cpp.o.d"
  "libwcds_protocols.a"
  "libwcds_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
