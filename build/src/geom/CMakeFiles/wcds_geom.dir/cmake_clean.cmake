file(REMOVE_RECURSE
  "CMakeFiles/wcds_geom.dir/point.cpp.o"
  "CMakeFiles/wcds_geom.dir/point.cpp.o.d"
  "CMakeFiles/wcds_geom.dir/workload.cpp.o"
  "CMakeFiles/wcds_geom.dir/workload.cpp.o.d"
  "libwcds_geom.a"
  "libwcds_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
