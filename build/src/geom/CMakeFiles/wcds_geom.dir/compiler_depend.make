# Empty compiler generated dependencies file for wcds_geom.
# This may be replaced when dependencies are built.
