file(REMOVE_RECURSE
  "libwcds_geom.a"
)
