file(REMOVE_RECURSE
  "CMakeFiles/wcds_core.dir/algorithm1.cpp.o"
  "CMakeFiles/wcds_core.dir/algorithm1.cpp.o.d"
  "CMakeFiles/wcds_core.dir/algorithm2.cpp.o"
  "CMakeFiles/wcds_core.dir/algorithm2.cpp.o.d"
  "CMakeFiles/wcds_core.dir/verify.cpp.o"
  "CMakeFiles/wcds_core.dir/verify.cpp.o.d"
  "libwcds_core.a"
  "libwcds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
