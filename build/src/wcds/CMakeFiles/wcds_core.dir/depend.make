# Empty dependencies file for wcds_core.
# This may be replaced when dependencies are built.
