file(REMOVE_RECURSE
  "libwcds_core.a"
)
