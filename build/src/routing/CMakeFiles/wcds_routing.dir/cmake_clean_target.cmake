file(REMOVE_RECURSE
  "libwcds_routing.a"
)
