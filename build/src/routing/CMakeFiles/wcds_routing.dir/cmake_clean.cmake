file(REMOVE_RECURSE
  "CMakeFiles/wcds_routing.dir/clusterhead_routing.cpp.o"
  "CMakeFiles/wcds_routing.dir/clusterhead_routing.cpp.o.d"
  "CMakeFiles/wcds_routing.dir/geographic.cpp.o"
  "CMakeFiles/wcds_routing.dir/geographic.cpp.o.d"
  "libwcds_routing.a"
  "libwcds_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
