# Empty dependencies file for wcds_routing.
# This may be replaced when dependencies are built.
