file(REMOVE_RECURSE
  "CMakeFiles/wcds_broadcast.dir/backbone_broadcast.cpp.o"
  "CMakeFiles/wcds_broadcast.dir/backbone_broadcast.cpp.o.d"
  "libwcds_broadcast.a"
  "libwcds_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
