file(REMOVE_RECURSE
  "libwcds_broadcast.a"
)
