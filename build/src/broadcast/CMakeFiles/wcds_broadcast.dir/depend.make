# Empty dependencies file for wcds_broadcast.
# This may be replaced when dependencies are built.
