file(REMOVE_RECURSE
  "libwcds_baselines.a"
)
