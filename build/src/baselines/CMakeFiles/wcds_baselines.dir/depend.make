# Empty dependencies file for wcds_baselines.
# This may be replaced when dependencies are built.
