file(REMOVE_RECURSE
  "CMakeFiles/wcds_baselines.dir/exact.cpp.o"
  "CMakeFiles/wcds_baselines.dir/exact.cpp.o.d"
  "CMakeFiles/wcds_baselines.dir/greedy_cds.cpp.o"
  "CMakeFiles/wcds_baselines.dir/greedy_cds.cpp.o.d"
  "CMakeFiles/wcds_baselines.dir/greedy_wcds.cpp.o"
  "CMakeFiles/wcds_baselines.dir/greedy_wcds.cpp.o.d"
  "CMakeFiles/wcds_baselines.dir/mis_tree_cds.cpp.o"
  "CMakeFiles/wcds_baselines.dir/mis_tree_cds.cpp.o.d"
  "libwcds_baselines.a"
  "libwcds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
