
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/exact.cpp" "src/baselines/CMakeFiles/wcds_baselines.dir/exact.cpp.o" "gcc" "src/baselines/CMakeFiles/wcds_baselines.dir/exact.cpp.o.d"
  "/root/repo/src/baselines/greedy_cds.cpp" "src/baselines/CMakeFiles/wcds_baselines.dir/greedy_cds.cpp.o" "gcc" "src/baselines/CMakeFiles/wcds_baselines.dir/greedy_cds.cpp.o.d"
  "/root/repo/src/baselines/greedy_wcds.cpp" "src/baselines/CMakeFiles/wcds_baselines.dir/greedy_wcds.cpp.o" "gcc" "src/baselines/CMakeFiles/wcds_baselines.dir/greedy_wcds.cpp.o.d"
  "/root/repo/src/baselines/mis_tree_cds.cpp" "src/baselines/CMakeFiles/wcds_baselines.dir/mis_tree_cds.cpp.o" "gcc" "src/baselines/CMakeFiles/wcds_baselines.dir/mis_tree_cds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/wcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/wcds/CMakeFiles/wcds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/wcds_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/wcds_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
