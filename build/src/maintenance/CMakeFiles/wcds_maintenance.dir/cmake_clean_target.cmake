file(REMOVE_RECURSE
  "libwcds_maintenance.a"
)
