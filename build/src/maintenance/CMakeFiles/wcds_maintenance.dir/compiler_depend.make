# Empty compiler generated dependencies file for wcds_maintenance.
# This may be replaced when dependencies are built.
