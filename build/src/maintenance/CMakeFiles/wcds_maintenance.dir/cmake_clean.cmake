file(REMOVE_RECURSE
  "CMakeFiles/wcds_maintenance.dir/dynamic_wcds.cpp.o"
  "CMakeFiles/wcds_maintenance.dir/dynamic_wcds.cpp.o.d"
  "libwcds_maintenance.a"
  "libwcds_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
