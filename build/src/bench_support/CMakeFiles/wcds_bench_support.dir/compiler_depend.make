# Empty compiler generated dependencies file for wcds_bench_support.
# This may be replaced when dependencies are built.
