file(REMOVE_RECURSE
  "libwcds_bench_support.a"
)
