file(REMOVE_RECURSE
  "CMakeFiles/wcds_bench_support.dir/stats.cpp.o"
  "CMakeFiles/wcds_bench_support.dir/stats.cpp.o.d"
  "CMakeFiles/wcds_bench_support.dir/table.cpp.o"
  "CMakeFiles/wcds_bench_support.dir/table.cpp.o.d"
  "libwcds_bench_support.a"
  "libwcds_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcds_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
