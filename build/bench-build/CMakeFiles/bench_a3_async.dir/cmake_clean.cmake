file(REMOVE_RECURSE
  "../bench/bench_a3_async"
  "../bench/bench_a3_async.pdb"
  "CMakeFiles/bench_a3_async.dir/bench_a3_async.cpp.o"
  "CMakeFiles/bench_a3_async.dir/bench_a3_async.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
