# Empty compiler generated dependencies file for bench_a3_async.
# This may be replaced when dependencies are built.
