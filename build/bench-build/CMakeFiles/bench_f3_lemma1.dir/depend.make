# Empty dependencies file for bench_f3_lemma1.
# This may be replaced when dependencies are built.
