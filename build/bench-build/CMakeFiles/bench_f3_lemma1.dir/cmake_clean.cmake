file(REMOVE_RECURSE
  "../bench/bench_f3_lemma1"
  "../bench/bench_f3_lemma1.pdb"
  "CMakeFiles/bench_f3_lemma1.dir/bench_f3_lemma1.cpp.o"
  "CMakeFiles/bench_f3_lemma1.dir/bench_f3_lemma1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_lemma1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
