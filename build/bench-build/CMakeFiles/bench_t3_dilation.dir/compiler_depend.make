# Empty compiler generated dependencies file for bench_t3_dilation.
# This may be replaced when dependencies are built.
