file(REMOVE_RECURSE
  "../bench/bench_t3_dilation"
  "../bench/bench_t3_dilation.pdb"
  "CMakeFiles/bench_t3_dilation.dir/bench_t3_dilation.cpp.o"
  "CMakeFiles/bench_t3_dilation.dir/bench_t3_dilation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_dilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
