file(REMOVE_RECURSE
  "../bench/bench_f2_wcds_example"
  "../bench/bench_f2_wcds_example.pdb"
  "CMakeFiles/bench_f2_wcds_example.dir/bench_f2_wcds_example.cpp.o"
  "CMakeFiles/bench_f2_wcds_example.dir/bench_f2_wcds_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_wcds_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
