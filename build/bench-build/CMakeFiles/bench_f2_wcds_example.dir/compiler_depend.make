# Empty compiler generated dependencies file for bench_f2_wcds_example.
# This may be replaced when dependencies are built.
