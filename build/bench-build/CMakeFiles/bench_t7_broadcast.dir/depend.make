# Empty dependencies file for bench_t7_broadcast.
# This may be replaced when dependencies are built.
