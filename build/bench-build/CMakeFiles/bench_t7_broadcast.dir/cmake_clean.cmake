file(REMOVE_RECURSE
  "../bench/bench_t7_broadcast"
  "../bench/bench_t7_broadcast.pdb"
  "CMakeFiles/bench_t7_broadcast.dir/bench_t7_broadcast.cpp.o"
  "CMakeFiles/bench_t7_broadcast.dir/bench_t7_broadcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
