file(REMOVE_RECURSE
  "../bench/bench_f1_udg"
  "../bench/bench_f1_udg.pdb"
  "CMakeFiles/bench_f1_udg.dir/bench_f1_udg.cpp.o"
  "CMakeFiles/bench_f1_udg.dir/bench_f1_udg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_udg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
