# Empty dependencies file for bench_f1_udg.
# This may be replaced when dependencies are built.
