# Empty dependencies file for bench_t1_ratio.
# This may be replaced when dependencies are built.
