file(REMOVE_RECURSE
  "../bench/bench_t1_ratio"
  "../bench/bench_t1_ratio.pdb"
  "CMakeFiles/bench_t1_ratio.dir/bench_t1_ratio.cpp.o"
  "CMakeFiles/bench_t1_ratio.dir/bench_t1_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
