file(REMOVE_RECURSE
  "../bench/bench_f6_levels"
  "../bench/bench_f6_levels.pdb"
  "CMakeFiles/bench_f6_levels.dir/bench_f6_levels.cpp.o"
  "CMakeFiles/bench_f6_levels.dir/bench_f6_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
