# Empty dependencies file for bench_f6_levels.
# This may be replaced when dependencies are built.
