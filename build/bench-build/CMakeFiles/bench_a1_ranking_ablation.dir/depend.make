# Empty dependencies file for bench_a1_ranking_ablation.
# This may be replaced when dependencies are built.
