file(REMOVE_RECURSE
  "../bench/bench_a1_ranking_ablation"
  "../bench/bench_a1_ranking_ablation.pdb"
  "CMakeFiles/bench_a1_ranking_ablation.dir/bench_a1_ranking_ablation.cpp.o"
  "CMakeFiles/bench_a1_ranking_ablation.dir/bench_a1_ranking_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_ranking_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
