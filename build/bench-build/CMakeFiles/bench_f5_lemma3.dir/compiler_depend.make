# Empty compiler generated dependencies file for bench_f5_lemma3.
# This may be replaced when dependencies are built.
