file(REMOVE_RECURSE
  "../bench/bench_f5_lemma3"
  "../bench/bench_f5_lemma3.pdb"
  "CMakeFiles/bench_f5_lemma3.dir/bench_f5_lemma3.cpp.o"
  "CMakeFiles/bench_f5_lemma3.dir/bench_f5_lemma3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_lemma3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
