# Empty dependencies file for bench_t4_complexity.
# This may be replaced when dependencies are built.
