file(REMOVE_RECURSE
  "../bench/bench_t4_complexity"
  "../bench/bench_t4_complexity.pdb"
  "CMakeFiles/bench_t4_complexity.dir/bench_t4_complexity.cpp.o"
  "CMakeFiles/bench_t4_complexity.dir/bench_t4_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
