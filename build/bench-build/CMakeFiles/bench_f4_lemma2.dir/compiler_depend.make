# Empty compiler generated dependencies file for bench_f4_lemma2.
# This may be replaced when dependencies are built.
