file(REMOVE_RECURSE
  "../bench/bench_f4_lemma2"
  "../bench/bench_f4_lemma2.pdb"
  "CMakeFiles/bench_f4_lemma2.dir/bench_f4_lemma2.cpp.o"
  "CMakeFiles/bench_f4_lemma2.dir/bench_f4_lemma2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_lemma2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
