file(REMOVE_RECURSE
  "../bench/bench_t2_sparseness"
  "../bench/bench_t2_sparseness.pdb"
  "CMakeFiles/bench_t2_sparseness.dir/bench_t2_sparseness.cpp.o"
  "CMakeFiles/bench_t2_sparseness.dir/bench_t2_sparseness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_sparseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
