# Empty dependencies file for bench_t2_sparseness.
# This may be replaced when dependencies are built.
