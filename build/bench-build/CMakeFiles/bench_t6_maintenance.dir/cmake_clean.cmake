file(REMOVE_RECURSE
  "../bench/bench_t6_maintenance"
  "../bench/bench_t6_maintenance.pdb"
  "CMakeFiles/bench_t6_maintenance.dir/bench_t6_maintenance.cpp.o"
  "CMakeFiles/bench_t6_maintenance.dir/bench_t6_maintenance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
