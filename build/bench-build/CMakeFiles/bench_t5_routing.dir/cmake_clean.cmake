file(REMOVE_RECURSE
  "../bench/bench_t5_routing"
  "../bench/bench_t5_routing.pdb"
  "CMakeFiles/bench_t5_routing.dir/bench_t5_routing.cpp.o"
  "CMakeFiles/bench_t5_routing.dir/bench_t5_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
