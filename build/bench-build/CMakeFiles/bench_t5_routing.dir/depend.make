# Empty dependencies file for bench_t5_routing.
# This may be replaced when dependencies are built.
