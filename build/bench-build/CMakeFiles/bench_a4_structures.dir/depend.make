# Empty dependencies file for bench_a4_structures.
# This may be replaced when dependencies are built.
