file(REMOVE_RECURSE
  "../bench/bench_a4_structures"
  "../bench/bench_a4_structures.pdb"
  "CMakeFiles/bench_a4_structures.dir/bench_a4_structures.cpp.o"
  "CMakeFiles/bench_a4_structures.dir/bench_a4_structures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
