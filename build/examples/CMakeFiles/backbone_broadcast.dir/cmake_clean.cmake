file(REMOVE_RECURSE
  "CMakeFiles/backbone_broadcast.dir/backbone_broadcast.cpp.o"
  "CMakeFiles/backbone_broadcast.dir/backbone_broadcast.cpp.o.d"
  "backbone_broadcast"
  "backbone_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backbone_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
