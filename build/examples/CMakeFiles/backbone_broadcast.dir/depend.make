# Empty dependencies file for backbone_broadcast.
# This may be replaced when dependencies are built.
