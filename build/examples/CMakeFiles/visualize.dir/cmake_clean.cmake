file(REMOVE_RECURSE
  "CMakeFiles/visualize.dir/visualize.cpp.o"
  "CMakeFiles/visualize.dir/visualize.cpp.o.d"
  "visualize"
  "visualize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
