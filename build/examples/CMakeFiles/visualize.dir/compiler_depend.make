# Empty compiler generated dependencies file for visualize.
# This may be replaced when dependencies are built.
