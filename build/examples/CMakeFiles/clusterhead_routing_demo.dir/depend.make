# Empty dependencies file for clusterhead_routing_demo.
# This may be replaced when dependencies are built.
