
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/clusterhead_routing.cpp" "examples/CMakeFiles/clusterhead_routing_demo.dir/clusterhead_routing.cpp.o" "gcc" "examples/CMakeFiles/clusterhead_routing_demo.dir/clusterhead_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/wcds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/wcds_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/udg/CMakeFiles/wcds_udg.dir/DependInfo.cmake"
  "/root/repo/build/src/mis/CMakeFiles/wcds_mis.dir/DependInfo.cmake"
  "/root/repo/build/src/wcds/CMakeFiles/wcds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/wcds_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wcds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/wcds_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/spanner/CMakeFiles/wcds_spanner.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/wcds_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/maintenance/CMakeFiles/wcds_maintenance.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/wcds_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wcds_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/broadcast/CMakeFiles/wcds_broadcast.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_support/CMakeFiles/wcds_bench_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
