file(REMOVE_RECURSE
  "CMakeFiles/clusterhead_routing_demo.dir/clusterhead_routing.cpp.o"
  "CMakeFiles/clusterhead_routing_demo.dir/clusterhead_routing.cpp.o.d"
  "clusterhead_routing_demo"
  "clusterhead_routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clusterhead_routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
