file(REMOVE_RECURSE
  "CMakeFiles/dynamic_backbone.dir/dynamic_backbone.cpp.o"
  "CMakeFiles/dynamic_backbone.dir/dynamic_backbone.cpp.o.d"
  "dynamic_backbone"
  "dynamic_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
