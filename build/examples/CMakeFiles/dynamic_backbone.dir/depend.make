# Empty dependencies file for dynamic_backbone.
# This may be replaced when dependencies are built.
