file(REMOVE_RECURSE
  "CMakeFiles/mobile_maintenance.dir/mobile_maintenance.cpp.o"
  "CMakeFiles/mobile_maintenance.dir/mobile_maintenance.cpp.o.d"
  "mobile_maintenance"
  "mobile_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
