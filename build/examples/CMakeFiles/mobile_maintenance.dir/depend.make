# Empty dependencies file for mobile_maintenance.
# This may be replaced when dependencies are built.
