// Experiment F6 (paper Figure 6): level-based ranking — the spanning tree,
// its level assignment, and the rank order they induce.
//
// Reproduces the distributed pipeline: leader election -> BFS levels ->
// (level, ID) ranks, and reports the level histogram plus consistency of
// the distributed levels with centralized BFS distances.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "graph/spanning_tree.h"
#include "protocols/algorithm1_protocol.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout, "F6: level-based ranking via spanning tree");

  bench::Table table({"n", "deg", "leader", "tree depth", "mean level",
                      "levels == BFS dist"});
  for (const std::uint32_t n : {200u, 500u, 1000u}) {
    for (const double deg : {8.0, 16.0}) {
      const auto inst = bench::connected_instance(n, deg, 3);
      const auto run =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Protocol);
      const auto dist = graph::bfs_distances(inst.g, run.leader);
      bool match = true;
      double level_sum = 0.0;
      HopCount depth = 0;
      for (NodeId u = 0; u < n; ++u) {
        if (run.levels[u] != dist[u]) match = false;
        level_sum += run.levels[u];
        depth = std::max(depth, run.levels[u]);
      }
      table.add_row({std::to_string(n), bench::fmt(deg, 0),
                     std::to_string(run.leader), bench::fmt_count(depth),
                     bench::fmt(level_sum / n, 2), match ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  bench::banner(std::cout, "F6: level histogram (n = 500, deg = 10, seed 3)");
  const auto inst = bench::connected_instance(500, 10.0, 3);
  const auto run =
      bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Protocol);
  HopCount depth = 0;
  for (const auto l : run.levels) depth = std::max(depth, l);
  std::vector<std::size_t> histogram(depth + 1, 0);
  for (const auto l : run.levels) ++histogram[l];
  bench::Table hist({"level", "nodes"});
  for (HopCount l = 0; l <= depth; ++l) {
    hist.add_row({std::to_string(l), bench::fmt_count(histogram[l])});
  }
  hist.print(std::cout);
  std::cout << "\nExpected shape: the distributed flood's levels equal BFS "
               "hop distances\nfrom the elected (minimum-ID) leader; the "
               "histogram peaks near depth/2.\n";
}

void BM_DistributedLevels(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 10.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocols::run_algorithm1(inst.g));
  }
}
BENCHMARK(BM_DistributedLevels)->Arg(200)->Arg(500);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
