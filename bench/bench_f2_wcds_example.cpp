// Experiment F2 (paper Figure 2): a WCDS and its weakly induced subgraph.
//
// Rebuilds the paper's 9-node illustration — vertices 1 and 2 are the WCDS,
// the black edges (all edges incident to {1,2}) form the weakly induced,
// connected subgraph — and then shows the same classification on a random
// deployment.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

graph::Graph figure2_graph() {
  return graph::from_edges(9, {{1, 2},
                               {1, 3},
                               {1, 4},
                               {1, 5},
                               {2, 6},
                               {2, 7},
                               {2, 8},
                               {1, 0},
                               {2, 0}});
}

void print_tables() {
  bench::banner(std::cout, "F2: WCDS and weakly induced subgraph (Fig. 2)");
  const auto g = figure2_graph();
  std::vector<bool> s(9, false);
  s[1] = s[2] = true;

  bench::Table fig({"property", "value"});
  fig.add_row({"nodes", "9"});
  fig.add_row({"edges", bench::fmt_count(g.edge_count())});
  fig.add_row({"WCDS", "{1, 2}"});
  fig.add_row({"dominating", core::is_dominating(g, s) ? "yes" : "NO"});
  fig.add_row(
      {"weakly connected", core::is_weakly_connected(g, s) ? "yes" : "NO"});
  const auto weak = graph::weakly_induced_subgraph(g, s);
  fig.add_row({"black edges", bench::fmt_count(weak.edge_count())});
  fig.add_row({"white edges",
               bench::fmt_count(g.edge_count() - weak.edge_count())});
  fig.print(std::cout);

  bench::banner(std::cout, "F2: edge classification on random deployments");
  bench::Table rnd({"n", "deg", "UDG edges", "black edges", "white edges",
                    "|U|", "is WCDS"});
  for (const std::uint32_t n : {200u, 500u, 1000u}) {
    for (const double deg : {8.0, 16.0}) {
      const auto inst = bench::connected_instance(n, deg, 1);
      const auto out =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
      const auto spanner = core::extract_spanner(inst.g, out.result);
      rnd.add_row({std::to_string(n), bench::fmt(deg, 0),
                   bench::fmt_count(inst.g.edge_count()),
                   bench::fmt_count(spanner.edge_count()),
                   bench::fmt_count(inst.g.edge_count() - spanner.edge_count()),
                   bench::fmt_count(out.result.size()),
                   core::is_wcds(inst.g, out.result.mask) ? "yes" : "NO"});
    }
  }
  rnd.print(std::cout);
  std::cout << "\nExpected shape: every instance verifies as a WCDS; white "
               "(non-backbone)\nedges grow with density while black edges "
               "stay near-linear in n.\n";
}

void BM_Algorithm2EndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto inst = bench::connected_instance(n, 12.0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::algorithm2(inst.g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Algorithm2EndToEnd)->Arg(500)->Arg(1000)->Arg(2000)->Complexity();

}  // namespace

WCDS_BENCH_MAIN(print_tables)
