// Experiment T2 (Theorems 8 + 10): the weakly induced subgraph is a sparse
// spanner — Theta(n) edges regardless of UDG density, within the
// 9*#gray + 47*|S| accounting bound.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "spanner/analysis.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T2a: spanner edges vs n (deg = 16; spanner must be Theta(n))");
  bench::Table by_n({"n", "UDG edges", "alg1 E'", "alg2 E'", "alg2 E'/n",
                     "Thm10 bound", "bound holds"});
  for (const std::uint32_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    const auto inst = bench::connected_instance(n, 16.0, 1);
    const auto a1 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Central)
            .result;
    const auto out2 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
    const auto sp1 = core::extract_spanner(inst.g, a1);
    const auto sp2 = core::extract_spanner(inst.g, out2.result);
    const auto stats = spanner::sparseness(inst.g, sp2, out2.result);
    by_n.add_row({std::to_string(n), bench::fmt_count(inst.g.edge_count()),
                  bench::fmt_count(sp1.edge_count()),
                  bench::fmt_count(sp2.edge_count()),
                  bench::fmt(stats.edges_per_node, 2),
                  bench::fmt_count(stats.theorem10_bound),
                  stats.spanner_edges <= stats.theorem10_bound ? "yes"
                                                               : "VIOLATED"});
  }
  by_n.print(std::cout);

  bench::banner(std::cout,
                "T2b: spanner edges vs density (n = 1000; E' must flatten)");
  bench::Table by_deg({"target deg", "UDG edges", "alg2 E'", "E'/n",
                       "UDG E/spanner E"});
  for (const double deg : {6.0, 12.0, 24.0, 48.0}) {
    const auto inst = bench::connected_instance(1000, deg, 2);
    const auto out2 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
    const auto sp2 = core::extract_spanner(inst.g, out2.result);
    by_deg.add_row(
        {bench::fmt(deg, 0), bench::fmt_count(inst.g.edge_count()),
         bench::fmt_count(sp2.edge_count()),
         bench::fmt(static_cast<double>(sp2.edge_count()) / 1000.0, 2),
         bench::fmt(static_cast<double>(inst.g.edge_count()) /
                        static_cast<double>(sp2.edge_count()),
                    2)});
  }
  by_deg.print(std::cout);
  std::cout << "\nExpected shape: E'/n stays a small constant as n grows "
               "(linear spanner),\nand the UDG/spanner edge ratio grows with "
               "density while E' itself flattens.\n";
}

void BM_ExtractSpanner(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 16.0, 1);
  const auto out = core::algorithm2(inst.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_spanner(inst.g, out.result));
  }
}
BENCHMARK(BM_ExtractSpanner)->Arg(1000)->Arg(4000);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
