// Experiment T3 (Theorem 11): topological dilation delta' <= 3*delta + 2 and
// geometric dilation l' <= 6*l + 5 of the Algorithm II spanner, with
// Algorithm I's (unguaranteed) spanner for comparison.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "spanner/analysis.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T3a: topological dilation (exact, all non-adjacent pairs)");
  bench::Table topo({"n", "deg", "algorithm", "max ratio", "mean ratio",
                     "max slack vs 3d+2", "bound holds"});
  for (const std::uint32_t n : {300u, 600u}) {
    for (const double deg : {8.0, 16.0}) {
      const auto inst = bench::connected_instance(n, deg, 1);
      const auto a1 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Central)
              .result;
      const auto out2 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
      const auto sp1 = core::extract_spanner(inst.g, a1);
      const auto sp2 = core::extract_spanner(inst.g, out2.result);
      const auto d1 = spanner::topological_dilation(inst.g, sp1);
      const auto d2 = spanner::topological_dilation(inst.g, sp2);
      topo.add_row({std::to_string(n), bench::fmt(deg, 0), "alg2",
                    bench::fmt_ratio(d2.max_ratio),
                    bench::fmt_ratio(d2.mean_ratio),
                    std::to_string(d2.max_slack),
                    d2.max_slack <= 0 ? "yes (Thm 11)" : "VIOLATED"});
      topo.add_row({std::to_string(n), bench::fmt(deg, 0), "alg1",
                    bench::fmt_ratio(d1.max_ratio),
                    bench::fmt_ratio(d1.mean_ratio),
                    std::to_string(d1.max_slack), "(no guarantee)"});
    }
  }
  topo.print(std::cout);

  bench::banner(std::cout, "T3b: geometric dilation (l' vs 6*l + 5)");
  bench::Table geo({"n", "deg", "max ratio", "mean ratio", "max slack",
                    "bound holds"});
  for (const std::uint32_t n : {300u, 600u}) {
    for (const double deg : {8.0, 16.0}) {
      const auto inst = bench::connected_instance(n, deg, 1);
      const auto out2 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
      const auto sp2 = core::extract_spanner(inst.g, out2.result);
      const auto d = spanner::geometric_dilation(inst.g, sp2, inst.points, 60);
      geo.add_row({std::to_string(n), bench::fmt(deg, 0),
                   bench::fmt_ratio(d.max_ratio),
                   bench::fmt_ratio(d.mean_ratio), bench::fmt(d.max_slack, 2),
                   d.max_slack <= 1e-9 ? "yes (Thm 11)" : "VIOLATED"});
    }
  }
  geo.print(std::cout);

  bench::banner(std::cout,
                "T3c: stretch distribution of the alg2 spanner (n = 600)");
  bench::Table pct({"deg", "p50", "p90", "p99", "max"});
  for (const double deg : {8.0, 16.0}) {
    const auto inst = bench::connected_instance(600, deg, 1);
    const auto out2 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
    const auto sp2 = core::extract_spanner(inst.g, out2.result);
    const auto dist = spanner::topological_stretch_distribution(inst.g, sp2);
    pct.add_row({bench::fmt(deg, 0), bench::fmt_ratio(dist.percentile(0.5)),
                 bench::fmt_ratio(dist.percentile(0.9)),
                 bench::fmt_ratio(dist.percentile(0.99)),
                 bench::fmt_ratio(dist.max_ratio)});
  }
  pct.print(std::cout);
  std::cout << "\nExpected shape: Algorithm II's worst measured stretch "
               "stays well below the\nproven envelopes (typical max ratio "
               "1.5-2.5 topological); Algorithm I's\nspanner is connected "
               "but can exceed Algorithm II's stretch since it lacks\nthe "
               "3-hop bridges.\n";
}

void BM_TopologicalDilationExact(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner::topological_dilation(inst.g, sp));
  }
}
BENCHMARK(BM_TopologicalDilationExact)->Arg(300)->Arg(600);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
