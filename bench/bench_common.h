// Shared plumbing for the experiment binaries (see DESIGN.md section 3).
//
// Every bench binary prints its reproduction table(s) first — those rows are
// what EXPERIMENTS.md records — then runs any registered google-benchmark
// timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "bench_support/stats.h"
#include "bench_support/table.h"
#include "check/check.h"
#include "geom/point.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "udg/udg.h"

namespace wcds::bench {

struct Instance {
  std::vector<geom::Point> points;
  graph::Graph g;
};

// A connected uniform-square UDG with the requested expected degree; the
// area shrinks 1% per failed attempt so near-threshold densities terminate.
inline Instance connected_instance(std::uint32_t count, double expected_degree,
                                   std::uint64_t seed) {
  double side = geom::side_for_expected_degree(count, expected_degree);
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    Instance inst;
    inst.points = geom::uniform_square(count, side, seed + attempt);
    inst.g = udg::build_udg(inst.points);
    if (graph::is_connected(inst.g)) return inst;
    side *= 0.99;
  }
  throw std::runtime_error("connected_instance: density too low");
}

inline Instance connected_instance_of(geom::WorkloadKind kind,
                                      std::uint32_t count, double side,
                                      std::uint64_t seed) {
  geom::WorkloadParams params;
  params.kind = kind;
  params.count = count;
  params.side = side;
  params.seed = seed;
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    Instance inst;
    params.seed = seed + attempt;
    inst.points = geom::generate(params);
    inst.g = udg::build_udg(inst.points);
    if (graph::is_connected(inst.g)) return inst;
    params.side *= 0.99;
  }
  throw std::runtime_error("connected_instance_of: density too low");
}

// Standard main body: reproduction tables first, then timings.  Invariant
// audits are switched off so the timings measure the bare algorithms.
// Usage:  WCDS_BENCH_MAIN(print_experiment_tables)
#define WCDS_BENCH_MAIN(print_tables_fn)                         \
  int main(int argc, char** argv) {                              \
    ::wcds::check::set_audits_enabled(false);                    \
    print_tables_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                        \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {  \
      return 1;                                                  \
    }                                                            \
    ::benchmark::RunSpecifiedBenchmarks();                       \
    ::benchmark::Shutdown();                                     \
    return 0;                                                    \
  }

}  // namespace wcds::bench
