// Shared plumbing for the experiment binaries (see DESIGN.md section 3).
//
// Every bench binary prints its reproduction table(s) first — those rows are
// what EXPERIMENTS.md records — then runs any registered google-benchmark
// timings.  Passing --json_out=<path> additionally exports the tables plus
// the run's metrics/phase-timing snapshot as a wcds-bench/v1 JSON document
// (docs/OBSERVABILITY.md); without the flag no recorder is installed and the
// instrumentation stays on its zero-cost null path.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_support/report.h"
#include "bench_support/stats.h"
#include "bench_support/table.h"
#include "check/check.h"
#include "facade/build.h"
#include "geom/point.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "obs/recorder.h"
#include "parallel/thread_pool.h"
#include "udg/udg.h"

namespace wcds::bench {

struct Instance {
  std::vector<geom::Point> points;
  graph::Graph g;
};

// A connected uniform-square UDG with the requested expected degree; the
// area shrinks 1% per failed attempt so near-threshold densities terminate.
inline Instance connected_instance(std::uint32_t count, double expected_degree,
                                   std::uint64_t seed) {
  double side = geom::side_for_expected_degree(count, expected_degree);
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    Instance inst;
    inst.points = geom::uniform_square(count, side, seed + attempt);
    inst.g = udg::build_udg(inst.points);
    if (graph::is_connected(inst.g)) return inst;
    side *= 0.99;
  }
  throw std::runtime_error("connected_instance: density too low");
}

inline Instance connected_instance_of(geom::WorkloadKind kind,
                                      std::uint32_t count, double side,
                                      std::uint64_t seed) {
  geom::WorkloadParams params;
  params.kind = kind;
  params.count = count;
  params.side = side;
  params.seed = seed;
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    Instance inst;
    params.seed = seed + attempt;
    inst.points = geom::generate(params);
    inst.g = udg::build_udg(inst.points);
    if (graph::is_connected(inst.g)) return inst;
    params.side *= 0.99;
  }
  throw std::runtime_error("connected_instance_of: density too low");
}

// Run fn(trial) for every trial in [0, n) across the thread pool and return
// the results in trial order — the multi-seed reproduction tables aggregate
// from the ordered vector, so parallel and serial runs print identical
// numbers.  `threads` is the first-class knob (0 = WCDS_THREADS env /
// hardware default, 1 = inline serial); the pool is resolved through
// parallel::pool_for, so one pool is reused across every table of the run
// instead of re-deriving the environment per call.  Falls back to serial
// when an ambient recorder is installed (--json_out): MetricsRegistry is
// not thread-safe.
template <typename Fn>
[[nodiscard]] auto run_trials(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<Result> results(n);
  if (obs::global_recorder() != nullptr) {
    for (std::size_t trial = 0; trial < n; ++trial) {
      results[trial] = fn(trial);
    }
  } else {
    parallel::pool_for(threads).parallel_for(
        0, n, 1, [&](std::size_t trial) { results[trial] = fn(trial); });
  }
  return results;
}

// Run the unified construction facade in one mode with default options;
// the reproduction tables go through here so phase timings and build
// metrics land in the --json_out snapshot.
inline core::BuildReport build_with(const graph::Graph& g,
                                    core::BuildAlgorithm algorithm) {
  core::BuildOptions options;
  options.algorithm = algorithm;
  return core::build(g, options);
}

// Strip a leading --json_out=<path> argument (any position) from argv so
// google-benchmark never sees it; returns the path or "" when absent.
inline std::string consume_json_out_flag(int& argc, char** argv) {
  constexpr std::string_view kFlag = "--json_out=";
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind(kFlag, 0) == 0) {
      path = std::string(arg.substr(kFlag.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

// Executable basename, used as the "bench" field of the JSON document.
inline std::string bench_name_from_argv0(const char* argv0) {
  std::string_view name(argv0 == nullptr ? "bench" : argv0);
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string_view::npos) name.remove_prefix(slash + 1);
  return std::string(name);
}

// Standard main body, shared by every bench binary via WCDS_BENCH_MAIN.
// Reproduction tables print first (recording into report() and, when
// --json_out is set, into an ambient recorder), then google-benchmark runs
// any registered timings with the recorder uninstalled.
inline int run_bench_main(int argc, char** argv, void (*print_tables_fn)()) {
  check::set_audits_enabled(false);
  const std::string json_out = consume_json_out_flag(argc, argv);
  obs::Recorder recorder;
  if (!json_out.empty()) obs::set_global_recorder(&recorder);
  print_tables_fn();
  if (!json_out.empty()) {
    obs::set_global_recorder(nullptr);
    try {
      write_report_json(json_out, bench_name_from_argv0(argv[0]),
                        recorder.snapshot());
      std::cout << "\nwrote " << json_out << "\n";
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

// Usage:  WCDS_BENCH_MAIN(print_experiment_tables)
#define WCDS_BENCH_MAIN(print_tables_fn)                        \
  int main(int argc, char** argv) {                             \
    return ::wcds::bench::run_bench_main(argc, argv,            \
                                         &print_tables_fn);     \
  }

}  // namespace wcds::bench
