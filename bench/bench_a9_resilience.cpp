// Experiment A9: fault-tolerant (k,m) backbones — size vs repair traffic.
//
// A9a prices the resilience: plain Algorithm II backbone vs the (1,2) and
// (2,2) augmentations (wcds/resilient.h) at n in {200, 800} centralized and
// n = 10240 over the A8 fleet deployment (16 components, protocol mode,
// component-sharded).  Columns report backbone size, the m-fold lower
// bound ceil(m*|MIS|/5) (baselines::udg_mwcds_lower_bound), and build wall
// time — the a9/build_ms/* gauges are gated by tools/compare_bench.py.
//
// A9b is the survival-vs-repair contrast: under the same crash schedule
// (the A6c stepping pattern) the plain maintained backbone
// (maintenance::DynamicWcds + run_crash_schedule) runs a localized repair
// per crash and pays fault/repair_ms, while the static (2,2) backbone
// absorbs every crash with zero repair traffic
// (maintenance::run_survival_schedule).  The a9/survived/* gauges must
// read 1.0 and a9/resilient_repair_events/* must read 0 — both are
// asserted by the perf-gate workflow.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/exact.h"
#include "bench_support/table.h"
#include "maintenance/crash_schedule.h"
#include "maintenance/dynamic_wcds.h"

namespace {

using namespace wcds;

constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kFleetClusters = 16;
constexpr std::uint32_t kFleetPerCluster = 640;  // 16 x 640 = 10240 nodes

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void set_gauge(const std::string& name, double value) {
  if (obs::Recorder* rec = obs::global_recorder()) {
    rec->metrics().set(name, value);
  }
}

// The A8 fleet deployment: kFleetClusters far-apart connected UDGs with
// node ids interleaved round-robin (component membership non-contiguous in
// id space).
const bench::Instance& fleet_instance() {
  static const bench::Instance inst = [] {
    std::vector<std::vector<geom::Point>> parts(kFleetClusters);
    for (std::size_t i = 0; i < kFleetClusters; ++i) {
      auto part = bench::connected_instance(kFleetPerCluster, 10.0,
                                            kSeed + 101 * i);
      for (auto& p : part.points) p.x += 1000.0 * static_cast<double>(i);
      parts[i] = std::move(part.points);
    }
    bench::Instance out;
    for (std::uint32_t j = 0; j < kFleetPerCluster; ++j) {
      for (std::size_t i = 0; i < kFleetClusters; ++i) {
        out.points.push_back(parts[i][j]);
      }
    }
    out.g = udg::build_udg(out.points);
    return out;
  }();
  return inst;
}

struct Arm {
  const char* key;
  core::ResilienceSpec spec;
};

constexpr Arm kArms[] = {
    {"plain", {1, 1}},
    {"k1m2", {1, 2}},
    {"k2m2", {2, 2}},
};

struct BuildOutcome {
  core::BuildReport report;
  double ms = 0.0;
};

BuildOutcome build_arm(const graph::Graph& g, const Arm& arm, bool protocol) {
  core::BuildOptions options;
  options.algorithm = protocol ? core::BuildAlgorithm::kAlgorithm2Protocol
                               : core::BuildAlgorithm::kAlgorithm2Central;
  options.resilience = arm.spec;
  BuildOutcome out;
  double samples[3];
  for (double& sample : samples) {
    const auto start = Clock::now();
    out.report = core::build(g, options);
    sample = ms_since(start);
  }
  std::sort(samples, samples + 3);
  out.ms = samples[1];  // median of 3
  return out;
}

// The A6c victim stepping pattern: `count` spread-out distinct nodes.
std::vector<NodeId> crash_victims(NodeId n, std::size_t count) {
  std::vector<NodeId> victims;
  for (std::size_t i = 1; victims.size() < count && i <= 4 * count; ++i) {
    const auto v = static_cast<NodeId>((i * n) / 11 % n);
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  return victims;
}

void print_a9a() {
  bench::banner(std::cout,
                "A9a: backbone size and build time, plain vs (1,2) vs (2,2) "
                "(Algorithm II, median-of-3 builds)");
  bench::Table table({"n", "arm", "|U|", "size vs plain", "m-fold LB",
                      "build ms"});
  for (const std::uint32_t n : {200u, 800u}) {
    const auto inst = bench::connected_instance(n, 10.0, kSeed);
    double plain_size = 0.0;
    for (const Arm& arm : kArms) {
      const auto out = build_arm(inst.g, arm, /*protocol=*/false);
      const auto size = static_cast<double>(out.report.result.size());
      if (arm.spec.m == 1) plain_size = size;
      const auto bound = baselines::udg_mwcds_lower_bound(
          out.report.mis.size(), arm.spec.m);
      const std::string key =
          std::string(arm.key) + "/n" + std::to_string(n);
      table.add_row({std::to_string(n), arm.key, bench::fmt(size, 0),
                     bench::fmt(size / plain_size, 2) + "x",
                     std::to_string(bound), bench::fmt(out.ms, 2)});
      set_gauge("a9/backbone/" + key, size);
      set_gauge("a9/build_ms/" + key, out.ms);
    }
  }
  // The 10240-node fleet runs the distributed protocol with the
  // component-sharded runner; the augmentation is per-component by
  // construction, so the merged backbone meets the spec in every cluster.
  const auto& fleet = fleet_instance();
  const auto n = static_cast<NodeId>(fleet.g.node_count());
  double plain_size = 0.0;
  for (const Arm& arm : kArms) {
    const auto out = build_arm(fleet.g, arm, /*protocol=*/true);
    const auto size = static_cast<double>(out.report.result.size());
    if (arm.spec.m == 1) plain_size = size;
    const std::string key =
        std::string(arm.key) + "/n" + std::to_string(n) + "_sharded";
    table.add_row({std::to_string(n) + " (sharded)", arm.key,
                   bench::fmt(size, 0),
                   bench::fmt(size / plain_size, 2) + "x", "-",
                   bench::fmt(out.ms, 2)});
    set_gauge("a9/backbone/" + key, size);
    set_gauge("a9/build_ms/" + key, out.ms);
  }
  table.print(std::cout);
  std::cout << "\nSize vs plain is the price of m-fold domination plus "
               "2-connectivity ears; the m-fold LB column is the "
               "ceil(m*|MIS|/5) yardstick.\n";
}

void print_a9b() {
  bench::banner(std::cout,
                "A9b: survival vs repair under crash schedules (A6c victim "
                "pattern; plain = DynamicWcds repairs, (2,2) = static "
                "backbone absorbs)");
  bench::Table table({"n", "crashes", "plain repair events",
                      "plain repair ms", "(2,2) survived", "(2,2) repairs"});
  for (const std::uint32_t n : {200u, 800u}) {
    const auto inst = bench::connected_instance(n, 10.0, kSeed);
    for (const std::size_t crashes : {4u, 8u, 16u}) {
      const auto victims =
          crash_victims(static_cast<NodeId>(n), crashes);

      // Plain arm: every crash and recovery runs the localized repair.
      obs::Recorder plain_rec;
      maintenance::DynamicWcds dynamic(inst.points);
      dynamic.set_recorder(&plain_rec);
      const auto schedule =
          maintenance::run_crash_schedule(dynamic, victims, &plain_rec);
      const auto plain_snapshot = plain_rec.snapshot();
      const auto repair_it = plain_snapshot.histograms.find("fault/repair_ms");
      const double repair_events =
          repair_it != plain_snapshot.histograms.end()
              ? static_cast<double>(repair_it->second.count)
              : 0.0;

      // Resilient arm: the same victims against the static (2,2) backbone.
      core::BuildOptions options;
      options.resilience = core::ResilienceSpec{2, 2};
      const auto report = core::build(inst.g, options);
      obs::Recorder resilient_rec;
      const auto survival = maintenance::run_survival_schedule(
          inst.g, report.result, victims, &resilient_rec);
      const auto resilient_snapshot = resilient_rec.snapshot();
      const double resilient_repairs =
          resilient_snapshot.histograms.count("fault/repair_ms") != 0
              ? 1.0
              : 0.0;
      const double survived_fraction =
          survival.crashes == 0
              ? 1.0
              : static_cast<double>(survival.survived) /
                    static_cast<double>(survival.crashes);

      std::string key = "n";
      key += std::to_string(n);
      key += "_c";
      key += std::to_string(victims.size());
      table.add_row({std::to_string(n), std::to_string(victims.size()),
                     bench::fmt(repair_events, 0),
                     bench::fmt(schedule.total_repair_ms, 2),
                     std::to_string(survival.survived) + "/" +
                         std::to_string(survival.crashes),
                     bench::fmt(resilient_repairs, 0)});
      set_gauge("a9/plain_repair_events/" + key, repair_events);
      set_gauge("a9/plain_repair_ms/" + key, schedule.total_repair_ms);
      set_gauge("a9/survived/" + key, survived_fraction);
      set_gauge("a9/resilient_repair_events/" + key, resilient_repairs);
    }
  }
  // Fleet-scale survival: sampled victims over the sharded (2,2) build.
  const auto& fleet = fleet_instance();
  const auto n = static_cast<NodeId>(fleet.g.node_count());
  core::BuildOptions options;
  options.algorithm = core::BuildAlgorithm::kAlgorithm2Protocol;
  options.resilience = core::ResilienceSpec{2, 2};
  const auto report = core::build(fleet.g, options);
  const auto victims = crash_victims(n, 32);
  const auto survival =
      maintenance::run_survival_schedule(fleet.g, report.result, victims);
  table.add_row({std::to_string(n) + " (sharded)",
                 std::to_string(victims.size()), "-", "-",
                 std::to_string(survival.survived) + "/" +
                     std::to_string(survival.crashes),
                 "0"});
  std::string fleet_key = "a9/survived/n";
  fleet_key += std::to_string(n);
  fleet_key += "_sharded";
  set_gauge(fleet_key, survival.crashes == 0
                           ? 1.0
                           : static_cast<double>(survival.survived) /
                                 static_cast<double>(survival.crashes));
  table.print(std::cout);
  std::cout << "\nExpected shape: plain repair events = 2x crashes (crash + "
               "recover each repair), (2,2) survived = crashes/crashes with "
               "0 repairs at every crash rate.\n";
}

void print_tables() {
  print_a9a();
  std::cout << "\n";
  print_a9b();
}

void BM_ResilientBuild(benchmark::State& state, core::ResilienceSpec spec) {
  const auto inst =
      bench::connected_instance(static_cast<std::uint32_t>(state.range(0)),
                                10.0, kSeed);
  for (auto _ : state) {
    core::BuildOptions options;
    options.resilience = spec;
    benchmark::DoNotOptimize(core::build(inst.g, options));
  }
}

BENCHMARK_CAPTURE(BM_ResilientBuild, plain, core::ResilienceSpec{1, 1})
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ResilientBuild, k1m2, core::ResilienceSpec{1, 2})
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ResilientBuild, k2m2, core::ResilienceSpec{2, 2})
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
