// Ablation A4: position-less vs position-based sparse structures.
//
// The paper's spanners need no coordinates; the classic alternatives —
// Gabriel graph, RNG, and GPSR-style greedy geographic forwarding — do.
// This experiment puts them side by side: edge budget, hop dilation, and
// routing deliverability.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "geom/rng.h"
#include "routing/clusterhead_routing.h"
#include "routing/geographic.h"
#include "spanner/analysis.h"
#include "spanner/geometric_structures.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "A4a: edge budget and hop dilation (n = 500, seed 1)");
  bench::Table table({"structure", "needs positions", "deg 8 edges",
                      "deg 24 edges", "max topo ratio (deg 8)"});
  struct Row {
    const char* name;
    const char* positions;
    std::size_t edges8 = 0, edges24 = 0;
    double ratio8 = 0.0;
  };
  std::vector<Row> rows{{"UDG", "-", 0, 0, 1.0},
                        {"alg1 spanner", "no", 0, 0, 0.0},
                        {"alg2 spanner", "no", 0, 0, 0.0},
                        {"Gabriel", "yes", 0, 0, 0.0},
                        {"RNG", "yes", 0, 0, 0.0}};
  for (const double deg : {8.0, 24.0}) {
    const auto inst = bench::connected_instance(500, deg, 1);
    const auto a1 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Central)
            .result;
    const auto out2 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
    const graph::Graph structures[] = {
        inst.g, core::extract_spanner(inst.g, a1),
        core::extract_spanner(inst.g, out2.result),
        spanner::gabriel_graph(inst.g, inst.points),
        spanner::relative_neighborhood_graph(inst.g, inst.points)};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (deg == 8.0) {
        rows[i].edges8 = structures[i].edge_count();
        rows[i].ratio8 =
            spanner::topological_dilation(inst.g, structures[i], 40).max_ratio;
      } else {
        rows[i].edges24 = structures[i].edge_count();
      }
    }
  }
  for (const Row& r : rows) {
    table.add_row({r.name, r.positions, bench::fmt_count(r.edges8),
                   bench::fmt_count(r.edges24),
                   r.ratio8 > 0 ? bench::fmt_ratio(r.ratio8) : "1.000"});
  }
  table.print(std::cout);

  bench::banner(std::cout,
                "A4b: routing deliverability, 1000 random pairs (n = 500)");
  bench::Table routing_table({"scheme", "substrate", "deg 8 delivered",
                              "deg 20 delivered"});
  struct Scheme {
    const char* name;
    const char* substrate;
    double rate8 = 0.0, rate20 = 0.0;
  };
  std::vector<Scheme> schemes{{"clusterhead (this paper)", "alg2 spanner"},
                              {"greedy geographic", "UDG"},
                              {"greedy geographic", "Gabriel"},
                              {"greedy geographic", "RNG"}};
  for (const double deg : {8.0, 20.0}) {
    const auto inst = bench::connected_instance(500, deg, 2);
    const auto out2 =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
            .algorithm2_output();
    const routing::ClusterheadRouter router(inst.g, out2);
    const graph::Graph gg = spanner::gabriel_graph(inst.g, inst.points);
    const graph::Graph rng_g =
        spanner::relative_neighborhood_graph(inst.g, inst.points);
    geom::Xoshiro256ss rng(77);
    std::size_t attempted = 0;
    std::size_t delivered[4] = {0, 0, 0, 0};
    for (int i = 0; i < 1000; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(500));
      const auto dst = static_cast<NodeId>(rng.next_below(500));
      if (src == dst) continue;
      ++attempted;
      if (router.route(src, dst).delivered) ++delivered[0];
      if (routing::greedy_geographic_route(inst.g, inst.points, src, dst)
              .delivered) {
        ++delivered[1];
      }
      if (routing::greedy_geographic_route(gg, inst.points, src, dst)
              .delivered) {
        ++delivered[2];
      }
      if (routing::greedy_geographic_route(rng_g, inst.points, src, dst)
              .delivered) {
        ++delivered[3];
      }
    }
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const double rate = 100.0 * static_cast<double>(delivered[s]) /
                          static_cast<double>(attempted);
      if (deg == 8.0) {
        schemes[s].rate8 = rate;
      } else {
        schemes[s].rate20 = rate;
      }
    }
  }
  for (const Scheme& s : schemes) {
    routing_table.add_row({s.name, s.substrate,
                           bench::fmt(s.rate8, 1) + "%",
                           bench::fmt(s.rate20, 1) + "%"});
  }
  routing_table.print(std::cout);
  std::cout << "\nExpected shape: the WCDS spanners and GG/RNG all have "
               "Theta(n) edges while\nthe UDG grows with density; greedy "
               "geographic forwarding needs coordinates\nand still drops "
               "packets in voids (worse on the sparser GG/RNG substrates),\n"
               "while the position-less clusterhead scheme delivers 100%.\n";
}

void BM_GabrielGraph(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 15.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner::gabriel_graph(inst.g, inst.points));
  }
}
BENCHMARK(BM_GabrielGraph)->Arg(1000)->Arg(4000);

void BM_GreedyGeoRoute(benchmark::State& state) {
  const auto inst = bench::connected_instance(1000, 15.0, 1);
  geom::Xoshiro256ss rng(3);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(1000));
    const auto dst = static_cast<NodeId>(rng.next_below(1000));
    benchmark::DoNotOptimize(
        routing::greedy_geographic_route(inst.g, inst.points, src, dst));
  }
}
BENCHMARK(BM_GreedyGeoRoute);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
