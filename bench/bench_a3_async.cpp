// Ablation A3: synchronous unit delays vs asynchronous random delays.
//
// The paper analyzes both algorithms in the synchronous unit-delay model but
// the protocols are event-driven.  This ablation verifies the claims survive
// asynchrony and quantifies the cost:
//  * Algorithm I: the flood tree degenerates from BFS to an arbitrary
//    spanning tree (deeper levels), but the WCDS stays valid — the paper's
//    "arbitrary spanning tree" generality.
//  * Algorithm II: the MIS is bit-for-bit identical (timing-independent
//    fixpoint); only the additional-dominator choices drift.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "mis/mis.h"
#include "mis/properties.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "A3: synchronous vs asynchronous delivery (n = 400, deg = 10, "
                "5 seeds)");
  bench::Table table({"algorithm", "delay model", "|U| mean", "tree depth",
                      "msgs mean", "time mean", "valid WCDS", "same MIS"});

  for (const bool async : {false, true}) {
    std::vector<double> u1, u2, m1, m2, t1, t2, depth1;
    bool all_valid = true;
    bool same_mis = true;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto inst = bench::connected_instance(400, 10.0, seed);
      const auto delays = async
                              ? sim::DelayModel::uniform(1, 8, seed * 13 + 1)
                              : sim::DelayModel::unit();
      core::BuildOptions options1;
      options1.algorithm = core::BuildAlgorithm::kAlgorithm1Protocol;
      options1.delays = delays;
      const auto run1 = core::build(inst.g, options1);
      core::BuildOptions options2;
      options2.algorithm = core::BuildAlgorithm::kAlgorithm2Protocol;
      options2.delays = delays;
      const auto run2 = core::build(inst.g, options2);
      u1.push_back(static_cast<double>(run1.result.size()));
      u2.push_back(static_cast<double>(run2.result.size()));
      m1.push_back(static_cast<double>(run1.stats.transmissions));
      m2.push_back(static_cast<double>(run2.stats.transmissions));
      t1.push_back(static_cast<double>(run1.stats.completion_time));
      t2.push_back(static_cast<double>(run2.stats.completion_time));
      std::uint32_t depth = 0;
      for (const auto l : run1.levels) depth = std::max(depth, l);
      depth1.push_back(static_cast<double>(depth));
      all_valid = all_valid && core::is_wcds(inst.g, run1.result.mask) &&
                  core::is_wcds(inst.g, run2.result.mask);
      const auto sync_mis =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Protocol);
      same_mis = same_mis &&
                 run2.result.mis_dominators == sync_mis.result.mis_dominators;
    }
    const char* model = async ? "uniform(1,8)" : "unit";
    table.add_row({"alg1", model, bench::fmt(bench::summarize(u1).mean, 1),
                   bench::fmt(bench::summarize(depth1).mean, 1),
                   bench::fmt(bench::summarize(m1).mean, 0),
                   bench::fmt(bench::summarize(t1).mean, 0),
                   all_valid ? "yes" : "NO", "-"});
    table.add_row({"alg2", model, bench::fmt(bench::summarize(u2).mean, 1),
                   "-", bench::fmt(bench::summarize(m2).mean, 0),
                   bench::fmt(bench::summarize(t2).mean, 0),
                   all_valid ? "yes" : "NO", same_mis ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: asynchrony deepens Algorithm I's tree and "
               "stretches\ncompletion time by roughly the mean delay factor, "
               "but every run stays a\nvalid WCDS and Algorithm II's MIS is "
               "identical to the synchronous one.\n";
}

void BM_Algorithm2Async(benchmark::State& state) {
  const auto inst = bench::connected_instance(400, 10.0, 1);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocols::run_algorithm2(
        inst.g, sim::DelayModel::uniform(1, 8, ++seed)));
  }
}
BENCHMARK(BM_Algorithm2Async);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
