// Experiment T6 (Section 4.2 maintenance): localized WCDS repair under
// mobility — invariant preservation, repair locality, and role churn,
// versus the cost of rebuilding from scratch.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "geom/rng.h"
#include "maintenance/dynamic_wcds.h"
#include "mis/mis.h"
#include "mobility/models.h"
#include "protocols/mis_maintenance_protocol.h"
#include "udg/udg.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T6: localized maintenance under mobility (60 events per row)");
  bench::Table table({"n", "move radius", "events", "violations",
                      "mean region", "region/n", "demotions", "promotions",
                      "bridge churn"});
  for (const std::uint32_t n : {200u, 500u, 1000u}) {
    for (const double radius : {0.25, 1.0}) {
      const double side = geom::side_for_expected_degree(n, 12.0);
      maintenance::DynamicWcds net(geom::uniform_square(n, side, 7));
      geom::Xoshiro256ss rng(n * 31 + 5);
      std::size_t violations = 0;
      std::size_t region_total = 0;
      std::size_t demoted = 0;
      std::size_t promoted = 0;
      std::size_t bridges = 0;
      const int kEvents = 60;
      for (int e = 0; e < kEvents; ++e) {
        const auto u = static_cast<NodeId>(rng.next_below(n));
        maintenance::RepairReport report;
        const auto kind = rng.next_below(10);
        if (kind < 8) {
          geom::Point p = net.position(u);
          p.x += rng.next_double(-radius, radius);
          p.y += rng.next_double(-radius, radius);
          report = net.move_node(u, p);
        } else if (kind == 8) {
          report = net.deactivate(u);
        } else {
          report = net.activate(u);
        }
        region_total += report.region_size;
        demoted += report.demoted;
        promoted += report.promoted;
        bridges += report.bridges_changed;
        if (!net.audit().ok()) ++violations;
      }
      const double mean_region =
          static_cast<double>(region_total) / kEvents;
      table.add_row({std::to_string(n), bench::fmt(radius, 2),
                     std::to_string(kEvents), bench::fmt_count(violations),
                     bench::fmt(mean_region, 1),
                     bench::fmt(mean_region / n, 3),
                     bench::fmt_count(demoted), bench::fmt_count(promoted),
                     bench::fmt_count(bridges)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: zero invariant violations; the repair "
               "region is a 3-hop\nball whose absolute size is independent "
               "of n (region/n shrinks as n grows);\nsmall moves cause "
               "near-zero role churn.\n";

  bench::banner(std::cout,
                "T6b: maintenance under mobility models (n = 250, 10 steps "
                "of dt = 0.5)");
  bench::Table models({"model", "violations", "role changes", "mean region",
                       "final |U|"});
  const std::uint32_t n = 250;
  const double side = geom::side_for_expected_degree(n, 12.0);
  const mobility::ArenaBox arena{side, side};
  for (const int kind : {0, 1, 2}) {
    auto start = geom::uniform_square(n, side, 11);
    std::unique_ptr<mobility::MobilityModel> model;
    switch (kind) {
      case 0:
        model = std::make_unique<mobility::RandomWaypoint>(
            start, arena, mobility::WaypointParams{}, 21);
        break;
      case 1:
        model = std::make_unique<mobility::RandomWalk>(
            start, arena, mobility::WalkParams{}, 22);
        break;
      default: {
        mobility::GroupParams gp;
        gp.groups = 5;
        gp.member_radius = 2.0;
        model = std::make_unique<mobility::ReferencePointGroup>(start, arena,
                                                                gp, 23);
        break;
      }
    }
    maintenance::DynamicWcds net(start);
    std::size_t violations = 0;
    std::size_t roles = 0;
    std::size_t region_total = 0;
    std::size_t events = 0;
    for (int step = 0; step < 10; ++step) {
      model->step(0.5);
      const auto& pts = model->positions();
      for (NodeId u = 0; u < n; ++u) {
        if (geom::squared_distance(pts[u], net.position(u)) < 1e-6) continue;
        const auto report = net.move_node(u, pts[u]);
        roles += report.demoted + report.promoted;
        region_total += report.region_size;
        ++events;
      }
      if (!net.audit().ok()) ++violations;
    }
    const char* name = kind == 0   ? "random waypoint"
                       : kind == 1 ? "random walk"
                                   : "group (RPGM)";
    models.add_row({name, bench::fmt_count(violations),
                    bench::fmt_count(roles),
                    bench::fmt(events > 0 ? static_cast<double>(region_total) /
                                                static_cast<double>(events)
                                          : 0.0,
                               1),
                    bench::fmt_count(net.dominators().size())});
  }
  models.print(std::cout);
  std::cout << "\nExpected shape: zero violations under all three mobility "
               "models, with the\nrepair region staying a small fraction of "
               "the network even under continuous\nmotion; coherent group "
               "motion changes the fewest roles.\n";

  bench::banner(std::cout,
                "T6c: distributed MIS maintenance protocol (messages per "
                "mobility event)");
  bench::Table proto({"n", "bootstrap msgs", "msgs/event", "msgs/event/n",
                      "MIS valid after all"});
  for (const std::uint32_t pn : {100u, 250u, 500u}) {
    const double pside = geom::side_for_expected_degree(pn, 10.0);
    auto points = geom::uniform_square(pn, pside, 13);
    protocols::MisMaintenanceSession session(udg::build_udg(points));
    const bool boot = session.stabilize();
    const auto bootstrap_msgs = session.stats().transmissions;
    geom::Xoshiro256ss rng(pn + 7);
    bool all_valid = boot;
    const int kEvents = 30;
    for (int e = 0; e < kEvents; ++e) {
      const auto u = static_cast<NodeId>(rng.next_below(pn));
      points[u].x += rng.next_double(-0.8, 0.8);
      points[u].y += rng.next_double(-0.8, 0.8);
      const auto g = udg::build_udg(points);
      all_valid = session.update(g) && all_valid;
      all_valid =
          all_valid && mis::is_maximal_independent_set(g, session.mis_mask());
    }
    const double per_event =
        static_cast<double>(session.stats().transmissions - bootstrap_msgs) /
        kEvents;
    proto.add_row({std::to_string(pn), bench::fmt_count(bootstrap_msgs),
                   bench::fmt(per_event, 1),
                   bench::fmt(per_event / pn, 3),
                   all_valid ? "yes" : "NO"});
  }
  proto.print(std::cout);
  std::cout << "\nExpected shape: bootstrap costs ~2 messages per node; each "
               "mobility event\nthen costs a handful of messages independent "
               "of n (msgs/event/n shrinks) —\nthe protocol's locality.\n";
}

void BM_MoveEvent(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const double side = geom::side_for_expected_degree(n, 12.0);
  maintenance::DynamicWcds net(geom::uniform_square(n, side, 3));
  geom::Xoshiro256ss rng(11);
  for (auto _ : state) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    geom::Point p = net.position(u);
    p.x += rng.next_double(-0.5, 0.5);
    p.y += rng.next_double(-0.5, 0.5);
    benchmark::DoNotOptimize(net.move_node(u, p));
  }
}
BENCHMARK(BM_MoveEvent)->Arg(200)->Arg(500);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
