// Experiment F1 (paper Figure 1): the unit-disk-graph model.
//
// Reproduces the UDG construction across workload families and densities:
// edge counts, degree statistics, component structure, and grid-builder vs
// O(n^2)-reference equivalence.  Timings: grid vs reference construction.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "F1: unit-disk graph construction (paper Fig. 1 model)");

  bench::Table per_kind({"workload", "n", "side", "edges", "avg deg",
                         "max deg", "components"});
  for (const auto kind :
       {geom::WorkloadKind::kUniform, geom::WorkloadKind::kClustered,
        geom::WorkloadKind::kPerturbedGrid, geom::WorkloadKind::kCorridor,
        geom::WorkloadKind::kRing}) {
    geom::WorkloadParams params;
    params.kind = kind;
    params.count = 1000;
    params.side = 14.0;
    params.seed = 1;
    const auto pts = geom::generate(params);
    const auto g = udg::build_udg(pts);
    const auto stats = udg::analyze(g);
    per_kind.add_row({geom::to_string(kind), std::to_string(params.count),
                      bench::fmt(params.side, 1),
                      bench::fmt_count(stats.edges),
                      bench::fmt(stats.average_degree, 2),
                      bench::fmt_count(stats.max_degree),
                      bench::fmt_count(stats.components)});
  }
  per_kind.print(std::cout);

  bench::banner(std::cout, "F1: edge growth with density (n = 1000, uniform)");
  bench::Table density({"target deg", "edges", "measured avg deg",
                        "grid == reference"});
  for (const double target : {4.0, 8.0, 16.0, 32.0}) {
    const double side = geom::side_for_expected_degree(1000, target);
    const auto pts = geom::uniform_square(1000, side, 2);
    const auto grid = udg::build_udg(pts);
    const auto ref = udg::build_udg_reference(pts);
    density.add_row({bench::fmt(target, 0), bench::fmt_count(grid.edge_count()),
                     bench::fmt(grid.average_degree(), 2),
                     grid.edges() == ref.edges() ? "yes" : "NO"});
  }
  density.print(std::cout);
  std::cout << "\nExpected shape: edges grow linearly with target degree at "
               "fixed n;\nthe grid builder matches the O(n^2) reference "
               "exactly.\n";
}

void BM_BuildUdgGrid(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto pts =
      geom::uniform_square(n, geom::side_for_expected_degree(n, 12.0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(udg::build_udg(pts));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildUdgGrid)->Arg(1000)->Arg(4000)->Arg(16000)->Complexity();

void BM_BuildUdgReference(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto pts =
      geom::uniform_square(n, geom::side_for_expected_degree(n, 12.0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(udg::build_udg_reference(pts));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildUdgReference)->Arg(1000)->Arg(2000)->Arg(4000)->Complexity();

}  // namespace

WCDS_BENCH_MAIN(print_tables)
