// Ablation A2: additional-dominator selection policy (DESIGN.md).
//
// Algorithm II promotes one intermediate per 3-hop MIS pair.  The paper's
// protocol takes whichever candidate arrives first; our centralized default
// takes the lexicographically smallest (v, x).  A reuse-aware policy that
// prefers already-promoted intermediates shrinks |C| — this ablation
// quantifies by how much, and what it does to the spanner.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "spanner/analysis.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "A2: additional-dominator selection (n = 600, mean of 5 seeds)");
  bench::Table table({"policy", "deg", "|S|", "|C|", "|U|", "spanner E'",
                      "max topo ratio"});
  for (const auto policy : {core::Algorithm2Options::Selection::kLexSmallestPair,
                            core::Algorithm2Options::Selection::kReuseIntermediates}) {
    for (const double deg : {8.0, 16.0}) {
      std::vector<double> s_sizes, c_sizes, u_sizes, edges, ratios;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto inst = bench::connected_instance(600, deg, seed);
        core::BuildOptions options;
        options.algorithm = core::BuildAlgorithm::kAlgorithm2Central;
        options.selection = policy;
        const auto out = core::build(inst.g, options);
        s_sizes.push_back(
            static_cast<double>(out.result.mis_dominators.size()));
        c_sizes.push_back(
            static_cast<double>(out.result.additional_dominators.size()));
        u_sizes.push_back(static_cast<double>(out.result.size()));
        const auto sp = core::extract_spanner(inst.g, out.result);
        edges.push_back(static_cast<double>(sp.edge_count()));
        ratios.push_back(
            spanner::topological_dilation(inst.g, sp, 40).max_ratio);
      }
      const char* name =
          policy == core::Algorithm2Options::Selection::kLexSmallestPair
              ? "lex-smallest"
              : "reuse";
      table.add_row({name, bench::fmt(deg, 0),
                     bench::fmt(bench::summarize(s_sizes).mean, 1),
                     bench::fmt(bench::summarize(c_sizes).mean, 1),
                     bench::fmt(bench::summarize(u_sizes).mean, 1),
                     bench::fmt(bench::summarize(edges).mean, 0),
                     bench::fmt_ratio(bench::summarize(ratios).max)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: reuse cuts |C| noticeably (one bridge can "
               "serve several\npairs) without hurting dilation — the "
               "Theorem 11 bound is per-pair and\nholds for any valid "
               "selection.\n";
}

void BM_Algorithm2Lex(benchmark::State& state) {
  const auto inst = bench::connected_instance(1000, 12.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::algorithm2(inst.g));
  }
}
BENCHMARK(BM_Algorithm2Lex);

void BM_Algorithm2Reuse(benchmark::State& state) {
  const auto inst = bench::connected_instance(1000, 12.0, 1);
  core::Algorithm2Options options;
  options.selection = core::Algorithm2Options::Selection::kReuseIntermediates;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::algorithm2(inst.g, options));
  }
}
BENCHMARK(BM_Algorithm2Reuse);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
