// Experiment T5 (Section 4.2): routing over the spanner — delivery, stretch
// against shortest paths, and routing-state footprint, for both strategies
// behind the unified routing::Router interface (clusterhead tables vs
// stateless geographic greedy).
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "geom/rng.h"
#include "routing/router.h"
#include "routing/clusterhead_routing.h"
#include "wcds/algorithm2.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T5: routing strategies (1000 random pairs per row)");
  bench::Table table({"n", "deg", "strategy", "heads", "overlay E",
                      "delivered", "mean stretch", "worst stretch",
                      "table entries"});
  for (const std::uint32_t n : {300u, 600u, 1200u}) {
    for (const double deg : {8.0, 16.0}) {
      const auto inst = bench::connected_instance(n, deg, 1);
      const auto report =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
      const core::Algorithm2View wcds = report.algorithm2_view();
      for (const auto strategy :
           {routing::Strategy::kClusterhead, routing::Strategy::kGeographic}) {
        const auto router =
            routing::make_router(strategy, inst.g, wcds, inst.points);
        geom::Xoshiro256ss rng(42);
        std::size_t delivered = 0;
        std::size_t attempted = 0;
        std::size_t hops = 0;
        std::size_t optimal = 0;
        double worst = 0.0;
        for (int i = 0; i < 1000; ++i) {
          const auto src = static_cast<NodeId>(rng.next_below(n));
          const auto dst = static_cast<NodeId>(rng.next_below(n));
          if (src == dst) continue;
          ++attempted;
          const auto route = router->route(src, dst);
          if (!route.delivered) continue;
          ++delivered;
          const auto opt = graph::hop_distance(inst.g, src, dst);
          hops += route.hops();
          optimal += opt;
          if (opt > 0) {
            worst = std::max(worst, static_cast<double>(route.hops()) /
                                        static_cast<double>(opt));
          }
        }
        // State columns are a clusterhead-table property; greedy geographic
        // keeps no routing state at all.
        std::string heads = "-", overlay = "-", entries = "-";
        if (strategy == routing::Strategy::kClusterhead) {
          const auto& ch =
              static_cast<const routing::ClusterheadRouter&>(*router);
          heads = bench::fmt_count(ch.clusterhead_count());
          overlay = bench::fmt_count(ch.overlay_edge_count());
          entries = bench::fmt_count(ch.table_entries());
        }
        table.add_row(
            {std::to_string(n), bench::fmt(deg, 0),
             routing::to_string(strategy), heads, overlay,
             bench::fmt(100.0 * static_cast<double>(delivered) /
                            static_cast<double>(attempted),
                        1) + "%",
             bench::fmt_ratio(static_cast<double>(hops) /
                              static_cast<double>(optimal)),
             bench::fmt_ratio(worst), entries});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: clusterhead routing delivers 100% with "
               "mean stretch\n~1.2-1.5 and worst stretch bounded by the "
               "Theorem 11 envelope plus the two\nclusterhead detour hops, "
               "holding state only at the |S| clusterheads (|S|^2\nentries "
               "total); greedy geographic holds no state but strands some "
               "pairs in\nlocal minima at low degree.\n";
}

void BM_RouterConstruction(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  const auto out = core::algorithm2(inst.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::ClusterheadRouter(inst.g, out));
  }
}
BENCHMARK(BM_RouterConstruction)->Arg(300)->Arg(1200);

void BM_RouteSinglePacket(benchmark::State& state) {
  const auto inst = bench::connected_instance(600, 12.0, 1);
  const auto out = core::algorithm2(inst.g);
  const routing::ClusterheadRouter router(inst.g, out);
  geom::Xoshiro256ss rng(7);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(600));
    const auto dst = static_cast<NodeId>(rng.next_below(600));
    benchmark::DoNotOptimize(router.route(src, dst));
  }
}
BENCHMARK(BM_RouteSinglePacket);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
