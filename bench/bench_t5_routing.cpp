// Experiment T5 (Section 4.2): clusterhead routing over the spanner —
// delivery, stretch against shortest paths, and routing-state footprint.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "geom/rng.h"
#include "routing/clusterhead_routing.h"
#include "wcds/algorithm2.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T5: clusterhead routing (1000 random pairs per row)");
  bench::Table table({"n", "deg", "heads", "overlay E", "delivered",
                      "mean stretch", "worst stretch", "table entries"});
  for (const std::uint32_t n : {300u, 600u, 1200u}) {
    for (const double deg : {8.0, 16.0}) {
      const auto inst = bench::connected_instance(n, deg, 1);
      const auto out =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
              .algorithm2_output();
      const routing::ClusterheadRouter router(inst.g, out);
      geom::Xoshiro256ss rng(42);
      std::size_t delivered = 0;
      std::size_t attempted = 0;
      std::size_t hops = 0;
      std::size_t optimal = 0;
      double worst = 0.0;
      for (int i = 0; i < 1000; ++i) {
        const auto src = static_cast<NodeId>(rng.next_below(n));
        const auto dst = static_cast<NodeId>(rng.next_below(n));
        if (src == dst) continue;
        ++attempted;
        const auto route = router.route(src, dst);
        if (!route.delivered) continue;
        ++delivered;
        const auto opt = graph::hop_distance(inst.g, src, dst);
        hops += route.hops();
        optimal += opt;
        if (opt > 0) {
          worst = std::max(worst, static_cast<double>(route.hops()) /
                                      static_cast<double>(opt));
        }
      }
      table.add_row(
          {std::to_string(n), bench::fmt(deg, 0),
           bench::fmt_count(router.clusterhead_count()),
           bench::fmt_count(router.overlay_edge_count()),
           bench::fmt(100.0 * static_cast<double>(delivered) /
                          static_cast<double>(attempted),
                      1) + "%",
           bench::fmt_ratio(static_cast<double>(hops) /
                            static_cast<double>(optimal)),
           bench::fmt_ratio(worst),
           bench::fmt_count(router.table_entries())});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 100% delivery; mean stretch ~1.2-1.5 and "
               "worst stretch\nbounded by the Theorem 11 envelope plus the "
               "two clusterhead detour hops;\nrouting state lives only at "
               "the |S| clusterheads (|S|^2 entries total),\nnot at all n "
               "nodes.\n";
}

void BM_RouterConstruction(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  const auto out = core::algorithm2(inst.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::ClusterheadRouter(inst.g, out));
  }
}
BENCHMARK(BM_RouterConstruction)->Arg(300)->Arg(1200);

void BM_RouteSinglePacket(benchmark::State& state) {
  const auto inst = bench::connected_instance(600, 12.0, 1);
  const auto out = core::algorithm2(inst.g);
  const routing::ClusterheadRouter router(inst.g, out);
  geom::Xoshiro256ss rng(7);
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.next_below(600));
    const auto dst = static_cast<NodeId>(rng.next_below(600));
    benchmark::DoNotOptimize(router.route(src, dst));
  }
}
BENCHMARK(BM_RouteSinglePacket);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
