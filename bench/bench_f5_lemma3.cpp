// Experiment F5 (paper Figure 5 / Lemma 3 + Theorem 4): the shortest-hop
// separation between complementary subsets of an MIS is 2 or 3 for an
// arbitrary MIS, and exactly 2 for the level-ranked MIS of Algorithm I.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "graph/spanning_tree.h"
#include "mis/mis.h"
#include "mis/properties.h"
#include "mis/ranking.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "F5 / Lemma 3 + Theorem 4: complementary-subset separation");

  const std::uint32_t kSeeds = 10;
  bench::Table table({"ranking", "deg", "worst separation", "#sep==2",
                      "#sep==3", "claim"});
  for (const int ranking : {0, 1, 2}) {  // 0 = id, 1 = degree, 2 = level
    for (const double deg : {6.0, 12.0}) {
      HopCount worst = 0;
      std::size_t sep2 = 0;
      std::size_t sep3 = 0;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const auto inst = bench::connected_instance(500, deg, seed);
        mis::MisResult mis;
        switch (ranking) {
          case 0:
            mis = mis::greedy_mis_by_id(inst.g);
            break;
          case 1:
            mis = mis::greedy_mis(inst.g, mis::degree_ranking(inst.g));
            break;
          default:
            mis = mis::greedy_mis(
                inst.g,
                mis::level_ranking(graph::bfs_tree(inst.g, 0)));
            break;
        }
        const auto sep = mis::max_complementary_subset_distance(inst.g, mis);
        worst = std::max(worst, sep);
        if (sep <= 2) {
          ++sep2;
        } else if (sep == 3) {
          ++sep3;
        }
      }
      const char* name = ranking == 0 ? "id" : ranking == 1 ? "degree" : "level";
      const char* claim = ranking == 2 ? "== 2 (Thm 4)" : "in {2,3} (Lem 3)";
      table.add_row({name, bench::fmt(deg, 0), bench::fmt_count(worst),
                     bench::fmt_count(sep2), bench::fmt_count(sep3), claim});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: id/degree rankings hit separation 3 on "
               "some sparse instances\n(never 4+); the level-based ranking "
               "always achieves exactly 2.\n";
}

void BM_SubsetSeparationAudit(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 10.0, 1);
  const auto mis = mis::greedy_mis_by_id(inst.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mis::max_complementary_subset_distance(inst.g, mis));
  }
}
BENCHMARK(BM_SubsetSeparationAudit)->Arg(300)->Arg(600);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
