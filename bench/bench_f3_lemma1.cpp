// Experiment F3 (paper Figure 3 / Lemma 1): any node not in an MIS of a UDG
// has at most 5 neighbors in the MIS.
//
// Measures the maximum observed MIS-neighbor count over densities, sizes and
// workload families; the proven ceiling is 5 and must never be exceeded.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "mis/mis.h"
#include "mis/properties.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "F3 / Lemma 1: max #MIS neighbors of a non-MIS node "
                "(proven bound: 5)");

  bench::Table table({"workload", "n", "target deg", "max over 5 seeds",
                      "mean of max", "bound holds"});
  const std::uint32_t kSeeds = 5;
  for (const auto kind :
       {geom::WorkloadKind::kUniform, geom::WorkloadKind::kClustered,
        geom::WorkloadKind::kPerturbedGrid}) {
    for (const std::uint32_t n : {400u, 1200u}) {
      for (const double deg : {6.0, 14.0, 30.0}) {
        std::size_t overall_max = 0;
        std::vector<double> maxima;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
          const double side = geom::side_for_expected_degree(n, deg);
          const auto inst = bench::connected_instance_of(kind, n, side, seed);
          const auto mis = mis::greedy_mis_by_id(inst.g);
          const auto worst = mis::max_mis_neighbors(inst.g, mis.mask);
          overall_max = std::max(overall_max, worst);
          maxima.push_back(static_cast<double>(worst));
        }
        const auto summary = bench::summarize(maxima);
        table.add_row({geom::to_string(kind), std::to_string(n),
                       bench::fmt(deg, 0), bench::fmt_count(overall_max),
                       bench::fmt(summary.mean, 2),
                       overall_max <= 5 ? "yes" : "VIOLATED"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the observed maximum saturates at 4-5 for "
               "dense deployments\nand never exceeds the proven ceiling of "
               "5 (Lemma 1's disk-packing argument).\n";
}

void BM_Lemma1Audit(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 14.0, 1);
  const auto mis = mis::greedy_mis_by_id(inst.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::max_mis_neighbors(inst.g, mis.mask));
  }
}
BENCHMARK(BM_Lemma1Audit)->Arg(1000)->Arg(4000);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
