// Experiment A7: service-centric traffic serving over the WCDS backbone.
//
// A7a pushes >= 2^20 uniform requests through the ServingEngine at n=8192
// (and a smaller n=2048 row) and reports end-to-end throughput, latency
// percentiles (virtual time, backoff included), the Bloom false-positive
// rate paid as extra probe hops, and the mean delivered stretch against BFS
// distances — the serving-layer analogue of T5's unicast table.
//
// A7b sweeps the Bloom bits/entry knob and checks the measured domain-level
// false-positive rate against the analytic (1 - e^{-kn/m})^k prediction.
//
// A7c sweeps the loss rate and shows what the per-hop retransmission policy
// buys: deliverability with the default 8 attempts/hop vs a single attempt.
//
// A7d re-serves one batch on 1/2/8-thread pools and asserts the outcome
// arrays are byte-identical — the determinism contract of serve_batch.
#include "bench_common.h"

#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_support/table.h"
#include "fault/plan.h"
#include "service/engine.h"
#include "wcds/algorithm2.h"

namespace {

using namespace wcds;

constexpr std::uint64_t kSeed = 1;
constexpr std::uint32_t kUniverse = 256;    // distinct service names
constexpr std::uint32_t kPerNode = 2;       // advertisements per node

struct Scenario {
  bench::Instance inst;
  core::Algorithm2Output wcds;
  service::ServiceRegistry registry{0};
};

const Scenario& scenario_for(std::uint32_t n) {
  static std::map<std::uint32_t, Scenario> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Scenario sc;
    // Degree 16 keeps |S| (and the |S|^2 routing table) bounded as n grows.
    sc.inst = bench::connected_instance(n, 16.0, kSeed);
    sc.wcds = bench::build_with(sc.inst.g,
                                core::BuildAlgorithm::kAlgorithm2Central)
                  .algorithm2_output();
    sc.registry = service::uniform_registry(n, kUniverse, kPerNode, kSeed);
    it = cache.emplace(n, std::move(sc)).first;
  }
  return it->second;
}

void set_gauge(const std::string& name, double value) {
  if (obs::Recorder* rec = obs::global_recorder()) {
    rec->metrics().set(name, value);
  }
}

void print_a7a() {
  bench::banner(std::cout,
                "A7a: serving throughput and quality (deg = 16, " +
                    std::to_string(kUniverse) + " services, " +
                    std::to_string(kPerNode) + " per node)");
  bench::Table table({"n", "requests", "throughput req/s", "p50 lat",
                      "p95 lat", "bloom fp/req", "mean stretch",
                      "delivered"});
  for (const std::uint32_t n : {2048u, 8192u}) {
    const Scenario& sc = scenario_for(n);
    service::ServingOptions options;
    options.stretch_sample_stride = 4096;  // BFS per sample: keep it sparse
    const service::ServingEngine engine(sc.inst.g, sc.wcds, sc.registry,
                                        options);
    const std::size_t count = n >= 8192 ? (1u << 20) : (1u << 18);
    const auto requests = service::uniform_requests(sc.registry, count, 7);
    std::vector<service::Outcome> outcomes(requests.size());
    const auto start = std::chrono::steady_clock::now();
    const auto stats = engine.serve_batch(requests, outcomes);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    const double rps = static_cast<double>(count) / (ms / 1000.0);
    const double fp_per_req = static_cast<double>(stats.bloom_fp) /
                              static_cast<double>(stats.requests);
    table.add_row({std::to_string(n), bench::fmt_count(count),
                   bench::fmt(rps, 0), std::to_string(stats.latency_p50),
                   std::to_string(stats.latency_p95),
                   bench::fmt(fp_per_req, 4),
                   bench::fmt(stats.mean_stretch, 3),
                   bench::fmt(100.0 * stats.deliverability(), 1) + "%"});
    std::string key = "n";
    key += std::to_string(n);
    set_gauge("a7/serve_ms/" + key, ms);
    set_gauge("a7/throughput_rps/" + key, rps);
    set_gauge("a7/latency_p50/" + key, stats.latency_p50);
    set_gauge("a7/latency_p95/" + key, stats.latency_p95);
    set_gauge("a7/bloom_fp_per_req/" + key, fp_per_req);
    set_gauge("a7/mean_stretch/" + key, stats.mean_stretch);
    set_gauge("a7/deliverability/" + key, stats.deliverability());
  }
  table.print(std::cout);
}

void print_a7b() {
  bench::banner(std::cout,
                "A7b: Bloom false-positive rate, measured vs (1-e^{-kn/m})^k "
                "(n = 2048)");
  bench::Table table({"bits/entry", "predicted", "measured", "ratio"});
  const Scenario& sc = scenario_for(2048);
  for (const std::uint32_t bpe : {4u, 8u, 12u, 16u}) {
    service::ServingOptions options;
    options.bloom.bits_per_entry = bpe;
    const service::ServingEngine engine(sc.inst.g, sc.wcds, sc.registry,
                                        options);
    const auto& router = engine.router();
    const std::size_t heads = router.heads().size();
    // Ground truth per (domain, service): does the domain really hold a
    // provider?  Bloom positives beyond those are the measured FP mass.
    std::vector<std::vector<bool>> truth(
        heads, std::vector<bool>(sc.registry.service_count(), false));
    for (NodeId u = 0; u < sc.inst.g.node_count(); ++u) {
      const std::uint32_t h = router.head_index(router.clusterhead(u));
      for (const service::ServiceId s : sc.registry.services_at(u)) {
        truth[h][s] = true;
      }
    }
    std::size_t negatives = 0;
    std::size_t false_positives = 0;
    for (service::ServiceId s = 0; s < sc.registry.service_count(); ++s) {
      std::size_t true_count = 0;
      for (std::size_t h = 0; h < heads; ++h) {
        if (truth[h][s]) ++true_count;
      }
      negatives += heads - true_count;
      for (const std::uint32_t h : engine.advertisers(s)) {
        if (!truth[h][s]) ++false_positives;
      }
    }
    const double measured =
        negatives == 0 ? 0.0
                       : static_cast<double>(false_positives) /
                             static_cast<double>(negatives);
    const double predicted = engine.predicted_fp_rate();
    table.add_row({std::to_string(bpe), bench::fmt(predicted, 4),
                   bench::fmt(measured, 4),
                   bench::fmt(predicted > 0 ? measured / predicted : 0.0,
                              2)});
    set_gauge("a7/fp_predicted/bpe" + std::to_string(bpe), predicted);
    set_gauge("a7/fp_measured/bpe" + std::to_string(bpe), measured);
  }
  table.print(std::cout);
}

void print_a7c() {
  bench::banner(std::cout,
                "A7c: deliverability vs loss rate, 8 attempts/hop vs 1 "
                "(n = 2048, 2^16 requests)");
  bench::Table table({"drop", "delivered (retries)", "retries/req",
                      "delivered (one-shot)"});
  const Scenario& sc = scenario_for(2048);
  const auto requests = service::uniform_requests(sc.registry, 1u << 16, 11);
  for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const fault::Plan plan = fault::Plan::lossy(drop, 31 + kSeed);
    service::ServingOptions retrying;
    retrying.faults = drop > 0.0 ? &plan : nullptr;
    service::ServingOptions oneshot = retrying;
    oneshot.max_attempts_per_hop = 1;
    const service::ServingEngine with_retries(sc.inst.g, sc.wcds,
                                              sc.registry, retrying);
    const service::ServingEngine without(sc.inst.g, sc.wcds, sc.registry,
                                         oneshot);
    service::BatchStats rs, os;
    (void)with_retries.serve_batch(requests, &rs);
    (void)without.serve_batch(requests, &os);
    const std::string key = std::to_string(static_cast<int>(drop * 100));
    table.add_row({key + "%",
                   bench::fmt(100.0 * rs.deliverability(), 2) + "%",
                   bench::fmt(static_cast<double>(rs.retries) /
                                  static_cast<double>(rs.requests),
                              3),
                   bench::fmt(100.0 * os.deliverability(), 2) + "%"});
    set_gauge("a7/deliverability/retries_drop" + key, rs.deliverability());
    set_gauge("a7/deliverability/oneshot_drop" + key, os.deliverability());
  }
  table.print(std::cout);
}

void print_a7d() {
  bench::banner(std::cout,
                "A7d: serve_batch determinism across thread counts "
                "(n = 2048, 10% loss)");
  bench::Table table({"threads", "identical to 1-thread run"});
  const Scenario& sc = scenario_for(2048);
  const fault::Plan plan = fault::Plan::lossy(0.10, 17);
  service::ServingOptions options;
  options.faults = &plan;
  const service::ServingEngine engine(sc.inst.g, sc.wcds, sc.registry,
                                      options);
  const auto requests = service::uniform_requests(sc.registry, 1u << 17, 13);
  std::vector<service::Outcome> reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    parallel::ScopedPool scoped(pool);
    auto outcomes = engine.serve_batch(requests);
    bool identical = true;
    if (threads == 1) {
      reference = std::move(outcomes);
    } else {
      identical = outcomes.size() == reference.size() &&
                  std::memcmp(outcomes.data(), reference.data(),
                              reference.size() *
                                  sizeof(service::Outcome)) == 0;
    }
    table.add_row({std::to_string(threads), identical ? "yes" : "NO"});
    set_gauge("a7/identical/threads" + std::to_string(threads),
              identical ? 1.0 : 0.0);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 100% delivery on a perfect radio and "
               ">= 99% under 10% loss\n(8 attempts/hop puts per-hop failure "
               "at 1e-8); the one-shot column collapses\nwith the loss rate. "
               " Measured Bloom FP tracks the analytic curve, with a\nmodest "
               "excess at high bits/entry where per-domain filters are a few "
               "hundred\nbits and discretization dominates; the 'identical' "
               "column must read yes at\nevery thread count.\n";
}

void print_tables() {
  print_a7a();
  print_a7b();
  print_a7c();
  print_a7d();
}

void BM_ServeBatch(benchmark::State& state) {
  const Scenario& sc = scenario_for(static_cast<std::uint32_t>(state.range(0)));
  const service::ServingEngine engine(sc.inst.g, sc.wcds, sc.registry);
  const auto requests = service::uniform_requests(sc.registry, 1u << 16, 3);
  std::vector<service::Outcome> outcomes(requests.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.serve_batch(requests, outcomes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_ServeBatch)->Arg(2048)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_ServeSingle(benchmark::State& state) {
  const Scenario& sc = scenario_for(2048);
  const service::ServingEngine engine(sc.inst.g, sc.wcds, sc.registry);
  const auto requests = service::uniform_requests(sc.registry, 4096, 5);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.serve(requests[i % requests.size()], i));
    ++i;
  }
}
BENCHMARK(BM_ServeSingle);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
