// Experiment T4 (Theorem 12 + Section 4.1): distributed message and time
// complexity.
//
// Algorithm I: O(n) time, O(n log n) messages (leader election dominates).
// Algorithm II: O(n) time, O(n) messages (fully localized).
// The table reports measured transmissions, transmissions/n, and
// transmissions/(n log2 n), whose trends expose the asymptotic shape.
#include "bench_common.h"

#include <cmath>
#include <iostream>

#include "bench_support/table.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout, "T4a: message complexity vs n (deg = 10, 3 seeds)");
  bench::Table table({"n", "alg", "msgs", "msgs/n", "msgs/(n lg n)", "time"});
  struct SeedCosts {
    double m1 = 0, m2 = 0, t1 = 0, t2 = 0;
  };
  for (const std::uint32_t n : {125u, 250u, 500u, 1000u, 2000u}) {
    const int kSeeds = 3;
    // Independent seeds run across the thread pool; the ordered merge keeps
    // the printed averages identical to a serial run.
    const auto trials = bench::run_trials(kSeeds, [&](std::size_t trial) {
      const auto inst = bench::connected_instance(n, 10.0, trial + 1);
      const auto run1 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Protocol);
      const auto run2 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Protocol);
      return SeedCosts{static_cast<double>(run1.stats.transmissions),
                       static_cast<double>(run2.stats.transmissions),
                       static_cast<double>(run1.stats.completion_time),
                       static_cast<double>(run2.stats.completion_time)};
    });
    double m1 = 0, m2 = 0, t1 = 0, t2 = 0;
    for (const SeedCosts& costs : trials) {
      m1 += costs.m1 / kSeeds;
      m2 += costs.m2 / kSeeds;
      t1 += costs.t1 / kSeeds;
      t2 += costs.t2 / kSeeds;
    }
    const double lg = std::log2(static_cast<double>(n));
    table.add_row({std::to_string(n), "alg1", bench::fmt(m1, 0),
                   bench::fmt(m1 / n, 2), bench::fmt(m1 / (n * lg), 3),
                   bench::fmt(t1, 0)});
    table.add_row({std::to_string(n), "alg2", bench::fmt(m2, 0),
                   bench::fmt(m2 / n, 2), bench::fmt(m2 / (n * lg), 3),
                   bench::fmt(t2, 0)});
  }
  table.print(std::cout);

  bench::banner(std::cout, "T4b: per-message-type breakdown (n = 1000)");
  const auto inst = bench::connected_instance(1000, 10.0, 1);
  const auto run1 =
      bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Protocol);
  const auto run2 =
      bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Protocol);
  bench::Table breakdown({"algorithm", "message", "count"});
  for (const auto& [type, count] : run1.stats.per_type) {
    breakdown.add_row({"alg1", protocols::algorithm1_message_name(type),
                       bench::fmt_count(count)});
  }
  for (const auto& [type, count] : run2.stats.per_type) {
    breakdown.add_row({"alg2", protocols::algorithm2_message_name(type),
                       bench::fmt_count(count)});
  }
  breakdown.print(std::cout);
  std::cout << "\nExpected shape: alg2's msgs/n is flat (O(n) messages; "
               "Theorem 12); alg1's\nmsgs/n grows slowly while "
               "msgs/(n lg n) is roughly flat (leader election's\nO(n log "
               "n)); both completion times grow with network diameter "
               "~sqrt(n).\n";
}

void BM_DistributedAlgorithm1(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 10.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocols::run_algorithm1(inst.g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistributedAlgorithm1)->Arg(250)->Arg(500)->Arg(1000)->Complexity();

void BM_DistributedAlgorithm2(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 10.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocols::run_algorithm2(inst.g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistributedAlgorithm2)->Arg(250)->Arg(500)->Arg(1000)->Complexity();

}  // namespace

WCDS_BENCH_MAIN(print_tables)
