// Ablation A1: how the ranking (Section 2.2) shapes the MIS/WCDS.
//
// Compares the paper's two rankings (ID for Algorithm II, level-based for
// Algorithm I) against the dynamic (degree, ID) ranking it mentions:
// MIS size, complementary-subset separation, and spanner size.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "graph/spanning_tree.h"
#include "graph/subgraph.h"
#include "mis/mis.h"
#include "mis/properties.h"
#include "mis/ranking.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "A1: ranking ablation (n = 600, mean of 5 seeds)");
  bench::Table table({"ranking", "deg", "MIS size", "worst subset sep",
                      "spanner E'", "sep==2 always"});
  for (const int ranking : {0, 1, 2, 3}) {
    for (const double deg : {8.0, 16.0}) {
      std::vector<double> sizes, edges;
      HopCount worst_sep = 0;
      bool always_two = true;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto inst = bench::connected_instance(600, deg, seed);
        mis::MisResult mis;
        switch (ranking) {
          case 0:
            mis = mis::greedy_mis_by_id(inst.g);
            break;
          case 1:
            mis = mis::greedy_mis(
                inst.g, mis::level_ranking(graph::bfs_tree(inst.g, 0)));
            break;
          case 2:
            mis = mis::greedy_mis(inst.g, mis::degree_ranking(inst.g));
            break;
          default:
            mis = mis::greedy_mis_max_degree(inst.g);
            break;
        }
        sizes.push_back(static_cast<double>(mis.size()));
        const auto sep = mis::max_complementary_subset_distance(inst.g, mis);
        worst_sep = std::max(worst_sep, sep);
        if (sep > 2) always_two = false;
        const auto spanner = graph::weakly_induced_subgraph(inst.g, mis.mask);
        edges.push_back(static_cast<double>(spanner.edge_count()));
      }
      const char* name = ranking == 0   ? "id (alg2)"
                         : ranking == 1 ? "level (alg1)"
                         : ranking == 2 ? "static degree"
                                        : "dyn max-degree";
      table.add_row({name, bench::fmt(deg, 0),
                     bench::fmt(bench::summarize(sizes).mean, 1),
                     bench::fmt_count(worst_sep),
                     bench::fmt(bench::summarize(edges).mean, 0),
                     always_two ? "yes" : "no"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: rankings land within ~20% of each other "
               "on MIS size (the\ndegree-aware greedies are smallest, "
               "level-based slightly largest); only the\nlevel-based ranking "
               "guarantees 2-hop subset separation (Theorem 4), which is\n"
               "why Algorithm I needs no additional dominators while ID "
               "ranking does.\n";
}

void BM_GreedyMisById(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::greedy_mis_by_id(inst.g));
  }
}
BENCHMARK(BM_GreedyMisById)->Arg(1000)->Arg(4000);

void BM_GreedyMisMaxDegree(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::greedy_mis_max_degree(inst.g));
  }
}
BENCHMARK(BM_GreedyMisMaxDegree)->Arg(1000)->Arg(4000);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
