// Experiment A8: component-sharded simulation speedup.
//
// A fleet deployment — many disjoint service areas — is one UDG whose
// connected components never exchange messages.  The sharded runner
// (sim/sharded.h) executes the per-component sub-runs on the thread pool
// and merges them deterministically, so the only thing allowed to change
// versus the serial composition is wall time.  A8 times both distributed
// algorithms over a 16-component deployment at n >= 10^4: the serial
// kGlobal baseline against kComponentSharded at 1/2/4/8 threads, median of
// 3.  The `identical` column cross-checks the merged RunStats and the
// constructed WCDS against the serial run — it must read yes at every
// thread count (tests/sharding_test.cpp proves the stronger byte-level
// claim trace-by-trace).
//
// Expected shape: speedup approaches min(threads, components) on hosts with
// that many cores, bounded by the largest component (shards are whole
// components, so the critical path is the slowest shard).  On a single-core
// host every column reads ~1.0x; the determinism columns are the point.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/table.h"
#include "graph/bfs.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"

namespace {

using namespace wcds;

constexpr std::size_t kClusters = 16;
constexpr std::uint32_t kPerCluster = 640;  // 16 x 640 = 10240 nodes

// One deployment of kClusters connected UDGs, spatially separated by far
// more than the unit radius so build_udg yields exactly kClusters
// components.  Node ids interleave round-robin across clusters: component
// membership is non-contiguous in id space, the worst case for the
// active-subset plumbing.
const bench::Instance& fleet_instance() {
  static const bench::Instance inst = [] {
    std::vector<std::vector<geom::Point>> parts(kClusters);
    for (std::size_t i = 0; i < kClusters; ++i) {
      auto part = bench::connected_instance(kPerCluster, 10.0, 1 + 101 * i);
      for (auto& p : part.points) p.x += 1000.0 * static_cast<double>(i);
      parts[i] = std::move(part.points);
    }
    bench::Instance out;
    for (std::uint32_t j = 0; j < kPerCluster; ++j) {
      for (std::size_t i = 0; i < kClusters; ++i) {
        out.points.push_back(parts[i][j]);
      }
    }
    out.g = udg::build_udg(out.points);
    return out;
  }();
  return inst;
}

struct RunOutcome {
  sim::RunStats stats;
  std::vector<NodeId> dominators;
  double ms = 0.0;
};

RunOutcome run_once(const graph::Graph& g, bool alg1,
                    sim::ExecutionPolicy execution, std::size_t threads) {
  RunOutcome out;
  const auto start = std::chrono::steady_clock::now();
  // Raw entrypoints on purpose: these feed the gated a8/* timing gauges and
  // the facade's list extraction would pollute the sharding comparison.
  if (alg1) {
    // wcds-lint: allow(facade-only)
    auto run = protocols::run_algorithm1(g, sim::DelayModel::unit(), nullptr,
                                         sim::QueuePolicy::kFlat, nullptr,
                                         execution, threads);
    out.stats = std::move(run.stats);
    out.dominators = std::move(run.wcds.dominators);
  } else {
    // wcds-lint: allow(facade-only)
    auto run = protocols::run_algorithm2(g, sim::DelayModel::unit(), nullptr,
                                         sim::QueuePolicy::kFlat, nullptr,
                                         execution, threads);
    out.stats = std::move(run.stats);
    out.dominators = std::move(run.wcds.dominators);
  }
  const auto stop = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

RunOutcome median_of_3(const graph::Graph& g, bool alg1,
                       sim::ExecutionPolicy execution, std::size_t threads) {
  RunOutcome best;
  double samples[3];
  for (double& sample : samples) {
    RunOutcome out = run_once(g, alg1, execution, threads);
    sample = out.ms;
    best = std::move(out);
  }
  std::sort(samples, samples + 3);
  best.ms = samples[1];
  return best;
}

void print_tables() {
  obs::Recorder* const ambient = obs::global_recorder();
  obs::set_global_recorder(nullptr);

  const auto& inst = fleet_instance();
  const auto components = graph::connected_components(inst.g).count;

  bench::banner(std::cout,
                "A8: component-sharded run wall time, serial composition vs "
                "thread pool (median of 3)");
  std::cout << "n = " << inst.g.node_count() << ", components = " << components
            << "\n\n";
  bench::Table table({"alg", "global ms", "t1 ms", "t2 ms", "t4 ms", "t8 ms",
                      "speedup(t8)", "identical"});
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  std::vector<Gauge> gauges;
  for (const bool alg1 : {true, false}) {
    const std::string key = alg1 ? "alg1" : "alg2";
    const RunOutcome global =
        median_of_3(inst.g, alg1, sim::ExecutionPolicy::kGlobal, 1);
    bool identical = true;
    std::vector<double> sharded_ms;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const RunOutcome sharded = median_of_3(
          inst.g, alg1, sim::ExecutionPolicy::kComponentSharded, threads);
      identical = identical && sharded.stats == global.stats &&
                  sharded.dominators == global.dominators;
      sharded_ms.push_back(sharded.ms);
      gauges.push_back({"a8/sharded_ms/t" + std::to_string(threads) + "/" + key,
                        sharded.ms});
    }
    const double speedup = global.ms / sharded_ms.back();
    table.add_row({key, bench::fmt(global.ms, 2), bench::fmt(sharded_ms[0], 2),
                   bench::fmt(sharded_ms[1], 2), bench::fmt(sharded_ms[2], 2),
                   bench::fmt(sharded_ms[3], 2), bench::fmt(speedup, 2) + "x",
                   identical ? "yes" : "NO"});
    gauges.push_back({"a8/global_ms/" + key, global.ms});
    gauges.push_back({"a8/speedup/t8/" + key, speedup});
    gauges.push_back({"a8/identical/" + key, identical ? 1.0 : 0.0});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: speedup(t8) -> min(8, " << components
            << ") with enough cores, bounded by the largest component; "
               "~1.0x on one core.\nThe identical column must read yes at "
               "every thread count.\n";

  obs::set_global_recorder(ambient);
  if (ambient != nullptr) {
    for (const Gauge& gauge : gauges) {
      ambient->metrics().set(gauge.name, gauge.value);
    }
  }
}

void BM_ShardedRun(benchmark::State& state, bool alg1,
                   sim::ExecutionPolicy execution) {
  const auto& inst = fleet_instance();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(inst.g, alg1, execution, threads));
  }
}

BENCHMARK_CAPTURE(BM_ShardedRun, alg1_global, true,
                  sim::ExecutionPolicy::kGlobal)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedRun, alg1_sharded, true,
                  sim::ExecutionPolicy::kComponentSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedRun, alg2_global, false,
                  sim::ExecutionPolicy::kGlobal)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardedRun, alg2_sharded, false,
                  sim::ExecutionPolicy::kComponentSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
