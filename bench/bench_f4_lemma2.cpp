// Experiment F4 (paper Figure 4 / Lemma 2): packing bounds on MIS nodes near
// an MIS node — at most 23 at exactly two hops, at most 47 within three hops
// (constants re-derived from the paper's annulus argument; see DESIGN.md).
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "mis/mis.h"
#include "mis/properties.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "F4 / Lemma 2: MIS nodes at 2 hops (bound 23) and within 3 "
                "hops (bound 47)");

  bench::Table table({"workload", "n", "target deg", "max @2hops",
                      "max <=3hops", "bounds hold"});
  for (const auto kind :
       {geom::WorkloadKind::kUniform, geom::WorkloadKind::kClustered,
        geom::WorkloadKind::kPerturbedGrid}) {
    for (const double deg : {6.0, 14.0, 30.0}) {
      std::size_t worst_two = 0;
      std::size_t worst_three = 0;
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const std::uint32_t n = 800;
        const double side = geom::side_for_expected_degree(n, deg);
        const auto inst = bench::connected_instance_of(kind, n, side, seed);
        const auto mis = mis::greedy_mis_by_id(inst.g);
        const auto stats = mis::mis_hop_neighborhood_stats(inst.g, mis);
        worst_two = std::max(worst_two, stats.max_at_two_hops);
        worst_three = std::max(worst_three, stats.max_within_three_hops);
      }
      table.add_row({geom::to_string(kind), "800", bench::fmt(deg, 0),
                     bench::fmt_count(worst_two),
                     bench::fmt_count(worst_three),
                     worst_two <= 23 && worst_three <= 47 ? "yes"
                                                          : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: observed maxima sit far below the packing "
               "ceilings (23 / 47);\nrandom deployments reach roughly 5-10 "
               "at two hops and 10-20 within three.\n";
}

void BM_Lemma2Audit(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  const auto mis = mis::greedy_mis_by_id(inst.g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::mis_hop_neighborhood_stats(inst.g, mis));
  }
}
BENCHMARK(BM_Lemma2Audit)->Arg(1000)->Arg(2000);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
