// Experiment T7 (Section 1 motivation): broadcasting over the virtual
// backbone — "the number of nodes responsible for routing and broadcasting
// can be reduced to the number of nodes in the backbone".
//
// Compares blind flooding (n transmissions) against backbone flooding over
// the Algorithm II relay structure, across sizes and densities.
#include "bench_common.h"

#include <iostream>

#include "bench_support/table.h"
#include "broadcast/backbone_broadcast.h"
#include "wcds/algorithm2.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T7: backbone broadcast vs blind flooding (3 seeds per row)");
  bench::Table table({"n", "deg", "|U|", "relay set", "blind msgs",
                      "backbone msgs", "saved", "coverage"});
  for (const std::uint32_t n : {250u, 500u, 1000u, 2000u}) {
    for (const double deg : {10.0, 20.0}) {
      double blind_sum = 0, bb_sum = 0, relay_sum = 0, u_sum = 0;
      bool full_coverage = true;
      const int kSeeds = 3;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const auto inst = bench::connected_instance(n, deg, seed);
        const auto backbone =
            bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
        auto relays = broadcast::relay_set(inst.g, backbone.result.mask);
        std::size_t relay_count = 0;
        for (NodeId u = 0; u < n; ++u) relay_count += relays[u];
        relays[0] = true;
        const auto blind = broadcast::blind_flood(inst.g, 0);
        const auto bb = broadcast::flood(inst.g, 0, relays);
        blind_sum += static_cast<double>(blind.transmissions) / kSeeds;
        bb_sum += static_cast<double>(bb.transmissions) / kSeeds;
        relay_sum += static_cast<double>(relay_count) / kSeeds;
        u_sum += static_cast<double>(backbone.result.size()) / kSeeds;
        full_coverage = full_coverage && blind.reached == n && bb.reached == n;
      }
      table.add_row(
          {std::to_string(n), bench::fmt(deg, 0), bench::fmt(u_sum, 0),
           bench::fmt(relay_sum, 0), bench::fmt(blind_sum, 0),
           bench::fmt(bb_sum, 0),
           bench::fmt(100.0 * (blind_sum - bb_sum) / blind_sum, 1) + "%",
           full_coverage ? "100%" : "INCOMPLETE"});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both floods always reach every node; the "
               "backbone flood's\nsavings grow with density (the backbone is "
               "Theta(area), not Theta(n)),\nfrom ~27% at degree 10 to "
               "~35-45% at degree 20.\n";
}

void BM_BackboneFlood(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 15.0, 1);
  const auto backbone = core::algorithm2(inst.g);
  auto relays = broadcast::relay_set(inst.g, backbone.result.mask);
  relays[0] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(broadcast::flood(inst.g, 0, relays));
  }
}
BENCHMARK(BM_BackboneFlood)->Arg(500)->Arg(2000);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
