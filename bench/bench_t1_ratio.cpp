// Experiment T1 (Lemma 7 + Theorem 10): WCDS sizes and measured
// approximation ratios.
//
// Small instances: exact branch-and-bound optimum `opt`; report each
// construction's size and measured ratio against the proven ceilings
// (5 for Algorithm I, 240 for Algorithm II's worst-case arithmetic).
// Large instances: the UDG lower bound ceil(|MIS|/5) replaces `opt`.
#include "bench_common.h"

#include <iostream>

#include "baselines/exact.h"
#include "baselines/greedy_cds.h"
#include "baselines/greedy_wcds.h"
#include "baselines/mis_tree_cds.h"
#include "bench_support/table.h"
#include "facade/build.h"
#include "mis/mis.h"

namespace {

using namespace wcds;

void print_tables() {
  bench::banner(std::cout,
                "T1a: small instances vs exact optimum (proven: alg1 <= 5*opt)");
  bench::Table small({"n", "seed", "opt(WCDS)", "opt(CDS)", "alg1", "alg2",
                      "greedyW", "greedyC", "misCDS", "alg1/opt", "alg2/opt"});
  std::vector<double> r1s, r2s;
  for (const std::uint32_t n : {14u, 18u, 22u}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const auto inst = bench::connected_instance(n, 5.0, seed);
      const auto exact_w = baselines::exact_min_wcds(inst.g);
      const auto exact_c = baselines::exact_min_cds(inst.g);
      if (!exact_w || !exact_c || !exact_w->proven_optimal) continue;
      const auto a1 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Central)
              .result;
      const auto a2 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
              .result;
      const auto gw = baselines::greedy_wcds(inst.g);
      const auto gc = baselines::greedy_cds(inst.g);
      const auto mc = baselines::mis_tree_cds(inst.g);
      const double opt = static_cast<double>(exact_w->members.size());
      const double r1 = static_cast<double>(a1.size()) / opt;
      const double r2 = static_cast<double>(a2.size()) / opt;
      r1s.push_back(r1);
      r2s.push_back(r2);
      small.add_row({std::to_string(n), std::to_string(seed),
                     bench::fmt_count(exact_w->members.size()),
                     bench::fmt_count(exact_c->members.size()),
                     bench::fmt_count(a1.size()), bench::fmt_count(a2.size()),
                     bench::fmt_count(gw.size()), bench::fmt_count(gc.size()),
                     bench::fmt_count(mc.size()), bench::fmt_ratio(r1),
                     bench::fmt_ratio(r2)});
    }
  }
  small.print(std::cout);
  const auto s1 = bench::summarize(r1s);
  const auto s2 = bench::summarize(r2s);
  std::cout << "alg1/opt: mean " << bench::fmt_ratio(s1.mean) << ", max "
            << bench::fmt_ratio(s1.max) << "  (proven ceiling 5)\n"
            << "alg2/opt: mean " << bench::fmt_ratio(s2.mean) << ", max "
            << bench::fmt_ratio(s2.max) << "  (proven ceiling 240)\n";

  bench::banner(std::cout,
                "T1b: large instances vs the ceil(|MIS|/5) lower bound");
  bench::Table large({"n", "deg", "lower bnd", "alg1", "alg2", "greedyW",
                      "greedyC", "misCDS", "alg1/lb", "alg2/lb"});
  for (const std::uint32_t n : {300u, 1000u}) {
    for (const double deg : {8.0, 16.0, 32.0}) {
      const auto inst = bench::connected_instance(n, deg, 2);
      const auto a1 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm1Central)
              .result;
      const auto a2 =
          bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
              .result;
      const auto gw = baselines::greedy_wcds(inst.g);
      const auto gc = baselines::greedy_cds(inst.g);
      const auto mc = baselines::mis_tree_cds(inst.g);
      const auto mis = mis::greedy_mis_by_id(inst.g);
      const auto lb = baselines::udg_mwcds_lower_bound(mis.size());
      large.add_row(
          {std::to_string(n), bench::fmt(deg, 0), bench::fmt_count(lb),
           bench::fmt_count(a1.size()), bench::fmt_count(a2.size()),
           bench::fmt_count(gw.size()), bench::fmt_count(gc.size()),
           bench::fmt_count(mc.size()),
           bench::fmt_ratio(static_cast<double>(a1.size()) /
                            static_cast<double>(lb)),
           bench::fmt_ratio(static_cast<double>(a2.size()) /
                            static_cast<double>(lb))});
    }
  }
  large.print(std::cout);
  std::cout << "\nExpected shape: Algorithm I stays within ~1.2-2.5x of opt "
               "(far under the\nproven 5), Algorithm II pays a constant "
               "factor more for its bridges (far\nunder 240), the greedy "
               "baseline is smallest, and greedy-CDS is largest\namong the "
               "dominating-set constructions at low density.\n";
}

void BM_ExactMwcds(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 5.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::exact_min_wcds(inst.g));
  }
}
BENCHMARK(BM_ExactMwcds)->Arg(12)->Arg(16)->Arg(20);

void BM_GreedyWcds(benchmark::State& state) {
  const auto inst = bench::connected_instance(
      static_cast<std::uint32_t>(state.range(0)), 12.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::greedy_wcds(inst.g));
  }
}
BENCHMARK(BM_GreedyWcds)->Arg(500)->Arg(1000);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
