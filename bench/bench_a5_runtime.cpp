// Experiment A5: simulator hot-path performance.
//
// A5a times Runtime::run end-to-end for both distributed algorithms under
// both delay regimes, comparing the production flat event queue (pooled
// broadcast payloads + two-bucket calendar / binary heap) against the
// reference std::map queue it replaced (docs/PERFORMANCE.md).  Both queues
// deliver in identical (time, seq) order — tests/runtime_queue_test.cpp
// proves it — so the speedup column is a pure data-structure effect.
//
// A5b times the spanner dilation analysis serially (one lane) and on the
// WCDS_THREADS pool; outputs are byte-identical by construction
// (src/spanner/analysis.cpp), so only wall time may differ.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>

#include "bench_support/table.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "spanner/analysis.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

// One UDG per size, shared by the table and the BM_ timings below.
const bench::Instance& instance_for(std::uint32_t n) {
  static std::map<std::uint32_t, bench::Instance> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, bench::connected_instance(n, 10.0, 1)).first;
  }
  return it->second;
}

sim::DelayModel delay_for(bool async) {
  return async ? sim::DelayModel::uniform(1, 5, 7) : sim::DelayModel::unit();
}

double run_once_ms(const graph::Graph& g, bool alg1, bool async,
                   sim::QueuePolicy queue) {
  const auto delays = delay_for(async);
  const auto start = std::chrono::steady_clock::now();
  // Raw entrypoints on purpose: this helper feeds the gated a5/flat_ms and
  // a5/map_ms gauges, and the facade's list extraction would pollute the
  // queue-policy timing.
  if (alg1) {
    benchmark::DoNotOptimize(
        // wcds-lint: allow(facade-only)
        protocols::run_algorithm1(g, delays, nullptr, queue));
  } else {
    benchmark::DoNotOptimize(
        // wcds-lint: allow(facade-only)
        protocols::run_algorithm2(g, delays, nullptr, queue));
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

double median_of_3_ms(const graph::Graph& g, bool alg1, bool async,
                      sim::QueuePolicy queue) {
  double t[3];
  for (double& sample : t) sample = run_once_ms(g, alg1, async, queue);
  std::sort(t, t + 3);
  return t[1];
}

void print_tables() {
  // Timing sections run with the ambient recorder uninstalled: a recorder
  // adds a trace callback per event, which would pollute the flat-vs-map
  // comparison.  The printed rows still land in report() for --json_out.
  obs::Recorder* const ambient = obs::global_recorder();
  obs::set_global_recorder(nullptr);

  bench::banner(std::cout,
                "A5a: Runtime::run wall time, flat vs reference-map queue "
                "(median of 3)");
  bench::Table table(
      {"n", "alg", "delays", "map ms", "flat ms", "speedup"});
  struct TimedConfig {
    std::string name;
    double ms = 0.0;
  };
  std::vector<TimedConfig> gauges;
  for (const std::uint32_t n : {512u, 2048u, 8192u}) {
    const auto& inst = instance_for(n);
    for (const bool alg1 : {true, false}) {
      for (const bool async : {false, true}) {
        const double map_ms = median_of_3_ms(inst.g, alg1, async,
                                             sim::QueuePolicy::kReferenceMap);
        const double flat_ms =
            median_of_3_ms(inst.g, alg1, async, sim::QueuePolicy::kFlat);
        table.add_row({std::to_string(n), alg1 ? "alg1" : "alg2",
                       async ? "async U(1,5)" : "sync", bench::fmt(map_ms, 2),
                       bench::fmt(flat_ms, 2),
                       bench::fmt(map_ms / flat_ms, 2) + "x"});
        const std::string key = std::string(alg1 ? "alg1" : "alg2") +
                                (async ? "_async_n" : "_sync_n") +
                                std::to_string(n);
        gauges.push_back({"a5/map_ms/" + key, map_ms});
        gauges.push_back({"a5/flat_ms/" + key, flat_ms});
        gauges.push_back({"a5/speedup/" + key, map_ms / flat_ms});
      }
    }
  }
  table.print(std::cout);

  bench::banner(std::cout,
                "A5b: dilation analysis, serial vs WCDS_THREADS pool");
  bench::Table par({"n", "threads", "serial ms", "parallel ms", "speedup",
                    "identical"});
  for (const std::uint32_t n : {2048u, 8192u}) {
    const auto& inst = instance_for(n);
    const auto wcds =
        bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
            .result;
    const auto sp = core::extract_spanner(inst.g, wcds);
    spanner::TopologicalDilationStats serial_stats;
    double serial_ms = 0.0;
    {
      parallel::ThreadPool one(1);
      parallel::ScopedPool scoped(one);
      const auto start = std::chrono::steady_clock::now();
      serial_stats = spanner::topological_dilation(inst.g, sp);
      const auto stop = std::chrono::steady_clock::now();
      serial_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
    }
    const auto start = std::chrono::steady_clock::now();
    const auto parallel_stats = spanner::topological_dilation(inst.g, sp);
    const auto stop = std::chrono::steady_clock::now();
    const double parallel_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    const bool identical = serial_stats.max_ratio == parallel_stats.max_ratio &&
                           serial_stats.mean_ratio == parallel_stats.mean_ratio &&
                           serial_stats.max_slack == parallel_stats.max_slack &&
                           serial_stats.pairs == parallel_stats.pairs;
    par.add_row({std::to_string(n),
                 std::to_string(parallel::default_thread_count()),
                 bench::fmt(serial_ms, 2), bench::fmt(parallel_ms, 2),
                 bench::fmt(serial_ms / parallel_ms, 2) + "x",
                 identical ? "yes" : "NO"});
  }
  par.print(std::cout);
  std::cout << "\nExpected shape: flat-queue speedup grows with n (the map "
               "pays a per-delivery\nallocation plus O(log q) pointer "
               "chasing; the calendar is O(1) amortized and\nthe heap works "
               "on a contiguous 24-byte-record array).  A5b speedup tracks\n"
               "WCDS_THREADS on multi-core hosts and is ~1.0x single-core; "
               "the 'identical'\ncolumn must read yes either way.\n";

  obs::set_global_recorder(ambient);
  // With the recorder back in effect, fold the wall times into the metrics
  // snapshot so --json_out carries machine-readable numbers alongside the
  // table rows.
  if (ambient != nullptr) {
    for (const TimedConfig& gauge : gauges) {
      ambient->metrics().set(gauge.name, gauge.ms);
    }
  }
}

void BM_RuntimeRun(benchmark::State& state, bool alg1, bool async,
                   sim::QueuePolicy queue) {
  const auto& inst = instance_for(static_cast<std::uint32_t>(state.range(0)));
  const auto delays = delay_for(async);
  for (auto _ : state) {
    if (alg1) {
      benchmark::DoNotOptimize(
          protocols::run_algorithm1(inst.g, delays, nullptr, queue));
    } else {
      benchmark::DoNotOptimize(
          protocols::run_algorithm2(inst.g, delays, nullptr, queue));
    }
  }
  state.SetComplexityN(state.range(0));
}

#define WCDS_BM_RUNTIME(name, alg1, async, queue)                       \
  BENCHMARK_CAPTURE(BM_RuntimeRun, name, alg1, async, queue)            \
      ->Arg(512)                                                        \
      ->Arg(2048)                                                       \
      ->Arg(8192)                                                       \
      ->Unit(benchmark::kMillisecond)                                   \
      ->Complexity()

WCDS_BM_RUNTIME(alg1_sync_flat, true, false, sim::QueuePolicy::kFlat);
WCDS_BM_RUNTIME(alg1_sync_map, true, false, sim::QueuePolicy::kReferenceMap);
WCDS_BM_RUNTIME(alg1_async_flat, true, true, sim::QueuePolicy::kFlat);
WCDS_BM_RUNTIME(alg1_async_map, true, true, sim::QueuePolicy::kReferenceMap);
WCDS_BM_RUNTIME(alg2_sync_flat, false, false, sim::QueuePolicy::kFlat);
WCDS_BM_RUNTIME(alg2_sync_map, false, false, sim::QueuePolicy::kReferenceMap);
WCDS_BM_RUNTIME(alg2_async_flat, false, true, sim::QueuePolicy::kFlat);
WCDS_BM_RUNTIME(alg2_async_map, false, true, sim::QueuePolicy::kReferenceMap);

#undef WCDS_BM_RUNTIME

void BM_DilationSerial(benchmark::State& state) {
  const auto& inst = instance_for(static_cast<std::uint32_t>(state.range(0)));
  const auto wcds =
      bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
          .result;
  const auto sp = core::extract_spanner(inst.g, wcds);
  parallel::ThreadPool one(1);
  parallel::ScopedPool scoped(one);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner::topological_dilation(inst.g, sp));
  }
}
BENCHMARK(BM_DilationSerial)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_DilationParallel(benchmark::State& state) {
  const auto& inst = instance_for(static_cast<std::uint32_t>(state.range(0)));
  const auto wcds =
      bench::build_with(inst.g, core::BuildAlgorithm::kAlgorithm2Central)
          .result;
  const auto sp = core::extract_spanner(inst.g, wcds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanner::topological_dilation(inst.g, sp));
  }
}
BENCHMARK(BM_DilationParallel)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

WCDS_BENCH_MAIN(print_tables)
