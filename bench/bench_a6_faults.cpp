// Experiment A6: protocol robustness under radio faults.
//
// A6a sweeps per-copy loss rates over both distributed construction
// protocols running on the hardened reliable transport
// (fault::HardenedNode): every configuration must still converge to an
// audit-clean WCDS, and the table quantifies what reliability costs — the
// retransmit/ack overhead relative to the fault-free run.
//
// A6b measures loss-rate vs recovery for the self-stabilizing MIS
// maintenance session: a node crashes (all links vanish) and later
// recovers, both under message loss, and the table reports the wall-clock
// and message cost of re-convergence (watchdog included).
//
// A6c times the event-driven maintenance layer's crash/recover repairs
// (maintenance::run_crash_schedule over maintenance::DynamicWcds) — the paper's
// 3-hop locality claim is what keeps these flat as n grows.
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "facade/build.h"
#include "fault/plan.h"
#include "maintenance/crash_schedule.h"
#include "maintenance/dynamic_wcds.h"
#include "protocols/mis_maintenance_protocol.h"

namespace {

using namespace wcds;

constexpr std::uint32_t kNodes = 150;
constexpr double kDegree = 10.0;
constexpr std::uint64_t kSeeds = 5;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

std::string pct(double rate) {
  return std::to_string(static_cast<int>(rate * 100 + 0.5));
}

void set_gauge(const std::string& name, double value) {
  if (obs::Recorder* rec = obs::global_recorder()) {
    rec->metrics().set(name, value);
  }
}

void print_a6a() {
  bench::banner(std::cout,
                "A6a: construction under loss (drop rate x algorithm, "
                "dup=0.05, jitter<=2, " +
                    std::to_string(kSeeds) + " seeds, n=" +
                    std::to_string(kNodes) + ")");
  bench::Table table({"drop", "alg", "converged", "msgs (median)",
                      "retransmits", "time", "msg overhead"});
  for (const bool alg1 : {true, false}) {
    double fault_free_msgs = 0.0;
    for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
      std::vector<double> msgs, retransmits, times;
      std::size_t converged = 0;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const auto inst = bench::connected_instance(kNodes, kDegree, seed);
        const fault::Plan plan = fault::Plan::chaos(drop, 0.05, 2, seed);
        const fault::Plan* faults = drop > 0.0 ? &plan : nullptr;
        obs::Recorder rec;
        core::BuildOptions opts;
        opts.algorithm = alg1 ? core::BuildAlgorithm::kAlgorithm1Protocol
                              : core::BuildAlgorithm::kAlgorithm2Protocol;
        opts.faults = faults;
        opts.recorder = &rec;
        const auto stats = core::build(inst.g, opts).stats;
        if (stats.quiescent) ++converged;
        msgs.push_back(static_cast<double>(stats.transmissions));
        times.push_back(static_cast<double>(stats.completion_time));
        const auto snapshot = rec.snapshot();
        const auto it = snapshot.counters.find("fault/retransmits");
        retransmits.push_back(
            it != snapshot.counters.end() ? static_cast<double>(it->second)
                                          : 0.0);
      }
      const double med_msgs = median(msgs);
      if (drop == 0.0) fault_free_msgs = med_msgs;
      const std::string alg = alg1 ? "alg1" : "alg2";
      table.add_row({pct(drop) + "%", alg,
                     std::to_string(converged) + "/" + std::to_string(kSeeds),
                     bench::fmt(med_msgs, 0), bench::fmt(median(retransmits), 0),
                     bench::fmt(median(times), 0),
                     bench::fmt(med_msgs / fault_free_msgs, 2) + "x"});
      const std::string key = alg + "_drop" + pct(drop);
      set_gauge("a6/msgs/" + key, med_msgs);
      set_gauge("a6/retransmits/" + key, median(retransmits));
      set_gauge("a6/completion_time/" + key, median(times));
    }
  }
  table.print(std::cout);
}

void print_a6b() {
  bench::banner(std::cout,
                "A6b: MIS-maintenance recovery vs loss rate (crash + "
                "recover one node, " +
                    std::to_string(kSeeds) + " seeds, n=" +
                    std::to_string(kNodes) + ")");
  bench::Table table(
      {"drop", "recovered", "recovery ms (median)", "extra msgs (median)"});
  for (const double drop : {0.0, 0.1, 0.2, 0.3}) {
    std::vector<double> recovery_ms, extra_msgs;
    std::size_t recovered = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      auto inst = bench::connected_instance(kNodes, kDegree, seed);
      protocols::MisMaintenanceSession session(inst.g);
      if (!session.stabilize()) continue;
      if (drop > 0.0) session.set_loss(drop, seed * 97 + 1);
      const auto victim = static_cast<NodeId>(seed % kNodes);
      const geom::Point home = inst.points[victim];
      const auto msgs_before = session.stats().transmissions;

      const auto start = std::chrono::steady_clock::now();
      inst.points[victim] = {1e6, 1e6};
      bool ok = session.update(udg::build_udg(inst.points));
      ok = ok && session.watchdog();
      inst.points[victim] = home;
      ok = ok && session.update(udg::build_udg(inst.points));
      ok = ok && session.watchdog();
      const auto stop = std::chrono::steady_clock::now();

      if (ok) ++recovered;
      recovery_ms.push_back(
          std::chrono::duration<double, std::milli>(stop - start).count());
      extra_msgs.push_back(
          static_cast<double>(session.stats().transmissions - msgs_before));
    }
    table.add_row({pct(drop) + "%",
                   std::to_string(recovered) + "/" + std::to_string(kSeeds),
                   bench::fmt(median(recovery_ms), 2),
                   bench::fmt(median(extra_msgs), 0)});
    set_gauge("a6/recovery_ms/drop" + pct(drop), median(recovery_ms));
    set_gauge("a6/recovery_msgs/drop" + pct(drop), median(extra_msgs));
  }
  table.print(std::cout);
}

void print_a6c() {
  bench::banner(std::cout,
                "A6c: DynamicWcds crash/recover repair latency (5 victims "
                "per n, localized 3-hop repair)");
  bench::Table table({"n", "crash ms (median)", "recover ms (median)",
                      "audit"});
  for (const std::uint32_t n : {200u, 800u}) {
    auto inst = bench::connected_instance(n, kDegree, 3);
    maintenance::DynamicWcds dyn(inst.points);
    std::vector<NodeId> victims;
    for (std::uint32_t i = 1; victims.size() < 5; i += 2) {
      victims.push_back(static_cast<NodeId>((i * n) / 11 % n));
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
    const auto report = maintenance::run_crash_schedule(dyn, victims);
    std::vector<double> crash_ms, recover_ms;
    for (const auto& outcome : report.outcomes) {
      crash_ms.push_back(outcome.crash_ms);
      recover_ms.push_back(outcome.recover_ms);
    }
    const bool ok = dyn.audit().ok();
    table.add_row({std::to_string(n), bench::fmt(median(crash_ms), 3),
                   bench::fmt(median(recover_ms), 3), ok ? "ok" : "FAIL"});
    set_gauge("a6/crash_repair_ms/n" + std::to_string(n), median(crash_ms));
    set_gauge("a6/recover_repair_ms/n" + std::to_string(n),
              median(recover_ms));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every configuration converges (the "
               "hardened transport\nretransmits through loss; crash means "
               "radio-off, so recovery is retransmit\ndeadline-bound).  Msg "
               "overhead grows with the drop rate — that is the price\nof "
               "reliability, not a protocol defect — and A6c's repair "
               "latencies stay\nflat-ish in n (3-hop locality).\n";
}

void print_tables() {
  print_a6a();
  print_a6b();
  print_a6c();
}

}  // namespace

WCDS_BENCH_MAIN(print_tables)
