#include "baselines/greedy_wcds.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/bfs.h"

namespace wcds::baselines {

using core::NodeColor;
using core::WcdsResult;

WcdsResult greedy_wcds(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) throw std::invalid_argument("greedy_wcds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("greedy_wcds: graph must be connected");
  }

  std::vector<NodeColor> color(n, NodeColor::kWhite);
  std::vector<bool> in_set(n, false);
  std::size_t white_remaining = n;

  const auto gain_of = [&](NodeId v) {
    std::size_t gain = color[v] == NodeColor::kWhite ? 1 : 0;
    for (NodeId w : g.neighbors(v)) {
      if (color[w] == NodeColor::kWhite) ++gain;
    }
    return gain;
  };
  const auto adjacent_to_dominated = [&](NodeId v) {
    for (NodeId w : g.neighbors(v)) {
      if (color[w] != NodeColor::kWhite) return true;
    }
    return false;
  };
  const auto take = [&](NodeId v) {
    if (color[v] == NodeColor::kWhite) --white_remaining;
    color[v] = NodeColor::kBlack;
    in_set[v] = true;
    for (NodeId w : g.neighbors(v)) {
      if (color[w] == NodeColor::kWhite) {
        color[w] = NodeColor::kGray;
        --white_remaining;
      }
    }
  };

  // First pick: max closed-neighborhood coverage, ties to lower id.
  {
    NodeId best = 0;
    std::size_t best_gain = gain_of(0);
    for (NodeId v = 1; v < n; ++v) {
      const std::size_t gv = gain_of(v);
      if (gv > best_gain) {
        best = v;
        best_gain = gv;
      }
    }
    take(best);
  }

  while (white_remaining > 0) {
    NodeId best = kInvalidNode;
    std::size_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (in_set[v]) continue;
      const bool candidate = color[v] == NodeColor::kGray ||
                             (color[v] == NodeColor::kWhite &&
                              adjacent_to_dominated(v));
      if (!candidate) continue;
      const std::size_t gv = gain_of(v);
      // Ascending scan: the lowest-id candidate wins ties automatically.
      if (gv > best_gain) {
        best = v;
        best_gain = gv;
      }
    }
    if (best == kInvalidNode) {
      throw std::logic_error("greedy_wcds: stalled on a connected graph");
    }
    take(best);
  }

  WcdsResult result;
  result.mask.assign(n, false);
  result.color = std::move(color);
  for (NodeId v = 0; v < n; ++v) {
    if (in_set[v]) {
      result.mask[v] = true;
      result.dominators.push_back(v);
    }
  }
  result.mis_dominators = result.dominators;  // no MIS/additional split here
  return result;
}

}  // namespace wcds::baselines
