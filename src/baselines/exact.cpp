#include "baselines/exact.h"

#include <algorithm>

#include "check/audit.h"
#include "graph/bfs.h"
#include "graph/subgraph.h"
#include "wcds/verify.h"

namespace wcds::baselines {
namespace {

class Searcher {
 public:
  Searcher(const graph::Graph& g, bool weak, const ExactOptions& options)
      : g_(g), weak_(weak), options_(options) {}

  std::optional<ExactResult> run() {
    const std::size_t n = g_.node_count();
    if (n == 0) return std::nullopt;
    chosen_mask_.assign(n, false);
    domination_count_.assign(n, 0);
    for (std::size_t k = 1; k <= options_.max_size; ++k) {
      target_ = k;
      chosen_.clear();
      undominated_ = n;
      if (dfs(0)) {
        ExactResult result;
        result.members = best_;
        result.proven_optimal = steps_ <= options_.max_steps;
        result.steps = steps_;
        return result;
      }
      if (steps_ > options_.max_steps) return std::nullopt;
    }
    return std::nullopt;
  }

 private:
  // `min_repair` orders the connectivity-repair additions (all-dominated
  // states) ascending, so each repair superset is enumerated exactly once.
  bool dfs(NodeId min_repair) {
    if (++steps_ > options_.max_steps) return false;
    if (undominated_ == 0) {
      if (connectivity_ok()) {
        best_ = chosen_;
        std::sort(best_.begin(), best_.end());
        return true;
      }
      // Dominating but disconnected: adding more vertices (if budget allows)
      // may reconnect, so fall through to branching below.
    }
    if (chosen_.size() >= target_) return false;
    // Prune: even covering max_coverage_ nodes per added vertex cannot
    // finish within the size budget.
    const std::size_t remaining = target_ - chosen_.size();
    if (undominated_ > remaining * max_coverage_) return false;

    const NodeId u = branch_vertex();
    // Cover u: try each candidate in N[u] not yet chosen.
    if (u != kInvalidNode) {
      return try_candidates_around(u);
    }
    // Fully dominated but disconnected: extend with vertices >= min_repair.
    for (NodeId v = min_repair; v < g_.node_count(); ++v) {
      if (!chosen_mask_[v]) {
        if (descend(v, v + 1)) return true;
      }
    }
    return false;
  }

  // Lowest-id undominated vertex, or kInvalidNode if all dominated.
  NodeId branch_vertex() const {
    if (undominated_ == 0) return kInvalidNode;
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (!dominated(v)) return v;
    }
    return kInvalidNode;
  }

  bool dominated(NodeId v) const { return domination_count_[v] > 0; }

  bool try_candidates_around(NodeId u) {
    if (!chosen_mask_[u]) {
      if (descend(u, 0)) return true;
    }
    for (NodeId v : g_.neighbors(u)) {
      if (!chosen_mask_[v]) {
        if (descend(v, 0)) return true;
      }
    }
    return false;
  }

  bool descend(NodeId v, NodeId min_repair) {
    add(v);
    const bool found = dfs(min_repair);
    remove(v);
    return found;
  }

  void add(NodeId v) {
    chosen_.push_back(v);
    chosen_mask_[v] = true;
    bump(v, +1);
  }

  void remove(NodeId v) {
    bump(v, -1);
    chosen_mask_[v] = false;
    chosen_.pop_back();
  }

  void bump(NodeId v, int delta) {
    const auto apply = [&](NodeId w) {
      const bool was = dominated(w);
      domination_count_[w] =
          static_cast<std::uint32_t>(static_cast<int>(domination_count_[w]) +
                                     delta);
      const bool now = dominated(w);
      if (was && !now) ++undominated_;
      if (!was && now) --undominated_;
    };
    apply(v);
    for (NodeId w : g_.neighbors(v)) apply(w);
  }

  bool connectivity_ok() const {
    if (weak_) return core::is_weakly_connected(g_, chosen_mask_);
    // CDS: induced subgraph on chosen set connected.
    const auto induced = graph::induced_subgraph(g_, chosen_mask_);
    NodeId start = kInvalidNode;
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (chosen_mask_[v]) {
        start = v;
        break;
      }
    }
    if (start == kInvalidNode) return false;
    const auto dist = graph::bfs_distances(induced, start);
    for (NodeId v = 0; v < g_.node_count(); ++v) {
      if (chosen_mask_[v] && dist[v] == kUnreachable) return false;
    }
    return true;
  }

  const graph::Graph& g_;
  const bool weak_;
  const ExactOptions options_;
  std::size_t target_ = 0;
  std::size_t max_coverage_ = 0;
  std::vector<NodeId> chosen_;
  std::vector<bool> chosen_mask_;
  std::vector<std::uint32_t> domination_count_;
  std::size_t undominated_ = 0;
  std::uint64_t steps_ = 0;
  std::vector<NodeId> best_;

 public:
  void init_bounds() { max_coverage_ = g_.max_degree() + 1; }
};

std::optional<ExactResult> solve(const graph::Graph& g, bool weak,
                                 const ExactOptions& options) {
  if (g.node_count() == 0) return std::nullopt;
  if (!graph::is_connected(g)) return std::nullopt;
  if (g.node_count() == 1) {
    return ExactResult{{0}, true, 0};
  }
  Searcher searcher(g, weak, options);
  searcher.init_bounds();
  return searcher.run();
}

}  // namespace

std::optional<ExactResult> exact_min_wcds(const graph::Graph& g,
                                          const ExactOptions& options) {
  return solve(g, /*weak=*/true, options);
}

std::optional<ExactResult> exact_min_cds(const graph::Graph& g,
                                         const ExactOptions& options) {
  return solve(g, /*weak=*/false, options);
}

std::size_t domination_lower_bound(const graph::Graph& g) {
  if (g.node_count() == 0) return 0;
  const std::size_t cover = g.max_degree() + 1;
  return (g.node_count() + cover - 1) / cover;
}

std::size_t udg_mwcds_lower_bound(std::size_t mis_size, std::size_t m) {
  // Lemma 1: a dominator covers at most kLemma1MaxMisNeighbors MIS nodes
  // (plus itself), so any WCDS needs at least
  // ceil(|MIS| / kLemma1MaxMisNeighbors) nodes.  For an m-fold dominating
  // set each MIS node must be covered m times and every (node, coverer)
  // incidence still lands on a distinct closed-neighborhood slot of some
  // dominator, so opt_m >= ceil(m * |MIS| / kLemma1MaxMisNeighbors).
  return (m * mis_size + check::kLemma1MaxMisNeighbors - 1) /
         check::kLemma1MaxMisNeighbors;
}

}  // namespace wcds::baselines
