// Greedy *connected* dominating set baseline in the style of Guha & Khuller's
// first algorithm: grow a tree of black nodes from a max-degree seed, always
// promoting the gray node that dominates the most still-white nodes.
//
// The paper motivates WCDS as the relaxation of CDS (|MWCDS| <= |MCDS|); this
// baseline supplies the CDS side of experiment T1.
#pragma once

#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::baselines {

// Precondition: g is connected.  Throws std::invalid_argument otherwise.
[[nodiscard]] core::WcdsResult greedy_cds(const graph::Graph& g);

}  // namespace wcds::baselines
