#include "baselines/greedy_cds.h"

#include <stdexcept>
#include <vector>

#include "graph/bfs.h"

namespace wcds::baselines {

using core::NodeColor;
using core::WcdsResult;

WcdsResult greedy_cds(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) throw std::invalid_argument("greedy_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("greedy_cds: graph must be connected");
  }

  std::vector<NodeColor> color(n, NodeColor::kWhite);
  std::vector<bool> in_set(n, false);
  std::size_t white_remaining = n;

  const auto white_neighbors = [&](NodeId v) {
    std::size_t count = 0;
    for (NodeId w : g.neighbors(v)) {
      if (color[w] == NodeColor::kWhite) ++count;
    }
    return count;
  };
  const auto blacken = [&](NodeId v) {
    if (color[v] == NodeColor::kWhite) --white_remaining;
    color[v] = NodeColor::kBlack;
    in_set[v] = true;
    for (NodeId w : g.neighbors(v)) {
      if (color[w] == NodeColor::kWhite) {
        color[w] = NodeColor::kGray;
        --white_remaining;
      }
    }
  };

  // Seed: the max-degree node (ties to lower id).
  {
    NodeId seed = 0;
    for (NodeId v = 1; v < n; ++v) {
      if (g.degree(v) > g.degree(seed)) seed = v;
    }
    blacken(seed);
  }

  while (white_remaining > 0) {
    NodeId best = kInvalidNode;
    std::size_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (color[v] != NodeColor::kGray || in_set[v]) continue;
      const std::size_t gv = white_neighbors(v);
      if (best == kInvalidNode || gv > best_gain) {
        best = v;
        best_gain = gv;
      }
    }
    if (best == kInvalidNode || best_gain == 0) {
      // On a connected graph some gray node always borders a white node.
      if (best == kInvalidNode) {
        throw std::logic_error("greedy_cds: stalled on a connected graph");
      }
      // best_gain can only be 0 if no gray node has a white neighbor, which
      // contradicts connectivity while whites remain.
      throw std::logic_error("greedy_cds: no progress possible");
    }
    blacken(best);
  }

  WcdsResult result;
  result.mask.assign(n, false);
  result.color = std::move(color);
  for (NodeId v = 0; v < n; ++v) {
    if (in_set[v]) {
      result.mask[v] = true;
      result.dominators.push_back(v);
    }
  }
  result.mis_dominators = result.dominators;
  return result;
}

}  // namespace wcds::baselines
