// MIS-tree CDS baseline — Alzoubi, Wan, Frieder's own connected-dominating-
// set construction (refs [2], [4], [5] of the paper), the prior work this
// paper's WCDS relaxes.
//
// Construction: take the greedy lowest-ID-first MIS (the dominators), then
// connect it into a CDS by adding one *connector* per edge of a spanning
// tree of the MIS proximity graph H_3 (MIS nodes adjacent iff <= 3 hops
// apart; Lemma 3 guarantees H_3 is connected).  A 2-hop tree edge adds the
// single shared intermediate; a 3-hop edge adds both intermediates.  The
// result is a CDS of size <= |MIS| + 2(|MIS| - 1), hence O(opt).
//
// This gives experiment T1 the "CDS from the same MIS machinery" comparison
// point: |WCDS| <= |CDS| on every instance, with the gap quantifying what
// the weak-connectivity relaxation buys.
#pragma once

#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::baselines {

// Precondition: g is connected.  Throws std::invalid_argument otherwise.
// In the result, `mis_dominators` holds the MIS and `additional_dominators`
// the connectors.
[[nodiscard]] core::WcdsResult mis_tree_cds(const graph::Graph& g);

}  // namespace wcds::baselines
