// Greedy WCDS baseline in the style of Chen & Liestman (MobiHoc 2002),
// the prior work the paper compares against conceptually: an O(ln Delta)
// approximation built by repeatedly taking the candidate that dominates the
// most still-white nodes while keeping the weakly induced subgraph connected.
//
// Candidates after the first pick are gray nodes and white nodes adjacent to
// a gray node; both preserve weak connectivity (see the inductive argument
// in Lemma 9's proof style).
#pragma once

#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::baselines {

// Precondition: g is connected.  Throws std::invalid_argument otherwise.
[[nodiscard]] core::WcdsResult greedy_wcds(const graph::Graph& g);

}  // namespace wcds::baselines
