#include "baselines/mis_tree_cds.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <vector>

#include "graph/bfs.h"
#include "mis/mis.h"

namespace wcds::baselines {
namespace {

// Hop distances from `source` truncated at 3 (connector search radius).
std::vector<HopCount> bfs3(const graph::Graph& g, NodeId source) {
  std::vector<HopCount> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (dist[u] == 3) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace

core::WcdsResult mis_tree_cds(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  if (n == 0) throw std::invalid_argument("mis_tree_cds: empty graph");
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("mis_tree_cds: graph must be connected");
  }

  const auto s = mis::greedy_mis_by_id(g);
  const std::size_t m = s.members.size();

  // Prim-style spanning tree of H_3 over the MIS, growing from the smallest
  // member; each absorbed member remembers the tree edge that reached it.
  std::vector<std::vector<HopCount>> dist(m);
  for (std::size_t i = 0; i < m; ++i) dist[i] = bfs3(g, s.members[i]);
  const auto hop = [&](std::size_t i, std::size_t j) {
    return dist[i][s.members[j]];
  };

  std::vector<bool> in_tree(m, false);
  std::vector<HopCount> best(m, kUnreachable);
  std::vector<std::size_t> best_from(m, m);
  std::vector<std::pair<std::size_t, std::size_t>> tree_edges;  // (from, to)
  best[0] = 0;
  for (std::size_t step = 0; step < m; ++step) {
    std::size_t next = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && (next == m || best[j] < best[next])) next = j;
    }
    if (best[next] == kUnreachable) {
      throw std::logic_error("mis_tree_cds: H_3 disconnected (Lemma 3?)");
    }
    in_tree[next] = true;
    if (best_from[next] != m) tree_edges.emplace_back(best_from[next], next);
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && hop(next, j) < best[j]) {
        best[j] = hop(next, j);
        best_from[j] = next;
      }
    }
  }

  // Promote connectors along each tree edge.
  std::vector<bool> connector(n, false);
  for (const auto& [i, j] : tree_edges) {
    const NodeId a = s.members[i];
    const NodeId b = s.members[j];
    if (hop(i, j) == 2) {
      // Smallest common neighbor.
      for (NodeId v : g.neighbors(a)) {
        if (g.has_edge(v, b)) {
          connector[v] = true;
          break;  // neighbors() ascending
        }
      }
    } else {
      // Smallest (v, x) with a-v-x-b.
      bool done = false;
      for (NodeId v : g.neighbors(a)) {
        for (NodeId x : g.neighbors(v)) {
          if (g.has_edge(x, b)) {
            connector[v] = true;
            connector[x] = true;
            done = true;
            break;
          }
        }
        if (done) break;
      }
      if (!done) throw std::logic_error("mis_tree_cds: lost 3-hop path");
    }
  }

  core::WcdsResult result;
  result.mask.assign(n, false);
  result.color.assign(n, core::NodeColor::kGray);
  for (NodeId u : s.members) {
    result.mask[u] = true;
    result.mis_dominators.push_back(u);
  }
  std::sort(result.mis_dominators.begin(), result.mis_dominators.end());
  for (NodeId v = 0; v < n; ++v) {
    if (connector[v] && !result.mask[v]) {
      result.mask[v] = true;
      result.additional_dominators.push_back(v);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (result.mask[u]) {
      result.dominators.push_back(u);
      result.color[u] = core::NodeColor::kBlack;
    }
  }
  return result;
}

}  // namespace wcds::baselines
