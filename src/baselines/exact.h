// Exact minimum WCDS / CDS by branch-and-bound.
//
// Finding a minimum WCDS is NP-hard (Dunbar et al., cited by the paper), so
// exact solutions are only feasible on small instances; we use them as the
// ground-truth `opt` in experiment T1's measured approximation ratios.
//
// Strategy: iterative deepening on the solution size k.  For a fixed k, DFS
// branches on the lowest-id undominated vertex u: some vertex of N[u] must
// join the set.  Pruning: |chosen| + ceil(undominated / (maxdeg + 1)) > k.
// Connectivity (weak for WCDS, induced for CDS) is checked at dominating
// leaves only, since adding vertices can restore connectivity.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::baselines {

struct ExactOptions {
  std::size_t max_size = 16;        // give up beyond this cardinality
  std::uint64_t max_steps = 50'000'000;  // search-node budget
};

struct ExactResult {
  std::vector<NodeId> members;  // a minimum set, ascending
  bool proven_optimal = false;  // false if a budget was hit
  std::uint64_t steps = 0;      // search nodes expanded
};

// Minimum weakly-connected dominating set.  Empty optional if no WCDS within
// options.max_size exists (e.g. disconnected graph) or the budget was hit
// before finding any.
[[nodiscard]] std::optional<ExactResult> exact_min_wcds(
    const graph::Graph& g, const ExactOptions& options = {});

// Minimum connected dominating set.
[[nodiscard]] std::optional<ExactResult> exact_min_cds(
    const graph::Graph& g, const ExactOptions& options = {});

// Valid lower bounds on the minimum (W)CDS size -------------------------------

// Domination bound for any graph: ceil(n / (maxdeg + 1)).
[[nodiscard]] std::size_t domination_lower_bound(const graph::Graph& g);

// UDG bound from Lemma 7's argument: every WCDS covers each MIS node with a
// distinct closed neighborhood and each dominator covers at most 5 MIS nodes,
// so opt >= ceil(|MIS| / 5).  The m-fold generalization counts coverage
// incidences: an m-fold dominating set must cover each MIS node m times
// while each dominator still supplies at most 5 of those incidences, so
// opt_m >= ceil(m * |MIS| / 5) — the yardstick for the (k,m)-resilient
// backbones of wcds/resilient.h.  Only valid when g is a unit-disk graph.
[[nodiscard]] std::size_t udg_mwcds_lower_bound(std::size_t mis_size,
                                                std::size_t m = 1);

}  // namespace wcds::baselines
