// Fixed-width table printing for the experiment harnesses.
//
// Every bench binary prints its reproduction table through this, so the rows
// recorded in EXPERIMENTS.md and the rows a user regenerates line up exactly.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace wcds::bench {

class Table {
 public:
  // `headers` fixes the column count; widths adapt to content.
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Render with a header rule, right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers.
[[nodiscard]] std::string fmt(double value, int precision = 2);
[[nodiscard]] std::string fmt_ratio(double value);  // 3 decimals
[[nodiscard]] std::string fmt_count(std::uint64_t value);

// Section banner: "== F3: Lemma 1 ... ==".
void banner(std::ostream& os, const std::string& title);

}  // namespace wcds::bench
