#include "bench_support/stats.h"

#include <algorithm>
#include <cmath>

namespace wcds::bench {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

}  // namespace wcds::bench
