#include "bench_support/report.h"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace wcds::bench {

Report::Section& Report::current_section() {
  if (sections_.empty()) sections_.push_back(Section{});
  return sections_.back();
}

void Report::begin_section(std::string title) {
  Section section;
  section.title = std::move(title);
  sections_.push_back(std::move(section));
}

void Report::add_table(std::vector<std::string> headers,
                       std::vector<std::vector<std::string>> rows) {
  current_section().tables.push_back(
      TableData{std::move(headers), std::move(rows)});
}

void Report::add_note(std::string text) {
  current_section().notes.push_back(std::move(text));
}

obs::Json Report::to_json(std::string_view bench_name,
                          const obs::MetricsSnapshot& metrics) const {
  obs::Json doc = obs::Json::object();
  doc["schema"] = "wcds-bench/v1";
  doc["bench"] = bench_name;
  obs::Json& sections = doc["sections"] = obs::Json::array();
  for (const auto& section : sections_) {
    obs::Json s = obs::Json::object();
    s["title"] = section.title;
    obs::Json& tables = s["tables"] = obs::Json::array();
    for (const auto& table : section.tables) {
      obs::Json t = obs::Json::object();
      obs::Json& headers = t["headers"] = obs::Json::array();
      for (const auto& header : table.headers) headers.push_back(header);
      obs::Json& rows = t["rows"] = obs::Json::array();
      for (const auto& row : table.rows) {
        obs::Json cells = obs::Json::array();
        for (const auto& cell : row) cells.push_back(cell);
        rows.push_back(std::move(cells));
      }
      tables.push_back(std::move(t));
    }
    obs::Json& notes = s["notes"] = obs::Json::array();
    for (const auto& note : section.notes) notes.push_back(note);
    sections.push_back(std::move(s));
  }
  doc["metrics"] = obs::to_json(metrics);
  return doc;
}

Report& report() {
  static Report instance;
  return instance;
}

void write_report_json(const std::string& path, std::string_view bench_name,
                       const obs::MetricsSnapshot& metrics) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_report_json: cannot open " + path);
  }
  out << report().to_json(bench_name, metrics).dump(2) << "\n";
  if (!out) {
    throw std::runtime_error("write_report_json: write failed for " + path);
  }
}

}  // namespace wcds::bench
