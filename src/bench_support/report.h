// Machine-readable mirror of a bench binary's reproduction tables.
//
// banner() opens a section and Table::print registers the printed rows, so
// the process-global Report always holds exactly what went to stdout.  When
// a bench runs with --json_out=<path>, the harness (bench/bench_common.h)
// serializes the Report plus the run's metrics snapshot into the stable
// wcds-bench/v1 JSON schema (docs/OBSERVABILITY.md).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace wcds::bench {

class Report {
 public:
  // Start a new section; subsequent tables attach to it.
  void begin_section(std::string title);

  // Register one printed table (called by Table::print).
  void add_table(std::vector<std::string> headers,
                 std::vector<std::vector<std::string>> rows);

  // Free-form commentary attached to the current section.
  void add_note(std::string text);

  [[nodiscard]] bool empty() const { return sections_.empty(); }
  void clear() { sections_.clear(); }

  // Serialize as the wcds-bench/v1 document.
  [[nodiscard]] obs::Json to_json(std::string_view bench_name,
                                  const obs::MetricsSnapshot& metrics) const;

 private:
  struct TableData {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  struct Section {
    std::string title;
    std::vector<TableData> tables;
    std::vector<std::string> notes;
  };

  // Tables printed before any banner land in an untitled section.
  Section& current_section();

  std::vector<Section> sections_;
};

// The process-global report every banner()/Table::print records into.
[[nodiscard]] Report& report();

// Serialize report() + `metrics` and write to `path`; throws
// std::runtime_error if the file cannot be written.
void write_report_json(const std::string& path, std::string_view bench_name,
                       const obs::MetricsSnapshot& metrics);

}  // namespace wcds::bench
