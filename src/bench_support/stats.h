// Aggregate statistics over repeated-trial experiment sweeps.
#pragma once

#include <span>

namespace wcds::bench {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

}  // namespace wcds::bench
