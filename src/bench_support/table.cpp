#include "bench_support/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bench_support/report.h"

namespace wcds::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  // Mirror the printed rows into the machine-readable report so a
  // --json_out run exports exactly what went to stdout.
  report().add_table(headers_, rows_);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_ratio(double value) { return fmt(value, 3); }

std::string fmt_count(std::uint64_t value) { return std::to_string(value); }

void banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
  report().begin_section(title);
}

}  // namespace wcds::bench
