// Distributed Algorithm II (paper, Section 4.2).
//
// Fully localized WCDS construction, O(n) time and O(n) messages
// (Theorem 12).  Message protocol, exactly as the paper lists it:
//
//   MIS-DOMINATOR          broadcast by a node turning MIS-dominator
//   GRAY                   broadcast by a node turning gray
//   1-HOP-DOMINATORS       a gray node's 1HopDomList, once it has heard a
//                          color from every neighbor
//   2-HOP-DOMINATORS       a gray node's 2HopDomList, once it has heard
//                          1-HOP-DOMINATORS from every gray neighbor
//   SELECTION              unicast u -> v choosing v as additional-dominator
//                          for the 3-hop pair (u, w) via path u-v-x-w
//   ADDITIONAL-DOMINATOR   broadcast by v confirming; the named intermediate
//                          x forwards it to w (the paper states w receives
//                          the confirmation; with one-hop radios the named
//                          x must relay it — an inferred detail, see
//                          DESIGN.md)
//
// Node rules (numbered as in the paper's prose):
//  1. A white node whose ID is lowest among its white neighbors turns black
//     (MIS-dominator) and broadcasts MIS-DOMINATOR.
//  2. A white node hearing MIS-DOMINATOR turns gray, records the sender in
//     its 1HopDomList and broadcasts GRAY (first time); every MIS-DOMINATOR
//     sender is recorded.
//  3. A white node that has heard GRAY from all lower-ID neighbors turns
//     black and broadcasts MIS-DOMINATOR.
//  8. An MIS-dominator u hearing 2-HOP-DOMINATORS entry (w, x) from v, with
//     w unknown at <= 2 hops, not already bridged, and id(u) < id(w), adds
//     (w, v, x) to its 3HopDomList and unicasts SELECTION to v.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "obs/recorder.h"
#include "sim/message.h"
#include "sim/runtime.h"
#include "wcds/algorithm2.h"
#include "wcds/wcds_result.h"

namespace wcds::fault {
struct Plan;
}  // namespace wcds::fault

namespace wcds::protocols {

// Message types (values are stable for stats reporting).
enum Algorithm2MessageType : sim::MessageType {
  kMsgMisDominator = 1,
  kMsgGray = 2,
  kMsgOneHopDoms = 3,
  kMsgTwoHopDoms = 4,
  kMsgSelection = 5,  // stable wire id  wcds-lint: allow(paper-constant)
  kMsgAdditionalDominator = 6,
  kMsgAdditionalForward = 7,
};

[[nodiscard]] const char* algorithm2_message_name(sim::MessageType type);

class Algorithm2Node final : public sim::ProtocolNode {
 public:
  void on_start(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, const sim::Message& msg) override;

  // Final-state accessors (valid after the runtime is quiescent).
  [[nodiscard]] bool is_mis_dominator() const { return mis_dominator_; }
  [[nodiscard]] bool is_additional_dominator() const { return additional_; }
  [[nodiscard]] bool is_gray() const {
    return color_ == Color::kGray && !additional_;
  }
  [[nodiscard]] const std::vector<NodeId>& one_hop_doms() const {
    return one_hop_doms_;
  }
  [[nodiscard]] const std::vector<core::TwoHopEntry>& two_hop_doms() const {
    return two_hop_doms_;
  }
  [[nodiscard]] const std::vector<core::ThreeHopEntry>& three_hop_doms() const {
    return three_hop_doms_;
  }

 private:
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };

  void maybe_become_dominator(sim::Context& ctx);
  void maybe_send_one_hop(sim::Context& ctx);
  void maybe_send_two_hop(sim::Context& ctx);
  void note_color_heard(sim::Context& ctx, NodeId from);
  [[nodiscard]] bool knows_two_hop(NodeId dom) const;
  [[nodiscard]] bool knows_three_hop(NodeId dom) const;

  Color color_ = Color::kWhite;
  bool mis_dominator_ = false;
  bool additional_ = false;
  bool sent_one_hop_ = false;
  bool sent_two_hop_ = false;

  std::vector<NodeId> gray_heard_;        // neighbors that sent GRAY
  std::vector<NodeId> color_heard_;       // neighbors whose color is known
  std::vector<NodeId> gray_neighbors_;    // neighbors known to be gray
  std::vector<NodeId> one_hop_heard_;     // gray neighbors whose 1-HOP arrived

  std::vector<NodeId> one_hop_doms_;
  std::vector<core::TwoHopEntry> two_hop_doms_;
  std::vector<core::ThreeHopEntry> three_hop_doms_;

  // SELECTION payloads already confirmed; makes rule 9 duplicate-safe (a
  // replayed SELECTION must not re-broadcast the confirmation).  Sorted.
  std::vector<std::array<std::uint32_t, 4>> confirmed_selections_;
};

struct DistributedWcdsRun {
  core::WcdsResult wcds;
  sim::RunStats stats;
};

// Build the WCDS by running the protocol to quiescence on g.  The protocol
// is event-driven: under an asynchronous delay model it yields the same MIS
// (the rule's fixpoint is timing-independent) and a possibly different —
// but still valid — additional-dominator set.
//
// g need not be connected: the protocol is fully localized, so a run over a
// disconnected deployment is the composition of independent per-component
// runs.  `execution` picks how those component sub-runs execute (serially,
// or sharded onto the thread pool; results are byte-identical — see
// sim/sharded.h); `threads` sizes the pool under kComponentSharded (0 =
// WCDS_THREADS env / hardware default, 1 = inline serial).  A connected
// graph always takes the historical single-runtime path, whatever the
// policy.
//
// `recorder` (explicit, else the ambient obs::global_recorder(), else none)
// receives wall-clock phase timings, the sim's message metrics and the
// resulting |WCDS|.  Application code should prefer the wcds::core::build()
// facade (src/facade/build.h); calling this directly is deprecated outside
// the protocol layer itself.
// `queue` selects the sim's event-queue implementation; the default flat
// queue is the production path, the reference map exists for differential
// tests and benchmarks (both deliver in identical (time, seq) order).
// `faults` (null = the perfect radio, zero overhead) injects the plan's
// deterministic losses/duplicates/jitter/crashes; the protocol then runs
// wrapped in the fault::HardenedNode reliable transport and must still
// converge to an audited WCDS — and, because the MIS rule's fixpoint is
// timing-independent, to the exact MIS of the fault-free run.  Requires the
// flat queue.
[[nodiscard]] DistributedWcdsRun run_algorithm2(
    const graph::Graph& g, const sim::DelayModel& delays = sim::DelayModel::unit(),
    obs::Recorder* recorder = nullptr,
    sim::QueuePolicy queue = sim::QueuePolicy::kFlat,
    const fault::Plan* faults = nullptr,
    sim::ExecutionPolicy execution = sim::ExecutionPolicy::kComponentSharded,
    std::size_t threads = 0);

}  // namespace wcds::protocols
