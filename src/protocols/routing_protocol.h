// Distributed packet forwarding over the WCDS spanner (paper, Section 4.2).
//
// Control plane: an Algorithm II run provides every node's clusterhead and
// every clusterhead's next-clusterhead table (installed at construction —
// the paper says "the MIS-dominators (clusterheads) maintain the routing
// tables").  Data plane, message by message on the simulator:
//
//   * a source adjacent to the destination transmits directly (one hop);
//   * otherwise it hands the packet to its clusterhead (DATA unicast);
//   * a clusterhead looks up the next clusterhead toward the destination's
//     clusterhead and forwards along the stored 2-hop (head-via-head) or
//     3-hop (head-bridge-via-head) expansion — every hop a black edge;
//   * the destination's clusterhead delivers the final hop.
//
// Each DATA message carries (flow id, destination, hop budget); the hop
// budget guards against forwarding loops (a correctness bug would surface
// as an exhausted budget, not an infinite run).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "routing/clusterhead_routing.h"
#include "sim/message.h"
#include "sim/runtime.h"
#include "wcds/algorithm2.h"

namespace wcds::protocols {

enum RoutingMessageType : sim::MessageType {
  kMsgData = 40,  // payload: [flow, dst, remaining_budget]
};

// Trace name for a RoutingMessageType value ("?" when unknown).
[[nodiscard]] const char* routing_message_name(sim::MessageType type);

struct FlowRequest {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

struct FlowOutcome {
  bool delivered = false;
  std::size_t hops = 0;            // transmissions this packet used
  std::vector<NodeId> path;        // nodes visited, src first
};

struct DataPlaneRun {
  std::vector<FlowOutcome> flows;  // one per request, same order
  sim::RunStats stats;

  [[nodiscard]] std::size_t delivered_count() const {
    std::size_t count = 0;
    for (const auto& f : flows) count += f.delivered ? 1 : 0;
    return count;
  }
};

// Route all `requests` concurrently over the spanner of `wcds` (a view of
// an Algorithm II run on `g`).  Every packet is injected at time 0.
[[nodiscard]] DataPlaneRun route_flows(
    const graph::Graph& g, core::Algorithm2View wcds,
    const std::vector<FlowRequest>& requests,
    const sim::DelayModel& delays = sim::DelayModel::unit());

}  // namespace wcds::protocols
