// Distributed MIS maintenance (paper, Section 4.2).
//
// "The key technique in our approach is to maintain the MIS in the unit-disk
//  graph at all time" — the paper defers the full procedure to a later
// paper; this protocol implements that key technique as messages, on the
// dynamic-topology runtime.  It is a self-stabilizing maximal-independent-
// set protocol driven entirely by COLOR announcements:
//
//   COLOR(c)   broadcast whenever a node's color changes (and unicast to a
//              newly heard neighbor on link-up).
//
// Rules, evaluated on every receipt / link event:
//   * a black (MIS) node hearing COLOR(black) from a lower-ID neighbor
//     demotes (conflicts arise only from link-ups and message races);
//   * a demoted or orphaned node becomes gray if it knows a black neighbor,
//     else white;
//   * a gray node whose last known black neighbor vanished becomes white;
//   * a white node that knows the colors of all its lower-ID neighbors,
//     none of them white or black, promotes to black.
//
// After quiescence the black nodes form an MIS of the *current* topology:
// independence because conflicts self-resolve toward the lower ID,
// maximality because a white node with no black neighbor eventually has its
// locally-minimal member promote.  The additional-dominator (bridge) repair
// stays in maintenance::DynamicWcds — this protocol is the distributed
// heart the paper names.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "sim/dynamic_runtime.h"

namespace wcds::protocols {

enum MisMaintenanceMessageType : sim::MessageType {
  kMsgColor = 60,  // payload: [color]
};

// Trace name for a MisMaintenanceMessageType value ("?" when unknown).
[[nodiscard]] const char* mis_maintenance_message_name(sim::MessageType type);

class MisMaintenanceNode final : public sim::DynamicProtocolNode {
 public:
  enum class Color : std::uint32_t { kWhite = 0, kGray = 1, kBlack = 2 };

  void on_start(sim::DynamicContext& ctx) override;
  void on_receive(sim::DynamicContext& ctx, const sim::Message& msg) override;
  void on_link_up(sim::DynamicContext& ctx, NodeId neighbor) override;
  void on_link_down(sim::DynamicContext& ctx, NodeId neighbor) override;

  [[nodiscard]] Color color() const { return color_; }
  [[nodiscard]] bool is_dominator() const { return color_ == Color::kBlack; }

  // Watchdog nudge: re-announce the current color (repairing neighbors'
  // knowledge holes left by lost COLOR messages) and re-evaluate the local
  // rules.  Safe to call at any quiescent point; a no-op network-wise when
  // nothing was lost (the announcement is re-sent but changes no state).
  void reannounce(sim::DynamicContext& ctx);

 private:
  void set_color(sim::DynamicContext& ctx, Color next);
  void reevaluate(sim::DynamicContext& ctx);
  [[nodiscard]] bool knows_black_neighbor(sim::DynamicContext& ctx) const;
  [[nodiscard]] bool may_promote(sim::DynamicContext& ctx) const;

  Color color_ = Color::kWhite;
  std::map<NodeId, Color> known_;  // last color heard per current neighbor
};

// Harness: drive a node set through a sequence of topologies, letting the
// protocol re-stabilize after each change.
class MisMaintenanceSession {
 public:
  explicit MisMaintenanceSession(
      const graph::Graph& initial,
      const sim::DelayModel& delays = sim::DelayModel::unit());

  // Stabilize on the current topology; returns false if the event budget
  // tripped before quiescence.
  bool stabilize(std::uint64_t max_events = 10'000'000);

  // Change the topology (link events fire), then stabilize.
  bool update(const graph::Graph& next, std::uint64_t max_events = 10'000'000);

  // Seeded per-copy message loss on the underlying radio (0 restores
  // reliability).  Under loss, stabilize() may quiesce on a *wrong* state —
  // run the watchdog afterwards to restore convergence.
  void set_loss(double drop, std::uint64_t seed);

  // True when the black nodes form an MIS of the current topology
  // (independent + every node dominated) — the liveness predicate the
  // watchdog drives toward.
  [[nodiscard]] bool converged() const;

  // Liveness watchdog: while not converged(), have every node re-announce
  // its color and re-stabilize, up to `max_rounds` rounds.  Lost COLOR
  // messages leave knowledge holes that quiescence alone cannot see; the
  // re-announcements close them.  Returns converged().
  bool watchdog(std::size_t max_rounds = 8,
                std::uint64_t max_events = 10'000'000);

  [[nodiscard]] std::vector<bool> mis_mask() const;
  [[nodiscard]] const sim::DynamicRunStats& stats() const {
    return runtime_.stats();
  }

 private:
  sim::DynamicRuntime runtime_;
};

}  // namespace wcds::protocols
