#include "protocols/algorithm1_protocol.h"

#include <algorithm>
#include <memory>
#include <span>

#include "check/audit.h"
#include "check/check.h"
#include "fault/hardened.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "sim/shard_plan.h"
#include "sim/sharded.h"

namespace wcds::protocols {
namespace {

bool contains(const std::vector<NodeId>& v, NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Final-state accessor that sees through the hardened-transport wrapper.
const Algorithm1Node& as_algorithm1(const sim::Runtime& runtime, NodeId u,
                                    bool hardened) {
  const sim::ProtocolNode& node = runtime.node(u);
  if (!hardened) return static_cast<const Algorithm1Node&>(node);
  return static_cast<const Algorithm1Node&>(
      static_cast<const fault::HardenedNode&>(node).inner());
}

}  // namespace

const char* algorithm1_message_name(sim::MessageType type) {
  switch (type) {
    case kMsgCandidate: return "CANDIDATE";
    case kMsgResp: return "RESP";
    case kMsgCompleteA: return "COMPLETE-A";
    case kMsgLevel: return "LEVEL";
    case kMsgCompleteB: return "COMPLETE-B";
    case kMsgBlack: return "BLACK";
    case kMsgGrayI: return "GRAY";
  }
  return "?";
}

void Algorithm1Node::on_start(sim::Context& ctx) {
  started_ = true;
  best_cid_ = ctx.self();
  parent_ = kInvalidNode;
  if (ctx.neighbors().empty()) {
    // Single-node network: trivially the leader; marking is immediate.
    become_leader(ctx);
    return;
  }
  ctx.broadcast(kMsgCandidate, {best_cid_});
}

void Algorithm1Node::adopt(sim::Context& ctx, std::uint32_t cid,
                           NodeId new_parent) {
  best_cid_ = cid;
  parent_ = new_parent;
  resp_received_ = 0;
  children_.clear();
  children_complete_ = 0;
  sent_complete_a_ = false;
  ctx.broadcast(kMsgCandidate, {cid});
}

void Algorithm1Node::maybe_complete_wave(sim::Context& ctx) {
  if (sent_complete_a_) return;
  if (resp_received_ != ctx.neighbors().size()) return;
  if (children_complete_ != children_.size()) return;
  sent_complete_a_ = true;
  if (parent_ != kInvalidNode) {
    ctx.unicast(parent_, kMsgCompleteA, {best_cid_});
  } else if (best_cid_ == ctx.self()) {
    become_leader(ctx);
  }
}

void Algorithm1Node::become_leader(sim::Context& ctx) {
  leader_ = true;
  // Phase B: the root is at level 0 and announces it.
  announce_level(ctx, 0);
}

void Algorithm1Node::announce_level(sim::Context& ctx, std::uint32_t level) {
  level_ = level;
  if (ctx.neighbors().empty()) {
    start_marking(ctx);
    return;
  }
  ctx.broadcast(kMsgLevel, {level});
  maybe_complete_levels(ctx);
}

void Algorithm1Node::maybe_complete_levels(sim::Context& ctx) {
  if (level_ == kNoLevel || sent_complete_b_) return;
  // COMPLETE-B flows up once this node has leveled and every phase-A child
  // subtree reported.
  if (level_children_complete_ != children_.size()) return;
  sent_complete_b_ = true;
  if (parent_ != kInvalidNode) {
    ctx.unicast(parent_, kMsgCompleteB);
  } else {
    start_marking(ctx);
  }
}

void Algorithm1Node::start_marking(sim::Context& ctx) {
  // The root may already have marked itself black: its marking predicate is
  // vacuous (no lower-rank neighbor exists), so maybe_turn_black can fire as
  // soon as all neighbor levels are known, before COMPLETE-B returns.  The
  // fixpoint of the marking rules is the same greedy MIS either way.
  if (color_ == Color::kBlack) return;
  color_ = Color::kBlack;
  if (!ctx.neighbors().empty()) ctx.broadcast(kMsgBlack);
}

void Algorithm1Node::turn_gray(sim::Context& ctx) {
  if (color_ != Color::kWhite) return;
  color_ = Color::kGray;
  ctx.broadcast(kMsgGrayI);
}

void Algorithm1Node::maybe_turn_black(sim::Context& ctx) {
  if (color_ != Color::kWhite || level_ == kNoLevel) return;
  const std::pair<std::uint32_t, NodeId> my_rank{level_, ctx.self()};
  for (NodeId v : ctx.neighbors()) {
    const auto it =
        std::find_if(neighbor_levels_.begin(), neighbor_levels_.end(),
                     [&](const auto& e) { return e.first == v; });
    if (it == neighbor_levels_.end()) return;  // level unknown yet: wait
    const std::pair<std::uint32_t, NodeId> their_rank{it->second, v};
    if (their_rank < my_rank && !contains(gray_senders_, v)) return;
  }
  color_ = Color::kBlack;
  ctx.broadcast(kMsgBlack);
}

void Algorithm1Node::on_receive(sim::Context& ctx, const sim::Message& msg) {
  switch (msg.type) {
    case kMsgCandidate: {
      const std::uint32_t cid = msg.payload[0];
      if (cid < best_cid_) {
        adopt(ctx, cid, msg.src);
        ctx.unicast(msg.src, kMsgResp, {cid, 1});
      } else if (cid == best_cid_) {
        ctx.unicast(msg.src, kMsgResp, {cid, 0});
      }
      // cid > best: suppress; that wave is extinct here.
      break;
    }
    case kMsgResp: {
      const std::uint32_t cid = msg.payload[0];
      if (cid != best_cid_) break;  // stale wave
      ++resp_received_;
      if (msg.payload[1] == 1) children_.push_back(msg.src);
      maybe_complete_wave(ctx);
      break;
    }
    case kMsgCompleteA: {
      if (msg.payload[0] != best_cid_) break;  // stale wave
      ++children_complete_;
      maybe_complete_wave(ctx);
      break;
    }
    case kMsgLevel: {
      const std::uint32_t announced = msg.payload[0];
      // Insert-once keeps the record duplicate-safe (a node announces its
      // level a single time, so re-hearing it can only be a replay).
      const auto it =
          std::find_if(neighbor_levels_.begin(), neighbor_levels_.end(),
                       [&](const auto& e) { return e.first == msg.src; });
      if (it == neighbor_levels_.end()) {
        neighbor_levels_.emplace_back(msg.src, announced);
      }
      if (msg.src == parent_ && level_ == kNoLevel) {
        announce_level(ctx, announced + 1);
      }
      // A newly learned level can unblock the marking predicate.
      maybe_turn_black(ctx);
      break;
    }
    case kMsgCompleteB: {
      ++level_children_complete_;
      maybe_complete_levels(ctx);
      break;
    }
    case kMsgBlack: {
      turn_gray(ctx);
      break;
    }
    case kMsgGrayI: {
      // Duplicate-safe: a replayed GRAY must not double-count the sender.
      if (!contains(gray_senders_, msg.src)) gray_senders_.push_back(msg.src);
      maybe_turn_black(ctx);
      break;
    }
    default:
      WCDS_REQUIRE_STATE(false, "Algorithm1Node: unknown message type "
                                    << msg.type);
  }
}

DistributedAlgorithm1Run run_algorithm1(const graph::Graph& g,
                                        const sim::DelayModel& delays,
                                        obs::Recorder* recorder,
                                        sim::QueuePolicy queue,
                                        const fault::Plan* faults,
                                        sim::ExecutionPolicy execution,
                                        std::size_t threads) {
  WCDS_REQUIRE(g.node_count() > 0, "run_algorithm1: empty graph");
  obs::Recorder* rec = obs::recorder_or_global(recorder);
  obs::PhaseTimer total_timer(rec, "alg1/total");
  const bool hardened = faults != nullptr;
  const sim::Runtime::NodeFactory factory =
      hardened ? sim::Runtime::NodeFactory([](NodeId) {
        return std::make_unique<fault::HardenedNode>(
            std::make_unique<Algorithm1Node>());
      })
               : sim::Runtime::NodeFactory([](NodeId) {
                   return std::make_unique<Algorithm1Node>();
                 });

  const std::size_t n = g.node_count();
  const sim::ShardPlan plan = sim::ShardPlan::build(g);
  const std::size_t shard_count = plan.shard_count();
  DistributedAlgorithm1Run run;
  run.leaders.assign(shard_count, kInvalidNode);
  run.levels.resize(n);
  core::WcdsResult& r = run.wcds;
  r.mask.assign(n, false);
  r.color.assign(n, core::NodeColor::kGray);

  if (shard_count == 1) {
    // Connected graph: the historical single-runtime path, byte-for-byte —
    // ambient recorder on the runtime, unmixed seeds, zero shard overhead.
    std::unique_ptr<fault::Injector> injector;
    if (hardened) {
      injector = std::make_unique<fault::Injector>(*faults, n);
    }
    sim::Runtime runtime(g, factory, delays, rec, queue, injector.get());
    {
      obs::PhaseTimer run_timer(rec, "alg1/protocol_run");
      run.stats = runtime.run();
    }
    WCDS_REQUIRE_STATE(run.stats.quiescent,
                       "run_algorithm1: event budget exceeded");
    if (hardened) {
      injector->record_metrics(rec);
      fault::record_transport_metrics(runtime, rec);
    }
    if (rec != nullptr) rec->metrics().set("sim/shards", 1.0);
    obs::PhaseTimer extract_timer(rec, "alg1/extract");
    for (NodeId u = 0; u < n; ++u) {
      const auto& node = as_algorithm1(runtime, u, hardened);
      if (node.is_leader()) {
        run.leader = u;
        run.leaders[0] = u;
      }
      run.levels[u] = node.level();
      if (node.is_dominator()) {
        r.mask[u] = true;
        r.dominators.push_back(u);
        r.color[u] = core::NodeColor::kBlack;
      }
    }
    r.mis_dominators = r.dominators;
    extract_timer.stop();
  } else {
    // Disconnected deployment: one independent sub-run per component, under
    // `execution` (sim/sharded.h).  Extraction happens inside each shard —
    // every write lands in that shard's own slots — and the ordered merge
    // plus the ascending dominator-list rebuild below are serial.  Dominator
    // flags go through a byte array, not r.mask: vector<bool> packs bits
    // into shared words, so shards flagging adjacent node ids would race.
    std::vector<std::uint8_t> dominator(n, 0);
    std::vector<sim::ShardOutcome> outcomes(shard_count);
    std::vector<fault::Injector::Counters> fault_counters(
        hardened ? shard_count : 0);
    std::vector<fault::TransportStats> transports(hardened ? shard_count : 0);
    {
      obs::PhaseTimer run_timer(rec, "alg1/protocol_run");
      sim::for_each_shard(execution, shard_count, threads, [&](std::size_t c) {
        const std::span<const NodeId> members = plan.shard(c);
        std::unique_ptr<fault::Injector> injector;
        if (hardened) {
          injector = std::make_unique<fault::Injector>(
              faults->for_shard(static_cast<std::uint32_t>(c)), n);
        }
        sim::DelayModel shard_delays = delays;
        shard_delays.seed =
            sim::shard_stream_seed(delays.seed, static_cast<std::uint32_t>(c));
        outcomes[c] = sim::run_shard(
            g, members, factory, shard_delays, queue, injector.get(),
            /*record=*/rec != nullptr,
            /*capture_trace=*/rec != nullptr && rec->trace_sink() != nullptr,
            sim::kDefaultMaxEvents, [&](sim::Runtime& runtime) {
              for (NodeId u : members) {
                const auto& node = as_algorithm1(runtime, u, hardened);
                if (node.is_leader()) run.leaders[c] = u;
                run.levels[u] = node.level();
                if (node.is_dominator()) dominator[u] = 1;
              }
              if (hardened) {
                fault_counters[c] = injector->counters();
                transports[c] = fault::collect_transport_stats(runtime);
              }
            });
      });
    }
    run.stats = sim::merge_shards(outcomes, rec);
    WCDS_REQUIRE_STATE(run.stats.quiescent,
                       "run_algorithm1: event budget exceeded");
    if (hardened) {
      fault::Injector::Counters counter_total;
      fault::TransportStats transport_total;
      for (std::size_t c = 0; c < shard_count; ++c) {
        counter_total.suppressed_sends += fault_counters[c].suppressed_sends;
        counter_total.dropped += fault_counters[c].dropped;
        counter_total.duplicated += fault_counters[c].duplicated;
        counter_total.blocked_receives += fault_counters[c].blocked_receives;
        transport_total.frames_sent += transports[c].frames_sent;
        transport_total.retransmits += transports[c].retransmits;
        transport_total.acks_sent += transports[c].acks_sent;
        transport_total.duplicates_ignored += transports[c].duplicates_ignored;
      }
      fault::Injector::record_counters(rec, counter_total);
      fault::record_transport_metrics(transport_total, rec);
    }
    obs::PhaseTimer extract_timer(rec, "alg1/extract");
    for (NodeId u = 0; u < n; ++u) {
      if (dominator[u] != 0) {
        r.mask[u] = true;
        r.color[u] = core::NodeColor::kBlack;
        r.dominators.push_back(u);
      }
    }
    r.mis_dominators = r.dominators;
    run.leader = run.leaders[0];
    extract_timer.stop();
  }

  if (rec != nullptr) {
    auto& metrics = rec->metrics();
    metrics.add("alg1/runs");
    metrics.observe("alg1/transmissions",
                    static_cast<double>(run.stats.transmissions));
    metrics.observe("alg1/completion_time",
                    static_cast<double>(run.stats.completion_time));
    metrics.observe("alg1/wcds_size", static_cast<double>(r.size()));
  }

  // Debug/test tripwire: the distributed run must land on the same
  // level-ranked-MIS invariants as the centralized construction (Theorem 4
  // included).
  if (check::audits_enabled()) {
    check::AuditOptions audit_options;
    audit_options.level_ranked = true;
    check::audit_invariants(g, r, audit_options);
  }
  return run;
}

}  // namespace wcds::protocols
