#include "protocols/mis_maintenance_protocol.h"

#include <algorithm>
#include <memory>

namespace wcds::protocols {

const char* mis_maintenance_message_name(sim::MessageType type) {
  switch (type) {
    case kMsgColor: return "COLOR";
    default: return "?";
  }
}

void MisMaintenanceNode::on_start(sim::DynamicContext& ctx) {
  // Announce white so lower-ID-complete knowledge can accumulate; a node
  // with no lower-ID neighbors promotes immediately through reevaluate.
  ctx.broadcast(kMsgColor, {static_cast<std::uint32_t>(color_)});
  reevaluate(ctx);
}

void MisMaintenanceNode::on_receive(sim::DynamicContext& ctx,
                                    const sim::Message& msg) {
  if (msg.type != kMsgColor) return;
  // The sender must still be a neighbor (the runtime already drops dead-link
  // deliveries, but topology may have churned since).
  const auto row = ctx.neighbors();
  if (!std::binary_search(row.begin(), row.end(), msg.src)) return;
  known_[msg.src] = static_cast<Color>(msg.payload[0]);
  reevaluate(ctx);
}

void MisMaintenanceNode::on_link_up(sim::DynamicContext& ctx,
                                    NodeId neighbor) {
  // Introduce ourselves to the newcomer; their introduction arrives the
  // same way.  Conflicts (black-black) resolve through reevaluate once the
  // colors land.
  ctx.unicast(neighbor, kMsgColor, {static_cast<std::uint32_t>(color_)});
}

void MisMaintenanceNode::on_link_down(sim::DynamicContext& ctx,
                                      NodeId neighbor) {
  known_.erase(neighbor);
  reevaluate(ctx);
}

bool MisMaintenanceNode::knows_black_neighbor(
    sim::DynamicContext& ctx) const {
  const auto row = ctx.neighbors();
  for (const auto& [v, c] : known_) {
    if (c == Color::kBlack && std::binary_search(row.begin(), row.end(), v)) {
      return true;
    }
  }
  return false;
}

bool MisMaintenanceNode::may_promote(sim::DynamicContext& ctx) const {
  // Promotion needs complete knowledge of every lower-ID neighbor, none of
  // them white (a white one may promote first) or black (we'd be gray).
  for (NodeId v : ctx.neighbors()) {
    if (v >= ctx.self()) continue;
    const auto it = known_.find(v);
    if (it == known_.end()) return false;
    if (it->second != Color::kGray) return false;
  }
  return true;
}

void MisMaintenanceNode::set_color(sim::DynamicContext& ctx, Color next) {
  if (color_ == next) return;
  color_ = next;
  ctx.broadcast(kMsgColor, {static_cast<std::uint32_t>(color_)});
}

void MisMaintenanceNode::reevaluate(sim::DynamicContext& ctx) {
  switch (color_) {
    case Color::kBlack: {
      // Conflict rule: the higher ID yields.
      for (const auto& [v, c] : known_) {
        if (c == Color::kBlack && v < ctx.self()) {
          set_color(ctx,
                    knows_black_neighbor(ctx) ? Color::kGray : Color::kWhite);
          // A demotion can re-trigger promotion logic below on later
          // messages; nothing more to do now.
          return;
        }
      }
      return;
    }
    case Color::kGray: {
      if (!knows_black_neighbor(ctx)) {
        set_color(ctx, Color::kWhite);
        // Fall through logically: a fresh white may promote at once.
        reevaluate(ctx);
      }
      return;
    }
    case Color::kWhite: {
      if (knows_black_neighbor(ctx)) {
        set_color(ctx, Color::kGray);
        return;
      }
      if (may_promote(ctx)) {
        set_color(ctx, Color::kBlack);
      }
      return;
    }
  }
}

void MisMaintenanceNode::reannounce(sim::DynamicContext& ctx) {
  ctx.broadcast(kMsgColor, {static_cast<std::uint32_t>(color_)});
  reevaluate(ctx);
}

MisMaintenanceSession::MisMaintenanceSession(const graph::Graph& initial,
                                             const sim::DelayModel& delays)
    : runtime_(
          initial,
          [](NodeId) { return std::make_unique<MisMaintenanceNode>(); },
          delays) {}

bool MisMaintenanceSession::stabilize(std::uint64_t max_events) {
  return runtime_.run_to_quiescence(max_events).quiescent;
}

bool MisMaintenanceSession::update(const graph::Graph& next,
                                   std::uint64_t max_events) {
  runtime_.apply_topology(next);
  return stabilize(max_events);
}

void MisMaintenanceSession::set_loss(double drop, std::uint64_t seed) {
  runtime_.set_loss(drop, seed);
}

bool MisMaintenanceSession::converged() const {
  const std::vector<bool> mask = mis_mask();
  for (NodeId u = 0; u < runtime_.node_count(); ++u) {
    const auto row = runtime_.neighbors(u);
    if (mask[u]) {
      // Independence: no two adjacent dominators.
      for (NodeId v : row) {
        if (mask[v]) return false;
      }
    } else {
      // Domination: every non-dominator hears one (isolated nodes must
      // self-promote, so an isolated non-dominator is a liveness failure).
      const bool dominated =
          std::any_of(row.begin(), row.end(), [&](NodeId v) { return mask[v]; });
      if (!dominated) return false;
    }
  }
  return true;
}

bool MisMaintenanceSession::watchdog(std::size_t max_rounds,
                                     std::uint64_t max_events) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (converged()) return true;
    for (NodeId u = 0; u < runtime_.node_count(); ++u) {
      runtime_.with_node(u, [](sim::DynamicContext& ctx,
                              sim::DynamicProtocolNode& node) {
        static_cast<MisMaintenanceNode&>(node).reannounce(ctx);
      });
    }
    if (!stabilize(max_events)) return false;
  }
  return converged();
}

std::vector<bool> MisMaintenanceSession::mis_mask() const {
  std::vector<bool> mask(runtime_.node_count(), false);
  for (NodeId u = 0; u < runtime_.node_count(); ++u) {
    mask[u] = static_cast<const MisMaintenanceNode&>(
                  const_cast<sim::DynamicRuntime&>(runtime_).node(u))
                  .is_dominator();
  }
  return mask;
}

}  // namespace wcds::protocols
