#include "protocols/routing_protocol.h"

#include <algorithm>
#include <memory>

#include "check/check.h"

namespace wcds::protocols {

const char* routing_message_name(sim::MessageType type) {
  switch (type) {
    case kMsgData: return "DATA";
    default: return "?";
  }
}

namespace {

// Shared instrumentation: the per-flow trail and delivery flags the harness
// reads back after the run (observation only, not protocol state).
struct Recorder {
  std::vector<FlowOutcome> flows;
};

// Generous hop budget: Theorem 11 bounds spanner paths by 3*delta + 2 and
// the clusterhead scheme adds at most two detour hops per end; 4n covers
// any network this library targets while still trapping forwarding loops.
std::uint32_t hop_budget(std::size_t node_count) {
  return static_cast<std::uint32_t>(4 * node_count + 16);
}

class RoutingNode final : public sim::ProtocolNode {
 public:
  RoutingNode(NodeId self, const routing::ClusterheadRouter* router,
              const std::vector<FlowRequest>* requests, Recorder* recorder)
      : self_(self),
        router_(router),
        requests_(requests),
        recorder_(recorder) {}

  void on_start(sim::Context& ctx) override {
    for (std::uint32_t flow = 0; flow < requests_->size(); ++flow) {
      const FlowRequest& request = (*requests_)[flow];
      if (request.src != self_) continue;
      recorder_->flows[flow].path.push_back(self_);
      if (request.dst == self_) {
        recorder_->flows[flow].delivered = true;
        continue;
      }
      forward(ctx, flow, request.dst,
              hop_budget(ctx.node_count()), /*route=*/{});
    }
  }

  void on_receive(sim::Context& ctx, const sim::Message& msg) override {
    WCDS_REQUIRE_STATE(msg.type == kMsgData,
                       "RoutingNode: unexpected message type " << msg.type);
    const std::uint32_t flow = msg.payload[0];
    const NodeId dst = msg.payload[1];
    const std::uint32_t budget = msg.payload[2];
    std::vector<NodeId> route(msg.payload.begin() + 3, msg.payload.end());

    FlowOutcome& outcome = recorder_->flows[flow];
    outcome.path.push_back(self_);
    ++outcome.hops;
    if (self_ == dst) {
      outcome.delivered = true;
      return;
    }
    if (budget == 0) return;  // loop trap: drop, stays undelivered
    forward(ctx, flow, dst, budget, std::move(route));
  }

 private:
  void forward(sim::Context& ctx, std::uint32_t flow, NodeId dst,
               std::uint32_t budget, std::vector<NodeId> route) {
    // A pre-computed leg is followed verbatim (the intermediates of a
    // 2HopDomList / 3HopDomList expansion).
    if (!route.empty()) {
      const NodeId next = route.front();
      route.erase(route.begin());
      send(ctx, next, flow, dst, budget, route);
      return;
    }
    // Decision point.  Direct delivery beats everything.
    const auto row = ctx.neighbors();
    if (std::binary_search(row.begin(), row.end(), dst)) {
      send(ctx, dst, flow, dst, budget, {});
      return;
    }
    if (!router_->is_clusterhead(self_)) {
      // Gray node: hand the packet to the clusterhead.
      send(ctx, router_->clusterhead(self_), flow, dst, budget, {});
      return;
    }
    // Clusterhead: table lookup toward the destination's clusterhead.
    const NodeId dst_head = router_->clusterhead(dst);
    // Destination is a member: it is adjacent, handled above.  Reaching
    // here means the clusterhead mapping is inconsistent.
    WCDS_REQUIRE_STATE(dst_head != self_,
                       "RoutingNode: member " << dst
                                              << " not adjacent to its head");
    const NodeId next_head = router_->next_clusterhead(self_, dst_head);
    if (next_head == kInvalidNode) return;  // unreachable: drop
    auto leg = router_->overlay_leg(self_, next_head);
    const NodeId first = leg.front();
    leg.erase(leg.begin());
    send(ctx, first, flow, dst, budget, leg);
  }

  void send(sim::Context& ctx, NodeId next, std::uint32_t flow, NodeId dst,
            std::uint32_t budget, const std::vector<NodeId>& route) {
    std::vector<std::uint32_t> payload{flow, dst, budget - 1};
    payload.insert(payload.end(), route.begin(), route.end());
    ctx.unicast(next, kMsgData, std::move(payload));
  }

  NodeId self_;
  const routing::ClusterheadRouter* router_;
  const std::vector<FlowRequest>* requests_;
  Recorder* recorder_;
};

}  // namespace

DataPlaneRun route_flows(const graph::Graph& g, core::Algorithm2View wcds,
                         const std::vector<FlowRequest>& requests,
                         const sim::DelayModel& delays) {
  for (const FlowRequest& r : requests) {
    WCDS_REQUIRE_BOUNDS(r.src < g.node_count() && r.dst < g.node_count(),
                        "route_flows: src/dst out of range");
  }
  const routing::ClusterheadRouter router(g, wcds);
  Recorder recorder;
  recorder.flows.resize(requests.size());

  sim::Runtime runtime(
      g,
      [&](NodeId u) {
        return std::make_unique<RoutingNode>(u, &router, &requests, &recorder);
      },
      delays);
  DataPlaneRun run;
  run.stats = runtime.run();
  run.flows = std::move(recorder.flows);
  return run;
}

}  // namespace wcds::protocols
