#include "protocols/algorithm2_protocol.h"

#include <algorithm>
#include <memory>
#include <span>

#include "check/audit.h"
#include "check/check.h"
#include "fault/hardened.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "sim/shard_plan.h"
#include "sim/sharded.h"

namespace wcds::protocols {
namespace {

// Final-state accessor that sees through the hardened-transport wrapper.
const Algorithm2Node& as_algorithm2(const sim::Runtime& runtime, NodeId u,
                                    bool hardened) {
  const sim::ProtocolNode& node = runtime.node(u);
  if (!hardened) return static_cast<const Algorithm2Node&>(node);
  return static_cast<const Algorithm2Node&>(
      static_cast<const fault::HardenedNode&>(node).inner());
}

// Sorted-unique insertion; returns true if newly inserted.
template <typename T>
bool insert_unique(std::vector<T>& v, const T& value) {
  const auto it = std::lower_bound(v.begin(), v.end(), value);
  if (it != v.end() && *it == value) return false;
  v.insert(it, value);
  return true;
}

template <typename T>
bool contains_sorted(const std::vector<T>& v, const T& value) {
  return std::binary_search(v.begin(), v.end(), value);
}

}  // namespace

const char* algorithm2_message_name(sim::MessageType type) {
  switch (type) {
    case kMsgMisDominator: return "MIS-DOMINATOR";
    case kMsgGray: return "GRAY";
    case kMsgOneHopDoms: return "1-HOP-DOMINATORS";
    case kMsgTwoHopDoms: return "2-HOP-DOMINATORS";
    case kMsgSelection: return "SELECTION";
    case kMsgAdditionalDominator: return "ADDITIONAL-DOMINATOR";
    case kMsgAdditionalForward: return "ADDITIONAL-FORWARD";
  }
  return "?";
}

void Algorithm2Node::on_start(sim::Context& ctx) {
  maybe_become_dominator(ctx);
}

void Algorithm2Node::maybe_become_dominator(sim::Context& ctx) {
  if (color_ != Color::kWhite) return;
  // Rule 1 + rule 3 combined: a white node turns MIS-dominator once every
  // lower-ID neighbor is known gray (at start this is vacuous for a local
  // ID minimum).
  for (NodeId v : ctx.neighbors()) {
    if (v < ctx.self() && !contains_sorted(gray_heard_, v)) return;
  }
  color_ = Color::kBlack;
  mis_dominator_ = true;
  ctx.broadcast(kMsgMisDominator);
}

void Algorithm2Node::note_color_heard(sim::Context& ctx, NodeId from) {
  insert_unique(color_heard_, from);
  // Rule 4: a gray node that has heard GRAY or MIS-DOMINATOR from all its
  // neighbors announces its 1HopDomList.
  maybe_send_one_hop(ctx);
}

void Algorithm2Node::maybe_send_one_hop(sim::Context& ctx) {
  if (color_ != Color::kGray || sent_one_hop_) return;
  if (color_heard_.size() != ctx.neighbors().size()) return;
  sent_one_hop_ = true;
  std::vector<std::uint32_t> payload(one_hop_doms_.begin(),
                                     one_hop_doms_.end());
  ctx.broadcast(kMsgOneHopDoms, std::move(payload));
  // All gray neighbors may already have reported (possible when this node
  // grayed late); re-check the 2-hop trigger.
  maybe_send_two_hop(ctx);
}

void Algorithm2Node::maybe_send_two_hop(sim::Context& ctx) {
  if (color_ != Color::kGray || !sent_one_hop_ || sent_two_hop_) return;
  if (color_heard_.size() != ctx.neighbors().size()) return;
  // Rule 7: heard 1-HOP-DOMINATORS from each gray neighbor.
  for (NodeId v : gray_neighbors_) {
    if (!contains_sorted(one_hop_heard_, v)) return;
  }
  sent_two_hop_ = true;
  std::vector<std::uint32_t> payload;
  payload.reserve(two_hop_doms_.size() * 2);
  for (const core::TwoHopEntry& e : two_hop_doms_) {
    payload.push_back(e.dom);
    payload.push_back(e.via);
  }
  ctx.broadcast(kMsgTwoHopDoms, std::move(payload));
}

bool Algorithm2Node::knows_two_hop(NodeId dom) const {
  return std::any_of(two_hop_doms_.begin(), two_hop_doms_.end(),
                     [&](const core::TwoHopEntry& e) { return e.dom == dom; });
}

bool Algorithm2Node::knows_three_hop(NodeId dom) const {
  return std::any_of(
      three_hop_doms_.begin(), three_hop_doms_.end(),
      [&](const core::ThreeHopEntry& e) { return e.dom == dom; });
}

void Algorithm2Node::on_receive(sim::Context& ctx, const sim::Message& msg) {
  switch (msg.type) {
    case kMsgMisDominator: {
      // Rule 2: first dominator heard grays a white node; every dominator
      // heard lands in the 1HopDomList.
      insert_unique(one_hop_doms_, msg.src);
      if (color_ == Color::kWhite) {
        color_ = Color::kGray;
        ctx.broadcast(kMsgGray);
      }
      note_color_heard(ctx, msg.src);
      break;
    }
    case kMsgGray: {
      insert_unique(gray_heard_, msg.src);
      insert_unique(gray_neighbors_, msg.src);
      // Rule 3: a white node black-promotes once all lower-ID neighbors
      // reported gray.
      maybe_become_dominator(ctx);
      note_color_heard(ctx, msg.src);
      break;
    }
    case kMsgOneHopDoms: {
      insert_unique(one_hop_heard_, msg.src);
      for (std::uint32_t dom : msg.payload) {
        if (dom == ctx.self()) continue;
        if (contains_sorted(one_hop_doms_, NodeId{dom})) continue;
        // Rules 5/6: record the 2-hop dominator with the reporting neighbor
        // as the intermediate; one entry per dominator (first heard wins).
        if (!knows_two_hop(dom)) {
          two_hop_doms_.push_back({dom, msg.src});
        }
        // Rule 6 tail: a dominator found at 2 hops cancels any tentative
        // 3-hop entry (only MIS-dominators hold those).
        if (mis_dominator_) {
          std::erase_if(three_hop_doms_, [&](const core::ThreeHopEntry& e) {
            return e.dom == dom;
          });
        }
      }
      maybe_send_two_hop(ctx);
      break;
    }
    case kMsgTwoHopDoms: {
      // Rule 8: only MIS-dominators react.
      if (!mis_dominator_) break;
      for (std::size_t i = 0; i + 1 < msg.payload.size(); i += 2) {
        const NodeId w = msg.payload[i];
        const NodeId x = msg.payload[i + 1];
        if (w == ctx.self() || ctx.self() >= w) continue;
        if (contains_sorted(one_hop_doms_, w)) continue;
        if (knows_two_hop(w) || knows_three_hop(w)) continue;
        three_hop_doms_.push_back({w, msg.src, x});
        ctx.unicast(msg.src, kMsgSelection, {ctx.self(), msg.src, x, w});
      }
      break;
    }
    case kMsgSelection: {
      // Rule 9: v turns additional-dominator and confirms — once per
      // selection tuple; a replayed SELECTION is acknowledged by the
      // transport but must not re-broadcast the confirmation.
      const std::array<std::uint32_t, 4> key{msg.payload[0], msg.payload[1],
                                             msg.payload[2], msg.payload[3]};
      if (!insert_unique(confirmed_selections_, key)) break;
      const NodeId u = msg.payload[0];
      const NodeId x = msg.payload[2];
      const NodeId w = msg.payload[3];
      additional_ = true;
      ctx.broadcast(kMsgAdditionalDominator, {ctx.self(), u, x, w});
      break;
    }
    case kMsgAdditionalDominator: {
      // The named intermediate x relays the confirmation to w (one hop
      // further than v's radio reaches).
      const NodeId v = msg.payload[0];
      const NodeId u = msg.payload[1];
      const NodeId x = msg.payload[2];
      const NodeId w = msg.payload[3];
      if (x == ctx.self()) {
        ctx.unicast(w, kMsgAdditionalForward, {v, u, x, w});
      }
      break;
    }
    case kMsgAdditionalForward: {
      // Rule 10: w records the reverse 3-hop entry (u via x then v).
      const NodeId v = msg.payload[0];
      const NodeId u = msg.payload[1];
      const NodeId x = msg.payload[2];
      if (!knows_three_hop(u)) {
        three_hop_doms_.push_back({u, x, v});
      }
      break;
    }
    default:
      WCDS_REQUIRE_STATE(false, "Algorithm2Node: unknown message type "
                                    << msg.type);
  }
}

DistributedWcdsRun run_algorithm2(const graph::Graph& g,
                                  const sim::DelayModel& delays,
                                  obs::Recorder* recorder,
                                  sim::QueuePolicy queue,
                                  const fault::Plan* faults,
                                  sim::ExecutionPolicy execution,
                                  std::size_t threads) {
  WCDS_REQUIRE(g.node_count() > 0, "run_algorithm2: empty graph");
  obs::Recorder* rec = obs::recorder_or_global(recorder);
  obs::PhaseTimer total_timer(rec, "alg2/total");
  const bool hardened = faults != nullptr;
  const sim::Runtime::NodeFactory factory =
      hardened ? sim::Runtime::NodeFactory([](NodeId) {
        return std::make_unique<fault::HardenedNode>(
            std::make_unique<Algorithm2Node>());
      })
               : sim::Runtime::NodeFactory([](NodeId) {
                   return std::make_unique<Algorithm2Node>();
                 });

  const std::size_t n = g.node_count();
  const sim::ShardPlan plan = sim::ShardPlan::build(g);
  const std::size_t shard_count = plan.shard_count();
  DistributedWcdsRun run;
  core::WcdsResult& r = run.wcds;
  r.mask.assign(n, false);
  r.color.assign(n, core::NodeColor::kGray);

  if (shard_count == 1) {
    // Connected graph: the historical single-runtime path, byte-for-byte —
    // ambient recorder on the runtime, unmixed seeds, zero shard overhead.
    std::unique_ptr<fault::Injector> injector;
    if (hardened) {
      injector = std::make_unique<fault::Injector>(*faults, n);
    }
    sim::Runtime runtime(g, factory, delays, rec, queue, injector.get());
    {
      obs::PhaseTimer run_timer(rec, "alg2/protocol_run");
      run.stats = runtime.run();
    }
    WCDS_REQUIRE_STATE(run.stats.quiescent,
                       "run_algorithm2: event budget exceeded");
    if (hardened) {
      injector->record_metrics(rec);
      fault::record_transport_metrics(runtime, rec);
    }
    if (rec != nullptr) rec->metrics().set("sim/shards", 1.0);
    obs::PhaseTimer extract_timer(rec, "alg2/extract");
    for (NodeId u = 0; u < n; ++u) {
      const auto& node = as_algorithm2(runtime, u, hardened);
      if (node.is_mis_dominator()) {
        r.mis_dominators.push_back(u);
        r.mask[u] = true;
      } else if (node.is_additional_dominator()) {
        r.additional_dominators.push_back(u);
        r.mask[u] = true;
      }
      if (r.mask[u]) {
        r.dominators.push_back(u);
        r.color[u] = core::NodeColor::kBlack;
      }
    }
    extract_timer.stop();
  } else {
    // Disconnected deployment: one independent sub-run per component, under
    // `execution` (sim/sharded.h).  Shards record each node's final role in
    // disjoint slots; the ascending rebuild below restores the sorted
    // dominator lists the single-runtime scan would have produced.
    enum : std::uint8_t { kRoleNone = 0, kRoleMis = 1, kRoleAdditional = 2 };
    std::vector<std::uint8_t> role(n, kRoleNone);
    std::vector<sim::ShardOutcome> outcomes(shard_count);
    std::vector<fault::Injector::Counters> fault_counters(
        hardened ? shard_count : 0);
    std::vector<fault::TransportStats> transports(hardened ? shard_count : 0);
    {
      obs::PhaseTimer run_timer(rec, "alg2/protocol_run");
      sim::for_each_shard(execution, shard_count, threads, [&](std::size_t c) {
        const std::span<const NodeId> members = plan.shard(c);
        std::unique_ptr<fault::Injector> injector;
        if (hardened) {
          injector = std::make_unique<fault::Injector>(
              faults->for_shard(static_cast<std::uint32_t>(c)), n);
        }
        sim::DelayModel shard_delays = delays;
        shard_delays.seed =
            sim::shard_stream_seed(delays.seed, static_cast<std::uint32_t>(c));
        outcomes[c] = sim::run_shard(
            g, members, factory, shard_delays, queue, injector.get(),
            /*record=*/rec != nullptr,
            /*capture_trace=*/rec != nullptr && rec->trace_sink() != nullptr,
            sim::kDefaultMaxEvents, [&](sim::Runtime& runtime) {
              for (NodeId u : members) {
                const auto& node = as_algorithm2(runtime, u, hardened);
                if (node.is_mis_dominator()) {
                  role[u] = kRoleMis;
                } else if (node.is_additional_dominator()) {
                  role[u] = kRoleAdditional;
                }
              }
              if (hardened) {
                fault_counters[c] = injector->counters();
                transports[c] = fault::collect_transport_stats(runtime);
              }
            });
      });
    }
    run.stats = sim::merge_shards(outcomes, rec);
    WCDS_REQUIRE_STATE(run.stats.quiescent,
                       "run_algorithm2: event budget exceeded");
    if (hardened) {
      fault::Injector::Counters counter_total;
      fault::TransportStats transport_total;
      for (std::size_t c = 0; c < shard_count; ++c) {
        counter_total.suppressed_sends += fault_counters[c].suppressed_sends;
        counter_total.dropped += fault_counters[c].dropped;
        counter_total.duplicated += fault_counters[c].duplicated;
        counter_total.blocked_receives += fault_counters[c].blocked_receives;
        transport_total.frames_sent += transports[c].frames_sent;
        transport_total.retransmits += transports[c].retransmits;
        transport_total.acks_sent += transports[c].acks_sent;
        transport_total.duplicates_ignored += transports[c].duplicates_ignored;
      }
      fault::Injector::record_counters(rec, counter_total);
      fault::record_transport_metrics(transport_total, rec);
    }
    obs::PhaseTimer extract_timer(rec, "alg2/extract");
    for (NodeId u = 0; u < n; ++u) {
      if (role[u] == kRoleMis) {
        r.mis_dominators.push_back(u);
        r.mask[u] = true;
      } else if (role[u] == kRoleAdditional) {
        r.additional_dominators.push_back(u);
        r.mask[u] = true;
      }
      if (r.mask[u]) {
        r.dominators.push_back(u);
        r.color[u] = core::NodeColor::kBlack;
      }
    }
    extract_timer.stop();
  }

  if (rec != nullptr) {
    auto& metrics = rec->metrics();
    metrics.add("alg2/runs");
    metrics.observe("alg2/transmissions",
                    static_cast<double>(run.stats.transmissions));
    metrics.observe("alg2/completion_time",
                    static_cast<double>(run.stats.completion_time));
    metrics.observe("alg2/wcds_size", static_cast<double>(r.size()));
    metrics.observe("alg2/mis_size",
                    static_cast<double>(r.mis_dominators.size()));
    metrics.observe("alg2/additional_size",
                    static_cast<double>(r.additional_dominators.size()));
  }

  // Debug/test tripwire: the message-passing construction must satisfy the
  // same Section 1-3 invariants as the centralized algorithm2.
  if (check::audits_enabled()) check::audit_invariants(g, r);
  return run;
}

}  // namespace wcds::protocols
