// Distributed Algorithm I (paper, Section 4.1).
//
// Three phases, chained by the elected leader:
//
//  A. Leader Election + spanning tree.  Extinction-with-echo in the style of
//     Cidon & Mokryn [9]: every node floods a CANDIDATE wave carrying its ID;
//     nodes adopt the smallest candidate seen (parent := first sender of the
//     winning wave, which under unit delays yields a BFS tree), answer each
//     CANDIDATE broadcast with a RESP (joined or not), suppress waves larger
//     than their current best, and convergecast COMPLETE up the adoption
//     tree.  The node whose own wave completes is the leader.  Expected
//     O(n log n) messages for random IDs; O(n) time.
//
//  B. Level Calculation.  The leader announces LEVEL 0; every node sets
//     level := parent's announced level + 1 upon its parent's announcement,
//     announces its own level (recording every neighbor's), and convergecasts
//     COMPLETE-B to the root.
//
//  C. Color Marking.  rank(u) = (level, ID), lexicographic.  The root marks
//     itself black and broadcasts BLACK; a white node hearing BLACK turns
//     gray and broadcasts GRAY; a white node that has heard GRAY from every
//     lower-rank neighbor turns black and broadcasts BLACK.  The black nodes
//     are the level-ranked MIS = the WCDS (Theorem 5).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "obs/recorder.h"
#include "sim/message.h"
#include "sim/runtime.h"
#include "wcds/wcds_result.h"

namespace wcds::fault {
struct Plan;
}  // namespace wcds::fault

namespace wcds::protocols {

// Enumerator values are stable wire/stats ids, not packing constants.
enum Algorithm1MessageType : sim::MessageType {
  kMsgCandidate = 20,   // broadcast [cid]
  kMsgResp = 21,        // unicast   [cid, joined]
  kMsgCompleteA = 22,   // unicast   [cid]
  kMsgLevel = 23,       // broadcast [level]   wcds-lint: allow(paper-constant)
  kMsgCompleteB = 24,   // unicast   []        wcds-lint: allow(paper-constant)
  kMsgBlack = 25,       // broadcast []
  kMsgGrayI = 26,       // broadcast []
};

[[nodiscard]] const char* algorithm1_message_name(sim::MessageType type);

class Algorithm1Node final : public sim::ProtocolNode {
 public:
  void on_start(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, const sim::Message& msg) override;

  // Final-state accessors (valid after quiescence).
  [[nodiscard]] bool is_dominator() const { return color_ == Color::kBlack; }
  [[nodiscard]] bool is_leader() const { return leader_; }
  [[nodiscard]] std::uint32_t level() const { return level_; }
  [[nodiscard]] NodeId parent() const { return parent_; }

 private:
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };

  // Phase A.
  void adopt(sim::Context& ctx, std::uint32_t cid, NodeId new_parent);
  void maybe_complete_wave(sim::Context& ctx);
  void become_leader(sim::Context& ctx);

  // Phase B.
  void announce_level(sim::Context& ctx, std::uint32_t level);
  void maybe_complete_levels(sim::Context& ctx);

  // Phase C.
  void start_marking(sim::Context& ctx);
  void turn_gray(sim::Context& ctx);
  void maybe_turn_black(sim::Context& ctx);

  // Phase A state.
  std::uint32_t best_cid_ = 0;
  NodeId parent_ = kInvalidNode;
  std::size_t resp_received_ = 0;
  std::vector<NodeId> children_;
  std::size_t children_complete_ = 0;
  bool sent_complete_a_ = false;
  bool started_ = false;
  bool leader_ = false;

  // Phase B state.
  static constexpr std::uint32_t kNoLevel = 0xFFFFFFFFu;
  std::uint32_t level_ = kNoLevel;
  std::vector<std::pair<NodeId, std::uint32_t>> neighbor_levels_;
  std::size_t level_children_complete_ = 0;
  bool sent_complete_b_ = false;

  // Phase C state.
  Color color_ = Color::kWhite;
  std::vector<NodeId> gray_senders_;
};

struct DistributedAlgorithm1Run {
  core::WcdsResult wcds;
  sim::RunStats stats;
  // Component 0's elected leader (the historical single-component field);
  // `leaders` holds one per connected component, in component-index order.
  NodeId leader = kInvalidNode;
  std::vector<NodeId> leaders;
  std::vector<std::uint32_t> levels;
};

// Run the three phases to quiescence on g.  Under an asynchronous delay
// model the flood tree is an *arbitrary* spanning tree rather than a BFS
// tree — exactly the generality the paper claims (Section 2.2: "first we
// build an arbitrary spanning tree"); Theorems 4/5 still hold because
// levels remain tree distances.
//
// g need not be connected: the protocol is purely message-driven, so a run
// over a disconnected deployment is the composition of independent
// per-component runs — each component elects its own leader and builds its
// own level-ranked MIS.  `execution` picks how those component sub-runs
// execute (serially, or sharded onto the thread pool; results are
// byte-identical — see sim/sharded.h); `threads` sizes the pool under
// kComponentSharded (0 = WCDS_THREADS env / hardware default, 1 = inline
// serial).  A connected graph always takes the historical single-runtime
// path, whatever the policy.
//
// `recorder` (explicit, else the ambient obs::global_recorder(), else none)
// receives wall-clock phase timings, the sim's message metrics and the
// resulting |WCDS|.  Application code should prefer the wcds::core::build()
// facade (src/facade/build.h); calling this directly is deprecated outside
// the protocol layer itself.
// `queue` selects the sim's event-queue implementation; the default flat
// queue is the production path, the reference map exists for differential
// tests and benchmarks (both deliver in identical (time, seq) order).
// `faults` (null = the perfect radio, zero overhead) injects the plan's
// deterministic losses/duplicates/jitter/crashes; the protocol then runs
// wrapped in the fault::HardenedNode reliable transport and must still
// converge to an audited WCDS.  Requires the flat queue.
[[nodiscard]] DistributedAlgorithm1Run run_algorithm1(
    const graph::Graph& g, const sim::DelayModel& delays = sim::DelayModel::unit(),
    obs::Recorder* recorder = nullptr,
    sim::QueuePolicy queue = sim::QueuePolicy::kFlat,
    const fault::Plan* faults = nullptr,
    sim::ExecutionPolicy execution = sim::ExecutionPolicy::kComponentSharded,
    std::size_t threads = 0);

}  // namespace wcds::protocols
