#include "service/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "check/check.h"
#include "graph/bfs.h"
#include "parallel/thread_pool.h"

namespace wcds::service {

namespace {

constexpr std::uint32_t kNoHeadIndex = 0xFFFFFFFFu;
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
constexpr std::size_t kBatchGrain = 1024;

// Per-request RNG stream: a pure function of (plan seed, salt, index), so a
// request's fault/retry draws never depend on batch order or thread count.
geom::Xoshiro256ss request_rng(std::uint64_t plan_seed, std::uint64_t salt,
                               std::uint64_t index) {
  geom::SplitMix64 sm(plan_seed ^ salt);
  return geom::Xoshiro256ss(sm.next() ^ (kGolden * (index + 1)));
}

}  // namespace

ServingEngine::ServingEngine(const graph::Graph& g, core::Algorithm2View wcds,
                             const ServiceRegistry& registry,
                             const ServingOptions& options)
    : g_(g), registry_(registry), opts_(options), router_(g, wcds) {
  WCDS_REQUIRE(registry.node_count() == g.node_count(),
               "ServingEngine: registry sized for a different graph");
  const std::size_t n = g.node_count();
  const std::size_t heads = router_.heads().size();
  const std::size_t services = registry.service_count();

  // Domain membership: the dense head index of every node's clusterhead.
  std::vector<std::uint32_t> domain(n);
  for (NodeId u = 0; u < n; ++u) {
    domain[u] = router_.head_index(router_.clusterhead(u));
  }

  // Exact per-domain provider tables as one CSR over (head, service).
  prov_off_.assign(heads * services + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const ServiceId s : registry.services_at(u)) {
      ++prov_off_[domain[u] * services + s + 1];
    }
  }
  for (std::size_t i = 1; i < prov_off_.size(); ++i) {
    prov_off_[i] += prov_off_[i - 1];
  }
  prov_.resize(registry.advertisement_count());
  std::vector<std::uint32_t> cursor(prov_off_.begin(), prov_off_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {  // ascending u => sorted provider runs
    for (const ServiceId s : registry.services_at(u)) {
      prov_[cursor[domain[u] * services + s]++] = u;
    }
  }

  // Clusterhead Bloom summaries: one insertion per distinct (domain,
  // service) advertisement, sized to the domain's distinct service count.
  blooms_.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    std::size_t distinct = 0;
    for (std::size_t s = 0; s < services; ++s) {
      const std::size_t cell = h * services + s;
      if (prov_off_[cell + 1] > prov_off_[cell]) ++distinct;
    }
    BloomFilter bloom(opts_.bloom, distinct);
    for (std::size_t s = 0; s < services; ++s) {
      const std::size_t cell = h * services + s;
      if (prov_off_[cell + 1] > prov_off_[cell]) {
        bloom.insert(registry.key(static_cast<ServiceId>(s)));
      }
    }
    blooms_.push_back(std::move(bloom));
  }

  // Bloom-positive domains per service: the candidate universe a requesting
  // clusterhead works through (includes false positives by design).
  advertisers_.assign(services, {});
  for (std::size_t s = 0; s < services; ++s) {
    const std::uint64_t key = registry.key(static_cast<ServiceId>(s));
    for (std::uint32_t h = 0; h < heads; ++h) {
      if (blooms_[h].may_contain(key)) advertisers_[s].push_back(h);
    }
  }

  // Fault plan digestion: crash windows per node, per-link drop table.
  const fault::Plan* plan = opts_.faults;
  if (plan != nullptr) {
    any_faults_ = plan->drop > 0.0 || !plan->crashes.empty() ||
                  !plan->link_overrides.empty();
    if (!plan->crashes.empty()) {
      crash_.resize(n);
      for (const fault::CrashWindow& w : plan->crashes) {
        WCDS_REQUIRE_BOUNDS(w.node < n, "ServingEngine: crash node range");
        crash_[w.node].emplace_back(w.down_from, w.up_at);
      }
    }
    if (!plan->link_overrides.empty()) {
      link_drop_.assign(g.adjacency_slots(), plan->drop);
      for (const fault::LinkOverride& ov : plan->link_overrides) {
        WCDS_REQUIRE_BOUNDS(ov.link_slot < link_drop_.size(),
                            "ServingEngine: link override slot range");
        link_drop_[ov.link_slot] = ov.drop;
      }
    }
  }
}

double ServingEngine::drop_probability(NodeId from, NodeId to) const {
  if (!link_drop_.empty()) return link_drop_[g_.edge_slot(from, to)];
  return opts_.faults->drop;
}

bool ServingEngine::crashed(NodeId node, std::uint32_t at_time) const {
  if (crash_.empty()) return false;
  for (const auto& [down, up] : crash_[node]) {
    if (at_time >= down && at_time < up) return true;
  }
  return false;
}

bool ServingEngine::transmit(NodeId from, NodeId to, geom::Xoshiro256ss& rng,
                             std::uint32_t& now, Outcome& out) const {
  const std::uint32_t max_attempts = std::max(1u, opts_.max_attempts_per_hop);
  std::uint32_t backoff = opts_.retry_timeout;
  const std::uint32_t backoff_cap = opts_.retry_timeout * 16;
  for (std::uint32_t attempt = 1;; ++attempt) {
    ++now;  // one transmission slot
    bool ok = true;
    if (any_faults_) {
      if (crashed(from, now) || crashed(to, now)) {
        ok = false;
      } else {
        const double p = drop_probability(from, to);
        // p is a property of the (from, to) link for the whole run, so the
        // same hop draws identically on every attempt; skipping the draw on
        // loss-free links is deliberate — it keeps fault-free serving traces
        // byte-identical to the pre-fault-injection ones.
        // wcds-lint: allow(rng-draw-discipline)
        if (p > 0.0 && rng.next_double() < p) ok = false;
      }
    }
    if (ok) {
      ++out.hops;
      return true;
    }
    if (attempt == max_attempts) return false;
    ++out.retries;
    now += backoff;  // wait out the retransmission timer
    backoff = std::min(backoff * 2, backoff_cap);
  }
}

bool ServingEngine::walk_overlay(NodeId from, NodeId to,
                                 geom::Xoshiro256ss& rng, std::uint32_t& now,
                                 NodeId& at, Outcome& out) const {
  NodeId cur = from;
  while (cur != to) {
    const NodeId step = router_.next_clusterhead(cur, to);
    if (step == kInvalidNode) return false;  // overlay disconnected
    const routing::ClusterheadRouter::Leg leg =
        router_.overlay_leg_compact(cur, step);
    NodeId prev = cur;
    if (!transmit(prev, leg.via1, rng, now, out)) {
      at = prev;
      return false;
    }
    prev = leg.via1;
    if (leg.via2 != kInvalidNode) {
      if (!transmit(prev, leg.via2, rng, now, out)) {
        at = prev;
        return false;
      }
      prev = leg.via2;
    }
    if (!transmit(prev, step, rng, now, out)) {
      at = prev;
      return false;
    }
    cur = step;
  }
  at = cur;
  return true;
}

NodeId ServingEngine::domain_provider(std::uint32_t head_index,
                                      ServiceId service) const {
  const std::size_t cell =
      static_cast<std::size_t>(head_index) * registry_.service_count() +
      service;
  if (prov_off_[cell + 1] == prov_off_[cell]) return kInvalidNode;
  return prov_[prov_off_[cell]];  // smallest node id in the domain
}

Outcome ServingEngine::serve(const Request& request,
                             std::uint64_t request_index) const {
  WCDS_DCHECK(request.src < g_.node_count(), "serve: source out of range");
  WCDS_DCHECK(request.service < registry_.service_count(),
              "serve: service out of range");
  Outcome out;
  const NodeId src = request.src;
  const ServiceId s = request.service;

  // 1. Local: the source provides the service itself — no radio involved.
  if (registry_.provides(src, s)) {
    out.provider = src;
    out.delivered = 1;
    out.resolution = Resolution::kLocal;
    return out;
  }

  geom::Xoshiro256ss rng = request_rng(
      opts_.faults != nullptr ? opts_.faults->seed : 0, opts_.rng_salt,
      request_index);
  std::uint32_t now = 0;

  // 2. Neighbor: the smallest adjacent provider, one direct hop (the
  // paper's single-hop rule for adjacent pairs; CSR rows are ascending).
  for (const NodeId v : g_.neighbors(src)) {
    if (!registry_.provides(v, s)) continue;
    if (transmit(src, v, rng, now, out)) {
      out.provider = v;
      out.delivered = 1;
      out.resolution = Resolution::kNeighbor;
    } else {
      out.resolution = Resolution::kLost;
    }
    out.latency = now;
    return out;
  }

  // Hand the request to the source's clusterhead.
  const NodeId head = router_.clusterhead(src);
  if (src != head) {
    if (!transmit(src, head, rng, now, out)) {
      out.resolution = Resolution::kLost;
      out.latency = now;
      return out;
    }
  }
  const std::uint32_t head_idx = router_.head_index(head);

  // 3. Intra-domain: the clusterhead's exact table has a provider.
  if (const NodeId p = domain_provider(head_idx, s); p != kInvalidNode) {
    if (p == head || transmit(head, p, rng, now, out)) {
      out.provider = p;
      out.delivered = 1;
      out.resolution = Resolution::kIntraDomain;
    } else {
      out.resolution = Resolution::kLost;
    }
    out.latency = now;
    return out;
  }

  // 4. Inter-domain: probe the Bloom summaries, visit positive domains
  // nearest-first (overlay distance from the source clusterhead, ties by
  // head index).  The candidate order is fixed at the source clusterhead
  // and carried with the request; the walk continues from wherever the
  // previous probe ended.
  const std::span<const NodeId> heads = router_.heads();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> candidates;
  candidates.reserve(advertisers_[s].size());
  for (const std::uint32_t idx : advertisers_[s]) {
    if (idx == head_idx) continue;  // own domain already answered "no"
    const std::uint32_t d = router_.overlay_distance(head, heads[idx]);
    if (d == kNoHeadIndex) continue;  // unreachable overlay component
    candidates.emplace_back(d, idx);
  }
  std::sort(candidates.begin(), candidates.end());

  NodeId cur_head = head;
  for (const auto& [dist, idx] : candidates) {
    (void)dist;
    NodeId reached = cur_head;
    if (!walk_overlay(cur_head, heads[idx], rng, now, reached, out)) {
      out.resolution = Resolution::kLost;
      out.latency = now;
      return out;
    }
    cur_head = heads[idx];
    const NodeId q = domain_provider(idx, s);
    if (q == kInvalidNode) {
      ++out.bloom_fp;  // Bloom false positive: probe cost only, keep going
      continue;
    }
    if (q == cur_head || transmit(cur_head, q, rng, now, out)) {
      out.provider = q;
      out.delivered = 1;
      out.resolution = Resolution::kInterDomain;
    } else {
      out.resolution = Resolution::kLost;
    }
    out.latency = now;
    return out;
  }

  out.resolution = Resolution::kNoProvider;
  out.latency = now;
  return out;
}

BatchStats ServingEngine::serve_batch(std::span<const Request> requests,
                                      std::span<Outcome> outcomes,
                                      obs::Recorder* recorder) const {
  WCDS_REQUIRE(outcomes.size() == requests.size(),
               "serve_batch: one outcome slot per request");
  // Per-index slots + pure serve() => byte-identical at any thread count.
  parallel::parallel_for(std::size_t{0}, requests.size(), kBatchGrain,
                         [&](std::size_t i) {
                           outcomes[i] = serve(requests[i], i);
                         });

  // Aggregation and metrics recording stay serial, in index order
  // (MetricsRegistry is not thread-safe and order must be deterministic).
  BatchStats st;
  st.requests = requests.size();
  for (const Outcome& out : outcomes) {
    st.delivered += out.delivered;
    st.hops += out.hops;
    st.retries += out.retries;
    st.bloom_fp += out.bloom_fp;
    st.latency_sum += out.latency;
  }
  if (!outcomes.empty()) {
    std::vector<std::uint32_t> latencies;
    latencies.reserve(outcomes.size());
    for (const Outcome& out : outcomes) latencies.push_back(out.latency);
    std::sort(latencies.begin(), latencies.end());
    const auto nearest_rank = [&](double q) {
      const std::size_t rank = static_cast<std::size_t>(
          std::max<double>(1.0, std::ceil(q * latencies.size())));
      return latencies[rank - 1];
    };
    st.latency_p50 = nearest_rank(0.50);
    st.latency_p95 = nearest_rank(0.95);
  }
  double stretch_sum = 0.0;
  if (opts_.stretch_sample_stride > 0) {
    for (std::size_t i = 0; i < outcomes.size();
         i += opts_.stretch_sample_stride) {
      const Outcome& out = outcomes[i];
      if (out.delivered == 0 || out.provider == requests[i].src) continue;
      const auto d = graph::hop_distance(g_, requests[i].src, out.provider);
      if (d == 0) continue;
      stretch_sum += static_cast<double>(out.hops) / static_cast<double>(d);
      ++st.stretch_samples;
    }
    if (st.stretch_samples > 0) {
      st.mean_stretch = stretch_sum / static_cast<double>(st.stretch_samples);
    }
  }

  if (obs::Recorder* rec = obs::recorder_or_global(recorder);
      rec != nullptr) {
    rec->metrics().add("service/requests", st.requests);
    rec->metrics().add("service/delivered", st.delivered);
    rec->metrics().add("service/hops", st.hops);
    rec->metrics().add("service/retries", st.retries);
    rec->metrics().add("service/bloom_fp", st.bloom_fp);
    for (const Outcome& out : outcomes) {
      rec->metrics().observe("service/latency", out.latency);
    }
    if (opts_.stretch_sample_stride > 0) {
      for (std::size_t i = 0; i < outcomes.size();
           i += opts_.stretch_sample_stride) {
        const Outcome& out = outcomes[i];
        if (out.delivered == 0 || out.provider == requests[i].src) continue;
        const auto d = graph::hop_distance(g_, requests[i].src, out.provider);
        if (d == 0) continue;
        rec->metrics().observe("service/stretch",
                               static_cast<double>(out.hops) /
                                   static_cast<double>(d));
      }
    }
  }
  return st;
}

std::vector<Outcome> ServingEngine::serve_batch(
    std::span<const Request> requests, BatchStats* stats,
    obs::Recorder* recorder) const {
  std::vector<Outcome> outcomes(requests.size());
  const BatchStats st = serve_batch(requests, outcomes, recorder);
  if (stats != nullptr) *stats = st;
  return outcomes;
}

double ServingEngine::predicted_fp_rate() const {
  if (blooms_.empty()) return 0.0;
  double sum = 0.0;
  for (const BloomFilter& bloom : blooms_) sum += bloom.predicted_fp_rate();
  return sum / static_cast<double>(blooms_.size());
}

std::vector<Request> uniform_requests(const ServiceRegistry& registry,
                                      std::size_t count, std::uint64_t seed) {
  WCDS_REQUIRE(registry.node_count() > 0, "uniform_requests: empty network");
  WCDS_REQUIRE(registry.advertisement_count() > 0,
               "uniform_requests: nothing is advertised");
  std::vector<Request> requests(count);
  for (std::size_t i = 0; i < count; ++i) {
    geom::Xoshiro256ss rng = request_rng(seed, 0xAD5e11ceULL, i);
    requests[i].src = static_cast<NodeId>(
        rng.next_below(registry.node_count()));
    // Resample until the service has a provider somewhere, so a perfect
    // radio can deliver every request.
    for (;;) {
      const auto s =
          static_cast<ServiceId>(rng.next_below(registry.service_count()));
      if (!registry.providers_of(s).empty()) {
        requests[i].service = s;
        break;
      }
    }
  }
  return requests;
}

}  // namespace wcds::service
