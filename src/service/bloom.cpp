#include "service/bloom.h"

#include <algorithm>
#include <cmath>

#include "check/check.h"
#include "geom/rng.h"

namespace wcds::service {

namespace {

constexpr double kLn2 = 0.6931471805599453;

// SplitMix64 finalizer over (key, seed): one next() of a generator seeded
// with their xor-fold gives a well-mixed 64-bit digest.
std::uint64_t mix(std::uint64_t key, std::uint64_t seed) {
  return geom::SplitMix64(key ^ (seed * 0x9E3779B97F4A7C15ULL)).next();
}

}  // namespace

BloomFilter::BloomFilter(const BloomParams& params,
                         std::size_t expected_entries)
    : seed_(params.seed) {
  WCDS_REQUIRE(params.bits_per_entry > 0,
               "BloomFilter: bits_per_entry must be positive");
  std::size_t bits = params.bits_per_entry * std::max<std::size_t>(
                                                 expected_entries, 1);
  bits = (bits + 63) / 64 * 64;  // whole words
  bit_count_ = bits;
  words_.assign(bits / 64, 0);
  if (params.hashes != 0) {
    hashes_ = params.hashes;
  } else {
    const double optimum = static_cast<double>(params.bits_per_entry) * kLn2;
    hashes_ = static_cast<std::uint32_t>(std::lround(optimum));
    if (hashes_ == 0) hashes_ = 1;
  }
}

void BloomFilter::insert(std::uint64_t key) {
  // Enhanced double hashing (Dillinger-Manolios): the quadratic drift keeps
  // the k probes from collapsing onto a short cycle in the small per-domain
  // filters, where plain (h1 + i*h2) visibly floors the FP rate.
  std::uint64_t h1 = mix(key, seed_);
  std::uint64_t h2 = mix(key, seed_ + 1) | 1ULL;  // odd: k distinct walks
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = h1 % bit_count_;
    words_[bit / 64] |= 1ULL << (bit % 64);
    h1 += h2;
    h2 += i;
  }
  ++entries_;
}

bool BloomFilter::may_contain(std::uint64_t key) const {
  std::uint64_t h1 = mix(key, seed_);
  std::uint64_t h2 = mix(key, seed_ + 1) | 1ULL;
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = h1 % bit_count_;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
    h1 += h2;
    h2 += i;
  }
  return true;
}

double BloomFilter::predicted_fp_rate() const {
  if (entries_ == 0) return 0.0;
  const double k = static_cast<double>(hashes_);
  const double n = static_cast<double>(entries_);
  const double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

std::uint64_t BloomFilter::key_of(std::string_view name) {
  // FNV-1a 64-bit offset basis and prime.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace wcds::service
