// Per-node service advertisement registry.
//
// Every node may advertise any number of named services ("resources" in the
// DS-SCN architecture).  The registry interns names to dense ServiceIds,
// keeps the node -> services and service -> providers relations sorted for
// deterministic iteration, and exposes the stable 64-bit Bloom key of each
// service (the FNV-1a digest of its name).
//
// The registry is the *ground truth* the serving engine's clusterheads
// aggregate: each clusterhead inserts its domain members' service keys into
// its Bloom filter and additionally keeps the exact per-domain provider
// table, so Bloom false positives are detected at the candidate clusterhead
// rather than turning into misdelivery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.h"

namespace wcds::service {

using ServiceId = std::uint32_t;
inline constexpr ServiceId kInvalidService = 0xFFFFFFFFu;

class ServiceRegistry {
 public:
  explicit ServiceRegistry(std::size_t node_count);

  // Intern `name`, returning its (stable) ServiceId; idempotent.
  ServiceId intern(std::string_view name);

  // The ServiceId of `name`, or kInvalidService if never interned.
  [[nodiscard]] ServiceId find(std::string_view name) const;

  [[nodiscard]] const std::string& name(ServiceId service) const;

  // The Bloom key of `service` (BloomFilter::key_of of its name), cached.
  [[nodiscard]] std::uint64_t key(ServiceId service) const;

  // Record that `node` provides `service`; idempotent.
  void advertise(NodeId node, ServiceId service);
  void advertise(NodeId node, std::string_view name) {
    advertise(node, intern(name));
  }

  [[nodiscard]] bool provides(NodeId node, ServiceId service) const;

  // Services advertised at `node`, ascending by id.
  [[nodiscard]] std::span<const ServiceId> services_at(NodeId node) const;

  // Nodes advertising `service`, ascending by id.
  [[nodiscard]] std::span<const NodeId> providers_of(ServiceId service) const;

  [[nodiscard]] std::size_t node_count() const { return per_node_.size(); }
  [[nodiscard]] std::size_t service_count() const { return names_.size(); }
  [[nodiscard]] std::size_t advertisement_count() const {
    return advertisements_;
  }

 private:
  std::vector<std::string> names_;            // by ServiceId
  std::vector<std::uint64_t> keys_;           // by ServiceId
  std::map<std::string, ServiceId, std::less<>> ids_;
  std::vector<std::vector<ServiceId>> per_node_;     // sorted unique
  std::vector<std::vector<NodeId>> per_service_;     // sorted unique
  std::size_t advertisements_ = 0;
};

// A deterministic synthetic workload: `universe` services named
// "svc-<i>", each node advertising `services_per_node` distinct services
// drawn uniformly from the universe by a per-node RNG stream seeded from
// (seed, node) — the same registry at any call order or thread count.
[[nodiscard]] ServiceRegistry uniform_registry(std::size_t node_count,
                                               std::size_t universe,
                                               std::size_t services_per_node,
                                               std::uint64_t seed);

}  // namespace wcds::service
