// Service-centric request serving over the WCDS backbone.
//
// The DS-SCN shape on top of the paper's §4.2 routing machinery: every node
// advertises named services to its clusterhead (ServiceRegistry); every
// clusterhead aggregates its domain's advertisements into a Bloom filter
// plus an exact per-domain provider table; a request for a service name is
// resolved
//
//   1. locally        — the source itself provides the service (no radio);
//   2. at a neighbor  — an adjacent provider, one direct hop (the paper's
//                       "adjacent pairs route in a single hop");
//   3. intra-domain   — the source's clusterhead finds an exact provider in
//                       its own domain table;
//   4. inter-domain   — the source's clusterhead probes the other domains'
//                       Bloom summaries, orders the positive candidates by
//                       overlay distance (ties by head id), and forwards the
//                       request clusterhead -> clusterhead over the §4.2
//                       next-clusterhead tables, every physical hop a black
//                       spanner edge.  A candidate whose exact table has no
//                       provider was a Bloom false positive: the request
//                       continues to the next candidate (extra probe hops,
//                       never misdelivery).
//
// Forwarding is retry-aware: each physical hop is retransmitted (capped
// exponential backoff, at most max_attempts_per_hop attempts) against the
// fault plan's loss probabilities and crash windows, so delivery survives
// lossy radios instead of assuming a perfect one.  serve() is a pure
// function of (engine state, request, request index): all per-request
// entropy comes from a Xoshiro stream seeded by (plan seed, salt, index),
// which is what makes serve_batch byte-identical at any thread count
// (docs/SERVING.md has the full determinism argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fault/plan.h"
#include "geom/rng.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "obs/recorder.h"
#include "routing/clusterhead_routing.h"
#include "service/bloom.h"
#include "service/registry.h"
#include "wcds/algorithm2.h"

namespace wcds::service {

struct ServingOptions {
  BloomParams bloom;

  // Fault plan interpreted on the forwarding path (drop probabilities,
  // per-link overrides, crash windows); null = perfect radio.  Borrowed.
  const fault::Plan* faults = nullptr;

  // Per physical hop: total transmission attempts before the request is
  // dropped (1 = no retries).
  std::uint32_t max_attempts_per_hop = 8;

  // Latency units waited before the first retransmission; doubles per
  // further attempt, capped at 16x.
  std::uint32_t retry_timeout = 2;

  // serve_batch records `service/stretch` for every stride-th delivered
  // request (hop distance needs a BFS, too costly for every request).
  // 0 disables stretch sampling.
  std::uint32_t stretch_sample_stride = 0;

  // Extra salt folded into every per-request RNG stream.
  std::uint64_t rng_salt = 0x5e4f1ceULL;
};

struct Request {
  NodeId src = kInvalidNode;
  ServiceId service = kInvalidService;
};

enum class Resolution : std::uint8_t {
  kLocal,        // source provides the service itself
  kNeighbor,     // adjacent provider, direct hop
  kIntraDomain,  // provider in the source clusterhead's domain
  kInterDomain,  // provider found via Bloom-directed domain search
  kNoProvider,   // no advertising domain held a provider
  kLost,         // a hop exhausted its attempts (loss/crash)
};

// Trivially copyable so the determinism tests can compare batches bytewise.
struct Outcome {
  NodeId provider = kInvalidNode;   // delivered-to provider
  std::uint32_t hops = 0;           // successful transmissions
  std::uint32_t retries = 0;        // failed attempts that were retransmitted
  std::uint32_t latency = 0;        // virtual time units, incl. backoff waits
  std::uint16_t bloom_fp = 0;       // candidate domains without a provider
  std::uint8_t delivered = 0;
  Resolution resolution = Resolution::kNoProvider;
};

struct BatchStats {
  std::uint64_t requests = 0;
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;
  std::uint64_t retries = 0;
  std::uint64_t bloom_fp = 0;
  std::uint64_t latency_sum = 0;
  std::uint32_t latency_p50 = 0;    // nearest-rank over all requests
  std::uint32_t latency_p95 = 0;
  double mean_stretch = 0.0;        // delivered hops / graph hop distance
  std::size_t stretch_samples = 0;

  [[nodiscard]] double deliverability() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(delivered) / static_cast<double>(requests);
  }
};

class ServingEngine {
 public:
  // Borrows everything: g, the view's backing storage, the registry and
  // options.faults must outlive the engine.
  ServingEngine(const graph::Graph& g, core::Algorithm2View wcds,
                const ServiceRegistry& registry,
                const ServingOptions& options = {});

  // Serve one request.  Pure: identical (request, request_index) always
  // yield the identical Outcome, whatever thread calls it.
  [[nodiscard]] Outcome serve(const Request& request,
                              std::uint64_t request_index) const;

  // Serve a batch through parallel::parallel_for (one outcome slot per
  // request, merged in index order -> byte-identical at any thread count),
  // then aggregate stats and record service/* metrics serially.  Metrics go
  // to `recorder`, else the ambient global recorder, else nowhere.
  BatchStats serve_batch(std::span<const Request> requests,
                         std::span<Outcome> outcomes,
                         obs::Recorder* recorder = nullptr) const;
  [[nodiscard]] std::vector<Outcome> serve_batch(
      std::span<const Request> requests, BatchStats* stats = nullptr,
      obs::Recorder* recorder = nullptr) const;

  [[nodiscard]] const routing::ClusterheadRouter& router() const {
    return router_;
  }
  [[nodiscard]] const ServiceRegistry& registry() const { return registry_; }
  [[nodiscard]] const ServingOptions& options() const { return opts_; }

  // Mean predicted Bloom FP rate across the clusterhead filters.
  [[nodiscard]] double predicted_fp_rate() const;

  // Domains whose Bloom answers "maybe" for `service` (dense head indices,
  // ascending) — the inter-domain candidate universe.
  [[nodiscard]] std::span<const std::uint32_t> advertisers(
      ServiceId service) const {
    return advertisers_[service];
  }

 private:
  // One transmission with retries; advances the virtual clock, updates
  // outcome counters.  False when every attempt failed.
  bool transmit(NodeId from, NodeId to, geom::Xoshiro256ss& rng,
                std::uint32_t& now, Outcome& out) const;
  // Walk the overlay from head `from` to head `to` hop by hop.  False when
  // a hop exhausted its attempts; `at` tracks the current node.
  bool walk_overlay(NodeId from, NodeId to, geom::Xoshiro256ss& rng,
                    std::uint32_t& now, NodeId& at, Outcome& out) const;
  [[nodiscard]] double drop_probability(NodeId from, NodeId to) const;
  [[nodiscard]] bool crashed(NodeId node, std::uint32_t at_time) const;
  // First provider of `service` in head's domain (smallest id), or
  // kInvalidNode.
  [[nodiscard]] NodeId domain_provider(std::uint32_t head_index,
                                       ServiceId service) const;

  const graph::Graph& g_;
  const ServiceRegistry& registry_;
  ServingOptions opts_;
  routing::ClusterheadRouter router_;

  // Per-head Bloom summaries (dense head index order).
  std::vector<BloomFilter> blooms_;
  // Exact per-domain provider tables, CSR over (head, service): providers
  // of service s in head h's domain are prov_[prov_off_[h * S + s] ..
  // prov_off_[h * S + s + 1]), sorted by node id.
  std::vector<std::uint32_t> prov_off_;
  std::vector<NodeId> prov_;
  // Bloom-positive domains per service, ascending dense head index.
  std::vector<std::vector<std::uint32_t>> advertisers_;
  // Crash windows per node ([down_from, up_at) pairs); empty when no plan.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> crash_;
  // Per-directed-CSR-slot drop probability; empty unless the plan carries
  // link overrides.
  std::vector<double> link_drop_;
  bool any_faults_ = false;
};

// Deterministic synthetic request stream: request i has a uniform source
// and a uniform *provided* service (services nobody advertises are
// resampled, so a perfect radio can deliver every request).  Pure function
// of (registry, seed, count).
[[nodiscard]] std::vector<Request> uniform_requests(
    const ServiceRegistry& registry, std::size_t count, std::uint64_t seed);

}  // namespace wcds::service
