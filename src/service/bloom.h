// Seeded Bloom filters for clusterhead-side service advertisement.
//
// Each clusterhead summarizes the service names its domain members advertise
// as a Bloom filter (the DS-SCN supernode scheme): m bits, k probe positions
// per key derived by seeded double hashing
//
//     position_i = (h1 + i * h2) mod m,   i = 0 .. k-1,   h2 forced odd,
//
// where h1/h2 come from two SplitMix64 finalizer passes over (key, seed).
// An odd h2 is coprime with the power-of-two-free modulus walk, so the k
// positions never collapse onto one bit.  With n inserted keys the false-
// positive probability is the classical  p = (1 - e^(-k n / m))^k ; the
// filter exposes that prediction so benchmarks can compare measured vs.
// theoretical FP rates (bench_a7, B-sweep).
//
// A false positive never causes misdelivery: the serving engine confirms
// candidates against the exact per-domain registry at the candidate
// clusterhead, so an FP only costs the probe trip (docs/SERVING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace wcds::service {

struct BloomParams {
  // Bits reserved per expected entry (m = bits_per_entry * expected).
  std::uint32_t bits_per_entry = 10;

  // Probe positions per key; 0 selects the optimum round(bits_per_entry *
  // ln 2), which minimizes the false-positive rate for the chosen density.
  std::uint32_t hashes = 0;

  // Hash-family seed.  All filters of one deployment share it, so a key
  // probes the same positions in every domain's filter.
  std::uint64_t seed = 0x5eedB100F117e2ULL;

  friend bool operator==(const BloomParams&, const BloomParams&) = default;
};

class BloomFilter {
 public:
  // An empty filter sized for `expected_entries` keys (at least one word).
  BloomFilter(const BloomParams& params, std::size_t expected_entries);

  void insert(std::uint64_t key);
  [[nodiscard]] bool may_contain(std::uint64_t key) const;

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }
  [[nodiscard]] std::uint32_t hash_count() const { return hashes_; }
  [[nodiscard]] std::size_t entry_count() const { return entries_; }

  // Classical FP prediction (1 - e^(-k n / m))^k for the current n.
  [[nodiscard]] double predicted_fp_rate() const;

  // FNV-1a 64-bit digest of a service name: the canonical Bloom key.
  [[nodiscard]] static std::uint64_t key_of(std::string_view name);

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_count_ = 0;
  std::uint32_t hashes_ = 1;
  std::uint64_t seed_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace wcds::service
