#include "service/registry.h"

#include <algorithm>

#include "check/check.h"
#include "geom/rng.h"
#include "service/bloom.h"

namespace wcds::service {

ServiceRegistry::ServiceRegistry(std::size_t node_count)
    : per_node_(node_count) {}

ServiceId ServiceRegistry::intern(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const ServiceId id = static_cast<ServiceId>(names_.size());
  names_.emplace_back(name);
  keys_.push_back(BloomFilter::key_of(name));
  per_service_.emplace_back();
  ids_.emplace(names_.back(), id);
  return id;
}

ServiceId ServiceRegistry::find(std::string_view name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidService : it->second;
}

const std::string& ServiceRegistry::name(ServiceId service) const {
  WCDS_REQUIRE_BOUNDS(service < names_.size(),
                      "ServiceRegistry::name: bad service id");
  return names_[service];
}

std::uint64_t ServiceRegistry::key(ServiceId service) const {
  WCDS_REQUIRE_BOUNDS(service < keys_.size(),
                      "ServiceRegistry::key: bad service id");
  return keys_[service];
}

void ServiceRegistry::advertise(NodeId node, ServiceId service) {
  WCDS_REQUIRE_BOUNDS(node < per_node_.size(),
                      "ServiceRegistry::advertise: bad node");
  WCDS_REQUIRE_BOUNDS(service < names_.size(),
                      "ServiceRegistry::advertise: bad service id");
  auto& services = per_node_[node];
  const auto pos = std::lower_bound(services.begin(), services.end(), service);
  if (pos != services.end() && *pos == service) return;  // idempotent
  services.insert(pos, service);
  auto& providers = per_service_[service];
  providers.insert(std::lower_bound(providers.begin(), providers.end(), node),
                   node);
  ++advertisements_;
}

bool ServiceRegistry::provides(NodeId node, ServiceId service) const {
  const auto& services = per_node_[node];
  return std::binary_search(services.begin(), services.end(), service);
}

std::span<const ServiceId> ServiceRegistry::services_at(NodeId node) const {
  WCDS_REQUIRE_BOUNDS(node < per_node_.size(),
                      "ServiceRegistry::services_at: bad node");
  return per_node_[node];
}

std::span<const NodeId> ServiceRegistry::providers_of(ServiceId service) const {
  WCDS_REQUIRE_BOUNDS(service < per_service_.size(),
                      "ServiceRegistry::providers_of: bad service id");
  return per_service_[service];
}

ServiceRegistry uniform_registry(std::size_t node_count, std::size_t universe,
                                 std::size_t services_per_node,
                                 std::uint64_t seed) {
  WCDS_REQUIRE(universe > 0, "uniform_registry: empty service universe");
  WCDS_REQUIRE(services_per_node <= universe,
               "uniform_registry: more services per node than the universe");
  ServiceRegistry registry(node_count);
  std::string name;
  for (std::size_t s = 0; s < universe; ++s) {
    name = "svc-" + std::to_string(s);
    registry.intern(name);
  }
  for (NodeId u = 0; u < node_count; ++u) {
    // Per-node stream: the draw sequence of node u never depends on other
    // nodes, so the registry is a pure function of (node_count, universe,
    // services_per_node, seed).
    geom::Xoshiro256ss rng(geom::SplitMix64(seed ^ (0x9E3779B97F4A7C15ULL *
                                                    (u + 1)))
                               .next());
    std::size_t picked = 0;
    while (picked < services_per_node) {
      const auto s = static_cast<ServiceId>(rng.next_below(universe));
      if (registry.provides(u, s)) continue;  // distinct draws
      registry.advertise(u, s);
      ++picked;
    }
  }
  return registry;
}

}  // namespace wcds::service
