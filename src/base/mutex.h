// Annotated synchronization primitives for clang's thread-safety analysis.
//
// std::mutex carries no capability attributes under libstdc++, so the
// analysis cannot track it.  These zero-overhead wrappers forward to the std
// primitives and add the annotations:
//
//   base::Mutex mu;                         // WCDS_CAPABILITY("mutex")
//   int value WCDS_GUARDED_BY(mu);
//   {
//     base::MutexLock lock(mu);             // scoped acquire/release
//     ++value;                              // statically proven safe
//   }
//
// CondVar wraps std::condition_variable with a wait(Mutex&) that the
// analysis sees as "mutex held throughout" (the internal release/reacquire
// is invisible to it, which matches how guarded state may be used around a
// wait).  Spurious wakeups are possible as usual — always wait in a loop
// that retests the predicate under the lock.
#pragma once

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace wcds::base {

class CondVar;

// Exclusive lock; wraps std::mutex 1:1.
class WCDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WCDS_ACQUIRE() { mu_.lock(); }
  void unlock() WCDS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() WCDS_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped lock (std::lock_guard with the scoped-capability annotation).
class WCDS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WCDS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() WCDS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to base::Mutex.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires before returning.  The
  // caller must hold `mu` (and does again on return), so from the analysis's
  // point of view the lock is held across the call.
  void wait(Mutex& mu) WCDS_REQUIRES(mu) {
    // Adopt the already-held native mutex so std::condition_variable can do
    // the atomic unlock-and-wait, then hand ownership straight back.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace wcds::base
