// Clang thread-safety-analysis annotation macros (Abseil/Chromium style).
//
// Annotating which mutex guards which member lets clang *prove* lock
// discipline at compile time: `-Wthread-safety` (enabled together with
// -Werror for every Clang build by the top-level CMakeLists, and exercised
// by the `clang` preset / CI job) rejects any access to a WCDS_GUARDED_BY
// member outside its mutex, any unbalanced WCDS_ACQUIRE/WCDS_RELEASE pair,
// and any call that violates a WCDS_REQUIRES contract.  This is the static
// complement to the dynamic tsan preset: tsan needs a schedule that trips
// the race, the analysis needs none.
//
// The attributes only exist on clang; every macro expands to nothing on
// other compilers, so gcc builds are unaffected.
//
// The capability model wants annotated lock types; std::mutex is not
// annotated under libstdc++, so lock-discipline-checked code uses the
// wcds::base::Mutex / MutexLock / CondVar wrappers (src/base/mutex.h)
// instead of the std primitives.
#pragma once

#if defined(__clang__)
#define WCDS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define WCDS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off clang
#endif

// Type annotations -----------------------------------------------------------

// Marks a class as a lockable capability ("mutex" names the capability kind
// in diagnostics).
#define WCDS_CAPABILITY(x) WCDS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// Marks an RAII class whose lifetime acquires/releases a capability.
#define WCDS_SCOPED_CAPABILITY \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Member annotations ---------------------------------------------------------

// Data member readable/writable only while holding `x`.
#define WCDS_GUARDED_BY(x) WCDS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// Pointer member whose *pointee* is protected by `x`.
#define WCDS_PT_GUARDED_BY(x) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Lock-ordering declarations (deadlock prevention).
#define WCDS_ACQUIRED_BEFORE(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define WCDS_ACQUIRED_AFTER(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// Function annotations -------------------------------------------------------

// Caller must hold the capability (exclusively / shared) on entry and exit.
#define WCDS_REQUIRES(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define WCDS_REQUIRES_SHARED(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define WCDS_ACQUIRE(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define WCDS_ACQUIRE_SHARED(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define WCDS_RELEASE(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define WCDS_RELEASE_SHARED(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

// Function tries to acquire; first argument is the success return value.
#define WCDS_TRY_ACQUIRE(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (non-reentrancy contract).
#define WCDS_EXCLUDES(...) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define WCDS_RETURN_CAPABILITY(x) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Runtime assertion that the capability is held (no static proof needed).
#define WCDS_ASSERT_CAPABILITY(x) \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

// Escape hatch: disables the analysis for one function.  Use only with a
// comment explaining why the discipline cannot be expressed.
#define WCDS_NO_THREAD_SAFETY_ANALYSIS \
  WCDS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
