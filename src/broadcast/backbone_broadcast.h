// Backbone broadcast over a WCDS (the application the paper motivates:
// "the number of nodes responsible for routing and broadcasting can be
// reduced to the number of nodes in the backbone", Section 1).
//
// A WCDS is *weakly* connected — backbone nodes can be two hops apart — so
// a broadcast relay structure adds one gray "gateway" per pair of backbone
// nodes at exactly two hops (the classic cluster-gateway construction).
// Every weakly-induced path alternates backbone/gray and each internal gray
// node is a common neighbor of its two backbone neighbors, so the chosen
// gateways preserve connectivity of the relay structure.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "sim/runtime.h"

namespace wcds::broadcast {

// U plus one chosen gateway (smallest common neighbor) per pair of U-nodes
// at exactly two hops.  Precondition: backbone.size() == g.node_count().
[[nodiscard]] std::vector<bool> relay_set(const graph::Graph& g,
                                          const std::vector<bool>& backbone);

struct FloodResult {
  std::uint64_t transmissions = 0;
  std::size_t reached = 0;        // nodes that heard the message
  sim::SimTime completion = 0;    // delivery time of the last copy
};

// Flood a message from `source`; only nodes flagged in `retransmitters`
// (plus the source) rebroadcast the first copy they hear.
[[nodiscard]] FloodResult flood(
    const graph::Graph& g, NodeId source,
    const std::vector<bool>& retransmitters,
    const sim::DelayModel& delays = sim::DelayModel::unit());

// Blind flood: every node retransmits once (the baseline).
[[nodiscard]] FloodResult blind_flood(
    const graph::Graph& g, NodeId source,
    const sim::DelayModel& delays = sim::DelayModel::unit());

}  // namespace wcds::broadcast
