#include "broadcast/backbone_broadcast.h"

#include <map>
#include <memory>
#include <stdexcept>

namespace wcds::broadcast {
namespace {

class SelectiveFlood final : public sim::ProtocolNode {
 public:
  SelectiveFlood(NodeId source, bool retransmits)
      : source_(source), retransmits_(retransmits) {}
  void on_start(sim::Context& ctx) override {
    if (ctx.self() == source_) {
      heard_ = true;
      if (!ctx.neighbors().empty()) ctx.broadcast(1);
    }
  }
  void on_receive(sim::Context& ctx, const sim::Message&) override {
    if (!heard_) {
      heard_ = true;
      if (retransmits_) ctx.broadcast(1);
    }
  }
  [[nodiscard]] bool heard() const { return heard_; }

 private:
  NodeId source_;
  bool retransmits_;
  bool heard_ = false;
};

}  // namespace

std::vector<bool> relay_set(const graph::Graph& g,
                            const std::vector<bool>& backbone) {
  if (backbone.size() != g.node_count()) {
    throw std::invalid_argument("relay_set: mask size mismatch");
  }
  std::vector<bool> relay = backbone;
  std::map<std::pair<NodeId, NodeId>, NodeId> gateway;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!backbone[u]) continue;
    for (NodeId mid : g.neighbors(u)) {
      if (backbone[mid]) continue;
      for (NodeId w : g.neighbors(mid)) {
        if (!backbone[w] || w <= u || g.has_edge(u, w)) continue;
        auto [it, inserted] = gateway.emplace(std::pair{u, w}, mid);
        if (!inserted && mid < it->second) it->second = mid;
      }
    }
  }
  for (const auto& [pair, gw] : gateway) relay[gw] = true;
  return relay;
}

FloodResult flood(const graph::Graph& g, NodeId source,
                  const std::vector<bool>& retransmitters,
                  const sim::DelayModel& delays) {
  if (retransmitters.size() != g.node_count()) {
    throw std::invalid_argument("flood: mask size mismatch");
  }
  if (source >= g.node_count()) {
    throw std::out_of_range("flood: source out of range");
  }
  sim::Runtime rt(
      g,
      [&](NodeId u) {
        return std::make_unique<SelectiveFlood>(source, retransmitters[u]);
      },
      delays);
  const auto stats = rt.run();
  FloodResult result;
  result.transmissions = stats.transmissions;
  result.completion = stats.completion_time;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    result.reached +=
        static_cast<const SelectiveFlood&>(rt.node(u)).heard() ? 1 : 0;
  }
  return result;
}

FloodResult blind_flood(const graph::Graph& g, NodeId source,
                        const sim::DelayModel& delays) {
  return flood(g, source, std::vector<bool>(g.node_count(), true), delays);
}

}  // namespace wcds::broadcast
