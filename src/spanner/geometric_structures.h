// Position-based sparse structures: Gabriel graph and relative neighborhood
// graph (RNG).
//
// The paper's spanners are *position-less* — built from connectivity alone.
// The classic alternatives it cites (RNG broadcasting [15], geographic
// routing substrates [7][12]) require node coordinates.  These constructions
// supply that comparison point for experiments: both are connected spanning
// subgraphs of a connected UDG with O(n) edges, and RNG(G) ⊆ GG(G) ⊆ G.
//
// Definitions (restricted to UDG edges):
//   Gabriel:  keep uv iff no witness w lies strictly inside the circle with
//             diameter uv.
//   RNG:      keep uv iff no witness w has max(|uw|, |wv|) < |uv| (the lune).
// Any witness is within |uv| <= 1 of both endpoints, so only common UDG
// neighbors need checking.
#pragma once

#include <span>

#include "geom/point.h"
#include "graph/graph.h"

namespace wcds::spanner {

[[nodiscard]] graph::Graph gabriel_graph(const graph::Graph& udg,
                                         std::span<const geom::Point> points);

[[nodiscard]] graph::Graph relative_neighborhood_graph(
    const graph::Graph& udg, std::span<const geom::Point> points);

}  // namespace wcds::spanner
