// Spanner quality analysis (paper, Sections 3 and 4).
//
// Sparseness: the weakly induced subgraph G' must have Theta(n) edges
// (Theorems 8 and 10; the Theorem 10 accounting is |E'| <= 9*#gray + 47*|S|).
//
// Topological dilation (Theorem 11): for non-adjacent u, v,
//   delta'(u, v) <= 3 * delta(u, v) + 2.
// Geometric dilation (Lemma 6 + Theorem 11): l_G'(u, v) <= 6 * l_G(u, v) + 5,
// where l_G is the Euclidean length of a minimum-distance path in G and l_G'
// is the *maximum* total length over minimum-hop paths in G' (positions are
// unknown to the routing layer, so the worst min-hop path is the honest
// measure).
//
// Adjacent pairs are excluded: the paper routes them over the direct edge
// (Section 4.2), and Theorem 11 is stated for non-adjacent pairs.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "geom/point.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::spanner {

struct SparsenessStats {
  std::size_t nodes = 0;
  std::size_t udg_edges = 0;
  std::size_t spanner_edges = 0;
  double edges_per_node = 0.0;      // |E'| / n; bounded for a sparse spanner
  std::size_t theorem10_bound = 0;  // 9 * #gray + 47 * |S| (0 if not Alg. II)
};

[[nodiscard]] SparsenessStats sparseness(const graph::Graph& g,
                                         const graph::Graph& spanner,
                                         const core::WcdsResult& wcds);

struct TopologicalDilationStats {
  double max_ratio = 0.0;   // max delta' / delta over measured pairs
  double mean_ratio = 0.0;
  std::int64_t max_slack =
      std::numeric_limits<std::int64_t>::min();  // max delta' - (3*delta + 2)
  std::uint64_t pairs = 0;
  bool all_reachable = true;  // false if the spanner disconnects any pair
};

// Exact over all non-adjacent pairs when max_sources >= n; otherwise an
// evenly strided sample of BFS sources (deterministic).
[[nodiscard]] TopologicalDilationStats topological_dilation(
    const graph::Graph& g, const graph::Graph& spanner,
    std::size_t max_sources = std::numeric_limits<std::size_t>::max());

// Distribution of per-pair topological stretch delta'/delta, for reporting
// percentiles rather than just the maximum (T3's distribution view).
struct StretchDistribution {
  // buckets[i] counts pairs with ratio in [1 + i*width, 1 + (i+1)*width);
  // the last bucket absorbs the tail.
  std::vector<std::uint64_t> buckets;
  double width = 0.25;
  std::uint64_t pairs = 0;
  double max_ratio = 0.0;

  // Smallest ratio r such that at least q (0..1] of pairs have ratio <= r,
  // resolved to bucket upper bounds; 0 if empty.
  [[nodiscard]] double percentile(double q) const;
};

[[nodiscard]] StretchDistribution topological_stretch_distribution(
    const graph::Graph& g, const graph::Graph& spanner,
    std::size_t max_sources = std::numeric_limits<std::size_t>::max(),
    double bucket_width = 0.25, std::size_t bucket_count = 40);

struct GeometricDilationStats {
  double max_ratio = 0.0;  // max l' / l over measured pairs
  double mean_ratio = 0.0;
  double max_slack = -std::numeric_limits<double>::infinity();  // l' - (6l+5)
  std::uint64_t pairs = 0;
  bool all_reachable = true;
};

[[nodiscard]] GeometricDilationStats geometric_dilation(
    const graph::Graph& g, const graph::Graph& spanner,
    std::span<const geom::Point> points,
    std::size_t max_sources = std::numeric_limits<std::size_t>::max());

}  // namespace wcds::spanner
