#include "spanner/geometric_structures.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace wcds::spanner {
namespace {

// Sorted intersection walk over the two adjacency rows, invoking `fn` on
// every common neighbor of u and v.
template <typename Fn>
void for_each_common_neighbor(const graph::Graph& g, NodeId u, NodeId v,
                              Fn&& fn) {
  const auto a = g.neighbors(u);
  const auto b = g.neighbors(v);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

template <typename Keep>
graph::Graph filter_edges(const graph::Graph& udg,
                          std::span<const geom::Point> points, Keep&& keep) {
  if (points.size() != udg.node_count()) {
    throw std::invalid_argument("geometric structure: size mismatch");
  }
  graph::GraphBuilder builder(udg.node_count());
  for (const auto& [u, v] : udg.edges()) {
    if (keep(u, v)) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

}  // namespace

graph::Graph gabriel_graph(const graph::Graph& udg,
                           std::span<const geom::Point> points) {
  return filter_edges(udg, points, [&](NodeId u, NodeId v) {
    const geom::Point mid{(points[u].x + points[v].x) / 2.0,
                          (points[u].y + points[v].y) / 2.0};
    const double r2 = geom::squared_distance(points[u], points[v]) / 4.0;
    bool keep = true;
    for_each_common_neighbor(udg, u, v, [&](NodeId w) {
      if (geom::squared_distance(points[w], mid) < r2 - 1e-15) keep = false;
    });
    return keep;
  });
}

graph::Graph relative_neighborhood_graph(const graph::Graph& udg,
                                         std::span<const geom::Point> points) {
  return filter_edges(udg, points, [&](NodeId u, NodeId v) {
    const double uv2 = geom::squared_distance(points[u], points[v]);
    bool keep = true;
    for_each_common_neighbor(udg, u, v, [&](NodeId w) {
      const double uw2 = geom::squared_distance(points[u], points[w]);
      const double wv2 = geom::squared_distance(points[w], points[v]);
      if (std::max(uw2, wv2) < uv2 - 1e-15) keep = false;
    });
    return keep;
  });
}

}  // namespace wcds::spanner
