#include "spanner/analysis.h"

#include <algorithm>
#include <stdexcept>

#include "check/audit.h"
#include "graph/bfs.h"
#include "graph/dijkstra.h"
#include "parallel/thread_pool.h"

namespace wcds::spanner {
namespace {

// Evenly strided source sample covering [0, n): deterministic and
// position-independent.
std::vector<NodeId> sample_sources(std::size_t n, std::size_t max_sources) {
  std::vector<NodeId> sources;
  if (n == 0) return sources;
  const std::size_t count = std::min(n, max_sources);
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<NodeId>(i * n / count));
  }
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

// Per-source BFS passes are independent, so every analysis below computes
// one partial per source into its own slot (parallel::parallel_for) and
// merges the slots in source order.  The serial path is the same code with
// one lane, so parallel and serial outputs are byte-identical: each
// source's floating-point accumulation happens on one lane in index order,
// and the cross-source reduction order is fixed.

struct DilationPartial {
  double ratio_sum = 0.0;
  double max_ratio = 0.0;
  std::int64_t max_slack = std::numeric_limits<std::int64_t>::min();
  std::uint64_t pairs = 0;
  bool all_reachable = true;
};

DilationPartial dilation_from_source(const graph::Graph& g,
                                     const graph::Graph& spanner, NodeId u) {
  DilationPartial partial;
  const auto in_g = graph::bfs_distances(g, u);
  const auto in_spanner = graph::bfs_distances(spanner, u);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == u || in_g[v] == kUnreachable || in_g[v] == 1) continue;
    if (in_spanner[v] == kUnreachable) {
      partial.all_reachable = false;
      continue;
    }
    const double ratio = static_cast<double>(in_spanner[v]) /
                         static_cast<double>(in_g[v]);
    partial.max_ratio = std::max(partial.max_ratio, ratio);
    partial.ratio_sum += ratio;
    const std::int64_t slack =
        static_cast<std::int64_t>(in_spanner[v]) -
        (static_cast<std::int64_t>(check::kTheorem11Multiplier) *
             static_cast<std::int64_t>(in_g[v]) +
         static_cast<std::int64_t>(check::kTheorem11Additive));
    partial.max_slack = std::max(partial.max_slack, slack);
    ++partial.pairs;
  }
  return partial;
}

}  // namespace

SparsenessStats sparseness(const graph::Graph& g, const graph::Graph& spanner,
                           const core::WcdsResult& wcds) {
  SparsenessStats stats;
  stats.nodes = g.node_count();
  stats.udg_edges = g.edge_count();
  stats.spanner_edges = spanner.edge_count();
  if (stats.nodes > 0) {
    stats.edges_per_node =
        static_cast<double>(stats.spanner_edges) /
        static_cast<double>(stats.nodes);
  }
  if (!wcds.mis_dominators.empty()) {
    const std::size_t gray = stats.nodes - wcds.dominators.size();
    stats.theorem10_bound = check::kTheorem10GrayFactor * gray +
                            check::kTheorem10MisFactor *
                                wcds.mis_dominators.size();
  }
  return stats;
}

TopologicalDilationStats topological_dilation(const graph::Graph& g,
                                              const graph::Graph& spanner,
                                              std::size_t max_sources) {
  if (spanner.node_count() != g.node_count()) {
    throw std::invalid_argument("topological_dilation: node count mismatch");
  }
  const auto sources = sample_sources(g.node_count(), max_sources);
  std::vector<DilationPartial> partials(sources.size());
  parallel::parallel_for(0, sources.size(), 1, [&](std::size_t i) {
    partials[i] = dilation_from_source(g, spanner, sources[i]);
  });
  TopologicalDilationStats stats;
  double ratio_sum = 0.0;
  for (const DilationPartial& partial : partials) {
    ratio_sum += partial.ratio_sum;
    stats.max_ratio = std::max(stats.max_ratio, partial.max_ratio);
    stats.max_slack = std::max(stats.max_slack, partial.max_slack);
    stats.pairs += partial.pairs;
    stats.all_reachable = stats.all_reachable && partial.all_reachable;
  }
  if (stats.pairs > 0) {
    stats.mean_ratio = ratio_sum / static_cast<double>(stats.pairs);
  }
  return stats;
}

double StretchDistribution::percentile(double q) const {
  if (pairs == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(pairs) + 0.999999);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) return 1.0 + (static_cast<double>(i) + 1.0) * width;
  }
  return max_ratio;
}

StretchDistribution topological_stretch_distribution(const graph::Graph& g,
                                                     const graph::Graph& spanner,
                                                     std::size_t max_sources,
                                                     double bucket_width,
                                                     std::size_t bucket_count) {
  if (spanner.node_count() != g.node_count()) {
    throw std::invalid_argument(
        "topological_stretch_distribution: node count mismatch");
  }
  if (bucket_width <= 0.0 || bucket_count == 0) {
    throw std::invalid_argument(
        "topological_stretch_distribution: bad bucket spec");
  }
  const auto sources = sample_sources(g.node_count(), max_sources);
  std::vector<StretchDistribution> partials(sources.size());
  parallel::parallel_for(0, sources.size(), 1, [&](std::size_t i) {
    StretchDistribution& partial = partials[i];
    partial.width = bucket_width;
    partial.buckets.assign(bucket_count, 0);
    const NodeId u = sources[i];
    const auto in_g = graph::bfs_distances(g, u);
    const auto in_spanner = graph::bfs_distances(spanner, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || in_g[v] == kUnreachable || in_g[v] == 1) continue;
      if (in_spanner[v] == kUnreachable) continue;
      const double ratio = static_cast<double>(in_spanner[v]) /
                           static_cast<double>(in_g[v]);
      partial.max_ratio = std::max(partial.max_ratio, ratio);
      const auto bucket = std::min(
          bucket_count - 1,
          static_cast<std::size_t>(std::max(0.0, ratio - 1.0) / bucket_width));
      ++partial.buckets[bucket];
      ++partial.pairs;
    }
  });
  StretchDistribution dist;
  dist.width = bucket_width;
  dist.buckets.assign(bucket_count, 0);
  for (const StretchDistribution& partial : partials) {
    for (std::size_t b = 0; b < bucket_count; ++b) {
      dist.buckets[b] += partial.buckets[b];
    }
    dist.pairs += partial.pairs;
    dist.max_ratio = std::max(dist.max_ratio, partial.max_ratio);
  }
  return dist;
}

GeometricDilationStats geometric_dilation(const graph::Graph& g,
                                          const graph::Graph& spanner,
                                          std::span<const geom::Point> points,
                                          std::size_t max_sources) {
  if (spanner.node_count() != g.node_count() ||
      points.size() != g.node_count()) {
    throw std::invalid_argument("geometric_dilation: size mismatch");
  }
  const auto sources = sample_sources(g.node_count(), max_sources);
  struct GeometricPartial {
    double ratio_sum = 0.0;
    double max_ratio = 0.0;
    double max_slack = -std::numeric_limits<double>::infinity();
    std::uint64_t pairs = 0;
    bool all_reachable = true;
  };
  std::vector<GeometricPartial> partials(sources.size());
  parallel::parallel_for(0, sources.size(), 1, [&](std::size_t i) {
    GeometricPartial& partial = partials[i];
    const NodeId u = sources[i];
    const auto hops_in_g = graph::bfs_distances(g, u);
    const auto len_in_g = graph::geometric_shortest_paths(g, points, u);
    const auto len_in_spanner =
        graph::max_length_of_min_hop_paths(spanner, points, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || hops_in_g[v] == kUnreachable || hops_in_g[v] == 1) continue;
      if (len_in_spanner[v] == graph::kInfiniteLength) {
        partial.all_reachable = false;
        continue;
      }
      const double l = len_in_g[v];
      const double lp = len_in_spanner[v];
      if (l <= 0.0) continue;
      const double ratio = lp / l;
      partial.max_ratio = std::max(partial.max_ratio, ratio);
      partial.ratio_sum += ratio;
      partial.max_slack = std::max(partial.max_slack, lp - (6.0 * l + 5.0));
      ++partial.pairs;
    }
  });
  GeometricDilationStats stats;
  double ratio_sum = 0.0;
  for (const GeometricPartial& partial : partials) {
    ratio_sum += partial.ratio_sum;
    stats.max_ratio = std::max(stats.max_ratio, partial.max_ratio);
    stats.max_slack = std::max(stats.max_slack, partial.max_slack);
    stats.pairs += partial.pairs;
    stats.all_reachable = stats.all_reachable && partial.all_reachable;
  }
  if (stats.pairs > 0) {
    stats.mean_ratio = ratio_sum / static_cast<double>(stats.pairs);
  }
  return stats;
}

}  // namespace wcds::spanner
