#include "spanner/analysis.h"

#include <algorithm>
#include <stdexcept>

#include "graph/bfs.h"
#include "graph/dijkstra.h"

namespace wcds::spanner {
namespace {

// Evenly strided source sample covering [0, n): deterministic and
// position-independent.
std::vector<NodeId> sample_sources(std::size_t n, std::size_t max_sources) {
  std::vector<NodeId> sources;
  if (n == 0) return sources;
  const std::size_t count = std::min(n, max_sources);
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<NodeId>(i * n / count));
  }
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

}  // namespace

SparsenessStats sparseness(const graph::Graph& g, const graph::Graph& spanner,
                           const core::WcdsResult& wcds) {
  SparsenessStats stats;
  stats.nodes = g.node_count();
  stats.udg_edges = g.edge_count();
  stats.spanner_edges = spanner.edge_count();
  if (stats.nodes > 0) {
    stats.edges_per_node =
        static_cast<double>(stats.spanner_edges) /
        static_cast<double>(stats.nodes);
  }
  if (!wcds.mis_dominators.empty()) {
    const std::size_t gray = stats.nodes - wcds.dominators.size();
    stats.theorem10_bound = 9 * gray + 47 * wcds.mis_dominators.size();
  }
  return stats;
}

TopologicalDilationStats topological_dilation(const graph::Graph& g,
                                              const graph::Graph& spanner,
                                              std::size_t max_sources) {
  if (spanner.node_count() != g.node_count()) {
    throw std::invalid_argument("topological_dilation: node count mismatch");
  }
  TopologicalDilationStats stats;
  double ratio_sum = 0.0;
  for (NodeId u : sample_sources(g.node_count(), max_sources)) {
    const auto in_g = graph::bfs_distances(g, u);
    const auto in_spanner = graph::bfs_distances(spanner, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || in_g[v] == kUnreachable || in_g[v] == 1) continue;
      if (in_spanner[v] == kUnreachable) {
        stats.all_reachable = false;
        continue;
      }
      const double ratio = static_cast<double>(in_spanner[v]) /
                           static_cast<double>(in_g[v]);
      stats.max_ratio = std::max(stats.max_ratio, ratio);
      ratio_sum += ratio;
      const std::int64_t slack = static_cast<std::int64_t>(in_spanner[v]) -
                                 (3 * static_cast<std::int64_t>(in_g[v]) + 2);
      stats.max_slack = std::max(stats.max_slack, slack);
      ++stats.pairs;
    }
  }
  if (stats.pairs > 0) {
    stats.mean_ratio = ratio_sum / static_cast<double>(stats.pairs);
  }
  return stats;
}

double StretchDistribution::percentile(double q) const {
  if (pairs == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(pairs) + 0.999999);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) return 1.0 + (static_cast<double>(i) + 1.0) * width;
  }
  return max_ratio;
}

StretchDistribution topological_stretch_distribution(const graph::Graph& g,
                                                     const graph::Graph& spanner,
                                                     std::size_t max_sources,
                                                     double bucket_width,
                                                     std::size_t bucket_count) {
  if (spanner.node_count() != g.node_count()) {
    throw std::invalid_argument(
        "topological_stretch_distribution: node count mismatch");
  }
  if (bucket_width <= 0.0 || bucket_count == 0) {
    throw std::invalid_argument(
        "topological_stretch_distribution: bad bucket spec");
  }
  StretchDistribution dist;
  dist.width = bucket_width;
  dist.buckets.assign(bucket_count, 0);
  for (NodeId u : sample_sources(g.node_count(), max_sources)) {
    const auto in_g = graph::bfs_distances(g, u);
    const auto in_spanner = graph::bfs_distances(spanner, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || in_g[v] == kUnreachable || in_g[v] == 1) continue;
      if (in_spanner[v] == kUnreachable) continue;
      const double ratio = static_cast<double>(in_spanner[v]) /
                           static_cast<double>(in_g[v]);
      dist.max_ratio = std::max(dist.max_ratio, ratio);
      const auto bucket = std::min(
          bucket_count - 1,
          static_cast<std::size_t>(std::max(0.0, ratio - 1.0) / bucket_width));
      ++dist.buckets[bucket];
      ++dist.pairs;
    }
  }
  return dist;
}

GeometricDilationStats geometric_dilation(const graph::Graph& g,
                                          const graph::Graph& spanner,
                                          std::span<const geom::Point> points,
                                          std::size_t max_sources) {
  if (spanner.node_count() != g.node_count() ||
      points.size() != g.node_count()) {
    throw std::invalid_argument("geometric_dilation: size mismatch");
  }
  GeometricDilationStats stats;
  double ratio_sum = 0.0;
  for (NodeId u : sample_sources(g.node_count(), max_sources)) {
    const auto hops_in_g = graph::bfs_distances(g, u);
    const auto len_in_g = graph::geometric_shortest_paths(g, points, u);
    const auto len_in_spanner =
        graph::max_length_of_min_hop_paths(spanner, points, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == u || hops_in_g[v] == kUnreachable || hops_in_g[v] == 1) continue;
      if (len_in_spanner[v] == graph::kInfiniteLength) {
        stats.all_reachable = false;
        continue;
      }
      const double l = len_in_g[v];
      const double lp = len_in_spanner[v];
      if (l <= 0.0) continue;
      const double ratio = lp / l;
      stats.max_ratio = std::max(stats.max_ratio, ratio);
      ratio_sum += ratio;
      stats.max_slack = std::max(stats.max_slack, lp - (6.0 * l + 5.0));
      ++stats.pairs;
    }
  }
  if (stats.pairs > 0) {
    stats.mean_ratio = ratio_sum / static_cast<double>(stats.pairs);
  }
  return stats;
}

}  // namespace wcds::spanner
