// Subgraph extraction helpers.
//
// The weakly induced subgraph G' of a set S keeps every edge of G with at
// least one endpoint in S (paper, Abstract).  G' has the same vertex set as
// G, which matters: connectivity of G' is judged over all of V.  Isolated
// nodes (no black edge) make G' disconnected unless n == 1.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::graph {

// Graph on the same vertex set keeping only edges with >= 1 endpoint in
// `members` (a node-indexed membership mask).
[[nodiscard]] Graph weakly_induced_subgraph(const Graph& g,
                                            const std::vector<bool>& members);

// Graph on the same vertex set keeping only edges with *both* endpoints in
// `members` (the ordinary induced subgraph, for CDS checks).
[[nodiscard]] Graph induced_subgraph(const Graph& g,
                                     const std::vector<bool>& members);

// Convert a node list into a node-indexed mask.
[[nodiscard]] std::vector<bool> make_mask(std::size_t node_count,
                                          std::span<const NodeId> members);

}  // namespace wcds::graph
