// Rooted spanning trees and the level assignment of Section 2.2.
//
// Algorithm I ranks nodes by (level, ID) where level is the hop distance from
// the root of a spanning tree T.  A BFS tree gives exactly that level; an
// arbitrary spanning tree gives the tree distance.  Both are provided: the
// paper says "an arbitrary spanning tree" but its distributed construction
// (flood from the leader, adopt first sender as parent) is a BFS tree, so the
// BFS variant is the reference.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::graph {

struct SpanningTree {
  NodeId root = kInvalidNode;
  std::vector<NodeId> parent;       // parent[root] == kInvalidNode
  std::vector<HopCount> level;      // level[root] == 0; kUnreachable if off-tree
  std::vector<std::vector<NodeId>> children;

  [[nodiscard]] std::size_t node_count() const { return parent.size(); }
  // True iff every node is on the tree (graph connected).
  [[nodiscard]] bool spans_all() const;
  [[nodiscard]] HopCount depth() const;
};

// BFS spanning tree rooted at `root`; levels equal hop distance from root.
[[nodiscard]] SpanningTree bfs_tree(const Graph& g, NodeId root);

// DFS spanning tree rooted at `root` (the "arbitrary" tree alternative);
// levels equal *tree* distance from the root, not graph distance.
[[nodiscard]] SpanningTree dfs_tree(const Graph& g, NodeId root);

// Validates parent/level/children mutual consistency and acyclicity.
[[nodiscard]] bool is_valid_tree(const SpanningTree& tree, const Graph& g);

}  // namespace wcds::graph
