#include "graph/spanning_tree.h"

#include <algorithm>
#include <queue>
#include <stack>

namespace wcds::graph {

bool SpanningTree::spans_all() const {
  return std::none_of(level.begin(), level.end(),
                      [](HopCount l) { return l == kUnreachable; });
}

HopCount SpanningTree::depth() const {
  HopCount d = 0;
  for (HopCount l : level) {
    if (l != kUnreachable) d = std::max(d, l);
  }
  return d;
}

SpanningTree bfs_tree(const Graph& g, NodeId root) {
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(g.node_count(), kInvalidNode);
  tree.level.assign(g.node_count(), kUnreachable);
  tree.children.assign(g.node_count(), {});
  std::queue<NodeId> frontier;
  tree.level[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (tree.level[v] == kUnreachable) {
        tree.level[v] = tree.level[u] + 1;
        tree.parent[v] = u;
        tree.children[u].push_back(v);
        frontier.push(v);
      }
    }
  }
  return tree;
}

SpanningTree dfs_tree(const Graph& g, NodeId root) {
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(g.node_count(), kInvalidNode);
  tree.level.assign(g.node_count(), kUnreachable);
  tree.children.assign(g.node_count(), {});
  std::stack<NodeId> stack;
  tree.level[root] = 0;
  stack.push(root);
  while (!stack.empty()) {
    const NodeId u = stack.top();
    stack.pop();
    for (NodeId v : g.neighbors(u)) {
      if (tree.level[v] == kUnreachable && v != root) {
        tree.level[v] = tree.level[u] + 1;
        tree.parent[v] = u;
        tree.children[u].push_back(v);
        stack.push(v);
      }
    }
  }
  return tree;
}

bool is_valid_tree(const SpanningTree& tree, const Graph& g) {
  const std::size_t n = g.node_count();
  if (tree.parent.size() != n || tree.level.size() != n ||
      tree.children.size() != n || tree.root >= n) {
    return false;
  }
  if (tree.parent[tree.root] != kInvalidNode || tree.level[tree.root] != 0) {
    return false;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (u == tree.root) continue;
    if (tree.level[u] == kUnreachable) {
      if (tree.parent[u] != kInvalidNode) return false;
      continue;
    }
    const NodeId p = tree.parent[u];
    if (p == kInvalidNode || p >= n) return false;
    if (!g.has_edge(u, p)) return false;
    if (tree.level[u] != tree.level[p] + 1) return false;
    const auto& siblings = tree.children[p];
    if (std::find(siblings.begin(), siblings.end(), u) == siblings.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace wcds::graph
