// Immutable undirected graph in compressed-sparse-row form.
//
// Build with GraphBuilder (deduplicating, loop-rejecting), then query.  All
// algorithm layers (MIS, WCDS, spanner analysis, simulator) operate on this
// type; unit-disk graphs are produced by src/udg.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace wcds::graph {

class Graph {
 public:
  Graph() = default;

  // `offsets` has n+1 entries; `adjacency[offsets[u]..offsets[u+1])` are the
  // neighbors of u, sorted ascending.  GraphBuilder produces this layout.
  Graph(std::vector<std::uint32_t> offsets, std::vector<NodeId> adjacency);

  [[nodiscard]] std::size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  // Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const { return adjacency_.size() / 2; }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u], degree(u)};
  }

  // O(log deg(u)) membership test on the sorted adjacency row.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  // Directed CSR slots: slot of (u, v) is row_begin(u) + index of v in u's
  // sorted adjacency row.  Slots are dense in [0, adjacency_slots()) and
  // stable for the graph's lifetime, so per-link state (e.g. the simulator's
  // FIFO link clocks) can live in a flat vector instead of a hash map.
  [[nodiscard]] std::size_t adjacency_slots() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t row_begin(NodeId u) const { return offsets_[u]; }

  // Slot of directed pair (u, v), or kNoSlot when v is not adjacent to u.
  // O(log deg(u)), same search as has_edge.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t edge_slot(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] double average_degree() const;

  // All undirected edges as (u, v) with u < v, in row order.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> adjacency_;
};

// Collects undirected edges, then emits a Graph.  Duplicate edges are merged;
// self-loops are rejected (the UDG model has none).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t node_count) : node_count_(node_count) {}

  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  // Consumes the builder.
  [[nodiscard]] Graph build() &&;

 private:
  std::size_t node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

// Graph from an explicit edge list (test convenience).
[[nodiscard]] Graph from_edges(std::size_t node_count,
                               std::span<const std::pair<NodeId, NodeId>> edges);
[[nodiscard]] Graph from_edges(
    std::size_t node_count,
    std::initializer_list<std::pair<NodeId, NodeId>> edges);

}  // namespace wcds::graph
