// Biconnected components and cut vertices (articulation points).
//
// A cut vertex of G is a node whose removal increases the number of
// connected components; the biconnected components (blocks) are the maximal
// subgraphs with no cut vertex.  The resilience layer uses both to patch a
// backbone toward 2-connectivity: a backbone node that is a cut vertex of
// the weakly induced subgraph is exactly a node whose crash would split the
// surviving backbone (src/wcds/resilient.h), and the shortest-ear
// augmentation merges the blocks it separates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::graph {

struct BiconnectedComponents {
  static constexpr std::uint32_t kNoBlock = static_cast<std::uint32_t>(-1);

  // Node-indexed: true iff removing the node disconnects its component.
  std::vector<bool> is_cut_vertex;

  // Block id per directed CSR slot (graph::Graph::edge_slot); both
  // directions of an undirected edge carry the same id.  Every edge belongs
  // to exactly one block, so kNoBlock never survives construction.
  std::vector<std::uint32_t> edge_block;

  std::uint32_t block_count = 0;

  // Cut vertices as an ascending node list (convenience view of the mask).
  [[nodiscard]] std::vector<NodeId> cut_vertices() const;
};

// Iterative Tarjan lowlink DFS, O(n + m); handles disconnected graphs
// (each component is processed independently, isolated nodes own no block).
[[nodiscard]] BiconnectedComponents biconnected_components(const Graph& g);

}  // namespace wcds::graph
