// Weighted shortest paths over geometric edge lengths.
//
// Used for the paper's *geometric* dilation (Section 3): l_G(u, v) is the
// total Euclidean length of a minimum-distance path in G.  Edge weights are
// supplied as node positions; the weight of edge (u, v) is ||uv||.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::graph {

inline constexpr double kInfiniteLength = std::numeric_limits<double>::infinity();

// Euclidean shortest-path length from `source` to every node; infinity where
// disconnected.  `points.size()` must equal `g.node_count()`.
[[nodiscard]] std::vector<double> geometric_shortest_paths(
    const Graph& g, std::span<const geom::Point> points, NodeId source);

// For every node v, the *maximum* total Euclidean length over all minimum-hop
// paths from `source` to v in g.  This is l_G'(u, v) from Section 3: the
// worst-case length of a min-hop route, computable by dynamic programming on
// the BFS layer DAG.  Infinity where disconnected.
[[nodiscard]] std::vector<double> max_length_of_min_hop_paths(
    const Graph& g, std::span<const geom::Point> points, NodeId source);

}  // namespace wcds::graph
