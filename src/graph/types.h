// Fundamental identifier types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace wcds {

// Node identifiers double as the static rank ("ID") used by the paper's
// algorithms, so they are dense integers 0..n-1 by convention, but nothing in
// the graph layer requires density beyond construction.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Hop counts; kUnreachable marks disconnected pairs.
using HopCount = std::uint32_t;
inline constexpr HopCount kUnreachable = std::numeric_limits<HopCount>::max();

}  // namespace wcds
