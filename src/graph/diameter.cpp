#include "graph/diameter.h"

#include <algorithm>
#include <vector>

#include "graph/bfs.h"
#include "parallel/thread_pool.h"

namespace wcds::graph {

DistanceMetrics distance_metrics(const Graph& g, std::size_t max_sources) {
  DistanceMetrics metrics;
  const std::size_t n = g.node_count();
  if (n == 0) return metrics;
  const std::size_t count = std::min(n, max_sources);
  // One partial per BFS source, merged in source order: parallel and serial
  // runs produce byte-identical results (each source's sum accumulates on
  // one lane; the cross-source reduction order is fixed).
  struct SourcePartial {
    HopCount eccentricity = 0;
    double sum = 0.0;
    std::uint64_t pairs = 0;
  };
  std::vector<SourcePartial> partials(count);
  parallel::parallel_for(0, count, 1, [&](std::size_t i) {
    SourcePartial& partial = partials[i];
    const NodeId source = static_cast<NodeId>(i * n / count);
    const auto dist = bfs_distances(g, source);
    for (NodeId v = 0; v < n; ++v) {
      if (v == source || dist[v] == kUnreachable) continue;
      partial.eccentricity = std::max(partial.eccentricity, dist[v]);
      partial.sum += static_cast<double>(dist[v]);
      ++partial.pairs;
    }
  });
  double sum = 0.0;
  for (const SourcePartial& partial : partials) {
    metrics.diameter = std::max(metrics.diameter, partial.eccentricity);
    sum += partial.sum;
    metrics.connected_pairs += partial.pairs;
  }
  if (metrics.connected_pairs > 0) {
    metrics.average_path_length =
        sum / static_cast<double>(metrics.connected_pairs);
  }
  return metrics;
}

HopCount double_sweep_diameter_bound(const Graph& g, NodeId start) {
  if (g.node_count() == 0) return 0;
  const auto first = bfs_distances(g, start);
  NodeId farthest = start;
  HopCount best = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (first[v] != kUnreachable && first[v] > best) {
      best = first[v];
      farthest = v;
    }
  }
  return eccentricity(g, farthest);
}

}  // namespace wcds::graph
