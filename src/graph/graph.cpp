#include "graph/graph.h"

#include <algorithm>

#include "check/check.h"

namespace wcds::graph {

Graph::Graph(std::vector<std::uint32_t> offsets, std::vector<NodeId> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  WCDS_REQUIRE(!offsets_.empty(), "Graph: offsets must have n+1 entries");
  WCDS_REQUIRE(offsets_.back() == adjacency_.size(),
               "Graph: offsets/adjacency size mismatch");
  WCDS_DCHECK(std::is_sorted(offsets_.begin(), offsets_.end()),
              "Graph: offsets must be non-decreasing");
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::size_t Graph::edge_slot(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return kNoSlot;
  return offsets_[u] + static_cast<std::size_t>(it - row.begin());
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < node_count(); ++u) best = std::max(best, degree(u));
  return best;
}

double Graph::average_degree() const {
  if (node_count() == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) /
         static_cast<double>(node_count());
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) result.emplace_back(u, v);
    }
  }
  return result;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  WCDS_REQUIRE(u != v, "GraphBuilder: self-loop at node " << u);
  WCDS_REQUIRE_BOUNDS(u < node_count_ && v < node_count_,
                      "GraphBuilder: node id out of range");
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() && {
  // Deduplicate on the canonical (min, max) orientation.
  for (auto& [u, v] : edges_) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<std::uint32_t> offsets(node_count_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> adjacency(offsets.back());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    adjacency[cursor[u]++] = v;
    adjacency[cursor[v]++] = u;
  }
  // Rows are sorted because edges were sorted by (u, v) and filled in order
  // for u-rows; v-rows receive u in increasing u order as well.  Sort anyway
  // to keep the invariant independent of fill order subtleties.
  for (std::size_t u = 0; u < node_count_; ++u) {
    std::sort(adjacency.begin() + offsets[u], adjacency.begin() + offsets[u + 1]);
  }
  return Graph(std::move(offsets), std::move(adjacency));
}

Graph from_edges(std::size_t node_count,
                 std::span<const std::pair<NodeId, NodeId>> edges) {
  GraphBuilder builder(node_count);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return std::move(builder).build();
}

Graph from_edges(std::size_t node_count,
                 std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  return from_edges(node_count,
                    std::span<const std::pair<NodeId, NodeId>>(
                        edges.begin(), edges.size()));
}

}  // namespace wcds::graph
