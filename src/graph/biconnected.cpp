#include "graph/biconnected.h"

#include <algorithm>

#include "check/check.h"

namespace wcds::graph {

std::vector<NodeId> BiconnectedComponents::cut_vertices() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < is_cut_vertex.size(); ++u) {
    if (is_cut_vertex[u]) out.push_back(u);
  }
  return out;
}

BiconnectedComponents biconnected_components(const Graph& g) {
  const std::size_t n = g.node_count();
  BiconnectedComponents out;
  out.is_cut_vertex.assign(n, false);
  out.edge_block.assign(g.adjacency_slots(), BiconnectedComponents::kNoBlock);

  // disc == 0 means unvisited; discovery times start at 1.
  std::vector<std::uint32_t> disc(n, 0);
  std::vector<std::uint32_t> low(n, 0);
  std::uint32_t timer = 0;

  struct Frame {
    NodeId u = kInvalidNode;
    NodeId parent = kInvalidNode;
    std::uint32_t next = 0;          // index into u's adjacency row
    std::uint32_t children = 0;      // DFS children (root cut-vertex rule)
    bool parent_edge_skipped = false;  // skip the tree edge back exactly once
  };
  std::vector<Frame> stack;
  // Directed edges (source, source's CSR slot) in DFS discovery order.
  struct StackedEdge {
    NodeId source = kInvalidNode;
    std::size_t slot = 0;
  };
  std::vector<StackedEdge> edge_stack;

  const auto close_block = [&](std::size_t until_slot) {
    // Pop edges down to and including `until_slot` into a fresh block,
    // stamping both directions of each undirected edge.
    const std::uint32_t block = out.block_count++;
    while (true) {
      WCDS_DCHECK(!edge_stack.empty(),
                  "biconnected_components: edge stack underflow");
      const StackedEdge edge = edge_stack.back();
      edge_stack.pop_back();
      out.edge_block[edge.slot] = block;
      const NodeId target =
          g.neighbors(edge.source)[edge.slot - g.row_begin(edge.source)];
      out.edge_block[g.edge_slot(target, edge.source)] = block;
      if (edge.slot == until_slot) break;
    }
  };

  for (NodeId root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    disc[root] = low[root] = ++timer;
    stack.push_back({root, kInvalidNode, 0, 0, true});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId u = frame.u;
      const auto row = g.neighbors(u);
      if (frame.next < row.size()) {
        const std::uint32_t i = frame.next++;
        const NodeId v = row[i];
        if (v == frame.parent && !frame.parent_edge_skipped) {
          frame.parent_edge_skipped = true;  // no multi-edges (GraphBuilder)
          continue;
        }
        const std::size_t slot = g.row_begin(u) + i;
        if (disc[v] == 0) {
          ++frame.children;
          edge_stack.push_back({u, slot});
          disc[v] = low[v] = ++timer;
          stack.push_back({v, u, 0, 0, false});
        } else if (disc[v] < disc[u]) {
          // Back edge to an ancestor still on the DFS path.
          edge_stack.push_back({u, slot});
          low[u] = std::min(low[u], disc[v]);
        }
        // disc[v] > disc[u]: forward edge already handled from v's side.
        continue;
      }
      stack.pop_back();
      if (stack.empty()) continue;
      Frame& up = stack.back();
      const NodeId p = up.u;
      low[p] = std::min(low[p], low[u]);
      if (low[u] >= disc[p]) {
        // p separates u's subtree: close the block of the tree edge (p, u).
        const std::size_t tree_slot = g.edge_slot(p, u);
        close_block(tree_slot);
        if (up.parent != kInvalidNode || up.children >= 2) {
          out.is_cut_vertex[p] = true;
        }
      }
    }
    WCDS_DCHECK(edge_stack.empty(),
                "biconnected_components: dangling edges after root " << root);
  }
  return out;
}

}  // namespace wcds::graph
