#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "check/check.h"
#include "graph/bfs.h"

namespace wcds::graph {

std::vector<double> geometric_shortest_paths(const Graph& g,
                                             std::span<const geom::Point> points,
                                             NodeId source) {
  WCDS_REQUIRE(points.size() == g.node_count(),
               "geometric_shortest_paths: size mismatch");
  std::vector<double> dist(g.node_count(), kInfiniteLength);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (NodeId v : g.neighbors(u)) {
      const double nd = d + geom::distance(points[u], points[v]);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<double> max_length_of_min_hop_paths(
    const Graph& g, std::span<const geom::Point> points, NodeId source) {
  WCDS_REQUIRE(points.size() == g.node_count(),
               "max_length_of_min_hop_paths: size mismatch");
  const auto hops = bfs_distances(g, source);
  // Process nodes in increasing hop order; maxlen[v] = max over neighbors p
  // one layer closer of maxlen[p] + ||pv||.
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (hops[u] != kUnreachable) order.push_back(u);
  }
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return hops[a] < hops[b]; });

  std::vector<double> maxlen(g.node_count(), kInfiniteLength);
  maxlen[source] = 0.0;
  for (NodeId v : order) {
    if (v == source) continue;
    double best = -1.0;
    for (NodeId p : g.neighbors(v)) {
      if (hops[p] != kUnreachable && hops[p] + 1 == hops[v]) {
        const double candidate = maxlen[p] + geom::distance(points[p], points[v]);
        if (candidate > best) best = candidate;
      }
    }
    WCDS_DCHECK_GE(best, 0.0, "BFS layering guarantees a predecessor for "
                                  << v);
    maxlen[v] = best;
  }
  return maxlen;
}

}  // namespace wcds::graph
