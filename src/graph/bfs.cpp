#include "graph/bfs.h"

#include <algorithm>
#include <queue>

#include "check/check.h"

namespace wcds::graph {

std::vector<HopCount> bfs_distances(const Graph& g, NodeId source) {
  return multi_source_bfs(g, std::span<const NodeId>(&source, 1));
}

std::vector<HopCount> multi_source_bfs(const Graph& g,
                                       std::span<const NodeId> sources) {
  std::vector<HopCount> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  for (NodeId s : sources) {
    WCDS_DCHECK_LT(s, g.node_count(), "multi_source_bfs: source out of range");
    if (dist[s] != 0) {
      dist[s] = 0;
      frontier.push(s);
    }
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

HopCount hop_distance(const Graph& g, NodeId source, NodeId target) {
  WCDS_DCHECK_LT(source, g.node_count(), "hop_distance: source out of range");
  WCDS_DCHECK_LT(target, g.node_count(), "hop_distance: target out of range");
  if (source == target) return 0;
  std::vector<HopCount> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        if (v == target) return dist[v];
        frontier.push(v);
      }
    }
  }
  return kUnreachable;
}

Components connected_components(const Graph& g) {
  Components result;
  result.label.assign(g.node_count(), kInvalidNode);
  std::queue<NodeId> frontier;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (result.label[s] != kInvalidNode) continue;
    const std::uint32_t id = result.count++;
    result.label[s] = id;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (result.label[v] == kInvalidNode) {
          result.label[v] = id;
          frontier.push(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  return connected_components(g).count == 1;
}

HopCount eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  HopCount ecc = 0;
  for (HopCount d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::vector<NodeId> ball(const Graph& g, NodeId center, HopCount radius) {
  std::vector<NodeId> members;
  const auto dist = bfs_distances(g, center);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (dist[u] != kUnreachable && dist[u] <= radius) members.push_back(u);
  }
  return members;
}

}  // namespace wcds::graph
