// Network-scale distance metrics: exact diameter and average path length.
//
// The completion times of the distributed phases scale with the network
// diameter (T4's "time ~ sqrt(n)" shape for fixed density); these helpers
// make that relation measurable.
#pragma once

#include <cstdint>
#include <limits>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::graph {

struct DistanceMetrics {
  HopCount diameter = 0;          // max finite pairwise hop distance
  double average_path_length = 0; // mean over connected ordered pairs
  std::uint64_t connected_pairs = 0;
};

// Exact metrics via one BFS per node: O(n * (n + m)).  Fine for the sizes
// this library simulates; pass `max_sources` to estimate from a strided
// sample on larger graphs (diameter then becomes a lower bound).
[[nodiscard]] DistanceMetrics distance_metrics(
    const Graph& g,
    std::size_t max_sources = std::numeric_limits<std::size_t>::max());

// Double-sweep lower bound on the diameter: BFS from `start`, then BFS from
// the farthest node found.  Exact on trees, a strong lower bound in general,
// O(n + m).
[[nodiscard]] HopCount double_sweep_diameter_bound(const Graph& g,
                                                   NodeId start = 0);

}  // namespace wcds::graph
