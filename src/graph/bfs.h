// Breadth-first search primitives: hop distances, components, eccentricity.
//
// Hop ("topological") distance is the metric used throughout the paper for
// the MIS structural lemmas and for the spanner's topological dilation.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::graph {

// Hop distance from `source` to every node; kUnreachable where disconnected.
[[nodiscard]] std::vector<HopCount> bfs_distances(const Graph& g, NodeId source);

// Hop distance from the nearest of `sources` to every node.
[[nodiscard]] std::vector<HopCount> multi_source_bfs(
    const Graph& g, std::span<const NodeId> sources);

// Hop distance between a single pair; kUnreachable if disconnected.  Early-
// exits as soon as `target` is settled.
[[nodiscard]] HopCount hop_distance(const Graph& g, NodeId source, NodeId target);

// Component label per node (labels are 0..k-1 in discovery order).
struct Components {
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

// Max finite hop distance from `source` (its eccentricity within its
// component).
[[nodiscard]] HopCount eccentricity(const Graph& g, NodeId source);

// All nodes within `radius` hops of `center`, including the center.
[[nodiscard]] std::vector<NodeId> ball(const Graph& g, NodeId center,
                                       HopCount radius);

}  // namespace wcds::graph
