#include "graph/subgraph.h"

#include "check/check.h"

namespace wcds::graph {

Graph weakly_induced_subgraph(const Graph& g, const std::vector<bool>& members) {
  WCDS_REQUIRE(members.size() == g.node_count(),
               "weakly_induced_subgraph: mask size mismatch");
  GraphBuilder builder(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && (members[u] || members[v])) builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

Graph induced_subgraph(const Graph& g, const std::vector<bool>& members) {
  WCDS_REQUIRE(members.size() == g.node_count(),
               "induced_subgraph: mask size mismatch");
  GraphBuilder builder(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!members[u]) continue;
    for (NodeId v : g.neighbors(u)) {
      if (u < v && members[v]) builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

std::vector<bool> make_mask(std::size_t node_count,
                            std::span<const NodeId> members) {
  std::vector<bool> mask(node_count, false);
  for (NodeId u : members) {
    WCDS_REQUIRE_BOUNDS(u < node_count, "make_mask: node id out of range");
    mask[u] = true;
  }
  return mask;
}

}  // namespace wcds::graph
