// Minimal dependency-free JSON value, writer and parser for the
// observability export path (docs/OBSERVABILITY.md documents the schema).
//
// Design choices, sized to this repo's needs:
//  * objects preserve insertion order so every exported document has a
//    stable, diff-friendly key order;
//  * numbers are doubles, printed without a fraction when integral and with
//    max_digits10 precision otherwise, so dump -> parse round-trips exactly
//    for every value the exporter produces;
//  * the parser accepts standard JSON (it exists so tests and CI can
//    round-trip and validate what the writer emits).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "obs/metrics.h"

namespace wcds::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;  // insertion order

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}                      // NOLINT
  Json(bool value) : value_(value) {}                            // NOLINT
  Json(double value) : value_(value) {}                          // NOLINT
  Json(std::int64_t value)                                       // NOLINT
      : value_(static_cast<double>(value)) {}
  Json(std::uint64_t value)                                      // NOLINT
      : value_(static_cast<double>(value)) {}
  Json(int value) : value_(static_cast<double>(value)) {}        // NOLINT
  Json(unsigned value) : value_(static_cast<double>(value)) {}   // NOLINT
  Json(std::string value) : value_(std::move(value)) {}          // NOLINT
  Json(std::string_view value) : value_(std::string(value)) {}   // NOLINT
  Json(const char* value) : value_(std::string(value)) {}        // NOLINT

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] bool is_null() const;
  [[nodiscard]] bool is_bool() const;
  [[nodiscard]] bool is_number() const;
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_array() const;
  [[nodiscard]] bool is_object() const;

  // Typed access; WCDS_REQUIRE_STATE on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // Object insert-or-get (creates an object from null).
  Json& operator[](std::string_view key);
  // Object lookup; WCDS_REQUIRE_BOUNDS if missing.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  // Array append (creates an array from null).
  void push_back(Json value);
  [[nodiscard]] std::size_t size() const;  // array/object element count

  // Serialize; indent < 0 emits compact single-line JSON, otherwise
  // pretty-prints with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = 2) const;

  // Parse standard JSON; throws std::invalid_argument with byte offset on
  // malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  explicit Json(Array value) : value_(std::move(value)) {}
  explicit Json(Object value) : value_(std::move(value)) {}

  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

// Snapshot serializers used by the bench exporter.
[[nodiscard]] Json to_json(const HistogramSnapshot& histogram);
[[nodiscard]] Json to_json(const MetricsSnapshot& snapshot);

}  // namespace wcds::obs
