// Recorder: the handle instrumented layers share.
//
// A Recorder bundles a MetricsRegistry with an optional TraceSink.  Every
// instrumented call site takes an `obs::Recorder*` that defaults to null;
// null means "record nothing" and costs one branch.  The process-global
// recorder is a convenience for layers that cannot thread the pointer
// explicitly (the bench harness installs one when `--json_out=` is given,
// so phase timings flow into the exported JSON without touching each
// binary).
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wcds::obs {

class Recorder {
 public:
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  void set_trace_sink(TraceSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] TraceSink* trace_sink() const noexcept { return sink_; }

  [[nodiscard]] MetricsSnapshot snapshot() const { return metrics_.snapshot(); }

 private:
  MetricsRegistry metrics_;
  TraceSink* sink_ = nullptr;
};

// Process-global recorder; null (the default) disables ambient recording.
// The pointer swap is atomic, but recording through a recorder that another
// thread is uninstalling is still a logic error — install at quiescent
// points (program start, bench harness setup).
[[nodiscard]] Recorder* global_recorder() noexcept;
Recorder* set_global_recorder(Recorder* recorder) noexcept;  // returns old

// Resolve an explicit per-call recorder against the ambient one.
[[nodiscard]] inline Recorder* recorder_or_global(Recorder* recorder) noexcept {
  return recorder != nullptr ? recorder : global_recorder();
}

// RAII wall-clock phase scope (steady clock).  Records one observation into
// the histogram `phase_ms/<name>` on destruction (or explicit stop()).
// Nestable; a null recorder makes construction and destruction no-ops that
// allocate nothing.
class PhaseTimer {
 public:
  PhaseTimer(Recorder* recorder, std::string_view name);
  ~PhaseTimer() { stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  // Record now instead of at scope exit; idempotent.
  void stop();

 private:
  Recorder* recorder_;
  std::string metric_;  // only built when recorder_ != nullptr
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wcds::obs
