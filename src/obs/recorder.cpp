#include "obs/recorder.h"

namespace wcds::obs {
namespace {

Recorder* g_recorder = nullptr;

}  // namespace

Recorder* global_recorder() noexcept { return g_recorder; }

Recorder* set_global_recorder(Recorder* recorder) noexcept {
  Recorder* previous = g_recorder;
  g_recorder = recorder;
  return previous;
}

PhaseTimer::PhaseTimer(Recorder* recorder, std::string_view name)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  metric_.reserve(std::string_view("phase_ms/").size() + name.size());
  metric_.append("phase_ms/");
  metric_.append(name);
  start_ = std::chrono::steady_clock::now();
}

void PhaseTimer::stop() {
  if (recorder_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  recorder_->metrics().observe(metric_, ms);
  recorder_ = nullptr;
}

}  // namespace wcds::obs
