#include "obs/recorder.h"

#include <atomic>

namespace wcds::obs {
namespace {

// Atomic so concurrent readers (recorder_or_global on worker threads) never
// race an install; swapping while a run is recording is still a logic error.
std::atomic<Recorder*> g_recorder{nullptr};

}  // namespace

Recorder* global_recorder() noexcept { return g_recorder.load(); }

Recorder* set_global_recorder(Recorder* recorder) noexcept {
  return g_recorder.exchange(recorder);
}

PhaseTimer::PhaseTimer(Recorder* recorder, std::string_view name)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  metric_.reserve(std::string_view("phase_ms/").size() + name.size());
  metric_.append("phase_ms/");
  metric_.append(name);
  start_ = std::chrono::steady_clock::now();
}

void PhaseTimer::stop() {
  if (recorder_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  recorder_->metrics().observe(metric_, ms);
  recorder_ = nullptr;
}

}  // namespace wcds::obs
