// Observability metrics: named counters, gauges and histograms collected
// during a run and exported as one stable JSON document (see obs/json.h and
// docs/OBSERVABILITY.md).
//
// The registry is deliberately simple — a run records into it, a snapshot is
// taken at the end, and the snapshot is serialized.  Histograms keep raw
// samples and compute nearest-rank quantiles (p50/p95) at snapshot time,
// which is exact and cheap at the sample counts a bench run produces.
//
// Instrumented hot paths hold an `obs::Recorder*` that is null by default;
// every record call sits behind that null check, so an un-instrumented run
// pays one predicted branch and allocates no metric state at all (the
// zero-allocation guard test in tests/obs_test.cpp pins this down via
// `MetricsRegistry::metric_creations()`).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wcds::obs {

// Point-in-time summary of one histogram (nearest-rank quantiles).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

// Point-in-time copy of every metric in a registry.  Ordered maps give the
// JSON exporter a stable key order.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  // Counter: monotone accumulator.
  void add(std::string_view counter, std::uint64_t delta = 1);

  // Gauge: last-write-wins sample of a level.
  void set(std::string_view gauge, double value);

  // Gauge variant keeping the high-water mark (e.g. peak queue depth).
  void set_max(std::string_view gauge, double value);

  // Histogram: record one observation.
  void observe(std::string_view histogram, double value);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  void clear();
  [[nodiscard]] bool empty() const;

  // Total number of metric entries ever interned across all registries in
  // this process.  A hot path guarded by a null recorder must leave this
  // unchanged — the guard test's witness that "null recorder" really means
  // "no metric allocations".
  [[nodiscard]] static std::uint64_t metric_creations() noexcept;

 private:
  // std::less<> enables heterogeneous string_view lookup: recording into an
  // existing metric never materializes a std::string.
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::vector<double>, std::less<>> histograms_;
};

// Nearest-rank quantile of `sorted` (ascending): the ceil(q*n)-th smallest
// value.  Exposed for the quantile unit tests.
[[nodiscard]] double nearest_rank_quantile(const std::vector<double>& sorted,
                                           double q);

}  // namespace wcds::obs
