// Message-level trace events emitted by the sim runtime.
//
// The sink interface is deliberately free of sim types (plain integers for
// node ids, times and message types) so obs stays below sim in the layer
// graph: sim depends on obs, never the reverse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wcds::obs {

// Sentinel destination mirroring sim::kBroadcastDst.
inline constexpr std::uint32_t kTraceBroadcastDst = 0xFFFFFFFFu;

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,     // one radio transmission (unicast or local broadcast)
    kDeliver,  // one per-recipient copy handed to a protocol node
  };

  Kind kind = Kind::kSend;
  std::uint64_t time = 0;          // sim time of the event
  std::uint32_t src = 0;           // transmitting node
  std::uint32_t dst = 0;           // recipient, or kTraceBroadcastDst
  std::uint16_t message_type = 0;  // protocol-defined sim::MessageType
  std::uint64_t queue_depth = 0;   // pending deliveries after the event
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

// In-memory sink for tests and post-run analysis.
class MemoryTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace wcds::obs
