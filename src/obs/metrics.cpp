#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "check/check.h"

namespace wcds::obs {
namespace {

std::atomic<std::uint64_t> g_metric_creations{0};

// Insert-or-find without materializing a std::string on the hot (existing
// metric) path; counts every genuinely new entry for the guard test.
template <typename Map, typename Default>
typename Map::mapped_type& intern(Map& map, std::string_view name,
                                  Default&& initial) {
  auto it = map.lower_bound(name);
  if (it == map.end() || it->first != name) {
    it = map.emplace_hint(it, std::string(name),
                          std::forward<Default>(initial));
    g_metric_creations.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

}  // namespace

void MetricsRegistry::add(std::string_view counter, std::uint64_t delta) {
  intern(counters_, counter, std::uint64_t{0}) += delta;
}

void MetricsRegistry::set(std::string_view gauge, double value) {
  intern(gauges_, gauge, 0.0) = value;
}

void MetricsRegistry::set_max(std::string_view gauge, double value) {
  double& slot = intern(gauges_, gauge, value);
  slot = std::max(slot, value);
}

void MetricsRegistry::observe(std::string_view histogram, double value) {
  intern(histograms_, histogram, std::vector<double>{}).push_back(value);
}

double nearest_rank_quantile(const std::vector<double>& sorted, double q) {
  WCDS_REQUIRE(!sorted.empty(), "nearest_rank_quantile: empty sample set");
  WCDS_REQUIRE(q > 0.0 && q <= 1.0, "nearest_rank_quantile: q = " << q);
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  for (const auto& [name, samples] : histograms_) {
    if (samples.empty()) continue;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    HistogramSnapshot h;
    h.count = sorted.size();
    h.min = sorted.front();
    h.max = sorted.back();
    double sum = 0.0;
    for (const double v : sorted) sum += v;
    h.mean = sum / static_cast<double>(sorted.size());
    h.p50 = nearest_rank_quantile(sorted, 0.50);
    h.p95 = nearest_rank_quantile(sorted, 0.95);
    snap.histograms.emplace(name, h);
  }
  return snap;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::uint64_t MetricsRegistry::metric_creations() noexcept {
  return g_metric_creations.load(std::memory_order_relaxed);
}

}  // namespace wcds::obs
