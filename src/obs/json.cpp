#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "check/check.h"

namespace wcds::obs {
namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double value) {
  // JSON has no NaN/Infinity; the exporter never produces them, but degrade
  // to null rather than emit an unparsable token if one slips through.
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  out += buf;
}

void write_newline(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("Json::parse: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (surrogate pairs are not produced by the writer;
          // encode lone surrogates as-is rather than reject).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double value = std::stod(token, &used);
      if (used != token.size()) fail("bad number");
      return Json(value);
    } catch (const std::invalid_argument&) {
      fail("bad number");
    } catch (const std::out_of_range&) {
      fail("number out of range");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
bool Json::is_bool() const { return std::holds_alternative<bool>(value_); }
bool Json::is_number() const { return std::holds_alternative<double>(value_); }
bool Json::is_string() const { return std::holds_alternative<std::string>(value_); }
bool Json::is_array() const { return std::holds_alternative<Array>(value_); }
bool Json::is_object() const { return std::holds_alternative<Object>(value_); }

bool Json::as_bool() const {
  WCDS_REQUIRE_STATE(is_bool(), "Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  WCDS_REQUIRE_STATE(is_number(), "Json: not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  WCDS_REQUIRE_STATE(is_string(), "Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  WCDS_REQUIRE_STATE(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  WCDS_REQUIRE_STATE(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  WCDS_REQUIRE_STATE(is_object(), "Json::operator[]: not an object");
  auto& object = std::get<Object>(value_);
  for (auto& [k, v] : object) {
    if (k == key) return v;
  }
  object.emplace_back(std::string(key), Json());
  return object.back().second;
}

const Json& Json::at(std::string_view key) const {
  for (const auto& entry : as_object()) {
    if (entry.first == key) return entry.second;
  }
  check::fail_bounds("Json::at", __FILE__, __LINE__,
                     "no key " + std::string(key));
}

bool Json::contains(std::string_view key) const {
  if (!is_object()) return false;
  for (const auto& entry : as_object()) {
    if (entry.first == key) return true;
  }
  return false;
}

void Json::push_back(Json value) {
  if (is_null()) value_ = Array{};
  WCDS_REQUIRE_STATE(is_array(), "Json::push_back: not an array");
  std::get<Array>(value_).push_back(std::move(value));
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  WCDS_REQUIRE_STATE(is_object(), "Json::size: not a container");
  return std::get<Object>(value_).size();
}

void Json::write(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    write_number(out, std::get<double>(value_));
  } else if (is_string()) {
    write_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& array = std::get<Array>(value_);
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const auto& element : array) {
      if (!first) out.push_back(',');
      first = false;
      write_newline(out, indent, depth + 1);
      element.write(out, indent, depth + 1);
    }
    write_newline(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& object = std::get<Object>(value_);
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, element] : object) {
      if (!first) out.push_back(',');
      first = false;
      write_newline(out, indent, depth + 1);
      write_escaped(out, key);
      out += indent < 0 ? ":" : ": ";
      element.write(out, indent, depth + 1);
    }
    write_newline(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

Json to_json(const HistogramSnapshot& histogram) {
  Json j = Json::object();
  j["count"] = histogram.count;
  j["min"] = histogram.min;
  j["max"] = histogram.max;
  j["mean"] = histogram.mean;
  j["p50"] = histogram.p50;
  j["p95"] = histogram.p95;
  return j;
}

Json to_json(const MetricsSnapshot& snapshot) {
  Json j = Json::object();
  Json& counters = j["counters"] = Json::object();
  for (const auto& [name, value] : snapshot.counters) counters[name] = value;
  Json& gauges = j["gauges"] = Json::object();
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  Json& histograms = j["histograms"] = Json::object();
  for (const auto& [name, value] : snapshot.histograms) {
    histograms[name] = to_json(value);
  }
  return j;
}

}  // namespace wcds::obs
