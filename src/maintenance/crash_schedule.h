// Crash/recover schedules over the maintained backbone.
//
// The message-passing protocols take their faults from fault::Plan via the
// runtime hook; the event-driven maintenance layer (DynamicWcds) takes them
// here, as explicit radio-off / radio-on events.  This lives in
// maintenance/ (not fault/) because it drives DynamicWcds directly: the
// declared layer DAG puts fault/ below maintenance/, and the include graph
// must follow it (wcds_lint layer-dag).
// Each crash and each recovery runs the paper's localized repair and is
// timed; the wall-clock repair latencies land in the `fault/repair_ms`
// histogram so the A6 experiment can report loss-rate vs recovery-time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "maintenance/dynamic_wcds.h"
#include "obs/recorder.h"
#include "wcds/wcds_result.h"

namespace wcds::maintenance {

// One crash/recover pair as applied to the maintained structure.
struct CrashOutcome {
  NodeId node = kInvalidNode;
  RepairReport crash_repair;
  RepairReport recover_repair;
  double crash_ms = 0.0;
  double recover_ms = 0.0;
};

struct CrashScheduleReport {
  std::vector<CrashOutcome> outcomes;
  double total_repair_ms = 0.0;
};

// Deactivate then reactivate each victim in order, auditing nothing itself:
// the DynamicWcds instance audits per event when built with audits on, and
// callers assert the final state.  Victims must be active and are restored
// before the next victim crashes (sequential outages).  `recorder` (null ok)
// receives one `fault/repair_ms` observation per repair.
CrashScheduleReport run_crash_schedule(DynamicWcds& wcds,
                                       std::span<const NodeId> victims,
                                       obs::Recorder* recorder = nullptr);

// Survival under the same schedule, without repair.  A (k,m)-resilient
// backbone (wcds/resilient.h) claims it can absorb any single crash with
// zero repair traffic; this replays `victims` — each crashing alone, the
// sequential-outage regime of run_crash_schedule — against the *static*
// `result` and judges each crash with check::survives_crashes.  The A9
// experiment pairs this against run_crash_schedule on a plain maintained
// backbone: same victims, repair_ms histogram vs survival counters.
struct SurvivalReport {
  std::size_t crashes = 0;
  std::size_t survived = 0;     // absorbed with zero repair
  std::vector<NodeId> failed;   // victims whose crash broke the backbone

  [[nodiscard]] bool all_survived() const { return survived == crashes; }
};

// `recorder` (null ok) receives one `resilience/survived_crashes` or
// `resilience/failed_crashes` count per victim.
SurvivalReport run_survival_schedule(const graph::Graph& g,
                                     const core::WcdsResult& result,
                                     std::span<const NodeId> victims,
                                     obs::Recorder* recorder = nullptr);

}  // namespace wcds::maintenance
