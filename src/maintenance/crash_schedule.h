// Crash/recover schedules over the maintained backbone.
//
// The message-passing protocols take their faults from fault::Plan via the
// runtime hook; the event-driven maintenance layer (DynamicWcds) takes them
// here, as explicit radio-off / radio-on events.  This lives in
// maintenance/ (not fault/) because it drives DynamicWcds directly: the
// declared layer DAG puts fault/ below maintenance/, and the include graph
// must follow it (wcds_lint layer-dag).
// Each crash and each recovery runs the paper's localized repair and is
// timed; the wall-clock repair latencies land in the `fault/repair_ms`
// histogram so the A6 experiment can report loss-rate vs recovery-time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "maintenance/dynamic_wcds.h"
#include "obs/recorder.h"

namespace wcds::maintenance {

// One crash/recover pair as applied to the maintained structure.
struct CrashOutcome {
  NodeId node = kInvalidNode;
  RepairReport crash_repair;
  RepairReport recover_repair;
  double crash_ms = 0.0;
  double recover_ms = 0.0;
};

struct CrashScheduleReport {
  std::vector<CrashOutcome> outcomes;
  double total_repair_ms = 0.0;
};

// Deactivate then reactivate each victim in order, auditing nothing itself:
// the DynamicWcds instance audits per event when built with audits on, and
// callers assert the final state.  Victims must be active and are restored
// before the next victim crashes (sequential outages).  `recorder` (null ok)
// receives one `fault/repair_ms` observation per repair.
CrashScheduleReport run_crash_schedule(DynamicWcds& wcds,
                                       std::span<const NodeId> victims,
                                       obs::Recorder* recorder = nullptr);

}  // namespace wcds::maintenance
