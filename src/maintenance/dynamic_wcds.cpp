#include "maintenance/dynamic_wcds.h"

#include <algorithm>
#include <queue>
#include <set>

#include "check/audit.h"
#include "check/check.h"
#include "graph/bfs.h"
#include "graph/subgraph.h"
#include "udg/udg.h"
#include "wcds/wcds_result.h"

namespace wcds::maintenance {
namespace {

// BFS truncated at 3 hops; returns visited nodes (center included).
std::vector<NodeId> truncated_ball(const graph::Graph& g, NodeId center,
                                   HopCount radius) {
  std::vector<HopCount> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> members;
  std::queue<NodeId> frontier;
  dist[center] = 0;
  frontier.push(center);
  members.push_back(center);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (dist[u] == radius) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        members.push_back(v);
        frontier.push(v);
      }
    }
  }
  return members;
}

}  // namespace

DynamicWcds::DynamicWcds(std::vector<geom::Point> points, double range)
    : points_(std::move(points)),
      active_(points_.size(), true),
      range_(range),
      recorder_(obs::global_recorder()) {
  WCDS_REQUIRE(range_ > 0.0, "DynamicWcds: range <= 0");
  obs::PhaseTimer build_timer(recorder_, "maintenance/initial_build");
  rebuild_graph();
  mis_.assign(points_.size(), false);
  // Initial MIS: greedy lowest-ID-first (Algorithm II's ranking).
  std::vector<bool> removed(points_.size(), false);
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (removed[u]) continue;
    mis_[u] = true;
    removed[u] = true;
    for (NodeId v : graph_.neighbors(u)) removed[v] = true;
  }
  // Initial bridges for every 3-hop MIS pair.
  std::vector<NodeId> all_mis;
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (mis_[u]) all_mis.push_back(u);
  }
  rebridge(all_mis);
  maybe_audit("construction");
}

void DynamicWcds::rebuild_graph() {
  // Inactive nodes are placed but radio-silent: build over active positions
  // and keep ids stable by masking edges after the fact.
  graph::GraphBuilder builder(points_.size());
  const auto full = udg::build_udg(points_, range_);
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (!active_[u]) continue;
    for (NodeId v : full.neighbors(u)) {
      if (u < v && active_[v]) builder.add_edge(u, v);
    }
  }
  graph_ = std::move(builder).build();
}

bool DynamicWcds::is_additional_dominator(NodeId u) const {
  return std::any_of(bridges_.begin(), bridges_.end(),
                     [&](const auto& entry) { return entry.second == u; });
}

std::vector<NodeId> DynamicWcds::dominators() const {
  std::set<NodeId> set;
  for (NodeId u = 0; u < points_.size(); ++u) {
    if (mis_[u]) set.insert(u);
  }
  for (const auto& [pair, v] : bridges_) set.insert(v);
  return {set.begin(), set.end()};
}

std::vector<NodeId> DynamicWcds::three_hop_ball(NodeId center) const {
  return truncated_ball(graph_, center, 3);
}

bool DynamicWcds::bridge_valid(NodeId a, NodeId b, NodeId v) const {
  // v must be active, adjacent to one endpoint and two hops from the other
  // (entries may be recorded from either endpoint of the pair).
  if (!active_[v] || !active_[a] || !active_[b]) return false;
  if (!mis_[a] || !mis_[b]) return false;
  const auto links = [&](NodeId near, NodeId far) {
    if (!graph_.has_edge(near, v)) return false;
    for (NodeId x : graph_.neighbors(v)) {
      if (graph_.has_edge(x, far)) return true;
    }
    return false;
  };
  return links(a, b) || links(b, a);
}

std::size_t DynamicWcds::rebridge(const std::vector<NodeId>& mis_nodes) {
  std::size_t changed = 0;
  std::set<NodeId> touched(mis_nodes.begin(), mis_nodes.end());

  // Drop entries with a touched endpoint or an invalid path.
  for (auto it = bridges_.begin(); it != bridges_.end();) {
    const auto [a, b] = it->first;
    const bool endpoint_touched = touched.count(a) > 0 || touched.count(b) > 0;
    if (endpoint_touched || !bridge_valid(a, b, it->second)) {
      it = bridges_.erase(it);
      ++changed;
    } else {
      ++it;
    }
  }

  // Recompute pairs around each touched MIS node.
  for (NodeId a : mis_nodes) {
    if (!mis_[a] || !active_[a]) continue;
    // Hop distances from a, truncated at 3.
    std::vector<HopCount> dist(graph_.node_count(), kUnreachable);
    std::queue<NodeId> frontier;
    dist[a] = 0;
    frontier.push(a);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      if (dist[u] == 3) continue;
      for (NodeId v : graph_.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = dist[u] + 1;
          frontier.push(v);
        }
      }
    }
    for (NodeId b = 0; b < graph_.node_count(); ++b) {
      if (!mis_[b] || b == a || dist[b] != 3) continue;
      const auto key = std::minmax(a, b);
      if (bridges_.count({key.first, key.second}) > 0) continue;
      // Lexicographically smallest (v, x) path a-v-x-b.
      NodeId best_v = kInvalidNode;
      for (NodeId v : graph_.neighbors(a)) {
        bool reaches = false;
        for (NodeId x : graph_.neighbors(v)) {
          if (graph_.has_edge(x, b)) {
            reaches = true;
            break;
          }
        }
        if (reaches) {
          best_v = v;
          break;  // neighbors() ascending: first hit is the smallest v
        }
      }
      if (best_v != kInvalidNode) {
        bridges_.emplace(std::pair{key.first, key.second}, best_v);
        ++changed;
      }
    }
  }
  return changed;
}

RepairReport DynamicWcds::repair(const std::vector<NodeId>& seeds,
                                 std::vector<NodeId> old_region) {
  RepairReport report;

  // Region: 3-hop balls (new graph) around the seeds, plus the pre-event
  // ball (coverage lost by the event is confined there).
  std::set<NodeId> region(old_region.begin(), old_region.end());
  for (NodeId s : seeds) {
    for (NodeId u : three_hop_ball(s)) region.insert(u);
  }

  // 1. Resolve MIS conflicts (adjacent dominators): demote the higher ID.
  std::vector<NodeId> demoted;
  bool conflict = true;
  while (conflict) {
    conflict = false;
    for (NodeId u : region) {
      if (!mis_[u] || !active_[u]) continue;
      for (NodeId v : graph_.neighbors(u)) {
        if (mis_[v] && v > u) {
          mis_[v] = false;
          demoted.push_back(v);
          conflict = true;
        }
      }
    }
  }
  // An inactive node cannot stay a dominator.
  for (NodeId u : region) {
    if (mis_[u] && !active_[u]) {
      mis_[u] = false;
      demoted.push_back(u);
    }
  }
  report.demoted = demoted.size();

  // 2. Restore maximality: any active node in the blast radius without a
  // dominator in its closed neighborhood is promoted, ascending by ID (the
  // promotion keeps independence because the candidate has no MIS neighbor).
  std::set<NodeId> coverage_candidates(region.begin(), region.end());
  for (NodeId d : demoted) {
    coverage_candidates.insert(d);
    for (NodeId v : graph_.neighbors(d)) coverage_candidates.insert(v);
  }
  std::vector<NodeId> promoted;
  for (NodeId u : coverage_candidates) {  // std::set iterates ascending
    if (!active_[u] || mis_[u]) continue;
    const auto row = graph_.neighbors(u);
    const bool dominated = std::any_of(row.begin(), row.end(),
                                       [&](NodeId v) { return mis_[v]; });
    if (!dominated) {
      mis_[u] = true;
      promoted.push_back(u);
    }
  }
  report.promoted = promoted.size();

  // 3. Re-derive bridges for every MIS node within 3 hops of anything that
  // changed (seeds, demotions, promotions).
  std::set<NodeId> changed(seeds.begin(), seeds.end());
  for (NodeId d : demoted) changed.insert(d);
  for (NodeId p : promoted) changed.insert(p);
  std::set<NodeId> affected_mis;
  for (NodeId c : changed) {
    for (NodeId u : three_hop_ball(c)) {
      if (mis_[u]) affected_mis.insert(u);
    }
  }
  for (NodeId u : old_region) {
    if (mis_[u]) affected_mis.insert(u);
  }
  for (NodeId d : demoted) affected_mis.insert(d);  // force entry erasure
  report.bridges_changed =
      rebridge({affected_mis.begin(), affected_mis.end()});

  report.region_size = region.size();
  return report;
}

RepairReport DynamicWcds::move_node(NodeId u, const geom::Point& destination) {
  WCDS_REQUIRE_BOUNDS(u < points_.size(), "move_node: bad id " << u);
  obs::PhaseTimer event_timer(recorder_, "maintenance/move_node");
  const auto old_region = active_[u] ? three_hop_ball(u) : std::vector<NodeId>{u};
  points_[u] = destination;
  rebuild_graph();
  const RepairReport report = repair({u}, old_region);
  event_timer.stop();
  record_event("move_node", report);
  maybe_audit("move_node");
  return report;
}

RepairReport DynamicWcds::deactivate(NodeId u) {
  WCDS_REQUIRE_BOUNDS(u < points_.size(), "deactivate: bad id " << u);
  if (!active_[u]) return {};
  obs::PhaseTimer event_timer(recorder_, "maintenance/deactivate");
  const auto old_region = three_hop_ball(u);
  active_[u] = false;
  rebuild_graph();
  const RepairReport report = repair({u}, old_region);
  event_timer.stop();
  record_event("deactivate", report);
  maybe_audit("deactivate");
  return report;
}

RepairReport DynamicWcds::activate(NodeId u) {
  WCDS_REQUIRE_BOUNDS(u < points_.size(), "activate: bad id " << u);
  if (active_[u]) return {};
  obs::PhaseTimer event_timer(recorder_, "maintenance/activate");
  active_[u] = true;
  rebuild_graph();
  const RepairReport report = repair({u}, {u});
  event_timer.stop();
  record_event("activate", report);
  maybe_audit("activate");
  return report;
}

RepairReport DynamicWcds::watchdog() {
  if (audit().ok()) return {};
  obs::PhaseTimer event_timer(recorder_, "maintenance/watchdog");
  // Recovery mode: seed the repair everywhere.  Costlier than the 3-hop
  // event path, but only reached when the maintained state was perturbed
  // outside the event interface.
  std::vector<NodeId> everyone(points_.size());
  for (NodeId u = 0; u < points_.size(); ++u) everyone[u] = u;
  const RepairReport report = repair(everyone, everyone);
  event_timer.stop();
  record_event("watchdog", report);
  maybe_audit("watchdog");
  return report;
}

void DynamicWcds::record_event(const char* event,
                               const RepairReport& report) const {
  if (recorder_ == nullptr) return;
  auto& metrics = recorder_->metrics();
  metrics.add("maintenance/events");
  metrics.add(std::string("maintenance/events/") + event);
  metrics.add("maintenance/demoted", report.demoted);
  metrics.add("maintenance/promoted", report.promoted);
  metrics.add("maintenance/bridges_changed", report.bridges_changed);
  // The 3-hop locality witness: region sizes stay flat as n grows.
  metrics.observe("maintenance/region_size",
                  static_cast<double>(report.region_size));
}

void DynamicWcds::maybe_audit(const char* event) const {
  if (!check::audits_enabled()) return;
  // Snapshot protocol state as a WcdsResult over the active UDG.
  const std::size_t n = points_.size();
  core::WcdsResult result;
  result.mask.assign(n, false);
  result.color.assign(n, core::NodeColor::kGray);
  result.dominators = dominators();
  for (NodeId u : result.dominators) {
    result.mask[u] = true;
    result.color[u] = core::NodeColor::kBlack;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (mis_[u]) result.mis_dominators.push_back(u);
  }
  for (NodeId u : result.dominators) {
    if (!mis_[u]) result.additional_dominators.push_back(u);
  }
  check::AuditOptions options;
  options.unit_disk = true;  // the active graph is a UDG by construction
  options.active = &active_;
  check::audit_invariants(graph_, result, options);
  // The maintenance-specific contract on top of the paper invariants: every
  // 3-hop MIS pair holds a valid additional-dominator bridge.
  const Audit state = audit();
  WCDS_CHECK(state.bridges_complete,
             "Section 4.2 (maintenance): unbridged 3-hop MIS pair after "
                 << event);
}

Audit DynamicWcds::audit() const {
  Audit audit;
  const std::size_t n = points_.size();

  // Independence + maximality over active nodes.
  audit.mis_independent = true;
  audit.mis_maximal = true;
  for (NodeId u = 0; u < n; ++u) {
    if (!active_[u]) continue;
    if (mis_[u]) {
      for (NodeId v : graph_.neighbors(u)) {
        if (mis_[v]) audit.mis_independent = false;
      }
    } else {
      const auto row = graph_.neighbors(u);
      if (std::none_of(row.begin(), row.end(),
                       [&](NodeId v) { return mis_[v]; })) {
        audit.mis_maximal = false;
      }
    }
  }

  // Every 3-hop MIS pair bridged.
  audit.bridges_complete = true;
  for (NodeId a = 0; a < n; ++a) {
    if (!mis_[a] || !active_[a]) continue;
    const auto dist = graph::bfs_distances(graph_, a);
    for (NodeId b = a + 1; b < n; ++b) {
      if (!mis_[b] || !active_[b] || dist[b] != 3) continue;
      const auto it = bridges_.find({a, b});
      if (it == bridges_.end() || !bridge_valid(a, b, it->second)) {
        audit.bridges_complete = false;
      }
    }
  }

  // Weak connectivity of S + C per connected component (judged over active
  // nodes; singleton components are trivially fine).
  std::vector<bool> dom_mask(n, false);
  for (NodeId d : dominators()) dom_mask[d] = true;
  const auto weak = graph::weakly_induced_subgraph(graph_, dom_mask);
  const auto comp_g = graph::connected_components(graph_);
  const auto comp_w = graph::connected_components(weak);
  audit.weakly_connected = true;
  // Two nodes in one G-component must share a weak component.
  std::vector<std::uint32_t> rep(comp_g.count, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    if (!active_[u]) continue;
    auto& r = rep[comp_g.label[u]];
    if (r == kInvalidNode) {
      r = comp_w.label[u];
    } else if (r != comp_w.label[u]) {
      audit.weakly_connected = false;
    }
  }
  return audit;
}

}  // namespace wcds::maintenance
