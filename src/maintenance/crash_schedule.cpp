#include "maintenance/crash_schedule.h"

#include <chrono>

#include "check/audit.h"
#include "check/check.h"

namespace wcds::maintenance {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  // The wall-clock reads below are the measurement this module exists to
  // make: repair latency feeds only the fault/repair_ms histogram, never a
  // trace, so nondeterminism cannot reach the byte-identical contract.
  // wcds-lint: allow(no-ambient-entropy)
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

CrashScheduleReport run_crash_schedule(DynamicWcds& wcds,
                                       std::span<const NodeId> victims,
                                       obs::Recorder* recorder) {
  CrashScheduleReport report;
  report.outcomes.reserve(victims.size());
  for (const NodeId victim : victims) {
    WCDS_REQUIRE(wcds.is_active(victim),
                 "run_crash_schedule: victim " << victim
                                               << " is already inactive");
    CrashOutcome outcome;
    outcome.node = victim;

    // wcds-lint: allow(no-ambient-entropy) — timing is the deliverable here
    auto start = Clock::now();
    outcome.crash_repair = wcds.deactivate(victim);
    outcome.crash_ms = elapsed_ms(start);

    // wcds-lint: allow(no-ambient-entropy) — timing is the deliverable here
    start = Clock::now();
    outcome.recover_repair = wcds.activate(victim);
    outcome.recover_ms = elapsed_ms(start);

    report.total_repair_ms += outcome.crash_ms + outcome.recover_ms;
    if (recorder != nullptr) {
      auto& metrics = recorder->metrics();
      metrics.observe("fault/repair_ms", outcome.crash_ms);
      metrics.observe("fault/repair_ms", outcome.recover_ms);
    }
    report.outcomes.push_back(outcome);
  }
  return report;
}

SurvivalReport run_survival_schedule(const graph::Graph& g,
                                     const core::WcdsResult& result,
                                     std::span<const NodeId> victims,
                                     obs::Recorder* recorder) {
  SurvivalReport report;
  report.crashes = victims.size();
  for (const NodeId victim : victims) {
    WCDS_REQUIRE(victim < g.node_count(),
                 "run_survival_schedule: victim " << victim << " of "
                                                  << g.node_count());
    const NodeId single[] = {victim};
    const bool ok = check::survives_crashes(g, result, single);
    if (ok) {
      ++report.survived;
    } else {
      report.failed.push_back(victim);
    }
    if (recorder != nullptr) {
      recorder->metrics().add(ok ? "resilience/survived_crashes"
                                 : "resilience/failed_crashes");
    }
  }
  return report;
}

}  // namespace wcds::maintenance
