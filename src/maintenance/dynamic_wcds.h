// Dynamic WCDS maintenance under node mobility and on/off events
// (paper, Section 4.2, final paragraphs).
//
// The paper states the key technique and defers the full procedure to a
// later paper: "maintain the MIS in the unit-disk graph at all times, and
// maintain information about all MIS-dominators within three-hop distance
// ... the nodes that get affected are within three-hop distance."  We
// implement exactly that contract:
//
//  * the radio environment (the UDG itself) is recomputed from positions on
//    every event — physics is global, protocol state is not;
//  * protocol-state repair is local: only nodes within the 3-hop balls of
//    the event site (old and new position) can change role;
//  * invariants after every event: S is an MIS of the active graph, every
//    3-hop MIS pair is bridged by an additional-dominator, and hence
//    S + C is a WCDS of every connected component.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "obs/recorder.h"

namespace wcds::maintenance {

struct RepairReport {
  std::size_t demoted = 0;          // MIS nodes removed
  std::size_t promoted = 0;         // MIS nodes added
  std::size_t bridges_changed = 0;  // additional-dominator entries touched
  std::size_t region_size = 0;      // nodes examined (3-hop locality witness)
};

struct Audit {
  bool mis_independent = false;
  bool mis_maximal = false;
  bool bridges_complete = false;     // every 3-hop MIS pair bridged
  bool weakly_connected = false;     // per connected component of the graph

  [[nodiscard]] bool ok() const {
    return mis_independent && mis_maximal && bridges_complete &&
           weakly_connected;
  }
};

class DynamicWcds {
 public:
  // Builds the initial MIS + bridges from scratch over the given deployment.
  explicit DynamicWcds(std::vector<geom::Point> points, double range = 1.0);

  // Events.  Each returns what the localized repair touched.
  RepairReport move_node(NodeId u, const geom::Point& destination);
  RepairReport deactivate(NodeId u);   // switch the radio off
  RepairReport activate(NodeId u);     // switch it back on (same position)

  // Observability hook.  Defaults to the ambient obs::global_recorder() at
  // construction time; null records nothing.  Every event then feeds its
  // RepairReport (demotions/promotions/bridge churn, region-size histogram)
  // and a wall-clock phase timing into the recorder.
  void set_recorder(obs::Recorder* recorder) noexcept { recorder_ = recorder; }
  [[nodiscard]] obs::Recorder* recorder() const noexcept { return recorder_; }

  // State inspection.
  [[nodiscard]] const graph::Graph& active_graph() const { return graph_; }
  [[nodiscard]] bool is_active(NodeId u) const { return active_[u]; }
  [[nodiscard]] bool is_mis_dominator(NodeId u) const { return mis_[u]; }
  [[nodiscard]] bool is_additional_dominator(NodeId u) const;
  [[nodiscard]] std::vector<NodeId> dominators() const;  // S + C, ascending
  [[nodiscard]] std::size_t node_count() const { return points_.size(); }
  [[nodiscard]] const geom::Point& position(NodeId u) const {
    return points_[u];
  }

  // Full global invariant check (test oracle; not part of the repair path).
  [[nodiscard]] Audit audit() const;

  // Liveness watchdog: audit the maintained invariants and, when any fail,
  // run a repair pass seeded at every node.  Per-event localized repairs
  // keep the invariants by construction, so this is the recovery path for
  // compound fault sequences (crash storms via maintenance::run_crash_schedule)
  // or external state perturbation.  Returns the all-zero report when the
  // audit already passed.
  RepairReport watchdog();

 private:
  // Rebuild the UDG over active nodes (inactive nodes are isolated).
  void rebuild_graph();
  // Debug/test tripwire: runs check::audit_invariants (unit-disk bounds,
  // active-node scope) plus the bridge-completeness audit after `event`.
  // No-op unless check::audits_enabled().
  void maybe_audit(const char* event) const;
  // Localized repair around `seeds`; `old_region` is the 3-hop ball of the
  // event site in the pre-event graph.
  RepairReport repair(const std::vector<NodeId>& seeds,
                      std::vector<NodeId> old_region);
  // Fold one event's RepairReport into the recorder (no-op when null).
  void record_event(const char* event, const RepairReport& report) const;
  // Re-derive bridges for every 3-hop pair with an endpoint in `mis_nodes`.
  std::size_t rebridge(const std::vector<NodeId>& mis_nodes);
  [[nodiscard]] std::vector<NodeId> three_hop_ball(NodeId center) const;
  [[nodiscard]] bool bridge_valid(NodeId a, NodeId b, NodeId v) const;

  std::vector<geom::Point> points_;
  std::vector<bool> active_;
  double range_;
  graph::Graph graph_;
  std::vector<bool> mis_;
  // (a, b) with a < b, both MIS and exactly 3 hops apart -> the additional
  // dominator bridging them (a neighbor of a on a 3-hop path to b).
  std::map<std::pair<NodeId, NodeId>, NodeId> bridges_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace wcds::maintenance
