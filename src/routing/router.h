// Unified routing interface (paper, Section 4.2 + the GPSR baseline).
//
// Every routing scheme in this repository answers the same question — "give
// me a G-path from src to dst" — but until this header they answered it with
// divergent call shapes (ClusterheadRouter::route vs the free
// greedy_geographic_route).  routing::Router is the one vocabulary type:
// construct a concrete router (or let make_router pick by Strategy enum),
// then call route(src, dst) and read the Route.
//
// Consumers: the service engine (src/service), the data-plane protocol
// (protocols::route_flows), bench_t5 and the examples.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/algorithm2.h"

namespace wcds::routing {

struct Route {
  std::vector<NodeId> path;  // src first, dst last; consecutive = G-adjacent
  bool delivered = false;
  // Geographic greedy only: the packet failed in a local minimum (a void).
  // Clusterhead routing has no recovery mode to report; it leaves this false.
  bool stuck = false;

  [[nodiscard]] std::size_t hops() const {
    return path.empty() ? 0 : path.size() - 1;
  }
};

// Which scheme a Router implements; make_router() selects by this enum.
enum class Strategy : std::uint8_t {
  kClusterhead,  // paper §4.2: position-less routing over dominator tables
  kGeographic,   // GPSR greedy baseline: position-based, fails in voids
};

[[nodiscard]] const char* to_string(Strategy strategy);

class Router {
 public:
  virtual ~Router() = default;

  // Route a unicast packet from src to dst.  The returned path's consecutive
  // nodes are always G-adjacent; `delivered` is false when the scheme could
  // not complete the route (disconnected overlay, greedy void).
  [[nodiscard]] virtual Route route(NodeId src, NodeId dst) const = 0;

  [[nodiscard]] virtual Strategy strategy() const noexcept = 0;
};

// Construct the Strategy's router over `g`.  kClusterhead consumes the
// Algorithm II view (and ignores `points`); kGeographic consumes the node
// positions (and ignores `wcds`).  Both borrow their inputs — keep `g`, the
// view's backing storage, and `points` alive for the router's lifetime.
[[nodiscard]] std::unique_ptr<Router> make_router(
    Strategy strategy, const graph::Graph& g, core::Algorithm2View wcds,
    std::span<const geom::Point> points = {});

}  // namespace wcds::routing
