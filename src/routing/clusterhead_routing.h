// Clusterhead unicast routing over the Algorithm II spanner (paper, §4.2).
//
// "For any pair of adjacent nodes in G, the unicast routing between them can
//  be performed in a single hop.  For any pair of non-adjacent nodes, the
//  unicast routing will follow the min-hop path in the spanner G'.  The
//  MIS-dominators (clusterheads) maintain the routing tables.  If a non
//  MIS-dominator node needs to send a packet to a non-adjacent node, it
//  sends the packet along with the destination's ID to its clusterhead.  The
//  clusterhead uses its routing tables to identify the next clusterhead on
//  the path to the destination's clusterhead, and uses its 2HopDomList and
//  3HopDomList to identify the path to the next clusterhead."
//
// Concretely: the clusterhead overlay graph H has the MIS-dominators as
// vertices and an edge per 2-hop pair (expanded through the 2HopDomList
// intermediate) and per bridged 3-hop pair (expanded through the selected
// additional-dominator path u-v-x-w).  Next-clusterhead tables are built by
// BFS per clusterhead over H.  Every expanded hop is a black (spanner) edge.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/algorithm2.h"

namespace wcds::routing {

struct Route {
  std::vector<NodeId> path;  // src first, dst last; consecutive = G-adjacent
  bool delivered = false;

  [[nodiscard]] std::size_t hops() const {
    return path.empty() ? 0 : path.size() - 1;
  }
};

class ClusterheadRouter {
 public:
  // Builds clusterhead assignments, the overlay and the routing tables from
  // an Algorithm II run on g.
  ClusterheadRouter(const graph::Graph& g, const core::Algorithm2Output& wcds);

  // Route a unicast packet.  Adjacent pairs use the direct edge; everything
  // else travels src -> clusterhead -> ... -> clusterhead -> dst over black
  // edges only.
  [[nodiscard]] Route route(NodeId src, NodeId dst) const;

  // The clusterhead serving node u (u itself if u is an MIS-dominator).
  [[nodiscard]] NodeId clusterhead(NodeId u) const { return clusterhead_[u]; }

  // The next clusterhead after head `from` on the overlay path toward head
  // `to`; kInvalidNode if unreachable.  This is exactly the routing-table
  // entry the paper stores at each MIS-dominator.
  [[nodiscard]] NodeId next_clusterhead(NodeId from_head, NodeId to_head) const;

  // Expand the overlay edge from head `from` to its overlay-neighbor head
  // `to` into the G-path between them (excluding `from`, including `to`):
  // the 2HopDomList / 3HopDomList lookup of Section 4.2.
  [[nodiscard]] std::vector<NodeId> overlay_leg(NodeId from_head,
                                                NodeId to_head) const {
    return expand_overlay_edge(from_head, to_head);
  }

  [[nodiscard]] bool is_clusterhead(NodeId u) const {
    return index_[u] != 0xFFFFFFFFu;
  }

  // Diagnostics for experiment T5.
  [[nodiscard]] std::size_t clusterhead_count() const {
    return heads_.size();
  }
  [[nodiscard]] std::size_t overlay_edge_count() const {
    return overlay_edges_;
  }
  // Total next-hop table entries held across all clusterheads.
  [[nodiscard]] std::size_t table_entries() const {
    return heads_.size() * heads_.size();
  }

 private:
  // Dense clusterhead index; kInvalidNode for non-heads.
  [[nodiscard]] std::uint32_t head_index(NodeId u) const { return index_[u]; }

  // Expand one overlay edge from head `a` to head `b` into the G-path
  // between them (excluding `a`, including `b`).
  [[nodiscard]] std::vector<NodeId> expand_overlay_edge(NodeId a, NodeId b) const;

  const graph::Graph& g_;
  std::vector<NodeId> clusterhead_;
  std::vector<NodeId> heads_;          // MIS-dominators, ascending
  std::vector<std::uint32_t> index_;   // node -> dense head index
  // Per ordered head pair: the intermediate(s), or empty if not an overlay
  // edge.  Stored sparsely per head.
  struct OverlayEdge {
    std::uint32_t to;                  // dense head index
    NodeId via1 = kInvalidNode;        // always set
    NodeId via2 = kInvalidNode;        // set for 3-hop edges
  };
  std::vector<std::vector<OverlayEdge>> overlay_;
  std::size_t overlay_edges_ = 0;
  // next_[a * heads + b]: dense index of the next head after a toward b.
  std::vector<std::uint32_t> next_;
};

}  // namespace wcds::routing
