// Clusterhead unicast routing over the Algorithm II spanner (paper, §4.2).
//
// "For any pair of adjacent nodes in G, the unicast routing between them can
//  be performed in a single hop.  For any pair of non-adjacent nodes, the
//  unicast routing will follow the min-hop path in the spanner G'.  The
//  MIS-dominators (clusterheads) maintain the routing tables.  If a non
//  MIS-dominator node needs to send a packet to a non-adjacent node, it
//  sends the packet along with the destination's ID to its clusterhead.  The
//  clusterhead uses its routing tables to identify the next clusterhead on
//  the path to the destination's clusterhead, and uses its 2HopDomList and
//  3HopDomList to identify the path to the next clusterhead."
//
// Concretely: the clusterhead overlay graph H has the MIS-dominators as
// vertices and an edge per 2-hop pair (expanded through the 2HopDomList
// intermediate) and per bridged 3-hop pair (expanded through the selected
// additional-dominator path u-v-x-w).  Next-clusterhead tables are built by
// BFS per clusterhead over H.  Every expanded hop is a black (spanner) edge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "routing/router.h"
#include "wcds/algorithm2.h"

namespace wcds::routing {

class ClusterheadRouter final : public Router {
 public:
  // Builds clusterhead assignments, the overlay and the routing tables from
  // an Algorithm II run on g.  Both arguments are borrowed: `g` and the
  // view's backing storage must outlive the router.  The dominator lists
  // are only read during construction.
  ClusterheadRouter(const graph::Graph& g, core::Algorithm2View wcds);

  // Route a unicast packet.  Adjacent pairs use the direct edge; everything
  // else travels src -> clusterhead -> ... -> clusterhead -> dst over black
  // edges only.
  [[nodiscard]] Route route(NodeId src, NodeId dst) const override;

  [[nodiscard]] Strategy strategy() const noexcept override {
    return Strategy::kClusterhead;
  }

  // The clusterhead serving node u (u itself if u is an MIS-dominator).
  [[nodiscard]] NodeId clusterhead(NodeId u) const { return clusterhead_[u]; }

  // The next clusterhead after head `from` on the overlay path toward head
  // `to`; kInvalidNode if unreachable.  This is exactly the routing-table
  // entry the paper stores at each MIS-dominator.
  [[nodiscard]] NodeId next_clusterhead(NodeId from_head, NodeId to_head) const;

  // Expand the overlay edge from head `from` to its overlay-neighbor head
  // `to` into the G-path between them (excluding `from`, including `to`):
  // the 2HopDomList / 3HopDomList lookup of Section 4.2.
  [[nodiscard]] std::vector<NodeId> overlay_leg(NodeId from_head,
                                                NodeId to_head) const;

  // Allocation-free form of overlay_leg for per-packet hot paths (the
  // service engine walks millions of legs): the intermediates of the
  // from->to overlay edge.  via2 is kInvalidNode for 2-hop edges.
  struct Leg {
    NodeId via1 = kInvalidNode;
    NodeId via2 = kInvalidNode;
  };
  [[nodiscard]] Leg overlay_leg_compact(NodeId from_head, NodeId to_head) const;

  [[nodiscard]] bool is_clusterhead(NodeId u) const {
    return index_[u] != 0xFFFFFFFFu;
  }

  // All MIS-dominators, ascending.  The dense head index used by
  // overlay-table accessors is the position in this span.
  [[nodiscard]] std::span<const NodeId> heads() const { return heads_; }

  // Dense head index of node u, or 0xFFFFFFFF if u is not a clusterhead.
  [[nodiscard]] std::uint32_t head_index(NodeId u) const { return index_[u]; }

  // Overlay (clusterhead-graph) hop distance between two heads;
  // 0xFFFFFFFF if unreachable.  O(1): filled by the table-building BFS.
  [[nodiscard]] std::uint32_t overlay_distance(NodeId from_head,
                                               NodeId to_head) const;

  // Diagnostics for experiment T5.
  [[nodiscard]] std::size_t clusterhead_count() const {
    return heads_.size();
  }
  [[nodiscard]] std::size_t overlay_edge_count() const {
    return overlay_edges_;
  }
  // Total next-hop table entries held across all clusterheads.
  [[nodiscard]] std::size_t table_entries() const {
    return heads_.size() * heads_.size();
  }

 private:
  const graph::Graph& g_;
  std::vector<NodeId> clusterhead_;
  std::vector<NodeId> heads_;          // MIS-dominators, ascending
  std::vector<std::uint32_t> index_;   // node -> dense head index
  // Per ordered head pair: the intermediate(s), or empty if not an overlay
  // edge.  Stored sparsely per head.
  struct OverlayEdge {
    std::uint32_t to;                  // dense head index
    NodeId via1 = kInvalidNode;        // always set
    NodeId via2 = kInvalidNode;        // set for 3-hop edges
  };
  std::vector<std::vector<OverlayEdge>> overlay_;
  std::size_t overlay_edges_ = 0;
  // next_[a * heads + b]: dense index of the next head after a toward b.
  std::vector<std::uint32_t> next_;
  // dist_[a * heads + b]: overlay hop count from a to b (0xFFFF unreachable).
  std::vector<std::uint16_t> dist_;
};

}  // namespace wcds::routing
