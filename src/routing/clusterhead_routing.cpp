#include "routing/clusterhead_routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace wcds::routing {

namespace {
constexpr std::uint32_t kNoHead = 0xFFFFFFFFu;
constexpr std::uint16_t kUnreachable16 = 0xFFFFu;
}  // namespace

ClusterheadRouter::ClusterheadRouter(const graph::Graph& g,
                                     core::Algorithm2View wcds)
    : g_(g) {
  const std::size_t n = g.node_count();
  heads_ = wcds.result().mis_dominators;  // ascending by construction
  index_.assign(n, kNoHead);
  for (std::uint32_t i = 0; i < heads_.size(); ++i) index_[heads_[i]] = i;

  // Clusterhead assignment: self for heads, lowest-ID 1-hop MIS-dominator
  // otherwise (the 1HopDomList is sorted).
  const core::DominatorLists& lists = wcds.lists();
  clusterhead_.assign(n, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    if (index_[u] != kNoHead) {
      clusterhead_[u] = u;
    } else if (!lists.one_hop[u].empty()) {
      clusterhead_[u] = lists.one_hop[u].front();
    } else {
      throw std::invalid_argument(
          "ClusterheadRouter: node without a 1-hop dominator (S must "
          "dominate)");
    }
  }

  // Overlay edges: 2-hop pairs from the 2HopDomLists of the heads, 3-hop
  // pairs from the (bidirectional) 3HopDomLists Algorithm II populated.
  overlay_.assign(heads_.size(), {});
  const auto add_edge = [&](NodeId a, NodeId b, NodeId via1, NodeId via2) {
    auto& row = overlay_[index_[a]];
    const std::uint32_t to = index_[b];
    if (std::any_of(row.begin(), row.end(),
                    [&](const OverlayEdge& e) { return e.to == to; })) {
      return;
    }
    row.push_back({to, via1, via2});
    ++overlay_edges_;
  };
  for (NodeId a : heads_) {
    for (const core::TwoHopEntry& e : lists.two_hop[a]) {
      add_edge(a, e.dom, e.via, kInvalidNode);
    }
    for (const core::ThreeHopEntry& e : lists.three_hop[a]) {
      add_edge(a, e.dom, e.via1, e.via2);
    }
  }

  // Routing tables: BFS per head over the overlay.  The same traversal
  // yields the overlay hop distances, kept for candidate ordering in the
  // service layer (nearest advertising domain first).
  const std::size_t h = heads_.size();
  next_.assign(h * h, kNoHead);
  dist_.assign(h * h, kUnreachable16);
  std::vector<std::uint32_t> parent(h);
  for (std::uint32_t src = 0; src < h; ++src) {
    std::fill(parent.begin(), parent.end(), kNoHead);
    parent[src] = src;
    dist_[src * h + src] = 0;
    std::queue<std::uint32_t> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
      const std::uint32_t a = frontier.front();
      frontier.pop();
      for (const OverlayEdge& e : overlay_[a]) {
        if (parent[e.to] == kNoHead) {
          parent[e.to] = a;
          const std::uint32_t d = dist_[src * h + a] + 1;
          dist_[src * h + e.to] = static_cast<std::uint16_t>(
              std::min<std::uint32_t>(d, kUnreachable16 - 1));
          frontier.push(e.to);
        }
      }
    }
    // next_[src][b] = first step from src toward b: walk parents from b.
    for (std::uint32_t b = 0; b < h; ++b) {
      if (b == src || parent[b] == kNoHead) continue;
      std::uint32_t step = b;
      while (parent[step] != src) step = parent[step];
      next_[src * h + b] = step;
    }
  }
}

NodeId ClusterheadRouter::next_clusterhead(NodeId from_head,
                                           NodeId to_head) const {
  const std::uint32_t from = index_[from_head];
  const std::uint32_t to = index_[to_head];
  if (from == kNoHead || to == kNoHead) return kInvalidNode;
  if (from == to) return from_head;
  const std::uint32_t step = next_[from * heads_.size() + to];
  return step == kNoHead ? kInvalidNode : heads_[step];
}

std::uint32_t ClusterheadRouter::overlay_distance(NodeId from_head,
                                                  NodeId to_head) const {
  const std::uint32_t from = index_[from_head];
  const std::uint32_t to = index_[to_head];
  if (from == kNoHead || to == kNoHead) return kNoHead;
  const std::uint16_t d = dist_[from * heads_.size() + to];
  return d == kUnreachable16 ? kNoHead : d;
}

ClusterheadRouter::Leg ClusterheadRouter::overlay_leg_compact(
    NodeId from_head, NodeId to_head) const {
  const auto& row = overlay_[index_[from_head]];
  const std::uint32_t to = index_[to_head];
  const auto it = std::find_if(
      row.begin(), row.end(),
      [&](const OverlayEdge& e) { return e.to == to; });
  if (it == row.end()) {
    throw std::logic_error("overlay_leg_compact: not an overlay edge");
  }
  return Leg{it->via1, it->via2};
}

std::vector<NodeId> ClusterheadRouter::overlay_leg(NodeId from_head,
                                                   NodeId to_head) const {
  const Leg leg = overlay_leg_compact(from_head, to_head);
  std::vector<NodeId> hop_path;
  hop_path.push_back(leg.via1);
  if (leg.via2 != kInvalidNode) hop_path.push_back(leg.via2);
  hop_path.push_back(to_head);
  return hop_path;
}

Route ClusterheadRouter::route(NodeId src, NodeId dst) const {
  Route r;
  r.path.push_back(src);
  if (src == dst) {
    r.delivered = true;
    return r;
  }
  if (g_.has_edge(src, dst)) {  // adjacent pairs use the direct edge
    r.path.push_back(dst);
    r.delivered = true;
    return r;
  }
  const NodeId src_head = clusterhead_[src];
  const NodeId dst_head = clusterhead_[dst];
  if (src != src_head) r.path.push_back(src_head);

  const std::size_t h = heads_.size();
  std::uint32_t at = index_[src_head];
  const std::uint32_t goal = index_[dst_head];
  while (at != goal) {
    const std::uint32_t step = next_[at * h + goal];
    if (step == kNoHead) return r;  // overlay disconnected: undeliverable
    const Leg leg = overlay_leg_compact(heads_[at], heads_[step]);
    r.path.push_back(leg.via1);
    if (leg.via2 != kInvalidNode) r.path.push_back(leg.via2);
    r.path.push_back(heads_[step]);
    at = step;
  }
  if (dst != dst_head) r.path.push_back(dst);
  r.delivered = true;
  return r;
}

}  // namespace wcds::routing
