#include "routing/clusterhead_routing.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace wcds::routing {

namespace {
constexpr std::uint32_t kNoHead = 0xFFFFFFFFu;
}

ClusterheadRouter::ClusterheadRouter(const graph::Graph& g,
                                     const core::Algorithm2Output& wcds)
    : g_(g) {
  const std::size_t n = g.node_count();
  heads_ = wcds.result.mis_dominators;  // ascending by construction
  index_.assign(n, kNoHead);
  for (std::uint32_t i = 0; i < heads_.size(); ++i) index_[heads_[i]] = i;

  // Clusterhead assignment: self for heads, lowest-ID 1-hop MIS-dominator
  // otherwise (the 1HopDomList is sorted).
  clusterhead_.assign(n, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    if (index_[u] != kNoHead) {
      clusterhead_[u] = u;
    } else if (!wcds.lists.one_hop[u].empty()) {
      clusterhead_[u] = wcds.lists.one_hop[u].front();
    } else {
      throw std::invalid_argument(
          "ClusterheadRouter: node without a 1-hop dominator (S must "
          "dominate)");
    }
  }

  // Overlay edges: 2-hop pairs from the 2HopDomLists of the heads, 3-hop
  // pairs from the (bidirectional) 3HopDomLists Algorithm II populated.
  overlay_.assign(heads_.size(), {});
  const auto add_edge = [&](NodeId a, NodeId b, NodeId via1, NodeId via2) {
    auto& row = overlay_[index_[a]];
    const std::uint32_t to = index_[b];
    if (std::any_of(row.begin(), row.end(),
                    [&](const OverlayEdge& e) { return e.to == to; })) {
      return;
    }
    row.push_back({to, via1, via2});
    ++overlay_edges_;
  };
  for (NodeId a : heads_) {
    for (const core::TwoHopEntry& e : wcds.lists.two_hop[a]) {
      add_edge(a, e.dom, e.via, kInvalidNode);
    }
    for (const core::ThreeHopEntry& e : wcds.lists.three_hop[a]) {
      add_edge(a, e.dom, e.via1, e.via2);
    }
  }

  // Routing tables: BFS per head over the overlay.
  const std::size_t h = heads_.size();
  next_.assign(h * h, kNoHead);
  std::vector<std::uint32_t> parent(h);
  for (std::uint32_t src = 0; src < h; ++src) {
    std::fill(parent.begin(), parent.end(), kNoHead);
    parent[src] = src;
    std::queue<std::uint32_t> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
      const std::uint32_t a = frontier.front();
      frontier.pop();
      for (const OverlayEdge& e : overlay_[a]) {
        if (parent[e.to] == kNoHead) {
          parent[e.to] = a;
          frontier.push(e.to);
        }
      }
    }
    // next_[src][b] = first step from src toward b: walk parents from b.
    for (std::uint32_t b = 0; b < h; ++b) {
      if (b == src || parent[b] == kNoHead) continue;
      std::uint32_t step = b;
      while (parent[step] != src) step = parent[step];
      next_[src * h + b] = step;
    }
  }
}

NodeId ClusterheadRouter::next_clusterhead(NodeId from_head,
                                           NodeId to_head) const {
  const std::uint32_t from = index_[from_head];
  const std::uint32_t to = index_[to_head];
  if (from == kNoHead || to == kNoHead) return kInvalidNode;
  if (from == to) return from_head;
  const std::uint32_t step = next_[from * heads_.size() + to];
  return step == kNoHead ? kInvalidNode : heads_[step];
}

std::vector<NodeId> ClusterheadRouter::expand_overlay_edge(NodeId a,
                                                           NodeId b) const {
  const auto& row = overlay_[index_[a]];
  const auto it = std::find_if(row.begin(), row.end(), [&](const OverlayEdge& e) {
    return e.to == index_[b];
  });
  if (it == row.end()) {
    throw std::logic_error("expand_overlay_edge: not an overlay edge");
  }
  std::vector<NodeId> hop_path;
  hop_path.push_back(it->via1);
  if (it->via2 != kInvalidNode) hop_path.push_back(it->via2);
  hop_path.push_back(b);
  return hop_path;
}

Route ClusterheadRouter::route(NodeId src, NodeId dst) const {
  Route r;
  r.path.push_back(src);
  if (src == dst) {
    r.delivered = true;
    return r;
  }
  if (g_.has_edge(src, dst)) {  // adjacent pairs use the direct edge
    r.path.push_back(dst);
    r.delivered = true;
    return r;
  }
  const NodeId src_head = clusterhead_[src];
  const NodeId dst_head = clusterhead_[dst];
  if (src != src_head) r.path.push_back(src_head);

  const std::size_t h = heads_.size();
  std::uint32_t at = index_[src_head];
  const std::uint32_t goal = index_[dst_head];
  while (at != goal) {
    const std::uint32_t step = next_[at * h + goal];
    if (step == kNoHead) return r;  // overlay disconnected: undeliverable
    const auto leg = expand_overlay_edge(heads_[at], heads_[step]);
    r.path.insert(r.path.end(), leg.begin(), leg.end());
    at = step;
  }
  if (dst != dst_head) r.path.push_back(dst);
  r.delivered = true;
  return r;
}

}  // namespace wcds::routing
