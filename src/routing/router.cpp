#include "routing/router.h"

#include <stdexcept>

#include "routing/clusterhead_routing.h"
#include "routing/geographic.h"

namespace wcds::routing {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kClusterhead:
      return "clusterhead";
    case Strategy::kGeographic:
      return "geographic";
  }
  return "?";
}

std::unique_ptr<Router> make_router(Strategy strategy, const graph::Graph& g,
                                    core::Algorithm2View wcds,
                                    std::span<const geom::Point> points) {
  switch (strategy) {
    case Strategy::kClusterhead:
      return std::make_unique<ClusterheadRouter>(g, wcds);
    case Strategy::kGeographic:
      if (points.size() != g.node_count()) {
        throw std::invalid_argument(
            "make_router: geographic strategy needs one position per node");
      }
      return std::make_unique<GeographicRouter>(g, points);
  }
  throw std::invalid_argument("make_router: unknown strategy");
}

}  // namespace wcds::routing
