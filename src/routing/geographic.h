// Greedy geographic forwarding — the position-*based* routing baseline
// (GPSR's greedy mode, Karp & Kung [12], which the paper contrasts with its
// position-less clusterhead scheme).
//
// Each node forwards to the neighbor strictly closest to the destination;
// when no neighbor improves on the current node, greedy mode is *stuck* in
// a local minimum (a void).  Full GPSR escapes via perimeter routing on a
// planarized subgraph; this baseline reports the failure instead, which is
// exactly the comparison the T5 experiment needs: position-based greedy
// needs coordinates *and* still fails in voids, while clusterhead routing
// needs neither coordinates nor recovery.
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::routing {

struct GeoRoute {
  bool delivered = false;
  bool stuck = false;  // failed in a local minimum (void)
  std::vector<NodeId> path;

  [[nodiscard]] std::size_t hops() const {
    return path.empty() ? 0 : path.size() - 1;
  }
};

// Greedy forwarding from src toward dst over g (any connected spanning
// subgraph of the UDG works: the UDG itself, GG, or RNG).
[[nodiscard]] GeoRoute greedy_geographic_route(
    const graph::Graph& g, std::span<const geom::Point> points, NodeId src,
    NodeId dst);

}  // namespace wcds::routing
