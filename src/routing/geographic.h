// Greedy geographic forwarding — the position-*based* routing baseline
// (GPSR's greedy mode, Karp & Kung [12], which the paper contrasts with its
// position-less clusterhead scheme).
//
// Each node forwards to the neighbor strictly closest to the destination;
// when no neighbor improves on the current node, greedy mode is *stuck* in
// a local minimum (a void).  Full GPSR escapes via perimeter routing on a
// planarized subgraph; this baseline reports the failure instead, which is
// exactly the comparison the T5 experiment needs: position-based greedy
// needs coordinates *and* still fails in voids, while clusterhead routing
// needs neither coordinates nor recovery.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "routing/router.h"

namespace wcds::routing {

struct GeoRoute {
  bool delivered = false;
  bool stuck = false;  // failed in a local minimum (void)
  std::vector<NodeId> path;

  [[nodiscard]] std::size_t hops() const {
    return path.empty() ? 0 : path.size() - 1;
  }
};

// Greedy forwarding from src toward dst over g (any connected spanning
// subgraph of the UDG works: the UDG itself, GG, or RNG).
[[nodiscard]] GeoRoute greedy_geographic_route(
    const graph::Graph& g, std::span<const geom::Point> points, NodeId src,
    NodeId dst);

// routing::Router adapter over greedy geographic forwarding, so consumers
// can swap strategies by enum (make_router) instead of call shape.  Borrows
// both the graph and the position array.
class GeographicRouter final : public Router {
 public:
  GeographicRouter(const graph::Graph& g, std::span<const geom::Point> points)
      : g_(g), points_(points) {}

  [[nodiscard]] Route route(NodeId src, NodeId dst) const override {
    GeoRoute geo = greedy_geographic_route(g_, points_, src, dst);
    Route r;
    r.path = std::move(geo.path);
    r.delivered = geo.delivered;
    r.stuck = geo.stuck;
    return r;
  }

  [[nodiscard]] Strategy strategy() const noexcept override {
    return Strategy::kGeographic;
  }

 private:
  const graph::Graph& g_;
  std::span<const geom::Point> points_;
};

}  // namespace wcds::routing
