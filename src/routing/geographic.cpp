#include "routing/geographic.h"

#include <stdexcept>

namespace wcds::routing {

GeoRoute greedy_geographic_route(const graph::Graph& g,
                                 std::span<const geom::Point> points,
                                 NodeId src, NodeId dst) {
  if (points.size() != g.node_count()) {
    throw std::invalid_argument("greedy_geographic_route: size mismatch");
  }
  if (src >= g.node_count() || dst >= g.node_count()) {
    throw std::out_of_range("greedy_geographic_route: endpoint out of range");
  }
  GeoRoute route;
  NodeId at = src;
  route.path.push_back(at);
  double here = geom::squared_distance(points[at], points[dst]);
  while (at != dst) {
    NodeId best = kInvalidNode;
    double best_d2 = here;
    for (NodeId v : g.neighbors(at)) {
      const double d2 = geom::squared_distance(points[v], points[dst]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = v;
      }
    }
    if (best == kInvalidNode) {
      route.stuck = true;  // local minimum: greedy mode fails here
      return route;
    }
    at = best;
    here = best_d2;
    route.path.push_back(at);
    // Strictly decreasing distance-to-destination makes loops impossible,
    // so no hop budget is needed.
  }
  route.delivered = true;
  return route;
}

}  // namespace wcds::routing
