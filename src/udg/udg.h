// Unit-disk graph construction (paper, Section 1; Clark/Colbourn/Johnson).
//
// G = (V, E) where uv is an edge iff ||uv|| <= range (default 1).  Two
// builders are provided:
//  - build_udg_reference: O(n^2) pair scan, the obviously-correct oracle;
//  - build_udg:           grid-bucket builder, expected O(n + m) for bounded
//                         density, used everywhere at scale.
// Tests assert both produce identical graphs.
#pragma once

#include <cstddef>
#include <span>

#include "geom/point.h"
#include "graph/graph.h"

namespace wcds::udg {

[[nodiscard]] graph::Graph build_udg_reference(std::span<const geom::Point> points,
                                               double range = 1.0);

[[nodiscard]] graph::Graph build_udg(std::span<const geom::Point> points,
                                     double range = 1.0);

// Density diagnostics used by workload calibration and the F1 experiment.
struct UdgStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t max_degree = 0;
  double average_degree = 0.0;
  std::size_t components = 0;
};

[[nodiscard]] UdgStats analyze(const graph::Graph& g);

}  // namespace wcds::udg
