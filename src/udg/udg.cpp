#include "udg/udg.h"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/bfs.h"

namespace wcds::udg {
namespace {

using geom::Point;
using graph::GraphBuilder;
using NodeId = wcds::NodeId;

// Cell key for the uniform grid; cells are range x range so only the 3x3
// neighborhood of a cell can contain in-range partners.
[[nodiscard]] std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

}  // namespace

graph::Graph build_udg_reference(std::span<const Point> points, double range) {
  if (range <= 0.0) throw std::invalid_argument("build_udg: range <= 0");
  const std::size_t n = points.size();
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (geom::within_range(points[i], points[j], range)) {
        builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return std::move(builder).build();
}

graph::Graph build_udg(std::span<const Point> points, double range) {
  if (range <= 0.0) throw std::invalid_argument("build_udg: range <= 0");
  const std::size_t n = points.size();
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells;
  cells.reserve(n);
  const double inv = 1.0 / range;
  const auto cell_of = [&](const Point& p) {
    return std::pair<std::int32_t, std::int32_t>{
        static_cast<std::int32_t>(std::floor(p.x * inv)),
        static_cast<std::int32_t>(std::floor(p.y * inv))};
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(points[i]);
    cells[cell_key(cx, cy)].push_back(static_cast<NodeId>(i));
  }
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(points[i]);
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells.find(cell_key(cx + dx, cy + dy));
        if (it == cells.end()) continue;
        for (NodeId j : it->second) {
          if (j <= static_cast<NodeId>(i)) continue;  // each pair once
          if (geom::within_range(points[i], points[j], range)) {
            builder.add_edge(static_cast<NodeId>(i), j);
          }
        }
      }
    }
  }
  return std::move(builder).build();
}

UdgStats analyze(const graph::Graph& g) {
  UdgStats stats;
  stats.nodes = g.node_count();
  stats.edges = g.edge_count();
  stats.max_degree = g.max_degree();
  stats.average_degree = g.average_degree();
  stats.components = graph::connected_components(g).count;
  return stats;
}

}  // namespace wcds::udg
