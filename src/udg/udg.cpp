#include "udg/udg.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/bfs.h"

namespace wcds::udg {
namespace {

using geom::Point;
using graph::GraphBuilder;
using NodeId = wcds::NodeId;

// Cell key for the uniform grid; cells are range x range so only the 3x3
// neighborhood of a cell can contain in-range partners.
[[nodiscard]] std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

}  // namespace

graph::Graph build_udg_reference(std::span<const Point> points, double range) {
  if (range <= 0.0) throw std::invalid_argument("build_udg: range <= 0");
  const std::size_t n = points.size();
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (geom::within_range(points[i], points[j], range)) {
        builder.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  return std::move(builder).build();
}

graph::Graph build_udg(std::span<const Point> points, double range) {
  if (range <= 0.0) throw std::invalid_argument("build_udg: range <= 0");
  const std::size_t n = points.size();
  // One pass computes every node's cell coordinates (cached — the second
  // pass reuses them instead of re-deriving and re-hashing) and the grid's
  // bounding box, which bounds the number of occupied cells far tighter
  // than n for dense instances.
  const double inv = 1.0 / range;
  std::vector<std::pair<std::int32_t, std::int32_t>> coords(n);
  std::int32_t min_cx = 0, max_cx = 0, min_cy = 0, max_cy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t cx = static_cast<std::int32_t>(std::floor(points[i].x * inv));
    const std::int32_t cy = static_cast<std::int32_t>(std::floor(points[i].y * inv));
    coords[i] = {cx, cy};
    if (i == 0) {
      min_cx = max_cx = cx;
      min_cy = max_cy = cy;
    } else {
      min_cx = std::min(min_cx, cx);
      max_cx = std::max(max_cx, cx);
      min_cy = std::min(min_cy, cy);
      max_cy = std::max(max_cy, cy);
    }
  }
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells;
  if (n > 0) {
    const std::uint64_t grid_cells =
        (static_cast<std::uint64_t>(max_cx - min_cx) + 1) *
        (static_cast<std::uint64_t>(max_cy - min_cy) + 1);
    cells.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(n, grid_cells)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    cells[cell_key(coords[i].first, coords[i].second)].push_back(
        static_cast<NodeId>(i));
  }
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [cx, cy] = coords[i];
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      for (std::int32_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells.find(cell_key(cx + dx, cy + dy));
        if (it == cells.end()) continue;
        for (NodeId j : it->second) {
          if (j <= static_cast<NodeId>(i)) continue;  // each pair once
          if (geom::within_range(points[i], points[j], range)) {
            builder.add_edge(static_cast<NodeId>(i), j);
          }
        }
      }
    }
  }
  return std::move(builder).build();
}

UdgStats analyze(const graph::Graph& g) {
  UdgStats stats;
  stats.nodes = g.node_count();
  stats.edges = g.edge_count();
  stats.max_degree = g.max_degree();
  stats.average_degree = g.average_degree();
  stats.components = graph::connected_components(g).count;
  return stats;
}

}  // namespace wcds::udg
