// Deterministic, seedable pseudo-random number generation.
//
// Experiments in this repository must be exactly reproducible from a seed, so
// we ship our own small generators instead of relying on implementation-
// defined std::default_random_engine behaviour.  SplitMix64 seeds
// Xoshiro256** which provides the stream.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace wcds::geom {

// Fixed-increment SplitMix64 (Steele, Lea, Flood); used to expand a single
// 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** 1.0 (Blackman & Vigna).  Satisfies UniformRandomBitGenerator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256ss(std::uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    // xoshiro256** reference multipliers.  wcds-lint: allow(paper-constant)
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1): the top 53 bits of a draw.
  constexpr double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n).  Rejection-free Lemire-style reduction is not
  // needed at our scales; modulo bias over 64 bits is negligible but we avoid
  // it anyway via rejection on the tail.
  constexpr std::uint64_t next_below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return v % n;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_;
};

}  // namespace wcds::geom
