#include "geom/workload.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wcds::geom {
namespace {

// Box-Muller transform; returns one standard normal draw.
double next_gaussian(Xoshiro256ss& rng) {
  double u1 = rng.next_double();
  while (u1 <= 0.0) u1 = rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

std::string to_string(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kClustered: return "clustered";
    case WorkloadKind::kPerturbedGrid: return "perturbed-grid";
    case WorkloadKind::kCorridor: return "corridor";
    case WorkloadKind::kRing: return "ring";
  }
  return "unknown";
}

std::vector<Point> uniform_square(std::uint32_t count, double side,
                                  std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    points.push_back({rng.next_double(0.0, side), rng.next_double(0.0, side)});
  }
  return points;
}

std::vector<Point> clustered(std::uint32_t count, double side,
                             std::uint32_t clusters, double sigma,
                             std::uint64_t seed) {
  if (clusters == 0) throw std::invalid_argument("clustered: clusters == 0");
  Xoshiro256ss rng(seed);
  std::vector<Point> centers;
  centers.reserve(clusters);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    centers.push_back({rng.next_double(0.0, side), rng.next_double(0.0, side)});
  }
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Point& c = centers[rng.next_below(clusters)];
    const double x = clamp(c.x + sigma * next_gaussian(rng), 0.0, side);
    const double y = clamp(c.y + sigma * next_gaussian(rng), 0.0, side);
    points.push_back({x, y});
  }
  return points;
}

std::vector<Point> perturbed_grid(std::uint32_t count, double side,
                                  double jitter, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const auto cols =
      static_cast<std::uint32_t>(std::ceil(std::sqrt(static_cast<double>(count))));
  const auto rows = (count + cols - 1) / cols;
  const double dx = side / static_cast<double>(cols);
  const double dy = side / static_cast<double>(rows);
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t r = i / cols;
    const std::uint32_t c = i % cols;
    const double jx = rng.next_double(-jitter, jitter) * dx;
    const double jy = rng.next_double(-jitter, jitter) * dy;
    const double x = clamp((static_cast<double>(c) + 0.5) * dx + jx, 0.0, side);
    const double y = clamp((static_cast<double>(r) + 0.5) * dy + jy, 0.0, side);
    points.push_back({x, y});
  }
  return points;
}

std::vector<Point> corridor(std::uint32_t count, double length, double aspect,
                            std::uint64_t seed) {
  if (aspect <= 0.0) throw std::invalid_argument("corridor: aspect <= 0");
  Xoshiro256ss rng(seed);
  const double height = length * aspect;
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    points.push_back(
        {rng.next_double(0.0, length), rng.next_double(0.0, height)});
  }
  return points;
}

std::vector<Point> ring(std::uint32_t count, double outer_radius,
                        double inner_fraction, std::uint64_t seed) {
  if (inner_fraction < 0.0 || inner_fraction >= 1.0) {
    throw std::invalid_argument("ring: inner_fraction must be in [0, 1)");
  }
  Xoshiro256ss rng(seed);
  const double r_in = outer_radius * inner_fraction;
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Area-uniform radius within the annulus.
    const double u = rng.next_double();
    const double r =
        std::sqrt(r_in * r_in + u * (outer_radius * outer_radius - r_in * r_in));
    const double theta = rng.next_double(0.0, 2.0 * std::numbers::pi);
    points.push_back({outer_radius + r * std::cos(theta),
                      outer_radius + r * std::sin(theta)});
  }
  return points;
}

std::vector<Point> generate(const WorkloadParams& params) {
  switch (params.kind) {
    case WorkloadKind::kUniform:
      return uniform_square(params.count, params.side, params.seed);
    case WorkloadKind::kClustered:
      return clustered(params.count, params.side, params.clusters,
                       params.cluster_sigma, params.seed);
    case WorkloadKind::kPerturbedGrid:
      return perturbed_grid(params.count, params.side, params.jitter,
                            params.seed);
    case WorkloadKind::kCorridor:
      return corridor(params.count, params.side, params.aspect, params.seed);
    case WorkloadKind::kRing:
      return ring(params.count, params.side / 2.0, params.ring_inner,
                  params.seed);
  }
  throw std::invalid_argument("generate: unknown workload kind");
}

double side_for_expected_degree(std::uint32_t count, double expected_deg) {
  if (expected_deg <= 0.0) {
    throw std::invalid_argument("side_for_expected_degree: degree <= 0");
  }
  const double n = static_cast<double>(count);
  return std::sqrt((n - 1.0) * std::numbers::pi / expected_deg);
}

double expected_degree(std::uint32_t count, double side) {
  const double n = static_cast<double>(count);
  return (n - 1.0) * std::numbers::pi / (side * side);
}

}  // namespace wcds::geom
