// Planar geometry primitives for the unit-disk-graph model.
//
// All nodes of a wireless ad hoc network are modelled as points in the
// two-dimensional plane with a common maximum transmission range
// (paper, Section 1).  Every distance in this library is Euclidean.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>

namespace wcds::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

[[nodiscard]] inline double squared_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

[[nodiscard]] inline double distance(const Point& a, const Point& b) {
  return std::sqrt(squared_distance(a, b));
}

// True iff |ab| <= r, computed without a square root.
[[nodiscard]] inline bool within_range(const Point& a, const Point& b, double r) {
  return squared_distance(a, b) <= r * r;
}

std::ostream& operator<<(std::ostream& os, const Point& p);

// Axis-aligned bounding box of a point set; used by workload generators and
// the grid-bucket UDG builder.
struct BoundingBox {
  Point min{0.0, 0.0};
  Point max{0.0, 0.0};

  [[nodiscard]] double width() const { return max.x - min.x; }
  [[nodiscard]] double height() const { return max.y - min.y; }
  [[nodiscard]] double area() const { return width() * height(); }
  [[nodiscard]] bool contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  // Grow so that `p` is contained.
  void expand(const Point& p) {
    if (p.x < min.x) min.x = p.x;
    if (p.y < min.y) min.y = p.y;
    if (p.x > max.x) max.x = p.x;
    if (p.y > max.y) max.y = p.y;
  }
};

}  // namespace wcds::geom
