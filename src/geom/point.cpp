#include "geom/point.h"

#include <ostream>

namespace wcds::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace wcds::geom
