// Synthetic node-placement workloads.
//
// The paper evaluates on the unit-disk-graph abstraction of a wireless ad hoc
// deployment; these generators produce the point sets that stand in for real
// deployments (DESIGN.md, "Paper -> build substitutions").  All generators are
// deterministic given a seed.
//
// Densities are usually expressed as the *expected number of neighbors*
// mu = n * pi * r^2 / area; helpers below convert between side length and mu.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rng.h"

namespace wcds::geom {

enum class WorkloadKind {
  kUniform,        // i.i.d. uniform in a square
  kClustered,      // Gaussian hotspots (Matern-like cluster process)
  kPerturbedGrid,  // regular grid with uniform jitter
  kCorridor,       // long thin rectangle (highway / tunnel scenario)
  kRing,           // annulus deployment (perimeter surveillance)
};

[[nodiscard]] std::string to_string(WorkloadKind kind);

struct WorkloadParams {
  WorkloadKind kind = WorkloadKind::kUniform;
  std::uint32_t count = 0;      // number of nodes to place
  double side = 10.0;           // square side / corridor length
  double aspect = 0.1;          // corridor height = side * aspect
  std::uint32_t clusters = 8;   // hotspot count for kClustered
  double cluster_sigma = 0.7;   // hotspot standard deviation
  double jitter = 0.4;          // grid jitter amplitude (fraction of spacing)
  double ring_inner = 0.7;      // inner radius as fraction of outer
  std::uint64_t seed = 1;
};

// Generate `params.count` points per the chosen process.
[[nodiscard]] std::vector<Point> generate(const WorkloadParams& params);

// Convenience wrappers -------------------------------------------------------

[[nodiscard]] std::vector<Point> uniform_square(std::uint32_t count, double side,
                                                std::uint64_t seed);

[[nodiscard]] std::vector<Point> clustered(std::uint32_t count, double side,
                                           std::uint32_t clusters, double sigma,
                                           std::uint64_t seed);

[[nodiscard]] std::vector<Point> perturbed_grid(std::uint32_t count, double side,
                                                double jitter, std::uint64_t seed);

[[nodiscard]] std::vector<Point> corridor(std::uint32_t count, double length,
                                          double aspect, std::uint64_t seed);

[[nodiscard]] std::vector<Point> ring(std::uint32_t count, double outer_radius,
                                      double inner_fraction, std::uint64_t seed);

// Side length of a square such that `count` unit-range nodes have expected
// degree `expected_degree` (mu = (count - 1) * pi / side^2).
[[nodiscard]] double side_for_expected_degree(std::uint32_t count,
                                              double expected_degree);

// Expected degree of `count` unit-range nodes uniform in a `side` square
// (ignoring boundary effects).
[[nodiscard]] double expected_degree(std::uint32_t count, double side);

}  // namespace wcds::geom
