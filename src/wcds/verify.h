// WCDS verification (paper, Abstract + Section 1 definitions).
//
// S is a weakly-connected dominating set of G iff S dominates V and the
// subgraph *weakly induced* by S — same vertex set, keeping every edge with
// at least one endpoint in S — is connected.
#pragma once

#include <span>

#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::core {

[[nodiscard]] bool is_dominating(const graph::Graph& g,
                                 const std::vector<bool>& mask);

// Connectivity of the weakly induced subgraph, judged over all of V.
[[nodiscard]] bool is_weakly_connected(const graph::Graph& g,
                                       const std::vector<bool>& mask);

[[nodiscard]] bool is_wcds(const graph::Graph& g, const std::vector<bool>& mask);

// S is a *connected* dominating set iff it dominates and the ordinary induced
// subgraph G[S] is connected (baseline comparisons).
[[nodiscard]] bool is_cds(const graph::Graph& g, const std::vector<bool>& mask);

// The sparse spanner of Section 4: all black edges, i.e. the weakly induced
// subgraph of the dominator set.
[[nodiscard]] graph::Graph extract_spanner(const graph::Graph& g,
                                           const WcdsResult& result);

// Internal-consistency audit of a WcdsResult: mask/dominators/color agree,
// mis + additional partition the dominators, and the set is a WCDS of g.
[[nodiscard]] bool audit_result(const graph::Graph& g, const WcdsResult& result);

}  // namespace wcds::core
