#include "wcds/resilient.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "check/audit.h"
#include "check/check.h"
#include "graph/biconnected.h"
#include "graph/subgraph.h"
#include "obs/metrics.h"

namespace wcds::core {
namespace {

// Phase 1: m-1 additional MIS-style dominator layers.  Each layer is a
// greedy lowest-id MIS of the residual graph induced by the nodes outside
// the backbone; the layer joins the backbone wholesale once chosen, so the
// next layer sees a fresh residual.
std::size_t add_mfold_layers(const graph::Graph& g, std::vector<bool>& mask,
                             std::uint32_t m, std::vector<NodeId>& added) {
  const std::size_t n = g.node_count();
  std::size_t total = 0;
  std::vector<bool> blocked(n, false);
  std::vector<NodeId> joined;
  for (std::uint32_t layer = 1; layer < m; ++layer) {
    blocked.assign(n, false);
    joined.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (mask[u] || blocked[u]) continue;
      joined.push_back(u);
      for (NodeId v : g.neighbors(u)) {
        if (!mask[v]) blocked[v] = true;
      }
    }
    for (NodeId u : joined) {
      mask[u] = true;
      added.push_back(u);
    }
    total += joined.size();
  }
  return total;
}

// One detect-and-patch attempt for the crash of backbone node `v`: label
// the weakly-induced fragments of the survivors in G - v, then, within
// every component of G - v holding two or more fragments, promote the gray
// nodes of a BFS-shortest ear between the lowest-labeled fragment and the
// nearest other one.  Returns how many nodes were promoted (0 when v's
// split is unmergeable, i.e. v is a cut vertex of G itself).
std::size_t patch_crash_of(const graph::Graph& g, std::vector<bool>& mask,
                           NodeId v, std::vector<NodeId>& added) {
  const std::size_t n = g.node_count();
  constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
  std::queue<NodeId> frontier;

  // Fragment labels: weakly-induced reachability of the surviving
  // dominators in G - v (gray nodes inherit the label of the fragment that
  // reaches them; every fragment holds a dominator because every H-edge
  // has a black endpoint).
  const auto survivor = [&](NodeId u) { return u != v && mask[u]; };
  std::vector<std::uint32_t> frag(n, kNone);
  std::uint32_t frag_count = 0;
  for (NodeId d = 0; d < n; ++d) {
    if (!survivor(d) || frag[d] != kNone) continue;
    const std::uint32_t label = frag_count++;
    frag[d] = label;
    frontier.push(d);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(u)) {
        if (w == v || frag[w] != kNone) continue;
        if (!survivor(u) && !survivor(w)) continue;
        frag[w] = label;
        frontier.push(w);
      }
    }
  }
  if (frag_count <= 1) return 0;

  // Component labels of G - v: fragments in different components are
  // unmergeable (v cuts the radio graph itself) and stay excused.
  std::vector<std::uint32_t> comp(n, kNone);
  std::uint32_t comp_count = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (s == v || comp[s] != kNone) continue;
    const std::uint32_t label = comp_count++;
    comp[s] = label;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(u)) {
        if (w == v || comp[w] != kNone) continue;
        comp[w] = label;
        frontier.push(w);
      }
    }
  }

  // Lowest fragment label per component (the ear's source side).
  std::vector<std::uint32_t> comp_frag(comp_count, kNone);
  std::vector<bool> comp_split(comp_count, false);
  for (NodeId u = 0; u < n; ++u) {
    if (u == v || frag[u] == kNone) continue;
    std::uint32_t& f = comp_frag[comp[u]];
    if (f == kNone) {
      f = frag[u];
    } else if (f != frag[u]) {
      comp_split[comp[u]] = true;
      f = std::min(f, frag[u]);
    }
  }

  std::size_t promoted = 0;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> parent(n, kInvalidNode);
  for (std::uint32_t c = 0; c < comp_count; ++c) {
    if (!comp_split[c]) continue;
    const std::uint32_t source = comp_frag[c];
    seen.assign(n, false);
    parent.assign(n, kInvalidNode);
    while (!frontier.empty()) frontier.pop();
    for (NodeId u = 0; u < n; ++u) {
      if (u == v || frag[u] != source || comp[u] != c) continue;
      seen[u] = true;
      frontier.push(u);
    }
    NodeId hit = kInvalidNode;
    while (!frontier.empty() && hit == kInvalidNode) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId w : g.neighbors(u)) {
        if (w == v || seen[w]) continue;
        seen[w] = true;
        parent[w] = u;
        if (frag[w] != kNone && frag[w] != source) {
          hit = w;
          break;
        }
        frontier.push(w);
      }
    }
    if (hit == kInvalidNode) continue;  // lone fragment was mislabeled split
    for (NodeId x = hit; x != kInvalidNode; x = parent[x]) {
      if (mask[x]) continue;
      mask[x] = true;
      added.push_back(x);
      ++promoted;
    }
  }
  return promoted;
}

}  // namespace

ResilienceReport augment_resilience(const graph::Graph& g, WcdsResult& result,
                                    const ResilienceSpec& spec,
                                    obs::Recorder* recorder) {
  const std::size_t n = g.node_count();
  WCDS_REQUIRE(spec.k >= 1 && spec.k <= 2,
               "augment_resilience: k must be 1 or 2, got " << spec.k);
  WCDS_REQUIRE(spec.m >= spec.k,
               "augment_resilience: m >= k required (a (2,1) backbone "
               "cannot keep domination through a crash), got m="
                   << spec.m << " k=" << spec.k);
  WCDS_REQUIRE(result.mask.size() == n && result.color.size() == n,
               "augment_resilience: result is not indexed by g's nodes");

  ResilienceReport report;
  if (!spec.enabled()) return report;

  std::vector<NodeId> added;
  report.layer_dominators = add_mfold_layers(g, result.mask, spec.m, added);

  if (spec.k >= 2) {
    // Detect-and-patch to fixpoint: cut vertices of the weakly induced
    // subgraph are exactly the crash points that would split the surviving
    // backbone.  Every productive round promotes at least one node, so the
    // loop terminates; a round that promotes nothing means every remaining
    // cut vertex is a cut vertex of G itself (excused per component).
    while (true) {
      const graph::Graph h = graph::weakly_induced_subgraph(g, result.mask);
      const auto blocks = graph::biconnected_components(h);
      std::size_t promoted = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (!result.mask[v] || !blocks.is_cut_vertex[v]) continue;
        promoted += patch_crash_of(g, result.mask, v, added);
      }
      if (promoted == 0) break;
      report.ear_dominators += promoted;
      ++report.ear_rounds;
    }
  }

  // Fold the new members into the result record: they are additional
  // dominators (S is untouched), colored black, with the dominator list
  // rebuilt ascending from the mask.
  for (NodeId u : added) {
    result.color[u] = NodeColor::kBlack;
    result.additional_dominators.push_back(u);
  }
  std::sort(result.additional_dominators.begin(),
            result.additional_dominators.end());
  result.dominators.clear();
  for (NodeId u = 0; u < n; ++u) {
    if (result.mask[u]) result.dominators.push_back(u);
  }

  if (recorder != nullptr) {
    auto& metrics = recorder->metrics();
    metrics.add("resilience/augments");
    metrics.observe("resilience/layer_dominators",
                    static_cast<double>(report.layer_dominators));
    metrics.observe("resilience/ear_dominators",
                    static_cast<double>(report.ear_dominators));
    metrics.observe("resilience/ear_rounds",
                    static_cast<double>(report.ear_rounds));
    metrics.observe("resilience/backbone_size",
                    static_cast<double>(result.size()));
  }

  // Debug/test tripwire, mirroring algorithm2's: the augmented backbone
  // must satisfy both the plain families and the new (k,m) invariants.
  if (check::audits_enabled()) {
    check::AuditOptions options;
    options.resilience = spec;
    check::audit_invariants(g, result, options);
  }
  return report;
}

}  // namespace wcds::core
