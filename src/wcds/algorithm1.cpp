#include "wcds/algorithm1.h"

#include <algorithm>

#include "check/audit.h"
#include "check/check.h"
#include "graph/bfs.h"
#include "graph/spanning_tree.h"
#include "mis/mis.h"
#include "mis/ranking.h"
#include "obs/recorder.h"

namespace wcds::core {

WcdsResult algorithm1(const graph::Graph& g, const Algorithm1Options& options) {
  WCDS_REQUIRE(g.node_count() > 0, "algorithm1: empty graph");
  WCDS_REQUIRE(graph::is_connected(g), "algorithm1: graph must be connected");
  obs::Recorder* rec = obs::global_recorder();
  obs::PhaseTimer total_timer(rec, "alg1_central/total");
  const NodeId root = options.root == kInvalidNode ? 0 : options.root;
  WCDS_REQUIRE_BOUNDS(root < g.node_count(), "algorithm1: root out of range");

  // Level Calculation Phase: levels are distances in the spanning tree
  // (BFS levels for the synchronous flood, tree depths for any other tree).
  const auto tree = options.tree == Algorithm1Options::Tree::kBfs
                        ? graph::bfs_tree(g, root)
                        : graph::dfs_tree(g, root);

  // Color Marking Phase == greedy MIS under the (level, ID) ranking.
  const auto mis = mis::greedy_mis(g, mis::level_ranking(tree));

  WcdsResult result;
  result.mask = mis.mask;
  result.dominators = mis.members;
  std::sort(result.dominators.begin(), result.dominators.end());
  result.mis_dominators = result.dominators;
  result.color.assign(g.node_count(), NodeColor::kGray);
  for (NodeId u : result.dominators) result.color[u] = NodeColor::kBlack;

  if (rec != nullptr) {
    rec->metrics().add("alg1_central/runs");
    rec->metrics().observe("alg1_central/wcds_size",
                           static_cast<double>(result.size()));
  }

  // Debug/test tripwire: the (level, ID) ranking must yield Theorem 4's
  // two-hop complementary-subset property on top of the MIS/WCDS invariants.
  if (check::audits_enabled()) {
    check::AuditOptions audit_options;
    audit_options.level_ranked = true;
    check::audit_invariants(g, result, audit_options);
  }
  return result;
}

}  // namespace wcds::core
