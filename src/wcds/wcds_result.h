// Shared result types for WCDS constructions (paper, Section 4).
#pragma once

#include <vector>

#include "check/check.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::core {

// Final node coloring: black nodes are dominators, gray nodes are dominated.
// White only appears mid-construction (or for isolated analysis states).
enum class NodeColor : std::uint8_t { kWhite, kGray, kBlack };

// Fault-tolerance target for a backbone: survive any k-1 concurrent
// backbone crashes with no repair traffic.  `m` is the domination
// multiplicity (every non-dominator keeps >= m dominators in its
// neighborhood), `k` the connectivity target of the weakly induced
// subgraph under dominator removal.  {1, 1} is the plain WCDS; the
// construction lives in wcds/resilient.h and the invariants in
// check::audit_resilience.  Only k <= 2 and m >= k are constructible.
struct ResilienceSpec {
  std::uint32_t k = 1;
  std::uint32_t m = 1;

  [[nodiscard]] constexpr bool enabled() const { return k > 1 || m > 1; }

  friend constexpr bool operator==(const ResilienceSpec&,
                                   const ResilienceSpec&) = default;
};

// A dominator's entry for a dominator reachable in exactly two hops: `dom`
// via the intermediate `via` (the paper's 2HopDomList entry).
struct TwoHopEntry {
  NodeId dom = kInvalidNode;
  NodeId via = kInvalidNode;

  friend constexpr auto operator<=>(const TwoHopEntry&, const TwoHopEntry&) =
      default;
};

// An MIS-dominator's entry for an MIS-dominator exactly three hops away:
// `dom` via intermediates `via1` (adjacent to self) then `via2` (adjacent to
// dom) — the paper's 3HopDomList entry (w, v, x).
struct ThreeHopEntry {
  NodeId dom = kInvalidNode;
  NodeId via1 = kInvalidNode;
  NodeId via2 = kInvalidNode;

  friend constexpr auto operator<=>(const ThreeHopEntry&,
                                    const ThreeHopEntry&) = default;
};

struct WcdsResult {
  std::vector<NodeId> dominators;  // the WCDS U, ascending
  std::vector<bool> mask;          // node-indexed membership in U
  std::vector<NodeColor> color;    // per-node final color

  // Algorithm II split: U = mis_dominators (the MIS S) + additional
  // dominators (the bridge set C).  Algorithm I leaves `additional` empty.
  std::vector<NodeId> mis_dominators;
  std::vector<NodeId> additional_dominators;

  [[nodiscard]] std::size_t size() const { return dominators.size(); }

  // Bounds-checked membership: an id outside the construction's node range
  // is simply not in U (callers probe results against graphs of differing
  // size, e.g. the maintenance layer's active subsets).
  [[nodiscard]] bool contains(NodeId u) const {
    return u < mask.size() && mask[u];
  }

  // Checked per-node accessors.  Out-of-range ids throw std::out_of_range;
  // audit builds additionally pin down color/mask size agreement, which
  // every construction guarantees but hand-assembled results can violate.
  [[nodiscard]] NodeColor color_of(NodeId u) const {
    WCDS_DCHECK_EQ(color.size(), mask.size(),
                   "WcdsResult: color/mask size mismatch");
    WCDS_REQUIRE_BOUNDS(u < color.size(),
                        "WcdsResult::color_of: node " << u << " of "
                                                      << color.size());
    return color[u];
  }
  [[nodiscard]] bool in_mask(NodeId u) const {
    WCDS_DCHECK_EQ(color.size(), mask.size(),
                   "WcdsResult: color/mask size mismatch");
    WCDS_REQUIRE_BOUNDS(u < mask.size(),
                        "WcdsResult::in_mask: node " << u << " of "
                                                     << mask.size());
    return mask[u];
  }
};

}  // namespace wcds::core
