#include "wcds/algorithm2.h"

#include <algorithm>
#include <vector>

#include "check/audit.h"
#include "check/check.h"
#include "graph/bfs.h"
#include "obs/recorder.h"

namespace wcds::core {
namespace {

// True iff `lists.one_hop[u]` (sorted) contains `d`.
bool in_one_hop(const DominatorLists& lists, NodeId u, NodeId d) {
  const auto& row = lists.one_hop[u];
  return std::binary_search(row.begin(), row.end(), d);
}

bool in_two_hop(const DominatorLists& lists, NodeId u, NodeId d) {
  return std::any_of(lists.two_hop[u].begin(), lists.two_hop[u].end(),
                     [&](const TwoHopEntry& e) { return e.dom == d; });
}

}  // namespace

DominatorLists compute_dominator_lists(const graph::Graph& g,
                                       const mis::MisResult& s) {
  const std::size_t n = g.node_count();
  DominatorLists lists;
  lists.one_hop.assign(n, {});
  lists.two_hop.assign(n, {});
  lists.three_hop.assign(n, {});

  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (s.mask[v]) lists.one_hop[u].push_back(v);
    }
    // neighbors() is sorted, so one_hop is sorted.
  }

  // A dominator d is in u's 2HopDomList iff d is not u, not adjacent to u,
  // and reachable through some neighbor v of u.  One entry per dominator,
  // with the smallest intermediate, mirroring a deterministic run of the
  // distributed "1-HOP-DOMINATORS" exchange.
  for (NodeId u = 0; u < n; ++u) {
    std::vector<TwoHopEntry> found;
    for (NodeId v : g.neighbors(u)) {
      for (NodeId d : lists.one_hop[v]) {
        if (d == u || in_one_hop(lists, u, d)) continue;
        found.push_back({d, v});
      }
    }
    std::sort(found.begin(), found.end());
    // Keep the first (smallest via) entry per dominator.
    auto& out = lists.two_hop[u];
    for (const TwoHopEntry& e : found) {
      if (out.empty() || out.back().dom != e.dom) out.push_back(e);
    }
  }
  return lists;
}

Algorithm2Output algorithm2(const graph::Graph& g,
                            const Algorithm2Options& options) {
  WCDS_REQUIRE(g.node_count() > 0, "algorithm2: empty graph");
  WCDS_REQUIRE(graph::is_connected(g), "algorithm2: graph must be connected");
  obs::Recorder* rec = obs::global_recorder();
  obs::PhaseTimer total_timer(rec, "alg2_central/total");

  Algorithm2Output out;
  out.mis = mis::greedy_mis_by_id(g);
  out.lists = compute_dominator_lists(g, out.mis);

  const std::size_t n = g.node_count();
  std::vector<bool> additional(n, false);

  // For each MIS-dominator u and each MIS-dominator w exactly three hops
  // away with id(u) < id(w), pick one intermediate path u-v-x-w and promote
  // v to additional-dominator.  Candidates come from the 2HopDomLists of u's
  // neighbors, exactly as the distributed 2-HOP-DOMINATORS exchange surfaces
  // them.
  std::vector<NodeId> mis_sorted = out.mis.members;
  std::sort(mis_sorted.begin(), mis_sorted.end());
  for (NodeId u : mis_sorted) {
    // Collect candidates per 3-hop dominator w: pairs (v, x).
    struct Candidate {
      NodeId w, v, x;
    };
    std::vector<Candidate> candidates;
    for (NodeId v : g.neighbors(u)) {
      for (const TwoHopEntry& e : out.lists.two_hop[v]) {
        const NodeId w = e.dom;
        if (w == u || u >= w) continue;
        if (in_one_hop(out.lists, u, w) || in_two_hop(out.lists, u, w)) {
          continue;  // closer than three hops
        }
        candidates.push_back({w, v, e.via});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.w != b.w) return a.w < b.w;
                if (a.v != b.v) return a.v < b.v;
                return a.x < b.x;
              });
    for (std::size_t i = 0; i < candidates.size();) {
      const NodeId w = candidates[i].w;
      std::size_t j = i;
      while (j < candidates.size() && candidates[j].w == w) ++j;
      // Choose the intermediate for the pair (u, w) among candidates[i..j).
      std::size_t pick = i;
      if (options.selection ==
          Algorithm2Options::Selection::kReuseIntermediates) {
        for (std::size_t k = i; k < j; ++k) {
          if (additional[candidates[k].v]) {
            pick = k;
            break;
          }
        }
      }
      const Candidate& c = candidates[pick];
      WCDS_DCHECK(g.has_edge(u, c.v) && g.has_edge(c.v, c.x) &&
                      g.has_edge(c.x, c.w),
                  "algorithm2: chosen bridge " << u << "-" << c.v << "-" << c.x
                                               << "-" << c.w
                                               << " is not a 3-hop path");
      additional[c.v] = true;
      out.lists.three_hop[u].push_back({c.w, c.v, c.x});
      // The ADDITIONAL-DOMINATOR confirmation gives w the reverse entry.
      out.lists.three_hop[c.w].push_back({u, c.x, c.v});
      i = j;
    }
  }

  WcdsResult& r = out.result;
  r.mask.assign(n, false);
  r.color.assign(n, NodeColor::kGray);
  for (NodeId u : out.mis.members) {
    r.mask[u] = true;
    r.mis_dominators.push_back(u);
  }
  std::sort(r.mis_dominators.begin(), r.mis_dominators.end());
  for (NodeId v = 0; v < n; ++v) {
    if (additional[v]) {
      r.mask[v] = true;
      r.additional_dominators.push_back(v);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (r.mask[u]) {
      r.dominators.push_back(u);
      r.color[u] = NodeColor::kBlack;
    }
  }

  if (rec != nullptr) {
    auto& metrics = rec->metrics();
    metrics.add("alg2_central/runs");
    metrics.observe("alg2_central/wcds_size", static_cast<double>(r.size()));
    metrics.observe("alg2_central/mis_size",
                    static_cast<double>(r.mis_dominators.size()));
    metrics.observe("alg2_central/additional_size",
                    static_cast<double>(r.additional_dominators.size()));
  }

  // Debug/test tripwire: the ID-ranked MIS plus its bridge set must satisfy
  // Lemma 3 and the Section 1 WCDS property.
  if (check::audits_enabled()) check::audit_invariants(g, r);
  return out;
}

}  // namespace wcds::core
