// Fault-tolerant (k,m)-WCDS augmentation (the paper's open-problem
// direction; cf. Fukunaga's highly-connected multi-dominating sets and
// Shi-Zhang-Du's (k,m)-CDS construction, PAPERS.md).
//
// A plain WCDS repairs after a backbone crash; a (k,m)-resilient backbone
// survives it with zero repair traffic.  The augmentation runs in two
// phases over an existing construction (any of the four core::build modes):
//
//  1. m-fold domination — m-1 additional MIS-style dominator layers, each a
//     maximal independent set of the residual graph induced by the nodes
//     not yet in the backbone.  A node that stays outside the backbone
//     survives every layer only by holding a neighbor in each of them, so
//     it ends with >= m distinct dominators (its original MIS dominator
//     plus one per layer); a node that runs out of residual neighbors joins
//     a layer itself.
//
//  2. 2-connectivity (k == 2) — cut vertices of the weakly induced
//     subgraph H(U) are exactly the backbone nodes whose crash splits the
//     surviving backbone (removing u from both U and G preserves H's edge
//     rule, so H(U) minus u IS the weakly induced subgraph of the
//     survivors).  Each round detects them with graph::biconnected_components
//     and patches the shortest ear: a BFS-shortest path in G minus u
//     between two surviving fragments, whose gray nodes get promoted.
//     Fragments in different components of G minus u are unmergeable — u is
//     a cut vertex of the radio graph itself — and stay excused, matching
//     the per-component judgement of check::survives_crashes.
//
// The result keeps every plain invariant (S is untouched, so Lemmas 1-3
// still hold; added nodes land in additional_dominators, so U = S + C still
// partitions) except Theorem 10's edge bound, which is proven only for the
// plain backbone and is skipped by the auditor when a resilience spec is
// declared.
#pragma once

#include <cstddef>

#include "graph/graph.h"
#include "obs/recorder.h"
#include "wcds/wcds_result.h"

namespace wcds::core {

struct ResilienceReport {
  std::size_t layer_dominators = 0;  // added by the m-fold MIS layers
  std::size_t ear_dominators = 0;    // promoted by the 2-connectivity ears
  std::size_t ear_rounds = 0;        // detect-and-patch sweeps to fixpoint
};

// Augments `result` (built over `g`) in place to meet `spec`.  Requires
// spec.k <= 2 and spec.m >= spec.k (survivability needs the redundant
// domination layer: with m >= 2 every gray node keeps a dominator through
// any single crash).  Works per connected component, so protocol-mode
// multi-component deployments augment shard by shard.  When audits are
// enabled the augmented result is re-audited under the spec before
// returning.  `recorder` (null ok) receives the resilience/* metrics.
ResilienceReport augment_resilience(const graph::Graph& g, WcdsResult& result,
                                    const ResilienceSpec& spec,
                                    obs::Recorder* recorder = nullptr);

}  // namespace wcds::core
