// Algorithm II (paper, Section 4.2) — centralized reference.
//
// U = S + C where S is the greedy lowest-ID-first MIS ("MIS-dominators") and
// C contains one intermediate node per pair of MIS-dominators exactly three
// hops apart ("additional-dominators").  By Lemma 9 the result is a WCDS;
// its weakly induced subgraph is a sparse spanner with topological dilation
// delta'(u,v) <= 3*delta(u,v) + 2 and geometric dilation l' <= 6*l + 5
// (Theorem 11).
//
// The per-node 1Hop/2Hop/3HopDomLists mirror the state of the distributed
// protocol and feed the clusterhead routing layer (src/routing).
#pragma once

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "mis/mis.h"
#include "wcds/wcds_result.h"

namespace wcds::core {

// The paper's per-node dominator knowledge after the information-exchange
// rounds.  one_hop/two_hop are kept for every node; three_hop only carries
// entries at MIS-dominators (empty elsewhere).
struct DominatorLists {
  std::vector<std::vector<NodeId>> one_hop;
  std::vector<std::vector<TwoHopEntry>> two_hop;
  std::vector<std::vector<ThreeHopEntry>> three_hop;
};

// Populate one_hop (adjacent MIS-dominators) and two_hop (MIS-dominators at
// exactly two hops, one entry per dominator with the smallest intermediate)
// for every node, given the MIS S.
[[nodiscard]] DominatorLists compute_dominator_lists(const graph::Graph& g,
                                                     const mis::MisResult& s);

struct Algorithm2Options {
  // How to pick the additional-dominator among the candidate intermediates
  // of a 3-hop MIS pair (ablation A2):
  enum class Selection {
    kLexSmallestPair,     // smallest (v, x); the deterministic default
    kReuseIntermediates,  // prefer a v already chosen for another pair
  };
  Selection selection = Selection::kLexSmallestPair;
};

struct Algorithm2Output {
  WcdsResult result;
  mis::MisResult mis;    // the MIS-dominator set S
  DominatorLists lists;  // including the populated 3HopDomLists
};

// Non-owning view over an Algorithm II construction: the shape every
// consumer on the serving path (ClusterheadRouter, route_flows, the service
// engine) takes, so routing over an n >= 10^6 backbone never copies the
// result/mis/lists triple.  The referenced storage must outlive the view —
// typically it lives in a core::BuildReport or an Algorithm2Output.
//
// Implicitly constructible from an Algorithm2Output lvalue so existing
// call sites keep compiling; construction from a temporary is deleted
// (the view would dangle before the callee returned).
class Algorithm2View {
 public:
  Algorithm2View(const WcdsResult& result, const mis::MisResult& mis,
                 const DominatorLists& lists)
      : result_(&result), mis_(&mis), lists_(&lists) {}

  // NOLINTNEXTLINE(google-explicit-constructor): deliberate implicit view.
  Algorithm2View(const Algorithm2Output& output)
      : Algorithm2View(output.result, output.mis, output.lists) {}
  Algorithm2View(Algorithm2Output&&) = delete;

  [[nodiscard]] const WcdsResult& result() const { return *result_; }
  [[nodiscard]] const mis::MisResult& mis() const { return *mis_; }
  [[nodiscard]] const DominatorLists& lists() const { return *lists_; }

 private:
  const WcdsResult* result_;
  const mis::MisResult* mis_;
  const DominatorLists* lists_;
};

// Precondition: g is connected.  Throws std::invalid_argument otherwise.
[[nodiscard]] Algorithm2Output algorithm2(const graph::Graph& g,
                                          const Algorithm2Options& options = {});

}  // namespace wcds::core
