// Algorithm I (paper, Section 4.1) — centralized reference.
//
// Build a spanning tree rooted at a leader, rank every node by
// (tree level, ID) lexicographically, and take the greedy lowest-rank-first
// MIS.  By Theorem 5 that MIS is itself a WCDS; every edge incident to a
// black node is a spanner edge.  Approximation ratio 5 (Lemma 7).
//
// The distributed counterpart lives in src/protocols/algorithm1_protocol.h;
// tests assert both produce the same dominator set.
#pragma once

#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::core {

struct Algorithm1Options {
  // Leader/root of the spanning tree.  kInvalidNode selects the minimum-ID
  // node, the default leadership criterion the paper suggests.
  NodeId root = kInvalidNode;

  // The paper builds "an arbitrary spanning tree"; its distributed flood
  // yields a BFS tree under unit delays (the default here) but Theorems 4/5
  // hold for any tree, levels being *tree* distances.  The DFS variant
  // exercises that generality (and mirrors what asynchronous floods give).
  enum class Tree { kBfs, kDfs };
  Tree tree = Tree::kBfs;
};

// Precondition: g is connected (the virtual-backbone problem is defined on a
// connected network).  Throws std::invalid_argument otherwise.
[[nodiscard]] WcdsResult algorithm1(const graph::Graph& g,
                                    const Algorithm1Options& options = {});

}  // namespace wcds::core
