#include "wcds/verify.h"

#include <algorithm>

#include "graph/bfs.h"
#include "mis/mis.h"

namespace wcds::core {

bool is_dominating(const graph::Graph& g, const std::vector<bool>& mask) {
  return mis::is_dominating_set(g, mask);
}

bool is_weakly_connected(const graph::Graph& g, const std::vector<bool>& mask) {
  return graph::is_connected(graph::weakly_induced_subgraph(g, mask));
}

bool is_wcds(const graph::Graph& g, const std::vector<bool>& mask) {
  return is_dominating(g, mask) && is_weakly_connected(g, mask);
}

bool is_cds(const graph::Graph& g, const std::vector<bool>& mask) {
  if (!is_dominating(g, mask)) return false;
  // G[S] connected: BFS within S from any member must reach every member.
  NodeId start = kInvalidNode;
  std::size_t member_count = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (mask[u]) {
      if (start == kInvalidNode) start = u;
      ++member_count;
    }
  }
  if (member_count <= 1) return true;
  const auto induced = graph::induced_subgraph(g, mask);
  const auto dist = graph::bfs_distances(induced, start);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (mask[u] && dist[u] == kUnreachable) return false;
  }
  return true;
}

graph::Graph extract_spanner(const graph::Graph& g, const WcdsResult& result) {
  return graph::weakly_induced_subgraph(g, result.mask);
}

bool audit_result(const graph::Graph& g, const WcdsResult& result) {
  const std::size_t n = g.node_count();
  if (result.mask.size() != n || result.color.size() != n) return false;
  if (!std::is_sorted(result.dominators.begin(), result.dominators.end())) {
    return false;
  }
  std::size_t black = 0;
  for (NodeId u = 0; u < n; ++u) {
    const bool in_set = result.mask[u];
    if (in_set != (result.color[u] == NodeColor::kBlack)) return false;
    if (in_set) ++black;
    if (!in_set && result.color[u] == NodeColor::kWhite && n > 1) return false;
  }
  if (black != result.dominators.size()) return false;
  for (NodeId u : result.dominators) {
    if (u >= n || !result.mask[u]) return false;
  }
  // mis + additional partition the dominators.
  std::vector<NodeId> merged = result.mis_dominators;
  merged.insert(merged.end(), result.additional_dominators.begin(),
                result.additional_dominators.end());
  std::sort(merged.begin(), merged.end());
  if (merged != result.dominators) return false;
  return is_wcds(g, result.mask);
}

}  // namespace wcds::core
