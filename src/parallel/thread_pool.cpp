#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "check/check.h"

namespace wcds::parallel {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("WCDS_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace {

// True while this thread is executing chunks of some parallel_for.  A nested
// parallel_for (a trial that itself measures dilation, say) runs inline on
// its lane instead of deadlocking or racing the pool's single job slot —
// determinism is unaffected because every index still runs exactly once.
thread_local bool t_in_parallel_region = false;

}  // namespace

// One parallel_for invocation.  Chunks are claimed from `next` with a
// fetch_add; each index runs exactly once on whichever lane claimed its
// chunk.  `failed` short-circuits remaining chunks after an exception.
struct ThreadPool::Job {
  std::atomic<std::size_t> next;
  std::size_t end;
  std::size_t grain;
  const std::function<void(std::size_t)>* fn;
  std::atomic<bool> failed{false};
  base::Mutex exception_mutex;
  std::exception_ptr exception WCDS_GUARDED_BY(exception_mutex);  // first failure
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const base::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::drain(Job& job) {
  t_in_parallel_region = true;
  while (!job.failed.load(std::memory_order_relaxed)) {
    const std::size_t first =
        job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (first >= job.end) break;
    const std::size_t last = std::min(first + job.grain, job.end);
    try {
      for (std::size_t i = first; i < last; ++i) (*job.fn)(i);
    } catch (...) {
      const base::MutexLock lock(job.exception_mutex);
      if (!job.failed.exchange(true, std::memory_order_relaxed)) {
        job.exception = std::current_exception();
      }
    }
  }
  t_in_parallel_region = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    Job* job = nullptr;
    {
      const base::MutexLock lock(mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the guarded reads
      // stay in this annotated scope where the analysis can prove mutex_ is
      // held.
      while (!stop_ &&
             (job_ == nullptr || job_generation_ == seen_generation)) {
        wake_.wait(mutex_);
      }
      if (stop_) return;
      seen_generation = job_generation_;
      job = job_;
      ++workers_active_;
    }
    drain(*job);
    {
      const base::MutexLock lock(mutex_);
      --workers_active_;
    }
    done_.notify_one();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  WCDS_REQUIRE(grain >= 1, "parallel_for: grain must be >= 1");
  if (begin >= end) return;
  // Single chunk, workerless pool, or nested call: run inline, ascending —
  // this is the serial path the parallel one must match byte-for-byte.
  if (workers_.empty() || end - begin <= grain || t_in_parallel_region) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.fn = &fn;
  {
    const base::MutexLock lock(mutex_);
    WCDS_REQUIRE_STATE(job_ == nullptr,
                       "parallel_for: reentrant call on the same pool");
    job_ = &job;
    ++job_generation_;
  }
  wake_.notify_all();
  drain(job);  // the caller is a lane too
  {
    const base::MutexLock lock(mutex_);
    while (workers_active_ != 0) done_.wait(mutex_);
    job_ = nullptr;
  }
  std::exception_ptr failure;
  {
    const base::MutexLock lock(job.exception_mutex);
    failure = job.exception;
  }
  if (failure) std::rethrow_exception(failure);
}

namespace {

std::atomic<ThreadPool*> g_pool_override{nullptr};

}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& pool_for(std::size_t threads) {
  // Pools are keyed by the *requested* count: pool_for(0) re-reads the
  // environment only once, when its pool is first created, which is exactly
  // the "stop re-deriving the env per call" fix bench::run_trials needs.
  static base::Mutex mutex;
  // unique_ptr elements keep ThreadPool references stable as the cache
  // grows; destruction at exit joins the workers, like global_pool().
  static std::vector<std::pair<std::size_t, std::unique_ptr<ThreadPool>>> pools;
  const base::MutexLock lock(mutex);
  for (const auto& [key, pool] : pools) {
    if (key == threads) return *pool;
  }
  pools.emplace_back(threads, std::make_unique<ThreadPool>(threads));
  return *pools.back().second;
}

ThreadPool* set_global_pool(ThreadPool* pool) noexcept {
  return g_pool_override.exchange(pool);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  if (ThreadPool* pool = g_pool_override.load()) {
    pool->parallel_for(begin, end, grain, fn);
    return;
  }
  // Serial fast path that never materializes the pool: a one-thread
  // configuration (WCDS_THREADS=1), a range that fits one chunk, or a
  // nested call from inside a pool lane.
  if (begin >= end) return;
  if (end - begin <= grain || t_in_parallel_region ||
      default_thread_count() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  global_pool().parallel_for(begin, end, grain, fn);
}

}  // namespace wcds::parallel
