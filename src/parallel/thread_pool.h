// Fixed-size thread pool with a deterministic parallel_for.
//
// Design goals (docs/PERFORMANCE.md):
//  - Determinism: parallel_for(begin, end, grain, fn) executes fn(i) exactly
//    once for every index; callers write results into per-index slots they
//    own, then merge in index order, so the output is byte-identical no
//    matter how many threads ran or how chunks were scheduled.  A one-thread
//    pool (or WCDS_THREADS=1) runs everything inline in ascending order —
//    the serial path is the same code.
//  - No global fan-out surprises: the process-wide pool is created lazily on
//    first use; WCDS_THREADS=1 never spawns a thread.
//
// Thread-count resolution: explicit constructor argument, else the
// WCDS_THREADS environment variable, else std::thread::hardware_concurrency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace wcds::parallel {

// Threads a default-constructed pool uses: WCDS_THREADS (clamped to >= 1)
// when set and parseable, else hardware_concurrency (>= 1).  Reads the
// environment on every call so tests can override per-case.
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  // threads == 0 selects default_thread_count().  threads == 1 keeps the
  // pool workerless: every parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total execution lanes, including the calling thread.
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  // Execute fn(i) exactly once for every i in [begin, end), in chunks of at
  // least `grain` consecutive indices.  The caller participates; returns
  // once every index has run.  The first exception thrown by fn is
  // rethrown here (remaining chunks are abandoned).  Not reentrant: fn must
  // not call parallel_for on the same pool.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn)
      WCDS_EXCLUDES(mutex_);

 private:
  struct Job;

  void worker_loop() WCDS_EXCLUDES(mutex_);
  static void drain(Job& job);

  std::vector<std::thread> workers_;
  base::Mutex mutex_;
  base::CondVar wake_;  // workers wait for a job or stop
  base::CondVar done_;  // caller waits for workers to finish
  Job* job_ WCDS_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t job_generation_ WCDS_GUARDED_BY(mutex_) = 0;
  std::size_t workers_active_ WCDS_GUARDED_BY(mutex_) = 0;
  bool stop_ WCDS_GUARDED_BY(mutex_) = false;
};

// Process-wide pool, created on first use with default_thread_count()
// threads.  Never constructed when the effective thread count is 1.
[[nodiscard]] ThreadPool& global_pool();

// Process-cached pool for an explicit thread count — the first-class
// alternative to env-only configuration.  0 resolves WCDS_THREADS /
// hardware_concurrency at the pool's creation; 1 returns a workerless pool
// whose parallel_for runs inline on the caller.  Pools are created lazily,
// one per distinct requested count, and live for the process (callers may
// keep references across calls, so teardown would dangle).
[[nodiscard]] ThreadPool& pool_for(std::size_t threads);

// Install `pool` as the pool parallel_for() below uses; returns the previous
// override (null = use the lazy global pool).  The swap itself is atomic,
// but callers must still quiesce their own parallel_for calls before
// destroying the previously installed pool.
ThreadPool* set_global_pool(ThreadPool* pool) noexcept;

// RAII form of set_global_pool for test scopes.
class ScopedPool {
 public:
  explicit ScopedPool(ThreadPool& pool) : previous_(set_global_pool(&pool)) {}
  ~ScopedPool() { set_global_pool(previous_); }

  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  ThreadPool* previous_;
};

// parallel_for over the installed (or lazy global) pool.  Runs inline —
// without ever creating the pool — when the range is a single chunk or the
// effective thread count is 1.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace wcds::parallel
