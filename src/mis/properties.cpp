#include "mis/properties.h"

#include <algorithm>
#include <queue>

#include "check/check.h"
#include "graph/bfs.h"

namespace wcds::mis {
namespace {

// BFS from `source` truncated at depth `max_hops`; returns hop distances with
// kUnreachable beyond the horizon.
std::vector<HopCount> truncated_bfs(const graph::Graph& g, NodeId source,
                                    HopCount max_hops) {
  std::vector<HopCount> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    if (dist[u] == max_hops) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::size_t max_mis_neighbors(const graph::Graph& g,
                              const std::vector<bool>& mis_mask) {
  WCDS_REQUIRE(mis_mask.size() == g.node_count(),
               "max_mis_neighbors: mask size mismatch");
  std::size_t worst = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (mis_mask[u]) continue;
    std::size_t count = 0;
    for (NodeId v : g.neighbors(u)) {
      if (mis_mask[v]) ++count;
    }
    worst = std::max(worst, count);
  }
  return worst;
}

HopNeighborhoodStats mis_hop_neighborhood_stats(const graph::Graph& g,
                                                const MisResult& mis) {
  HopNeighborhoodStats stats;
  for (NodeId u : mis.members) {
    const auto dist = truncated_bfs(g, u, 3);
    std::size_t at_two = 0;
    std::size_t within_three = 0;
    for (NodeId v : mis.members) {
      if (v == u || dist[v] == kUnreachable) continue;
      if (dist[v] == 2) ++at_two;
      if (dist[v] <= 3) ++within_three;
    }
    stats.max_at_two_hops = std::max(stats.max_at_two_hops, at_two);
    stats.max_within_three_hops =
        std::max(stats.max_within_three_hops, within_three);
  }
  return stats;
}

graph::Graph mis_proximity_graph(const graph::Graph& g, const MisResult& mis,
                                 HopCount max_hops) {
  // Index MIS members densely.
  std::vector<NodeId> index(g.node_count(), kInvalidNode);
  for (NodeId i = 0; i < mis.members.size(); ++i) {
    index[mis.members[i]] = i;
  }
  graph::GraphBuilder builder(mis.members.size());
  for (NodeId i = 0; i < mis.members.size(); ++i) {
    const auto dist = truncated_bfs(g, mis.members[i], max_hops);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dist[v] == kUnreachable || index[v] == kInvalidNode) continue;
      if (index[v] > i) builder.add_edge(i, index[v]);
    }
  }
  return std::move(builder).build();
}

SubsetDistanceAudit audit_subset_distances(const graph::Graph& g,
                                           const MisResult& mis) {
  SubsetDistanceAudit audit;
  if (mis.members.size() <= 1) {
    audit.h2_connected = true;
    audit.h3_connected = true;
    return audit;
  }
  audit.h2_connected = graph::is_connected(mis_proximity_graph(g, mis, 2));
  audit.h3_connected =
      audit.h2_connected || graph::is_connected(mis_proximity_graph(g, mis, 3));
  return audit;
}

HopCount max_complementary_subset_distance(const graph::Graph& g,
                                           const MisResult& mis) {
  if (mis.members.size() <= 1) return 0;
  // The smallest k with H_k connected equals the max edge weight on a minimum
  // bottleneck spanning tree of the complete graph over MIS members weighted
  // by hop distance; we find it by checking H_k connectivity for growing k.
  // MIS pairwise hop distances first (one BFS per member).
  const std::size_t m = mis.members.size();
  std::vector<std::vector<HopCount>> hop(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto dist = graph::bfs_distances(g, mis.members[i]);
    hop[i].resize(m);
    for (std::size_t j = 0; j < m; ++j) {
      hop[i][j] = dist[mis.members[j]];
    }
  }
  // Prim-style minimum bottleneck: grow from member 0, always absorbing the
  // member with the smallest hop distance to the tree; the answer is the
  // largest absorption distance.
  std::vector<HopCount> best(m, kUnreachable);
  std::vector<bool> in_tree(m, false);
  best[0] = 0;
  HopCount bottleneck = 0;
  for (std::size_t step = 0; step < m; ++step) {
    std::size_t next = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && (next == m || best[j] < best[next])) next = j;
    }
    if (best[next] == kUnreachable) return kUnreachable;  // G disconnected
    bottleneck = std::max(bottleneck, best[next]);
    in_tree[next] = true;
    for (std::size_t j = 0; j < m; ++j) {
      if (!in_tree[j] && hop[next][j] < best[j]) best[j] = hop[next][j];
    }
  }
  return bottleneck;
}

}  // namespace wcds::mis
