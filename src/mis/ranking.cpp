#include "mis/ranking.h"

#include <algorithm>
#include <stdexcept>

namespace wcds::mis {

std::vector<Rank> id_ranking(std::size_t node_count) {
  std::vector<Rank> ranks(node_count);
  for (NodeId u = 0; u < node_count; ++u) ranks[u] = {0, u};
  return ranks;
}

std::vector<Rank> level_ranking(const graph::SpanningTree& tree) {
  std::vector<Rank> ranks(tree.node_count());
  for (NodeId u = 0; u < tree.node_count(); ++u) {
    ranks[u] = {tree.level[u], u};
  }
  return ranks;
}

std::vector<Rank> degree_ranking(const graph::Graph& g) {
  const auto n = g.node_count();
  std::vector<Rank> ranks(n);
  for (NodeId u = 0; u < n; ++u) {
    ranks[u] = {static_cast<std::uint32_t>(n - 1 - g.degree(u)), u};
  }
  return ranks;
}

std::vector<NodeId> order_by_rank(std::span<const Rank> ranks) {
  std::vector<NodeId> order(ranks.size());
  for (NodeId u = 0; u < ranks.size(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return ranks[a] < ranks[b]; });
  return order;
}

}  // namespace wcds::mis
