#include "mis/mis.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>

#include "check/check.h"

namespace wcds::mis {

MisResult greedy_mis(const graph::Graph& g, std::span<const Rank> ranks) {
  WCDS_REQUIRE(ranks.size() == g.node_count(),
               "greedy_mis: rank vector size mismatch");
  MisResult result;
  result.mask.assign(g.node_count(), false);
  std::vector<bool> removed(g.node_count(), false);
  for (NodeId u : order_by_rank(ranks)) {
    if (removed[u]) continue;
    result.mask[u] = true;
    result.members.push_back(u);
    removed[u] = true;
    for (NodeId v : g.neighbors(u)) removed[v] = true;
  }
  WCDS_DCHECK(is_maximal_independent_set(g, result.mask),
              "greedy_mis: construction is not a maximal independent set");
  return result;
}

MisResult greedy_mis_by_id(const graph::Graph& g) {
  return greedy_mis(g, id_ranking(g.node_count()));
}

MisResult greedy_mis_max_degree(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  MisResult result;
  result.mask.assign(n, false);
  std::vector<bool> removed(n, false);
  std::vector<std::uint32_t> white_degree(n);
  for (NodeId u = 0; u < n; ++u) {
    white_degree[u] = static_cast<std::uint32_t>(g.degree(u));
  }
  // Lazy-deletion max-heap keyed by (white degree, lower id wins ties).
  using Entry = std::pair<std::uint32_t, NodeId>;
  const auto cmp = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;  // max white degree first
    return a.second > b.second;                        // then min id
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);
  for (NodeId u = 0; u < n; ++u) heap.emplace(white_degree[u], u);

  const auto decrement_around = [&](NodeId w) {
    for (NodeId x : g.neighbors(w)) {
      if (!removed[x] && white_degree[x] > 0) {
        --white_degree[x];
        heap.emplace(white_degree[x], x);
      }
    }
  };

  while (!heap.empty()) {
    const auto [deg, u] = heap.top();
    heap.pop();
    if (removed[u] || deg != white_degree[u]) continue;  // stale
    result.mask[u] = true;
    result.members.push_back(u);
    removed[u] = true;
    decrement_around(u);
    for (NodeId v : g.neighbors(u)) {
      if (!removed[v]) {
        removed[v] = true;
        decrement_around(v);
      }
    }
  }
  return result;
}

bool is_independent_set(const graph::Graph& g, const std::vector<bool>& mask) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!mask[u]) continue;
    for (NodeId v : g.neighbors(u)) {
      if (mask[v]) return false;
    }
  }
  return true;
}

bool is_dominating_set(const graph::Graph& g, const std::vector<bool>& mask) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (mask[u]) continue;
    const auto row = g.neighbors(u);
    if (std::none_of(row.begin(), row.end(),
                     [&](NodeId v) { return mask[v]; })) {
      return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const graph::Graph& g,
                                const std::vector<bool>& mask) {
  return is_independent_set(g, mask) && is_dominating_set(g, mask);
}

}  // namespace wcds::mis
