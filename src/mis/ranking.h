// Node rankings (paper, Section 2.2).
//
// A rank uniquely identifies a node and totally orders V; the greedy MIS
// construction (Table 1) repeatedly takes the lowest-rank white node.  The
// paper uses two static rankings:
//  - ID ranking:        rank = (0, id)                      (Algorithm II)
//  - level-based:       rank = (tree level, id), lexicographic (Algorithm I)
// plus mentions the dynamic (degree, id) ranking, which we provide for the
// A1 ablation.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/spanning_tree.h"
#include "graph/types.h"

namespace wcds::mis {

struct Rank {
  std::uint32_t primary = 0;  // 0 for pure-ID ranking; tree level otherwise
  NodeId id = kInvalidNode;   // unique tie-breaker

  friend constexpr auto operator<=>(const Rank&, const Rank&) = default;
};

// rank(u) = (0, u): the plain node-ID ranking of Algorithm II.
[[nodiscard]] std::vector<Rank> id_ranking(std::size_t node_count);

// rank(u) = (level(u), u): the level-based ranking of Algorithm I.  Off-tree
// nodes (disconnected graphs) get primary = kUnreachable and sort last.
[[nodiscard]] std::vector<Rank> level_ranking(const graph::SpanningTree& tree);

// rank(u) = (node_count - 1 - deg(u), u): orders high-degree nodes first, the
// static flavor of the paper's (degree, ID) example.  Used by ablation A1.
[[nodiscard]] std::vector<Rank> degree_ranking(const graph::Graph& g);

// Node ids sorted by ascending rank.
[[nodiscard]] std::vector<NodeId> order_by_rank(std::span<const Rank> ranks);

}  // namespace wcds::mis
