// Maximal independent set construction and verification (paper, Section 2).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "mis/ranking.h"

namespace wcds::mis {

struct MisResult {
  std::vector<NodeId> members;  // ascending rank order of selection
  std::vector<bool> mask;       // node-indexed membership

  [[nodiscard]] std::size_t size() const { return members.size(); }
  [[nodiscard]] bool contains(NodeId u) const { return mask[u]; }
};

// The greedy construction of Table 1: while V nonempty, take the lowest-rank
// remaining (white) node into the MIS and remove it and its neighbors.
// Equivalent single pass: visit nodes in ascending rank; a still-white node
// joins and grays its neighbors.
[[nodiscard]] MisResult greedy_mis(const graph::Graph& g,
                                   std::span<const Rank> ranks);

// greedy_mis with the plain ID ranking (Algorithm II's MIS).
[[nodiscard]] MisResult greedy_mis_by_id(const graph::Graph& g);

// Dynamic max-white-degree greedy (ablation A1): repeatedly pick the node
// with the most white neighbors (ties by lower id), add it, gray neighbors.
[[nodiscard]] MisResult greedy_mis_max_degree(const graph::Graph& g);

// True iff `members` is pairwise non-adjacent (independent).
[[nodiscard]] bool is_independent_set(const graph::Graph& g,
                                      const std::vector<bool>& mask);

// True iff every node is in the set or adjacent to a member (dominating);
// with independence this is maximality.
[[nodiscard]] bool is_dominating_set(const graph::Graph& g,
                                     const std::vector<bool>& mask);

[[nodiscard]] bool is_maximal_independent_set(const graph::Graph& g,
                                              const std::vector<bool>& mask);

}  // namespace wcds::mis
