// Structural-property auditors for the MIS lemmas of Section 2.
//
// These measure, on a concrete graph and MIS, the quantities the paper bounds
// analytically, so experiments F3-F5 can report measured-vs-proven:
//   Lemma 1:  any non-MIS node of a UDG has <= 5 MIS neighbors.
//   Lemma 2:  an MIS node has <= 23 MIS nodes exactly 2 hops away and <= 47
//             within 3 hops (constants re-derived from the paper's annulus
//             packing argument; the OCR garbles them, see DESIGN.md).
//   Lemma 3:  complementary subsets of any MIS are exactly 2 or 3 hops apart;
//   Theorem 4: under level-based ranking, exactly 2.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "mis/mis.h"

namespace wcds::mis {

// Lemma 1: max number of MIS neighbors over all non-MIS nodes.
[[nodiscard]] std::size_t max_mis_neighbors(const graph::Graph& g,
                                            const std::vector<bool>& mis_mask);

struct HopNeighborhoodStats {
  std::size_t max_at_two_hops = 0;      // Lemma 2 part 1 (bound: 23)
  std::size_t max_within_three_hops = 0;  // Lemma 2 part 2 (bound: 47)
};

// Lemma 2: per-MIS-node counts of other MIS nodes at exactly 2 hops and at
// 1..3 hops, maximized over the MIS.  (No MIS pair is ever at 1 hop.)
[[nodiscard]] HopNeighborhoodStats mis_hop_neighborhood_stats(
    const graph::Graph& g, const MisResult& mis);

// The "MIS proximity graph" H_k: vertices are MIS members (indexed by their
// position in mis.members), edges join members whose hop distance in G is
// <= k.  Lemma 3 <=> H_3 connected whenever G is; Theorem 4 <=> H_2 connected
// for level-ranked MIS.
[[nodiscard]] graph::Graph mis_proximity_graph(const graph::Graph& g,
                                               const MisResult& mis,
                                               HopCount max_hops);

struct SubsetDistanceAudit {
  bool h2_connected = false;  // every complementary-subset cut is <= 2 hops
  bool h3_connected = false;  // ... <= 3 hops (Lemma 3 guarantee)
};

// Audits Lemma 3 / Theorem 4 by checking H_2 / H_3 connectivity.  For a
// connected G, h3_connected must hold for any MIS; h2_connected must hold for
// a level-ranked MIS.
[[nodiscard]] SubsetDistanceAudit audit_subset_distances(const graph::Graph& g,
                                                         const MisResult& mis);

// Worst-case complementary-subset separation: the smallest k such that H_k is
// connected (the max over cuts of the min cross-cut hop distance), or
// kUnreachable if even H_diam is disconnected.  Exact but O(|S|) BFS runs;
// intended for tests and the F5 experiment.
[[nodiscard]] HopCount max_complementary_subset_distance(const graph::Graph& g,
                                                         const MisResult& mis);

}  // namespace wcds::mis
