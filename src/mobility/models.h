// Mobility models for the maintenance experiments (paper, Section 4.2:
// "The WCDS obtained by this algorithm is easy to maintain whenever the
// nodes move around or are turned off or on").
//
// Three standard ad hoc mobility models, all deterministic given a seed:
//  * RandomWaypoint — each node picks a waypoint uniformly in the arena,
//    travels there at its own speed, pauses, repeats.  The MANET-evaluation
//    default.
//  * RandomWalk — each node keeps a heading, perturbs it every step, and
//    reflects off the arena walls.
//  * ReferencePointGroup — nodes belong to groups; each group's reference
//    point follows a random waypoint while members jitter around it
//    (team/convoy scenarios).
//
// All models share the interface: construct with the initial deployment,
// call step(dt) to advance, read positions().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/point.h"
#include "geom/rng.h"

namespace wcds::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  // Advance all nodes by `dt` time units.
  virtual void step(double dt) = 0;
  [[nodiscard]] virtual const std::vector<geom::Point>& positions() const = 0;
};

struct ArenaBox {
  double width = 0.0;
  double height = 0.0;
};

struct WaypointParams {
  double min_speed = 0.2;
  double max_speed = 1.0;
  double pause_time = 1.0;
};

class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(std::vector<geom::Point> initial, ArenaBox arena,
                 WaypointParams params, std::uint64_t seed);

  void step(double dt) override;
  [[nodiscard]] const std::vector<geom::Point>& positions() const override {
    return positions_;
  }

 private:
  struct NodeState {
    geom::Point target;
    double speed = 0.0;
    double pause_left = 0.0;
  };
  void pick_waypoint(std::size_t i);

  std::vector<geom::Point> positions_;
  std::vector<NodeState> state_;
  ArenaBox arena_;
  WaypointParams params_;
  geom::Xoshiro256ss rng_;
};

struct WalkParams {
  double speed = 0.5;
  double turn_sigma = 0.5;  // radians of heading jitter per step
};

class RandomWalk final : public MobilityModel {
 public:
  RandomWalk(std::vector<geom::Point> initial, ArenaBox arena,
             WalkParams params, std::uint64_t seed);

  void step(double dt) override;
  [[nodiscard]] const std::vector<geom::Point>& positions() const override {
    return positions_;
  }

 private:
  std::vector<geom::Point> positions_;
  std::vector<double> heading_;
  ArenaBox arena_;
  WalkParams params_;
  geom::Xoshiro256ss rng_;
};

struct GroupParams {
  std::uint32_t groups = 4;
  double member_radius = 1.5;  // jitter radius around the reference point
  WaypointParams reference;    // how reference points move
};

class ReferencePointGroup final : public MobilityModel {
 public:
  ReferencePointGroup(std::vector<geom::Point> initial, ArenaBox arena,
                      GroupParams params, std::uint64_t seed);

  void step(double dt) override;
  [[nodiscard]] const std::vector<geom::Point>& positions() const override {
    return positions_;
  }
  [[nodiscard]] std::uint32_t group_of(std::size_t i) const {
    return group_[i];
  }

 private:
  std::vector<geom::Point> positions_;
  std::vector<std::uint32_t> group_;
  std::vector<geom::Point> offsets_;  // member offset from its reference
  std::unique_ptr<RandomWaypoint> references_;
  ArenaBox arena_;
  GroupParams params_;
  geom::Xoshiro256ss rng_;
};

// Clamp a point into the arena (models reflecting walls coarsely).
[[nodiscard]] geom::Point clamp_to_arena(const geom::Point& p,
                                         const ArenaBox& arena);

}  // namespace wcds::mobility
