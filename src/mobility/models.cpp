#include "mobility/models.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wcds::mobility {

geom::Point clamp_to_arena(const geom::Point& p, const ArenaBox& arena) {
  return {std::clamp(p.x, 0.0, arena.width),
          std::clamp(p.y, 0.0, arena.height)};
}

// ---------------------------------------------------------------- waypoint

RandomWaypoint::RandomWaypoint(std::vector<geom::Point> initial,
                               ArenaBox arena, WaypointParams params,
                               std::uint64_t seed)
    : positions_(std::move(initial)),
      state_(positions_.size()),
      arena_(arena),
      params_(params),
      rng_(seed) {
  if (arena_.width <= 0.0 || arena_.height <= 0.0) {
    throw std::invalid_argument("RandomWaypoint: empty arena");
  }
  if (params_.min_speed <= 0.0 || params_.max_speed < params_.min_speed) {
    throw std::invalid_argument("RandomWaypoint: bad speed range");
  }
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    positions_[i] = clamp_to_arena(positions_[i], arena_);
    pick_waypoint(i);
  }
}

void RandomWaypoint::pick_waypoint(std::size_t i) {
  state_[i].target = {rng_.next_double(0.0, arena_.width),
                      rng_.next_double(0.0, arena_.height)};
  state_[i].speed = rng_.next_double(params_.min_speed, params_.max_speed);
  state_[i].pause_left = 0.0;
}

void RandomWaypoint::step(double dt) {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    double budget = dt;
    while (budget > 0.0) {
      NodeState& s = state_[i];
      if (s.pause_left > 0.0) {
        const double wait = std::min(s.pause_left, budget);
        s.pause_left -= wait;
        budget -= wait;
        if (s.pause_left <= 0.0) pick_waypoint(i);
        continue;
      }
      geom::Point& p = positions_[i];
      const double dx = s.target.x - p.x;
      const double dy = s.target.y - p.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double reach = s.speed * budget;
      if (reach >= dist) {
        p = s.target;
        budget -= s.speed > 0.0 ? dist / s.speed : budget;
        s.pause_left = params_.pause_time;
        if (s.pause_left <= 0.0) pick_waypoint(i);
      } else {
        p.x += dx / dist * reach;
        p.y += dy / dist * reach;
        budget = 0.0;
      }
    }
  }
}

// -------------------------------------------------------------------- walk

RandomWalk::RandomWalk(std::vector<geom::Point> initial, ArenaBox arena,
                       WalkParams params, std::uint64_t seed)
    : positions_(std::move(initial)),
      heading_(positions_.size()),
      arena_(arena),
      params_(params),
      rng_(seed) {
  if (arena_.width <= 0.0 || arena_.height <= 0.0) {
    throw std::invalid_argument("RandomWalk: empty arena");
  }
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    positions_[i] = clamp_to_arena(positions_[i], arena_);
    heading_[i] = rng_.next_double(0.0, 2.0 * std::numbers::pi);
  }
}

void RandomWalk::step(double dt) {
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    heading_[i] +=
        (rng_.next_double() - 0.5) * 2.0 * params_.turn_sigma;
    geom::Point& p = positions_[i];
    p.x += std::cos(heading_[i]) * params_.speed * dt;
    p.y += std::sin(heading_[i]) * params_.speed * dt;
    // Reflect off the walls.
    if (p.x < 0.0) {
      p.x = -p.x;
      heading_[i] = std::numbers::pi - heading_[i];
    } else if (p.x > arena_.width) {
      p.x = 2.0 * arena_.width - p.x;
      heading_[i] = std::numbers::pi - heading_[i];
    }
    if (p.y < 0.0) {
      p.y = -p.y;
      heading_[i] = -heading_[i];
    } else if (p.y > arena_.height) {
      p.y = 2.0 * arena_.height - p.y;
      heading_[i] = -heading_[i];
    }
    p = clamp_to_arena(p, arena_);  // guard extreme dt
  }
}

// ------------------------------------------------------------------- group

ReferencePointGroup::ReferencePointGroup(std::vector<geom::Point> initial,
                                         ArenaBox arena, GroupParams params,
                                         std::uint64_t seed)
    : positions_(std::move(initial)),
      group_(positions_.size()),
      offsets_(positions_.size()),
      arena_(arena),
      params_(params),
      rng_(seed) {
  if (params_.groups == 0) {
    throw std::invalid_argument("ReferencePointGroup: zero groups");
  }
  // Reference points start at the group centroids of a round-robin
  // assignment, then follow their own waypoint process.
  std::vector<geom::Point> refs(params_.groups, {0.0, 0.0});
  std::vector<std::size_t> counts(params_.groups, 0);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    group_[i] = static_cast<std::uint32_t>(i % params_.groups);
    refs[group_[i]].x += positions_[i].x;
    refs[group_[i]].y += positions_[i].y;
    ++counts[group_[i]];
  }
  for (std::uint32_t gid = 0; gid < params_.groups; ++gid) {
    if (counts[gid] > 0) {
      refs[gid].x /= static_cast<double>(counts[gid]);
      refs[gid].y /= static_cast<double>(counts[gid]);
    }
  }
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    offsets_[i] = {positions_[i].x - refs[group_[i]].x,
                   positions_[i].y - refs[group_[i]].y};
  }
  references_ = std::make_unique<RandomWaypoint>(std::move(refs), arena_,
                                                 params_.reference, seed + 1);
}

void ReferencePointGroup::step(double dt) {
  references_->step(dt);
  const auto& refs = references_->positions();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    // Jitter the member offset inside the group disc.
    geom::Point& off = offsets_[i];
    off.x += (rng_.next_double() - 0.5) * 0.2 * dt;
    off.y += (rng_.next_double() - 0.5) * 0.2 * dt;
    const double r = std::sqrt(off.x * off.x + off.y * off.y);
    if (r > params_.member_radius && r > 0.0) {
      off.x *= params_.member_radius / r;
      off.y *= params_.member_radius / r;
    }
    positions_[i] = clamp_to_arena(
        {refs[group_[i]].x + off.x, refs[group_[i]].y + off.y}, arena_);
  }
}

}  // namespace wcds::mobility
