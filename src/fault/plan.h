// fault::Plan — a seeded, declarative description of everything that may go
// wrong with the radio during a simulated run.
//
// A Plan is pure data: per-copy drop/duplicate probabilities (globally and
// per directed link), bounded delivery jitter, and node crash windows
// (including region blackouts computed from deployment geometry).  It is
// interpreted by fault::Injector, which turns it into the sim::FaultHook
// decisions the runtime consults on the delivery path.  Identical plans and
// seeds replay identical fault sequences — the determinism argument lives
// in docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/types.h"
#include "sim/message.h"

namespace wcds::fault {

// One radio outage: `node` is deaf and mute in [down_from, up_at).  The
// node's CPU and timers keep running — crash means "radio off", not "state
// lost" — which is exactly what makes retransmit-until-recovery converge.
struct CrashWindow {
  NodeId node = kInvalidNode;
  sim::SimTime down_from = 0;
  sim::SimTime up_at = 0;

  friend bool operator==(const CrashWindow&, const CrashWindow&) = default;
};

// Per-directed-link probability override; `link_slot` is the sender's CSR
// adjacency slot for the recipient (graph::Graph::edge_slot).
struct LinkOverride {
  std::size_t link_slot = 0;
  double drop = 0.0;
  double duplicate = 0.0;

  friend bool operator==(const LinkOverride&, const LinkOverride&) = default;
};

struct Plan {
  // Global per-copy probabilities (each recipient copy of a broadcast rolls
  // independently, so a lossy broadcast reaches a random subset).
  double drop = 0.0;
  double duplicate = 0.0;

  // Extra delivery delay per copy, uniform in [0, max_jitter].  Jitter may
  // reorder a link; the hardened transport restores FIFO order.
  sim::SimTime max_jitter = 0;

  std::uint64_t seed = 0;

  std::vector<CrashWindow> crashes;
  std::vector<LinkOverride> link_overrides;

  // True when the plan can never perturb a run (the injector then behaves
  // exactly like a null hook).
  [[nodiscard]] bool trivial() const {
    return drop == 0.0 && duplicate == 0.0 && max_jitter == 0 &&
           crashes.empty() && link_overrides.empty();
  }

  // Convenience constructors for the common experiment shapes.
  [[nodiscard]] static Plan lossy(double drop, std::uint64_t seed);
  [[nodiscard]] static Plan chaos(double drop, double duplicate,
                                  sim::SimTime max_jitter, std::uint64_t seed);

  // The plan a component shard interprets: identical faults, reseeded with
  // sim::shard_stream_seed(seed, component) so the shard's injector draws a
  // pure per-shard stream instead of sharing the global sequence.  Crash
  // windows and link overrides pass through unchanged — entries for nodes
  // and links outside the shard are simply never consulted.
  [[nodiscard]] Plan for_shard(std::uint32_t component) const;

  Plan& crash(NodeId node, sim::SimTime down_from, sim::SimTime up_at);

  // Blackout every node within `radius` of `center` for [down_from, up_at);
  // returns how many nodes the region covered.
  std::size_t blackout_region(std::span<const geom::Point> points,
                              const geom::Point& center, double radius,
                              sim::SimTime down_from, sim::SimTime up_at);
};

}  // namespace wcds::fault
