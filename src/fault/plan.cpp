#include "fault/plan.h"

#include "check/check.h"
#include "sim/shard_plan.h"

namespace wcds::fault {

Plan Plan::for_shard(std::uint32_t component) const {
  Plan shard = *this;
  shard.seed = sim::shard_stream_seed(seed, component);
  return shard;
}

Plan Plan::lossy(double drop, std::uint64_t seed) {
  Plan plan;
  plan.drop = drop;
  plan.seed = seed;
  return plan;
}

Plan Plan::chaos(double drop, double duplicate, sim::SimTime max_jitter,
                 std::uint64_t seed) {
  Plan plan;
  plan.drop = drop;
  plan.duplicate = duplicate;
  plan.max_jitter = max_jitter;
  plan.seed = seed;
  return plan;
}

Plan& Plan::crash(NodeId node, sim::SimTime down_from, sim::SimTime up_at) {
  WCDS_REQUIRE(down_from < up_at,
               "fault::Plan: empty crash window for node " << node);
  crashes.push_back({node, down_from, up_at});
  return *this;
}

std::size_t Plan::blackout_region(std::span<const geom::Point> points,
                                  const geom::Point& center, double radius,
                                  sim::SimTime down_from, sim::SimTime up_at) {
  std::size_t covered = 0;
  for (NodeId u = 0; u < points.size(); ++u) {
    if (geom::within_range(points[u], center, radius)) {
      crash(u, down_from, up_at);
      ++covered;
    }
  }
  return covered;
}

}  // namespace wcds::fault
