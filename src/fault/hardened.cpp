#include "fault/hardened.h"

#include <algorithm>
#include <utility>

#include "check/check.h"

namespace wcds::fault {

const char* hardened_message_name(sim::MessageType type) {
  switch (type) {
    case kMsgData:
      return "DATA";
    case kMsgAck:
      return "ACK";
    default:
      return nullptr;
  }
}

void FrameContext::broadcast(sim::MessageType type,
                             std::vector<std::uint32_t> payload) {
  owner_.queue_frame(*this, type, sim::kBroadcastDst, std::move(payload));
}

void FrameContext::unicast(NodeId dst, sim::MessageType type,
                           std::vector<std::uint32_t> payload) {
  owner_.queue_frame(*this, type, dst, std::move(payload));
}

HardenedNode::HardenedNode(std::unique_ptr<sim::ProtocolNode> inner,
                           RetransmitOptions options)
    : inner_(std::move(inner)), options_(options), rto_(options.initial_rto) {
  WCDS_REQUIRE(inner_ != nullptr, "HardenedNode: null wrapped protocol");
  WCDS_REQUIRE(options_.initial_rto >= 1 &&
                   options_.max_rto >= options_.initial_rto &&
                   options_.max_burst >= 1,
               "HardenedNode: invalid RetransmitOptions");
}

void HardenedNode::on_start(sim::Context& ctx) {
  const auto neighbors = ctx.neighbors();
  peers_.assign(neighbors.begin(), neighbors.end());
  peer_lookup_.reserve(peers_.size());
  for (std::uint32_t i = 0; i < peers_.size(); ++i) {
    peer_lookup_.emplace_back(peers_[i], i);
  }
  std::sort(peer_lookup_.begin(), peer_lookup_.end());
  acked_up_to_.assign(peers_.size(), 0);
  in_.assign(peers_.size(), InStream{});
  FrameContext fctx(ctx, *this);
  inner_->on_start(fctx);
}

std::size_t HardenedNode::peer_index(NodeId node) const {
  const auto it = std::lower_bound(
      peer_lookup_.begin(), peer_lookup_.end(), node,
      [](const std::pair<NodeId, std::uint32_t>& entry, NodeId key) {
        return entry.first < key;
      });
  WCDS_REQUIRE_STATE(it != peer_lookup_.end() && it->first == node,
                     "HardenedNode: frame from non-neighbor " << node);
  return it->second;
}

void HardenedNode::queue_frame(sim::Context& ctx, sim::MessageType orig_type,
                               NodeId orig_dst,
                               std::vector<std::uint32_t>&& payload) {
  // A neighborless radio reaches nobody; dropping the frame mirrors the
  // physical broadcast and keeps the retransmit clock quiescent.
  if (peers_.empty()) return;
  Frame frame{next_seq_++, orig_type, orig_dst, std::move(payload)};
  broadcast_frame(ctx, frame);
  ++stats_.frames_sent;
  outstanding_.push_back(std::move(frame));
  if (!timer_active_) arm_timer(ctx);
}

void HardenedNode::broadcast_frame(sim::Context& ctx, const Frame& frame) {
  std::vector<std::uint32_t> wire;
  wire.reserve(3 + frame.payload.size());
  wire.push_back(frame.seq);
  wire.push_back(frame.orig_type);
  wire.push_back(frame.orig_dst);
  wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());
  // Qualified call: transmit on the real radio even when `ctx` is the
  // FrameContext shim (its virtual broadcast would frame recursively).
  ctx.sim::Context::broadcast(kMsgData, std::move(wire));
}

void HardenedNode::on_receive(sim::Context& ctx, const sim::Message& msg) {
  switch (msg.type) {
    case kMsgData:
      handle_data(ctx, msg);
      return;
    case kMsgAck:
      handle_ack(msg);
      return;
    default:
      WCDS_REQUIRE_STATE(false, "HardenedNode: unframed message type "
                                    << msg.type << " from " << msg.src
                                    << " (mixed hardened/raw runtimes?)");
  }
}

void HardenedNode::handle_data(sim::Context& ctx, const sim::Message& msg) {
  WCDS_REQUIRE_STATE(msg.payload.size() >= 3,
                     "HardenedNode: truncated DATA frame from " << msg.src);
  const std::size_t peer = peer_index(msg.src);
  const std::uint32_t seq = msg.payload[0];
  InStream& stream = in_[peer];
  if (seq < stream.next_expected) {
    // Already delivered (a duplicate or a retransmit that lost the race);
    // the re-ack below repairs a possibly lost ACK.
    ++stats_.duplicates_ignored;
  } else if (seq == stream.next_expected) {
    Frame frame{seq, static_cast<sim::MessageType>(msg.payload[1]),
                static_cast<NodeId>(msg.payload[2]),
                {msg.payload.begin() + 3, msg.payload.end()}};
    deliver_frame(ctx, msg.src, frame);
    ++stream.next_expected;
    // Drain the reorder buffer while it continues the stream.
    bool advanced = true;
    while (advanced) {
      advanced = false;
      for (std::size_t i = 0; i < stream.buffered.size(); ++i) {
        if (stream.buffered[i].seq != stream.next_expected) continue;
        deliver_frame(ctx, msg.src, stream.buffered[i]);
        ++stream.next_expected;
        stream.buffered[i] = std::move(stream.buffered.back());
        stream.buffered.pop_back();
        advanced = true;
        break;
      }
    }
  } else {
    // Future frame: park it unless an identical copy already waits.
    const bool seen =
        std::any_of(stream.buffered.begin(), stream.buffered.end(),
                    [seq](const Frame& frame) { return frame.seq == seq; });
    if (seen) {
      ++stats_.duplicates_ignored;
    } else {
      stream.buffered.push_back(
          Frame{seq, static_cast<sim::MessageType>(msg.payload[1]),
                static_cast<NodeId>(msg.payload[2]),
                {msg.payload.begin() + 3, msg.payload.end()}});
    }
  }
  // Cumulative ack for everything contiguously received; sent even for
  // duplicates, since the previous ACK may have been lost.
  ctx.sim::Context::unicast(msg.src, kMsgAck, {stream.next_expected - 1});
  ++stats_.acks_sent;
}

void HardenedNode::deliver_frame(sim::Context& ctx, NodeId src,
                                 const Frame& frame) {
  // Every neighbor hears every frame (that is what makes seq gaps
  // unambiguous); only the addressed ones surface to the protocol.
  if (frame.orig_dst != sim::kBroadcastDst && frame.orig_dst != ctx.self()) {
    return;
  }
  sim::Message logical;
  logical.src = src;
  logical.dst = frame.orig_dst;
  logical.type = frame.orig_type;
  logical.payload = frame.payload;
  FrameContext fctx(ctx, *this);
  inner_->on_receive(fctx, logical);
}

void HardenedNode::handle_ack(const sim::Message& msg) {
  WCDS_REQUIRE_STATE(msg.payload.size() == 1,
                     "HardenedNode: malformed ACK from " << msg.src);
  const std::size_t peer = peer_index(msg.src);
  const std::uint32_t cumulative = msg.payload[0];
  if (cumulative <= acked_up_to_[peer]) return;  // stale or duplicate ACK
  acked_up_to_[peer] = cumulative;
  const std::uint32_t floor =
      *std::min_element(acked_up_to_.begin(), acked_up_to_.end());
  if (floor <= min_acked_) return;
  min_acked_ = floor;
  while (!outstanding_.empty() && outstanding_.front().seq <= min_acked_) {
    outstanding_.pop_front();
  }
  // Progress: the network is moving again, so restart the backoff ladder.
  rto_ = options_.initial_rto;
}

void HardenedNode::arm_timer(sim::Context& ctx) {
  ++timer_gen_;
  ctx.set_timer(rto_, timer_gen_);
  timer_active_ = true;
}

void HardenedNode::on_timer(sim::Context& ctx, std::uint64_t token) {
  if (token != timer_gen_) return;  // superseded by a later arming
  timer_active_ = false;
  if (outstanding_.empty()) return;  // all settled; clock winds down
  const std::size_t burst = std::min(options_.max_burst, outstanding_.size());
  for (std::size_t i = 0; i < burst; ++i) {
    broadcast_frame(ctx, outstanding_[i]);
    ++stats_.retransmits;
  }
  rto_ = std::min(rto_ * 2, options_.max_rto);
  arm_timer(ctx);
}

TransportStats collect_transport_stats(const sim::Runtime& runtime) {
  TransportStats total;
  for (NodeId u = 0; u < runtime.node_count(); ++u) {
    // node_if: an active-subset runtime holds no state machine at all for
    // nodes outside its shard.
    const auto* node = dynamic_cast<const HardenedNode*>(runtime.node_if(u));
    if (node == nullptr) continue;
    const TransportStats& stats = node->transport_stats();
    total.frames_sent += stats.frames_sent;
    total.retransmits += stats.retransmits;
    total.acks_sent += stats.acks_sent;
    total.duplicates_ignored += stats.duplicates_ignored;
  }
  return total;
}

void record_transport_metrics(const TransportStats& total,
                              obs::Recorder* recorder) {
  if (recorder == nullptr) return;
  auto& metrics = recorder->metrics();
  metrics.add("fault/frames", total.frames_sent);
  metrics.add("fault/retransmits", total.retransmits);
  metrics.add("fault/acks", total.acks_sent);
  metrics.add("fault/dup_ignored", total.duplicates_ignored);
}

void record_transport_metrics(const sim::Runtime& runtime,
                              obs::Recorder* recorder) {
  record_transport_metrics(collect_transport_stats(runtime), recorder);
}

}  // namespace wcds::fault
