#include "fault/schedule.h"

#include <chrono>

#include "check/check.h"

namespace wcds::fault {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

CrashScheduleReport run_crash_schedule(maintenance::DynamicWcds& wcds,
                                       std::span<const NodeId> victims,
                                       obs::Recorder* recorder) {
  CrashScheduleReport report;
  report.outcomes.reserve(victims.size());
  for (const NodeId victim : victims) {
    WCDS_REQUIRE(wcds.is_active(victim),
                 "run_crash_schedule: victim " << victim
                                               << " is already inactive");
    CrashOutcome outcome;
    outcome.node = victim;

    auto start = Clock::now();
    outcome.crash_repair = wcds.deactivate(victim);
    outcome.crash_ms = elapsed_ms(start);

    start = Clock::now();
    outcome.recover_repair = wcds.activate(victim);
    outcome.recover_ms = elapsed_ms(start);

    report.total_repair_ms += outcome.crash_ms + outcome.recover_ms;
    if (recorder != nullptr) {
      auto& metrics = recorder->metrics();
      metrics.observe("fault/repair_ms", outcome.crash_ms);
      metrics.observe("fault/repair_ms", outcome.recover_ms);
    }
    report.outcomes.push_back(outcome);
  }
  return report;
}

}  // namespace wcds::fault
