// Reliable-FIFO transport shim: fault::HardenedNode wraps any
// sim::ProtocolNode and gives it an exactly-once, in-order view of a lossy,
// duplicating, reordering radio.
//
// Design (docs/ROBUSTNESS.md carries the full argument):
//  - Every logical send of the wrapped protocol — broadcast or unicast —
//    leaves the radio as ONE physical broadcast DATA frame carrying
//    [seq, orig_type, orig_dst, payload...], where seq is the sender's
//    global frame counter.  Sending logical unicasts as addressed
//    broadcasts is what real radios do anyway, and it lets every neighbor
//    see every seq: a gap is always a loss, never "a unicast meant for
//    someone else".
//  - Each neighbor acks every DATA frame it hears with a cumulative ACK
//    (the highest seq received contiguously); a frame is settled when every
//    neighbor's cumulative ack covers it.
//  - Unsettled frames are rebroadcast on a retransmit timer with capped
//    exponential backoff (RetransmitOptions); ack progress resets the
//    backoff.  Crashed neighbors simply ack late — crash means radio off,
//    state kept — so retransmit-until-recovery is sufficient for liveness.
//  - The receiver holds a per-sender reorder buffer and delivers frames to
//    the wrapped protocol in seq order, exactly once, filtered by orig_dst.
//    The wrapped protocol therefore runs over what is effectively an
//    asynchronous reliable network — a regime its correctness tests already
//    cover.
//
// The wrapped protocol's sends are intercepted by handing it a FrameContext
// (a sim::Context whose virtual send methods frame instead of transmit).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "obs/recorder.h"
#include "sim/message.h"
#include "sim/runtime.h"

namespace wcds::fault {

// Wire-level frame types; the 9x range is reserved for the transport so it
// never collides with a protocol's own message enums.
enum HardenedMessageType : sim::MessageType {
  kMsgData = 90,
  kMsgAck = 91,
};

// Trace name for the transport frame types (null for foreign types).
[[nodiscard]] const char* hardened_message_name(sim::MessageType type);

// Retransmit clock: first timeout `initial_rto`, doubled per silent timeout
// up to `max_rto`, reset on cumulative-ack progress.  At most `max_burst`
// unsettled frames are rebroadcast per timeout.
struct RetransmitOptions {
  sim::SimTime initial_rto = 8;
  sim::SimTime max_rto = 64;
  std::size_t max_burst = 16;
};

// Per-node transport counters, folded into `fault/*` metrics by
// record_transport_metrics().
struct TransportStats {
  std::uint64_t frames_sent = 0;         // first transmissions of a frame
  std::uint64_t retransmits = 0;         // rebroadcasts of unsettled frames
  std::uint64_t acks_sent = 0;
  std::uint64_t duplicates_ignored = 0;  // already-delivered copies heard

  friend bool operator==(const TransportStats&, const TransportStats&) =
      default;
};

class HardenedNode;

// The Context handed to the wrapped protocol: reads pass through, sends are
// framed through the owning HardenedNode's reliable transport.
class FrameContext final : public sim::Context {
 public:
  FrameContext(const sim::Context& base, HardenedNode& owner)
      : sim::Context(base), owner_(owner) {}

  void broadcast(sim::MessageType type,
                 std::vector<std::uint32_t> payload) override;
  void unicast(NodeId dst, sim::MessageType type,
               std::vector<std::uint32_t> payload) override;

 private:
  HardenedNode& owner_;
};

class HardenedNode final : public sim::ProtocolNode {
 public:
  explicit HardenedNode(std::unique_ptr<sim::ProtocolNode> inner,
                        RetransmitOptions options = {});

  void on_start(sim::Context& ctx) override;
  void on_receive(sim::Context& ctx, const sim::Message& msg) override;
  void on_timer(sim::Context& ctx, std::uint64_t token) override;

  [[nodiscard]] sim::ProtocolNode& inner() noexcept { return *inner_; }
  [[nodiscard]] const sim::ProtocolNode& inner() const noexcept {
    return *inner_;
  }
  [[nodiscard]] const TransportStats& transport_stats() const noexcept {
    return stats_;
  }

 private:
  friend class FrameContext;

  // One logical message in flight (or buffered out-of-order on receive).
  struct Frame {
    std::uint32_t seq = 0;
    sim::MessageType orig_type = 0;
    NodeId orig_dst = sim::kBroadcastDst;
    std::vector<std::uint32_t> payload;
  };

  // Per-sender receive stream: next_expected is the first seq not yet
  // delivered to the wrapped protocol; buffered holds out-of-order frames.
  struct InStream {
    std::uint32_t next_expected = 1;
    std::vector<Frame> buffered;
  };

  void queue_frame(sim::Context& ctx, sim::MessageType orig_type,
                   NodeId orig_dst, std::vector<std::uint32_t>&& payload);
  void broadcast_frame(sim::Context& ctx, const Frame& frame);
  void handle_data(sim::Context& ctx, const sim::Message& msg);
  void handle_ack(const sim::Message& msg);
  void deliver_frame(sim::Context& ctx, NodeId src, const Frame& frame);
  void arm_timer(sim::Context& ctx);
  [[nodiscard]] std::size_t peer_index(NodeId node) const;

  std::unique_ptr<sim::ProtocolNode> inner_;
  RetransmitOptions options_;
  TransportStats stats_;

  // Peers in CSR order plus a sorted (node, index) lookup table.
  std::vector<NodeId> peers_;
  std::vector<std::pair<NodeId, std::uint32_t>> peer_lookup_;

  // Send side: frames newer than min_acked_, oldest first.
  std::deque<Frame> outstanding_;
  std::uint32_t next_seq_ = 1;
  std::uint32_t min_acked_ = 0;
  std::vector<std::uint32_t> acked_up_to_;  // per peer, cumulative

  // Receive side, per peer.
  std::vector<InStream> in_;

  // Retransmit clock; timers cannot be cancelled, so stale fires are
  // filtered by generation token.
  sim::SimTime rto_ = 0;
  std::uint64_t timer_gen_ = 0;
  bool timer_active_ = false;
};

// Sum the TransportStats over every HardenedNode in `runtime` (other node
// types contribute nothing).
[[nodiscard]] TransportStats collect_transport_stats(
    const sim::Runtime& runtime);

// Fold the summed transport counters into `recorder` as `fault/frames`,
// `fault/retransmits`, `fault/acks`, `fault/dup_ignored` (null recorder is
// a no-op).  The stats overload serves the shard merge, which sums
// per-shard collections before recording once.
void record_transport_metrics(const TransportStats& total,
                              obs::Recorder* recorder);
void record_transport_metrics(const sim::Runtime& runtime,
                              obs::Recorder* recorder);

}  // namespace wcds::fault
