// fault::Injector — the sim::FaultHook implementation that executes a
// fault::Plan deterministically.
//
// Every probabilistic decision consumes exactly one draw from a private
// Xoshiro256** stream seeded by the plan, in the runtime's documented call
// order, so a (plan, topology, protocol) triple replays the same faults on
// every run.  Crash windows are indexed per node at construction; the
// common no-crash case stays O(1) per query.
//
// The injector also counts what it did (`fault/dropped`,
// `fault/duplicated`, `fault/suppressed_sends`, `fault/blocked_receives`)
// and can fold those counters into an obs::Recorder after the run.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/plan.h"
#include "geom/rng.h"
#include "graph/types.h"
#include "obs/recorder.h"
#include "sim/fault_hook.h"
#include "sim/message.h"

namespace wcds::fault {

class Injector final : public sim::FaultHook {
 public:
  struct Counters {
    std::uint64_t suppressed_sends = 0;   // sender radio was off
    std::uint64_t dropped = 0;            // copies lost in flight
    std::uint64_t duplicated = 0;         // copies delivered twice
    std::uint64_t blocked_receives = 0;   // recipient radio was off

    friend bool operator==(const Counters&, const Counters&) = default;
  };

  // `node_count` sizes the per-node crash-window index; every CrashWindow
  // in the plan must name a node below it.
  Injector(Plan plan, std::size_t node_count);

  [[nodiscard]] bool send_blocked(NodeId src, sim::SimTime now) override;
  [[nodiscard]] bool drop_copy(std::size_t link_slot) override;
  [[nodiscard]] bool duplicate_copy(std::size_t link_slot) override;
  [[nodiscard]] sim::SimTime extra_delay() override;
  [[nodiscard]] bool receive_blocked(NodeId recipient,
                                     sim::SimTime at) override;

  [[nodiscard]] const Plan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  // True while `node`'s radio is inside one of its crash windows.
  [[nodiscard]] bool down(NodeId node, sim::SimTime at) const;

  // Fold the counters into `recorder` (null is a no-op).
  void record_metrics(obs::Recorder* recorder) const;

  // Same fold for counters summed outside an injector — the shard merge
  // accumulates per-shard counters and records the aggregate once.
  static void record_counters(obs::Recorder* recorder,
                              const Counters& counters);

 private:
  // The link override active for `link_slot`, or null.
  [[nodiscard]] const LinkOverride* override_for(std::size_t link_slot) const;

  Plan plan_;  // crashes re-sorted by node; link_overrides by slot
  geom::Xoshiro256ss rng_;
  Counters counters_;
  // CSR index over the sorted crash windows: node u's windows occupy
  // [window_begin_[u], window_begin_[u + 1]).  Empty when the plan has none.
  std::vector<std::uint32_t> window_begin_;
};

}  // namespace wcds::fault
