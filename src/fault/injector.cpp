#include "fault/injector.h"

#include <algorithm>

#include "check/check.h"

namespace wcds::fault {

Injector::Injector(Plan plan, std::size_t node_count)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  WCDS_REQUIRE(plan_.drop >= 0.0 && plan_.drop < 1.0,
               "fault::Injector: drop probability must be in [0, 1)");
  WCDS_REQUIRE(plan_.duplicate >= 0.0 && plan_.duplicate <= 1.0,
               "fault::Injector: duplicate probability must be in [0, 1]");
  std::sort(plan_.link_overrides.begin(), plan_.link_overrides.end(),
            [](const LinkOverride& a, const LinkOverride& b) {
              return a.link_slot < b.link_slot;
            });
  for (const LinkOverride& entry : plan_.link_overrides) {
    WCDS_REQUIRE(entry.drop >= 0.0 && entry.drop < 1.0 &&
                     entry.duplicate >= 0.0 && entry.duplicate <= 1.0,
                 "fault::Injector: link override probability out of range");
  }
  if (!plan_.crashes.empty()) {
    std::sort(plan_.crashes.begin(), plan_.crashes.end(),
              [](const CrashWindow& a, const CrashWindow& b) {
                return a.node != b.node ? a.node < b.node
                                        : a.down_from < b.down_from;
              });
    window_begin_.assign(node_count + 1, 0);
    for (const CrashWindow& window : plan_.crashes) {
      WCDS_REQUIRE(window.node < node_count,
                   "fault::Injector: crash window names node "
                       << window.node << " outside the topology");
      ++window_begin_[window.node + 1];
    }
    for (std::size_t u = 0; u < node_count; ++u) {
      window_begin_[u + 1] += window_begin_[u];
    }
  }
}

bool Injector::down(NodeId node, sim::SimTime at) const {
  if (window_begin_.empty()) return false;
  const std::uint32_t begin = window_begin_[node];
  const std::uint32_t end = window_begin_[node + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const CrashWindow& window = plan_.crashes[i];
    if (at >= window.down_from && at < window.up_at) return true;
  }
  return false;
}

const LinkOverride* Injector::override_for(std::size_t link_slot) const {
  const auto it = std::lower_bound(
      plan_.link_overrides.begin(), plan_.link_overrides.end(), link_slot,
      [](const LinkOverride& entry, std::size_t slot) {
        return entry.link_slot < slot;
      });
  if (it != plan_.link_overrides.end() && it->link_slot == link_slot) {
    return &*it;
  }
  return nullptr;
}

bool Injector::send_blocked(NodeId src, sim::SimTime now) {
  if (!down(src, now)) return false;
  ++counters_.suppressed_sends;
  return true;
}

bool Injector::drop_copy(std::size_t link_slot) {
  // Always draw, even at probability zero: the stream position must depend
  // only on the call sequence, never on earlier outcomes' plan values.
  const double roll = rng_.next_double();
  const LinkOverride* entry = override_for(link_slot);
  const double probability = entry != nullptr ? entry->drop : plan_.drop;
  if (roll >= probability) return false;
  ++counters_.dropped;
  return true;
}

bool Injector::duplicate_copy(std::size_t link_slot) {
  const double roll = rng_.next_double();
  const LinkOverride* entry = override_for(link_slot);
  const double probability =
      entry != nullptr ? entry->duplicate : plan_.duplicate;
  if (roll >= probability) return false;
  ++counters_.duplicated;
  return true;
}

sim::SimTime Injector::extra_delay() {
  if (plan_.max_jitter == 0) return 0;
  // The gate is a plan constant, not link state: either every delivery in a
  // run draws jitter or none does, so the stream position still depends only
  // on the delivery sequence.  (Drawing next_below(1) unconditionally would
  // also shift every existing zero-jitter trace.)
  // wcds-lint: allow(rng-draw-discipline)
  return rng_.next_below(plan_.max_jitter + 1);
}

bool Injector::receive_blocked(NodeId recipient, sim::SimTime at) {
  if (!down(recipient, at)) return false;
  ++counters_.blocked_receives;
  return true;
}

void Injector::record_metrics(obs::Recorder* recorder) const {
  record_counters(recorder, counters_);
}

void Injector::record_counters(obs::Recorder* recorder,
                               const Counters& counters) {
  if (recorder == nullptr) return;
  auto& metrics = recorder->metrics();
  metrics.add("fault/dropped", counters.dropped);
  metrics.add("fault/duplicated", counters.duplicated);
  metrics.add("fault/suppressed_sends", counters.suppressed_sends);
  metrics.add("fault/blocked_receives", counters.blocked_receives);
}

}  // namespace wcds::fault
