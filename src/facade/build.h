// Unified construction facade over the four WCDS entrypoints.
//
// `wcds::core::build()` is the one function application code needs: it
// selects between the paper's two algorithms in their centralized-reference
// and distributed-protocol forms, runs the construction, and returns a
// single BuildReport carrying the WCDS, the sim cost accounting (protocol
// modes), the Algorithm II dominator lists (for the routing layer) and an
// observability snapshot.
//
// The per-algorithm entrypoints — core::algorithm1/algorithm2 and
// protocols::run_algorithm1/run_algorithm2 — remain as the implementation
// and for layer-internal use, but are deprecated for application code in
// favor of this facade (docs/OBSERVABILITY.md and docs/PROTOCOLS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "mis/mis.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "sim/runtime.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/wcds_result.h"

namespace wcds::fault {
struct Plan;
}  // namespace wcds::fault

namespace wcds::core {

enum class BuildAlgorithm : std::uint8_t {
  kAlgorithm1Central,   // spanning-tree levels + level-ranked MIS (ratio 5)
  kAlgorithm2Central,   // ID-ranked MIS + 3-hop bridges (sparse spanner)
  kAlgorithm1Protocol,  // distributed Algorithm I over the sim runtime
  kAlgorithm2Protocol,  // distributed Algorithm II over the sim runtime
};

[[nodiscard]] const char* to_string(BuildAlgorithm algorithm);

struct BuildOptions {
  BuildAlgorithm algorithm = BuildAlgorithm::kAlgorithm2Central;

  // kAlgorithm1Central only: spanning-tree kind and root (kInvalidNode
  // selects the minimum-ID node, the paper's leadership criterion).
  Algorithm1Options::Tree tree = Algorithm1Options::Tree::kBfs;
  NodeId root = kInvalidNode;

  // kAlgorithm2Central only: additional-dominator selection rule.
  Algorithm2Options::Selection selection =
      Algorithm2Options::Selection::kLexSmallestPair;

  // Protocol modes only: the sim's message-delay regime.
  sim::DelayModel delays = sim::DelayModel::unit();

  // Protocol modes only: the sim's event-queue implementation.  The default
  // flat queue is the production path; the reference map reproduces the
  // original allocating queue for differential tests and benchmarks.
  sim::QueuePolicy queue_policy = sim::QueuePolicy::kFlat;

  // Protocol modes only: deterministic fault injection (message loss,
  // duplication, delay jitter, node crash windows — src/fault/plan.h).
  // Null keeps the perfect radio at zero overhead; non-null runs the
  // protocol under the fault::HardenedNode reliable transport and requires
  // the flat queue policy.  Centralized modes ignore it (no radio).
  const fault::Plan* faults = nullptr;

  // Protocol modes only: execution policy for multi-component deployments.
  // Components never exchange messages, so each runs as an independent
  // sub-run; kComponentSharded executes the sub-runs on the thread pool,
  // kGlobal serially — outputs are byte-identical either way
  // (sim/sharded.h).  Connected graphs take the single-runtime fast path
  // regardless.  Centralized modes ignore it (and still require a
  // connected graph).
  sim::ExecutionPolicy execution = sim::ExecutionPolicy::kComponentSharded;

  // Protocol modes only: thread count for the sharded runner (0 = the
  // WCDS_THREADS env / hardware default, 1 = inline serial).
  std::size_t threads = 0;

  // Fault-tolerance target (wcds/resilient.h).  The default {1, 1} is the
  // plain construction; {k, m} with m > 1 or k == 2 augments the built
  // backbone to an m-fold dominating, (up to) 2-connected WCDS and audits
  // the (k,m) invariant family alongside the plain ones.  Requires k <= 2
  // and m >= k.  Works in every mode, including sharded protocol runs
  // (the augmentation is per-component by construction).
  ResilienceSpec resilience;

  // Observability: explicit recorder, else the ambient
  // obs::global_recorder(), else no recording.
  obs::Recorder* recorder = nullptr;
};

struct BuildReport {
  WcdsResult result;

  // The MIS underlying the construction (== result.mis_dominators).
  mis::MisResult mis;

  // Algorithm II modes: per-node 1Hop/2Hop/3HopDomLists.  For the protocol
  // mode these are recomputed centrally from the (timing-independent) MIS
  // fixpoint; empty for Algorithm I modes.
  DominatorLists lists;

  // Protocol modes: the sim's cost accounting (paper message/time
  // complexity).  All-zero for centralized modes.
  sim::RunStats stats;

  // Metrics snapshot taken at the end of build() when a recorder was in
  // effect (phase timings, sim counters, sizes); empty otherwise.
  obs::MetricsSnapshot metrics;

  // Algorithm I modes: tree root / elected leader.  kAlgorithm1Protocol
  // additionally reports every node's tree level.
  NodeId leader = kInvalidNode;
  std::vector<std::uint32_t> levels;

  // Non-owning view of the Algorithm II triple the serving layers consume
  // (ClusterheadRouter, route_flows, service::ServingEngine).  The view
  // borrows this report's storage — keep the report alive while routing.
  // Only meaningful for Algorithm II modes.
  [[nodiscard]] Algorithm2View algorithm2_view() const {
    return Algorithm2View{result, mis, lists};
  }

  // Owning repackage kept for compatibility with callers that outlive the
  // report; copies result/mis/lists wholesale.  Prefer algorithm2_view() on
  // any serving path.
  [[nodiscard]] Algorithm2Output algorithm2_output() const {
    return Algorithm2Output{result, mis, lists};
  }
};

// Build a WCDS over `g` as `options` selects.  Throws std::invalid_argument
// on an empty graph; the centralized modes additionally require `g`
// connected (the reference algorithms' contract), while the protocol modes
// accept disconnected deployments and build a per-component WCDS.
[[nodiscard]] BuildReport build(const graph::Graph& g,
                                const BuildOptions& options = {});

}  // namespace wcds::core
