#include "facade/build.h"

#include <utility>

#include "check/check.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "wcds/resilient.h"

namespace wcds::core {
namespace {

// Reconstitute a MisResult from the construction's MIS-dominator list.
mis::MisResult mis_from_members(std::vector<NodeId> members, std::size_t n) {
  mis::MisResult mis;
  mis.mask.assign(n, false);
  for (NodeId u : members) mis.mask[u] = true;
  mis.members = std::move(members);
  return mis;
}

}  // namespace

const char* to_string(BuildAlgorithm algorithm) {
  switch (algorithm) {
    case BuildAlgorithm::kAlgorithm1Central: return "algorithm1-central";
    case BuildAlgorithm::kAlgorithm2Central: return "algorithm2-central";
    case BuildAlgorithm::kAlgorithm1Protocol: return "algorithm1-protocol";
    case BuildAlgorithm::kAlgorithm2Protocol: return "algorithm2-protocol";
  }
  return "?";
}

BuildReport build(const graph::Graph& g, const BuildOptions& options) {
  WCDS_REQUIRE(g.node_count() > 0, "build: empty graph");
  obs::Recorder* rec = obs::recorder_or_global(options.recorder);
  obs::PhaseTimer total_timer(rec, "build/total");

  BuildReport report;
  const std::size_t n = g.node_count();
  switch (options.algorithm) {
    case BuildAlgorithm::kAlgorithm1Central: {
      Algorithm1Options algorithm_options;
      algorithm_options.root = options.root;
      algorithm_options.tree = options.tree;
      report.result = algorithm1(g, algorithm_options);
      report.mis = mis_from_members(report.result.mis_dominators, n);
      // The default leadership criterion picks the minimum ID (node 0 —
      // ids are dense).
      report.leader = options.root == kInvalidNode ? 0 : options.root;
      break;
    }
    case BuildAlgorithm::kAlgorithm2Central: {
      Algorithm2Options algorithm_options;
      algorithm_options.selection = options.selection;
      Algorithm2Output out = algorithm2(g, algorithm_options);
      report.result = std::move(out.result);
      report.mis = std::move(out.mis);
      report.lists = std::move(out.lists);
      break;
    }
    case BuildAlgorithm::kAlgorithm1Protocol: {
      protocols::DistributedAlgorithm1Run run = protocols::run_algorithm1(
          g, options.delays, rec, options.queue_policy, options.faults,
          options.execution, options.threads);
      report.result = std::move(run.wcds);
      report.stats = std::move(run.stats);
      report.leader = run.leader;
      report.levels = std::move(run.levels);
      report.mis = mis_from_members(report.result.mis_dominators, n);
      break;
    }
    case BuildAlgorithm::kAlgorithm2Protocol: {
      protocols::DistributedWcdsRun run = protocols::run_algorithm2(
          g, options.delays, rec, options.queue_policy, options.faults,
          options.execution, options.threads);
      report.result = std::move(run.wcds);
      report.stats = std::move(run.stats);
      report.mis = mis_from_members(report.result.mis_dominators, n);
      // The MIS fixpoint is timing-independent, so the centralized list
      // computation reproduces the protocol's dominator knowledge (the
      // differential suite pins this down).
      report.lists = compute_dominator_lists(g, report.mis);
      break;
    }
  }

  if (options.resilience.enabled()) {
    obs::PhaseTimer resilience_timer(rec, "build/resilience");
    augment_resilience(g, report.result, options.resilience, rec);
    // The MIS is untouched by the augmentation (new members are additional
    // dominators), so report.mis and the dominator lists stay valid.
  }

  if (rec != nullptr) {
    auto& metrics = rec->metrics();
    metrics.add("build/runs");
    metrics.add(std::string("build/runs/") + to_string(options.algorithm));
    metrics.observe("build/nodes", static_cast<double>(n));
    metrics.observe("build/edges", static_cast<double>(g.edge_count()));
    metrics.observe("build/wcds_size",
                    static_cast<double>(report.result.size()));
    if (report.stats.transmissions > 0) {
      metrics.observe("build/transmissions",
                      static_cast<double>(report.stats.transmissions));
      metrics.observe("build/completion_time",
                      static_cast<double>(report.stats.completion_time));
    }
    total_timer.stop();
    report.metrics = rec->snapshot();
  }
  return report;
}

}  // namespace wcds::core
