#include "sim/sharded.h"

#include <algorithm>

#include "check/check.h"
#include "parallel/thread_pool.h"

namespace wcds::sim {

ShardOutcome run_shard(const graph::Graph& g, std::span<const NodeId> members,
                       const Runtime::NodeFactory& factory,
                       const DelayModel& delays, QueuePolicy queue,
                       FaultHook* faults, bool record, bool capture_trace,
                       std::uint64_t max_events,
                       const std::function<void(Runtime&)>& inspect) {
  ShardOutcome out;
  // Shard-local recorder: per-shard trace buffering and queue-depth tracking
  // without touching the caller's (thread-unsafe) registry.  Its metric fold
  // is discarded — merge_shards records the aggregate exactly once.
  obs::Recorder local;
  obs::MemoryTraceSink sink;
  if (record && capture_trace) local.set_trace_sink(&sink);
  Runtime runtime(g, factory, delays, record ? &local : nullptr, queue, faults,
                  members);
  {
    obs::PhaseTimer timer(record ? &local : nullptr, "sim/shard_run");
    out.stats = runtime.run(max_events);
  }
  out.max_queue_depth = runtime.max_queue_depth();
  if (record) {
    const obs::MetricsSnapshot snap = local.snapshot();
    const auto it = snap.histograms.find("phase_ms/sim/shard_run");
    if (it != snap.histograms.end()) out.run_ms = it->second.mean;
    out.trace = sink.events();
  }
  if (inspect) inspect(runtime);
  return out;
}

RunStats merge_shards(std::span<const ShardOutcome> outcomes,
                      obs::Recorder* recorder) {
  WCDS_REQUIRE(!outcomes.empty(), "merge_shards: no outcomes");
  RunStats merged;
  merged.quiescent = true;
  std::uint64_t max_queue_depth = 0;
  for (const ShardOutcome& out : outcomes) {
    merged.transmissions += out.stats.transmissions;
    merged.deliveries += out.stats.deliveries;
    merged.timer_fires += out.stats.timer_fires;
    merged.completion_time =
        std::max(merged.completion_time, out.stats.completion_time);
    merged.quiescent = merged.quiescent && out.stats.quiescent;
    for (const auto& [type, count] : out.stats.per_type) {
      merged.per_type[type] += count;
    }
    max_queue_depth = std::max(max_queue_depth, out.max_queue_depth);
  }
  if (recorder != nullptr) {
    if (obs::TraceSink* sink = recorder->trace_sink()) {
      for (const ShardOutcome& out : outcomes) {
        for (const obs::TraceEvent& event : out.trace) sink->on_event(event);
      }
    }
    record_run_metrics(recorder, merged, max_queue_depth);
    auto& metrics = recorder->metrics();
    metrics.set("sim/shards", static_cast<double>(outcomes.size()));
    for (const ShardOutcome& out : outcomes) {
      metrics.observe("phase_ms/sim/shard_run", out.run_ms);
    }
  }
  return merged;
}

void for_each_shard(ExecutionPolicy policy, std::size_t shard_count,
                    std::size_t threads,
                    const std::function<void(std::size_t)>& task) {
  if (policy == ExecutionPolicy::kGlobal || shard_count <= 1) {
    for (std::size_t c = 0; c < shard_count; ++c) task(c);
    return;
  }
  parallel::pool_for(threads).parallel_for(0, shard_count, 1, task);
}

}  // namespace wcds::sim
