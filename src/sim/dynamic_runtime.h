// Discrete-event runtime over a *changing* unit-disk topology.
//
// The static Runtime (runtime.h) runs one protocol to quiescence on a fixed
// graph.  Maintenance protocols (paper, Section 4.2) react to link changes,
// so this runtime:
//  - keeps a mutable adjacency, updated between quiescent periods via
//    apply_topology(), which invokes on_link_up / on_link_down on both
//    endpoints of every changed edge;
//  - drops in-flight messages whose link disappeared before delivery (the
//    radio reality a maintenance protocol must survive) and unicasts sent
//    to a vanished neighbor, counting both;
//  - carries simulated time and statistics across periods.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "sim/message.h"
#include "sim/runtime.h"

namespace wcds::sim {

class DynamicRuntime;

class DynamicContext {
 public:
  DynamicContext(DynamicRuntime& runtime, NodeId self, SimTime now)
      : runtime_(runtime), self_(self), now_(now) {}

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::span<const NodeId> neighbors() const;
  [[nodiscard]] std::size_t node_count() const;

  void broadcast(MessageType type, std::vector<std::uint32_t> payload = {});
  // Unicasts to a non-neighbor are silently dropped (and counted): the
  // sender may legitimately hold stale neighbor knowledge.
  void unicast(NodeId dst, MessageType type,
               std::vector<std::uint32_t> payload = {});

 private:
  DynamicRuntime& runtime_;
  NodeId self_;
  SimTime now_;
};

class DynamicProtocolNode {
 public:
  virtual ~DynamicProtocolNode() = default;
  virtual void on_start(DynamicContext& ctx) = 0;
  virtual void on_receive(DynamicContext& ctx, const Message& msg) = 0;
  virtual void on_link_up(DynamicContext& ctx, NodeId neighbor) = 0;
  virtual void on_link_down(DynamicContext& ctx, NodeId neighbor) = 0;
};

struct DynamicRunStats {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t dropped = 0;  // in-flight or stale-unicast losses
  SimTime now = 0;
  bool quiescent = true;
};

class DynamicRuntime {
 public:
  using NodeFactory =
      std::function<std::unique_ptr<DynamicProtocolNode>(NodeId)>;

  // Starts with `initial` as the topology; on_start fires on the first
  // run_to_quiescence() call.
  DynamicRuntime(const graph::Graph& initial, const NodeFactory& factory,
                 const DelayModel& delays = DelayModel::unit());

  // Deliver everything outstanding.  First call also runs on_start.
  DynamicRunStats run_to_quiescence(std::uint64_t max_events = 10'000'000);

  // Replace the topology; fires on_link_down / on_link_up for every changed
  // edge (both endpoints, deterministic ascending order), then returns —
  // call run_to_quiescence() to let the protocol settle.
  void apply_topology(const graph::Graph& next);

  // Seeded per-copy message loss: every delivery copy is independently
  // dropped with probability `drop` at send time (counted in stats().
  // dropped).  Maintenance protocols must stay convergent under loss —
  // that is what the MisMaintenanceSession watchdog repairs.  `drop` = 0
  // restores the reliable radio.
  void set_loss(double drop, std::uint64_t seed);

  // Run `fn(ctx, node)` on node u at the current simulated time — the hook
  // a liveness watchdog uses to nudge a protocol (e.g. re-announce local
  // state after suspected message loss).  Deliveries the nudge generates
  // stay queued until the next run_to_quiescence().
  template <typename Fn>
  void with_node(NodeId u, Fn&& fn) {
    DynamicContext ctx(*this, u, stats_.now);
    fn(ctx, *nodes_[u]);
  }

  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    return adjacency_[u];
  }
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] DynamicProtocolNode& node(NodeId u) { return *nodes_[u]; }
  [[nodiscard]] const DynamicRunStats& stats() const { return stats_; }

 private:
  friend class DynamicContext;

  struct PendingDelivery {
    Message message;
    NodeId recipient;
  };

  void send(NodeId src, SimTime now, NodeId dst, MessageType type,
            std::vector<std::uint32_t> payload);
  // One seeded loss decision per delivery copy; counts into stats_.dropped.
  [[nodiscard]] bool lose_copy();
  // Delivery time honoring the delay model and per-link FIFO (radio links
  // never reorder; protocol state machines rely on it).
  [[nodiscard]] SimTime schedule_delivery(NodeId src, NodeId recipient,
                                          SimTime now);

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::unique_ptr<DynamicProtocolNode>> nodes_;
  std::map<std::pair<SimTime, std::uint64_t>, PendingDelivery> queue_;
  std::uint64_t send_seq_ = 0;
  DynamicRunStats stats_;
  DelayModel delays_;
  geom::Xoshiro256ss delay_rng_;
  double loss_prob_ = 0.0;
  geom::Xoshiro256ss loss_rng_{0};
  std::map<std::pair<NodeId, NodeId>, SimTime> link_clock_;
  bool started_ = false;
};

}  // namespace wcds::sim
