// Discrete-event message-passing runtime over a unit-disk graph.
//
// Execution model:
//  - At time 0 every node's on_start runs (ascending id order).
//  - A transmission sent at time t is delivered after a per-recipient delay:
//    1 time unit under the default synchronous model, or a seeded random
//    delay in [min_delay, max_delay] under an asynchronous DelayModel.
//    Per-(sender, recipient) FIFO order is always preserved (radio links
//    do not reorder).
//  - Deliveries are processed in (time, global send sequence) order, so runs
//    are exactly reproducible given the seed.
//  - The run ends at quiescence (no pending deliveries) or when the event
//    budget trips (runaway-protocol guard).
//
// Cost accounting matches the paper: message complexity = number of
// transmissions (a broadcast is ONE message); time complexity = the delivery
// time of the last message.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "obs/recorder.h"
#include "sim/message.h"

namespace wcds::sim {

// Message-delay regime.  The default is the paper's synchronous unit-delay
// analysis model; the asynchronous variant stresses protocols with seeded
// random per-delivery delays (FIFO per link) — the paper's algorithms are
// event-driven and must stay correct under it.
struct DelayModel {
  SimTime min_delay = 1;
  SimTime max_delay = 1;
  std::uint64_t seed = 0;  // draws are deterministic given the seed

  [[nodiscard]] static DelayModel unit() { return {}; }
  [[nodiscard]] static DelayModel uniform(SimTime min_delay, SimTime max_delay,
                                          std::uint64_t seed) {
    return {min_delay, max_delay, seed};
  }
  [[nodiscard]] bool is_unit() const {
    return min_delay == 1 && max_delay == 1;
  }
};

class Runtime;

// Per-delivery view handed to protocol handlers; the only way a node may act
// on the network.
class Context {
 public:
  Context(Runtime& runtime, NodeId self, SimTime now)
      : runtime_(runtime), self_(self), now_(now) {}

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::span<const NodeId> neighbors() const;
  [[nodiscard]] std::size_t node_count() const;

  // One radio transmission heard by every neighbor.
  void broadcast(MessageType type, std::vector<std::uint32_t> payload = {});

  // One transmission addressed to a single neighbor (must be adjacent).
  void unicast(NodeId dst, MessageType type,
               std::vector<std::uint32_t> payload = {});

 private:
  Runtime& runtime_;
  NodeId self_;
  SimTime now_;
};

// A protocol's per-node state machine.
class ProtocolNode {
 public:
  virtual ~ProtocolNode() = default;
  virtual void on_start(Context& ctx) = 0;
  virtual void on_receive(Context& ctx, const Message& msg) = 0;
};

struct RunStats {
  std::uint64_t transmissions = 0;          // paper's message complexity
  std::uint64_t deliveries = 0;             // per-recipient copies
  SimTime completion_time = 0;              // paper's time complexity
  std::map<MessageType, std::uint64_t> per_type;
  bool quiescent = false;                   // false iff the budget tripped
};

class Runtime {
 public:
  using NodeFactory = std::function<std::unique_ptr<ProtocolNode>(NodeId)>;

  Runtime(const graph::Graph& g, const NodeFactory& factory,
          const DelayModel& delays = DelayModel::unit(),
          obs::Recorder* recorder = nullptr);

  // Observability hook.  Null (the default) records nothing and keeps the
  // hot path at a single predicted branch per event, so benchmark timings
  // stay honest; non-null feeds message-level TraceEvents (send/deliver
  // with queue depth) to the recorder's sink and folds the terminal
  // RunStats into its metrics after run().  Install before run().
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] obs::Recorder* recorder() const noexcept { return recorder_; }

  // Run until quiescence.  `max_events` guards against protocol bugs.
  RunStats run(std::uint64_t max_events = 100'000'000);

  [[nodiscard]] const graph::Graph& topology() const { return graph_; }
  [[nodiscard]] ProtocolNode& node(NodeId u) { return *nodes_[u]; }
  [[nodiscard]] const ProtocolNode& node(NodeId u) const { return *nodes_[u]; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

 private:
  friend class Context;

  struct PendingDelivery {
    SimTime time;
    std::uint64_t seq;  // global send order; makes processing deterministic
    Message message;
    NodeId recipient;
  };

  void send(NodeId src, SimTime now, NodeId dst, MessageType type,
            std::vector<std::uint32_t> payload);

  // Recording slow paths, only reached with a non-null recorder.
  void record_send(const Message& msg, SimTime now);
  void record_deliver(const PendingDelivery& delivery);
  void record_run_stats();

  // Delivery time for one copy, honoring the delay model and per-link FIFO.
  [[nodiscard]] SimTime schedule_delivery(NodeId src, NodeId recipient,
                                          SimTime now);

  const graph::Graph& graph_;
  std::vector<std::unique_ptr<ProtocolNode>> nodes_;
  // Min-queue by (time, seq).  std::map of deque keeps insertion order per
  // time step without a comparator on Message.
  std::map<std::pair<SimTime, std::uint64_t>, PendingDelivery> queue_;
  std::uint64_t send_seq_ = 0;
  RunStats stats_;
  bool ran_ = false;
  DelayModel delays_;
  geom::Xoshiro256ss delay_rng_;
  // Last scheduled delivery per (src, recipient) link, for FIFO enforcement.
  std::unordered_map<std::uint64_t, SimTime> link_clock_;
  obs::Recorder* recorder_ = nullptr;
  std::uint64_t max_queue_depth_ = 0;  // tracked only while recording
};

}  // namespace wcds::sim
