// Discrete-event message-passing runtime over a unit-disk graph.
//
// Execution model:
//  - At time 0 every node's on_start runs (ascending id order).
//  - A transmission sent at time t is delivered after a per-recipient delay:
//    1 time unit under the default synchronous model, or a seeded random
//    delay in [min_delay, max_delay] under an asynchronous DelayModel.
//    Per-(sender, recipient) FIFO order is always preserved (radio links
//    do not reorder).
//  - Deliveries are processed in (time, global send sequence) order, so runs
//    are exactly reproducible given the seed.
//  - The run ends at quiescence (no pending deliveries) or when the event
//    budget trips (runaway-protocol guard).
//
// Cost accounting matches the paper: message complexity = number of
// transmissions (a broadcast is ONE message); time complexity = the delivery
// time of the last message.
//
// Hot-path design (docs/PERFORMANCE.md): the event queue is allocation-free
// per delivery.  A broadcast interns its payload ONCE in a recycled message
// pool; each of the d recipients enqueues a 24-byte POD PendingDelivery
// referencing the shared slot.  Under unit delays every delivery lands at
// now+1, so a two-bucket rotating calendar replaces the priority queue
// entirely; under random delays a flat binary min-heap over a contiguous
// vector keyed by (time, seq) is used.  The original std::map-based queue
// survives behind QueuePolicy::kReferenceMap purely as a differential-test
// and benchmark baseline, mirroring udg::build_udg_reference.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "geom/rng.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "obs/recorder.h"
#include "sim/fault_hook.h"
#include "sim/message.h"

namespace wcds::sim {

// Message-delay regime.  The default is the paper's synchronous unit-delay
// analysis model; the asynchronous variant stresses protocols with seeded
// random per-delivery delays (FIFO per link) — the paper's algorithms are
// event-driven and must stay correct under it.
struct DelayModel {
  SimTime min_delay = 1;
  SimTime max_delay = 1;
  std::uint64_t seed = 0;  // draws are deterministic given the seed

  [[nodiscard]] static DelayModel unit() { return {}; }
  [[nodiscard]] static DelayModel uniform(SimTime min_delay, SimTime max_delay,
                                          std::uint64_t seed) {
    return {min_delay, max_delay, seed};
  }
  [[nodiscard]] bool is_unit() const {
    return min_delay == 1 && max_delay == 1;
  }
};

// Event-queue implementation selector.  kFlat is the production path; the
// reference map reproduces the original per-delivery-allocating queue so
// differential tests can prove both deliver in the same (time, seq) order
// with identical RunStats, and benchmarks can quantify the gap.
enum class QueuePolicy : std::uint8_t {
  kFlat,          // pooled payloads + calendar/heap (default)
  kReferenceMap,  // std::map of per-delivery Message copies (testing only)
};

// Execution policy for runs over multi-component topologies (sim/sharded.h).
// Components never exchange messages, so a run over a disconnected graph is
// DEFINED as the composition of independent per-component sub-runs folded in
// component-index order (graph::connected_components labels components by
// smallest member).  kGlobal executes the sub-runs serially on the caller;
// kComponentSharded executes the same sub-runs on the parallel::ThreadPool.
// Both policies share one code path per component, so traces, RunStats,
// metrics and constructed outputs are byte-identical at any thread count.
enum class ExecutionPolicy : std::uint8_t { kGlobal, kComponentSharded };

// Default event budget of Runtime::run (runaway-protocol guard).  Applies
// per component sub-run under sharded execution: shards cannot share a
// remaining-budget counter without reintroducing cross-shard coupling.
inline constexpr std::uint64_t kDefaultMaxEvents = 100'000'000;

class Runtime;

// Per-delivery view handed to protocol handlers; the only way a node may act
// on the network.  The send methods are virtual so a transport shim (the
// fault layer's FrameContext) can interpose on a wrapped node's sends while
// inheriting the read-only accessors.
class Context {
 public:
  Context(Runtime& runtime, NodeId self, SimTime now)
      : runtime_(runtime), self_(self), now_(now) {}
  virtual ~Context() = default;
  Context(const Context&) = default;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::span<const NodeId> neighbors() const;
  [[nodiscard]] std::size_t node_count() const;

  // One radio transmission heard by every neighbor.
  virtual void broadcast(MessageType type,
                         std::vector<std::uint32_t> payload = {});

  // One transmission addressed to a single neighbor (must be adjacent).
  virtual void unicast(NodeId dst, MessageType type,
                       std::vector<std::uint32_t> payload = {});

  // Arm a local timer: ProtocolNode::on_timer(token) fires on this node
  // after `delay` time units.  Timers are node-internal clocks — they do
  // not touch the radio, are never faulted (a crashed node's CPU keeps
  // ticking; only its radio is off), and count neither as transmissions nor
  // deliveries.  Only available under an async delay model or a fault hook
  // (the unit-delay calendar cannot host arbitrary-delay events).
  void set_timer(SimTime delay, std::uint64_t token);

 private:
  Runtime& runtime_;
  NodeId self_;
  SimTime now_;
};

// A protocol's per-node state machine.
class ProtocolNode {
 public:
  virtual ~ProtocolNode() = default;
  virtual void on_start(Context& ctx) = 0;
  virtual void on_receive(Context& ctx, const Message& msg) = 0;
  // Fires for timers armed via Context::set_timer; protocols that never arm
  // one (everything outside the fault transport) keep the default no-op.
  virtual void on_timer(Context& ctx, std::uint64_t token) {
    static_cast<void>(ctx);
    static_cast<void>(token);
  }
};

struct RunStats {
  std::uint64_t transmissions = 0;          // paper's message complexity
  std::uint64_t deliveries = 0;             // per-recipient copies
  std::uint64_t timer_fires = 0;            // local timer events (no radio)
  SimTime completion_time = 0;              // paper's time complexity
  // Post-run summary, not touched during delivery.
  std::map<MessageType, std::uint64_t> per_type;  // wcds-lint: allow(hot-path-alloc)
  bool quiescent = false;                   // false iff the budget tripped

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

class Runtime {
 public:
  // Called once per node at construction, never during delivery.
  using NodeFactory = std::function<std::unique_ptr<ProtocolNode>(NodeId)>;  // wcds-lint: allow(hot-path-alloc)

  // `faults` (null by default) injects deterministic message loss,
  // duplication, delay noise and node crashes into the delivery path; see
  // sim/fault_hook.h for the contract.  A non-null hook selects the
  // (time, seq) min-heap queue even under unit delays — the rotating
  // calendar assumes every delivery lands exactly one step out, which
  // jitter and timers break — and requires the flat queue policy.  The
  // null-hook path is byte-identical to a runtime built without the
  // parameter (guarded by tests/fault_test.cpp).
  //
  // `active` (empty by default = every node) restricts the runtime to a
  // subset of the graph's nodes: only active nodes get a ProtocolNode and an
  // on_start, in the given order.  The subset must be closed under adjacency
  // (a union of whole connected components, e.g. one ShardPlan shard) —
  // messages to nodes outside it would reach a null state machine.
  Runtime(const graph::Graph& g, const NodeFactory& factory,
          const DelayModel& delays = DelayModel::unit(),
          obs::Recorder* recorder = nullptr,
          QueuePolicy policy = QueuePolicy::kFlat,
          FaultHook* faults = nullptr,
          std::span<const NodeId> active = {});

  // Observability hook.  Null (the default) records nothing and keeps the
  // hot path at a single predicted branch per event, so benchmark timings
  // stay honest; non-null feeds message-level TraceEvents (send/deliver
  // with queue depth) to the recorder's sink and folds the terminal
  // RunStats into its metrics after run().  Install before run().
  void set_recorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] obs::Recorder* recorder() const noexcept { return recorder_; }

  // Run until quiescence.  `max_events` guards against protocol bugs.
  // Stats (including the metrics fold into the recorder) are produced even
  // when the budget trips — those are exactly the runs worth inspecting.
  RunStats run(std::uint64_t max_events = kDefaultMaxEvents);

  [[nodiscard]] const graph::Graph& topology() const { return graph_; }
  [[nodiscard]] ProtocolNode& node(NodeId u) { return *nodes_[u]; }
  [[nodiscard]] const ProtocolNode& node(NodeId u) const { return *nodes_[u]; }
  // Null-safe lookup: nullptr for nodes outside the active subset.
  [[nodiscard]] const ProtocolNode* node_if(NodeId u) const {
    return nodes_[u].get();
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] QueuePolicy queue_policy() const noexcept { return policy_; }
  [[nodiscard]] FaultHook* fault_hook() const noexcept { return fault_; }
  // Deepest queue observed while a recorder was installed (0 otherwise); the
  // shard merge layer folds these with set_max across components.
  [[nodiscard]] std::uint64_t max_queue_depth() const noexcept {
    return max_queue_depth_;
  }

 private:
  friend class Context;

  // POD event record; the payload lives once in the message pool no matter
  // how many recipients a broadcast fans out to.
  struct PendingDelivery {
    SimTime time;
    std::uint64_t seq;   // global send order; makes processing deterministic
    std::uint32_t slot;  // message pool slot (shared across a broadcast)
    NodeId recipient;
  };

  // One interned transmission.  `refs` counts outstanding deliveries; the
  // slot (and its payload capacity) is recycled when the last one lands.
  struct PoolSlot {
    Message message;
    std::uint32_t refs = 0;
  };

  // Reference-policy event record: the original design, one full Message
  // copy per recipient in a red-black-tree node.
  struct RefPendingDelivery {
    SimTime time;
    std::uint64_t seq;
    Message message;
    NodeId recipient;
  };

  void send(NodeId src, SimTime now, NodeId dst, MessageType type,
            std::vector<std::uint32_t> payload);
  void send_flat(NodeId src, SimTime now, NodeId dst, MessageType type,
                 std::vector<std::uint32_t>&& payload);
  void send_reference(NodeId src, SimTime now, NodeId dst, MessageType type,
                      std::vector<std::uint32_t>&& payload);
  // Fault-plan slow path: per-copy drop/duplicate/jitter decisions.
  void send_faulty(NodeId src, SimTime now, NodeId dst, MessageType type,
                   std::vector<std::uint32_t>&& payload);
  // Enqueue one copy for `recipient` honoring the fault hook; returns the
  // number of copies scheduled (0 dropped, 1, or 2 duplicated).
  std::uint32_t enqueue_faulty_copy(std::uint32_t slot, NodeId recipient,
                                    std::size_t link_slot, SimTime now);

  // Pool bookkeeping (flat policy only).
  [[nodiscard]] std::uint32_t acquire_slot(NodeId src, NodeId dst,
                                           MessageType type,
                                           std::vector<std::uint32_t>&& payload,
                                           std::uint32_t refs);
  void add_ref(std::uint32_t slot);
  void release_ref(std::uint32_t slot);

  // Flat-queue primitives.
  void enqueue_flat(const PendingDelivery& delivery);
  void heap_push(const PendingDelivery& delivery);
  [[nodiscard]] PendingDelivery heap_pop();

  // Whether unit-delay deliveries may use the two-bucket calendar (false
  // once a fault hook is installed: jitter and timers need the heap).
  [[nodiscard]] bool use_calendar() const {
    return delays_.is_unit() && fault_ == nullptr;
  }

  // Local timer events; ordered with deliveries by the shared (time, seq)
  // key, so runs stay exactly reproducible.
  struct TimerEvent {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t token;
    NodeId node;
  };
  void schedule_timer(NodeId node, SimTime at, std::uint64_t token);
  void timer_push(const TimerEvent& event);
  [[nodiscard]] TimerEvent timer_pop();

  void count_type(MessageType type);

  // Outstanding deliveries across whichever queue the policy selected.
  [[nodiscard]] std::size_t queue_size() const;

  // Recording slow paths, only reached with a non-null recorder.
  void record_send(NodeId src, NodeId dst, MessageType type, SimTime now);
  void record_deliver(SimTime time, NodeId src, NodeId recipient,
                      MessageType type);

  // Delivery time for one copy, honoring the delay model and per-link FIFO.
  // `link_slot` is the sender's directed CSR slot for the recipient
  // (graph::Graph::edge_slot), indexing the flat link-clock vector.
  [[nodiscard]] SimTime delivery_time(std::size_t link_slot, SimTime now);

  // Fold the dense per-type counters into stats_ and record metrics; runs on
  // both the quiescent and the budget-tripped exit path.
  void finalize_stats(bool quiescent);

  const graph::Graph& graph_;
  // Indexed by global NodeId; null outside the active subset.
  std::vector<std::unique_ptr<ProtocolNode>> nodes_;
  // on_start order; empty means all nodes in ascending id order.
  std::vector<NodeId> active_;
  QueuePolicy policy_;

  // Flat queue, unit-delay calendar: every in-flight delivery is due either
  // at the time step being drained (bucket_now_[bucket_pos_..]) or one step
  // later (bucket_next_, appended in send order == seq order).  swap() +
  // clear() per step keeps the capacity, so steady state allocates nothing.
  std::vector<PendingDelivery> bucket_now_;
  std::vector<PendingDelivery> bucket_next_;
  std::size_t bucket_pos_ = 0;

  // Flat queue, async: binary min-heap over a contiguous vector, keyed by
  // (time, seq).  seq is unique, so the order is total and deterministic.
  std::vector<PendingDelivery> heap_;

  // Timer min-heap, same (time, seq) key; only populated by Context::
  // set_timer (the fault transport's retransmit clock).
  std::vector<TimerEvent> timer_heap_;

  // Message pool.  A deque gives stable references: a handler may broadcast
  // (growing the pool) while it still reads the pooled message it was
  // handed.
  std::deque<PoolSlot> pool_;
  std::vector<std::uint32_t> free_slots_;

  // Reference policy: the original map keyed by (time, seq).  Kept as the
  // differential-testing oracle for the flat heap; only QueuePolicy::
  // kReferenceMap runs touch it.  wcds-lint: allow(hot-path-alloc)
  std::map<std::pair<SimTime, std::uint64_t>, RefPendingDelivery> ref_queue_;

  std::uint64_t send_seq_ = 0;
  RunStats stats_;
  // Dense per-type transmission counters, folded into stats_.per_type at the
  // end of run() (a map lookup per send is hot-path poison).
  std::vector<std::uint64_t> per_type_counts_;
  bool ran_ = false;
  DelayModel delays_;
  geom::Xoshiro256ss delay_rng_;
  // Last scheduled delivery per directed link, indexed by the sender's CSR
  // adjacency slot; only materialized under an async delay model.
  std::vector<SimTime> link_clock_;
  obs::Recorder* recorder_ = nullptr;
  FaultHook* fault_ = nullptr;
  std::uint64_t max_queue_depth_ = 0;  // tracked only while recording
};

// Fold one finished run's terminal stats into `recorder`'s metrics (null =
// no-op): the sim/* counter/gauge family of docs/OBSERVABILITY.md.  Shared
// by Runtime's exit path and merge_shards (sim/sharded.h), so a sharded run
// records exactly what the equivalent single-queue run would.
void record_run_metrics(obs::Recorder* recorder, const RunStats& stats,
                        std::uint64_t max_queue_depth);

}  // namespace wcds::sim
