#include "sim/dynamic_runtime.h"

#include <algorithm>

#include "check/check.h"

namespace wcds::sim {

std::span<const NodeId> DynamicContext::neighbors() const {
  return runtime_.neighbors(self_);
}

std::size_t DynamicContext::node_count() const {
  return runtime_.node_count();
}

void DynamicContext::broadcast(MessageType type,
                               std::vector<std::uint32_t> payload) {
  runtime_.send(self_, now_, kBroadcastDst, type, std::move(payload));
}

void DynamicContext::unicast(NodeId dst, MessageType type,
                             std::vector<std::uint32_t> payload) {
  runtime_.send(self_, now_, dst, type, std::move(payload));
}

DynamicRuntime::DynamicRuntime(const graph::Graph& initial,
                               const NodeFactory& factory,
                               const DelayModel& delays)
    : delays_(delays), delay_rng_(delays.seed + 1) {
  WCDS_REQUIRE(delays_.min_delay >= 1 && delays_.max_delay >= delays_.min_delay,
               "DynamicRuntime: invalid delay model");
  adjacency_.resize(initial.node_count());
  for (NodeId u = 0; u < initial.node_count(); ++u) {
    const auto row = initial.neighbors(u);
    adjacency_[u].assign(row.begin(), row.end());
  }
  nodes_.reserve(initial.node_count());
  for (NodeId u = 0; u < initial.node_count(); ++u) {
    nodes_.push_back(factory(u));
    WCDS_REQUIRE(nodes_.back() != nullptr,
                 "DynamicRuntime: factory returned null for " << u);
  }
}

bool DynamicRuntime::has_edge(NodeId u, NodeId v) const {
  const auto& row = adjacency_[u];
  return std::binary_search(row.begin(), row.end(), v);
}

SimTime DynamicRuntime::schedule_delivery(NodeId src, NodeId recipient,
                                          SimTime now) {
  SimTime delay = delays_.min_delay;
  if (!delays_.is_unit()) {
    delay += delay_rng_.next_below(delays_.max_delay - delays_.min_delay + 1);
  }
  SimTime at = now + delay;
  if (!delays_.is_unit()) {
    auto [it, inserted] = link_clock_.try_emplace({src, recipient}, at);
    if (!inserted) {
      at = std::max(at, it->second + 1);
      it->second = at;
    }
  }
  return at;
}

void DynamicRuntime::set_loss(double drop, std::uint64_t seed) {
  WCDS_REQUIRE(drop >= 0.0 && drop < 1.0,
               "DynamicRuntime: loss probability must be in [0, 1)");
  loss_prob_ = drop;
  loss_rng_ = geom::Xoshiro256ss(seed);
}

bool DynamicRuntime::lose_copy() {
  if (loss_prob_ == 0.0) return false;
  if (loss_rng_.next_double() >= loss_prob_) return false;
  ++stats_.dropped;
  return true;
}

void DynamicRuntime::send(NodeId src, SimTime now, NodeId dst,
                          MessageType type,
                          std::vector<std::uint32_t> payload) {
  Message msg{src, dst, type, std::move(payload)};
  if (dst == kBroadcastDst) {
    ++stats_.transmissions;
    for (NodeId v : adjacency_[src]) {
      if (lose_copy()) continue;
      queue_.emplace(std::pair{schedule_delivery(src, v, now), send_seq_},
                     PendingDelivery{msg, v});
      ++send_seq_;
    }
  } else {
    ++stats_.transmissions;
    if (!has_edge(src, dst)) {
      ++stats_.dropped;  // stale neighbor knowledge: the radio misses
      return;
    }
    if (lose_copy()) return;
    queue_.emplace(std::pair{schedule_delivery(src, dst, now), send_seq_},
                   PendingDelivery{std::move(msg), dst});
    ++send_seq_;
  }
}

DynamicRunStats DynamicRuntime::run_to_quiescence(std::uint64_t max_events) {
  if (!started_) {
    started_ = true;
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      DynamicContext ctx(*this, u, stats_.now);
      nodes_[u]->on_start(ctx);
    }
  }
  std::uint64_t events = 0;
  while (!queue_.empty()) {
    if (++events > max_events) {
      stats_.quiescent = false;
      return stats_;
    }
    auto first = queue_.begin();
    const SimTime at = first->first.first;
    PendingDelivery delivery = std::move(first->second);
    queue_.erase(first);
    stats_.now = std::max(stats_.now, at);
    // The link may have vanished while the message was in flight.
    if (!has_edge(delivery.message.src, delivery.recipient)) {
      ++stats_.dropped;
      continue;
    }
    ++stats_.deliveries;
    DynamicContext ctx(*this, delivery.recipient, at);
    nodes_[delivery.recipient]->on_receive(ctx, delivery.message);
  }
  stats_.quiescent = true;
  return stats_;
}

void DynamicRuntime::apply_topology(const graph::Graph& next) {
  WCDS_REQUIRE(next.node_count() == nodes_.size(),
               "apply_topology: node count mismatch");
  // Diff old vs new adjacency per node; collect changed edges once (u < v).
  std::vector<std::pair<NodeId, NodeId>> downs;
  std::vector<std::pair<NodeId, NodeId>> ups;
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    const auto& old_row = adjacency_[u];
    const auto new_row = next.neighbors(u);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < old_row.size() || j < new_row.size()) {
      if (j == new_row.size() ||
          (i < old_row.size() && old_row[i] < new_row[j])) {
        if (u < old_row[i]) downs.emplace_back(u, old_row[i]);
        ++i;
      } else if (i == old_row.size() || new_row[j] < old_row[i]) {
        if (u < new_row[j]) ups.emplace_back(u, new_row[j]);
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  // Install the new topology first so handlers see the post-change world.
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    const auto row = next.neighbors(u);
    adjacency_[u].assign(row.begin(), row.end());
  }
  for (const auto& [u, v] : downs) {
    DynamicContext cu(*this, u, stats_.now);
    nodes_[u]->on_link_down(cu, v);
    DynamicContext cv(*this, v, stats_.now);
    nodes_[v]->on_link_down(cv, u);
  }
  for (const auto& [u, v] : ups) {
    DynamicContext cu(*this, u, stats_.now);
    nodes_[u]->on_link_up(cu, v);
    DynamicContext cv(*this, v, stats_.now);
    nodes_[v]->on_link_up(cv, u);
  }
}

}  // namespace wcds::sim
