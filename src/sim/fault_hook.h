// Fault-injection hook for the sim runtime's delivery path.
//
// The runtime itself models a perfect radio: every transmission is heard
// exactly once by every intended recipient, in per-link FIFO order.  A
// FaultHook, installed at Runtime construction, lets an experiment corrupt
// that model deterministically — dropping or duplicating individual
// delivery copies, stretching their delay, and silencing crashed nodes —
// while the null hook (the default) keeps the delivery path at a single
// predicted branch, exactly like the null obs::Recorder (docs/ROBUSTNESS.md
// carries the determinism argument).
//
// The concrete implementation lives in src/fault/ (fault::Injector, driven
// by a seeded fault::Plan); the runtime only sees this interface, which
// keeps wcds_sim free of a dependency on the fault layer.
//
// Call discipline (the runtime guarantees, implementations may rely on):
//  - send_blocked() is consulted once per transmission, before any copy is
//    scheduled; a blocked sender's transmission vanishes entirely (radio
//    off) and is not counted as a transmission.
//  - drop_copy() / duplicate_copy() / extra_delay() are consulted once per
//    recipient copy, in deterministic enqueue order, so a seeded
//    implementation replays exactly.
//  - receive_blocked() is consulted at delivery time; a blocked recipient's
//    copy disappears (its radio is off) without touching RunStats.
#pragma once

#include <cstddef>

#include "graph/types.h"
#include "sim/message.h"

namespace wcds::sim {

class FaultHook {
 public:
  virtual ~FaultHook() = default;

  // The sender's radio is off at `now`: suppress the whole transmission.
  [[nodiscard]] virtual bool send_blocked(NodeId src, SimTime now) = 0;

  // Lose this one recipient copy.  `link_slot` is the sender's directed CSR
  // slot for the recipient (graph::Graph::edge_slot).
  [[nodiscard]] virtual bool drop_copy(std::size_t link_slot) = 0;

  // Deliver this copy twice (the duplicate draws its own extra_delay()).
  [[nodiscard]] virtual bool duplicate_copy(std::size_t link_slot) = 0;

  // Additional delivery delay for one copy; may reorder a link (the
  // hardened transport restores FIFO, see src/fault/hardened.h).
  [[nodiscard]] virtual SimTime extra_delay() = 0;

  // The recipient's radio is off at `at`: the copy is lost on arrival.
  [[nodiscard]] virtual bool receive_blocked(NodeId recipient, SimTime at) = 0;
};

}  // namespace wcds::sim
