// Component-sharded simulation runner: independent per-component Runtime
// sub-runs plus a deterministic index-ordered merge.
//
// Contract (the whole point): for a fixed topology, seed and fault plan, the
// merged traces, RunStats, metrics and every protocol-visible node state are
// byte-identical whether the shards execute serially (ExecutionPolicy::
// kGlobal) or on the thread pool (kComponentSharded), at any thread count.
// Three ingredients make this structural rather than hoped-for:
//  - shards are whole connected components (ShardPlan), so no message ever
//    crosses a shard boundary;
//  - every per-shard RNG stream (delay model, fault injector) reseeds via
//    shard_stream_seed(seed, component) — a pure function of the shard, not
//    of global interleaving or thread schedule;
//  - each shard writes only its own ShardOutcome slot; the merge folds the
//    slots in component-index order on the calling thread.
//
// docs/PERFORMANCE.md ("Component-sharded execution") carries the full
// determinism argument.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/recorder.h"
#include "obs/trace.h"
#include "sim/runtime.h"

namespace wcds::sim {

// Everything one shard's sub-run produces.  Slots are written by exactly one
// shard task and read only after the parallel region joins.
struct ShardOutcome {
  RunStats stats;
  std::uint64_t max_queue_depth = 0;
  double run_ms = 0.0;  // wall time of Runtime::run (recorded runs only)
  std::vector<obs::TraceEvent> trace;  // captured iff the caller traces
};

// Run one shard to quiescence (or budget trip) and capture its outcome.
//
// `members` must be a union of whole components (normally one ShardPlan
// shard), ascending; `delays` and `faults` must already carry the shard's
// own stream seeds.  `record` mirrors "outer recorder installed": it enables
// queue-depth tracking and the shard wall-clock phase so the merged metrics
// match a single-queue recorded run; `capture_trace` additionally buffers
// the shard's TraceEvents for ordered replay.  `inspect` (optional) runs on
// the quiesced Runtime before it is torn down — the extraction hook.
ShardOutcome run_shard(const graph::Graph& g, std::span<const NodeId> members,
                       const Runtime::NodeFactory& factory,
                       const DelayModel& delays, QueuePolicy queue,
                       FaultHook* faults, bool record, bool capture_trace,
                       std::uint64_t max_events = kDefaultMaxEvents,
                       const std::function<void(Runtime&)>& inspect = {});

// Fold per-shard outcomes in index order: stats sum (completion_time and
// queue depth fold with max, quiescent with AND, per-type counts key-wise),
// buffered traces replay into `recorder`'s sink in shard order, and the
// aggregate records the sim/* metric family exactly once, plus the
// `sim/shards` gauge and one `phase_ms/sim/shard_run` observation per shard.
RunStats merge_shards(std::span<const ShardOutcome> outcomes,
                      obs::Recorder* recorder);

// Execute `task(c)` for c in [0, shard_count) under the given policy:
// kGlobal runs the shards serially in index order on the calling thread;
// kComponentSharded dispatches them to parallel::pool_for(threads)
// (threads: 0 = WCDS_THREADS env / hardware default, 1 = inline serial).
// Tasks must write only shard-local state (their ShardOutcome slot).
void for_each_shard(ExecutionPolicy policy, std::size_t shard_count,
                    std::size_t threads,
                    const std::function<void(std::size_t)>& task);

}  // namespace wcds::sim
