#include "sim/shard_plan.h"

#include "check/check.h"
#include "geom/rng.h"
#include "graph/bfs.h"

namespace wcds::sim {

ShardPlan ShardPlan::build(const graph::Graph& g) {
  WCDS_REQUIRE(g.node_count() > 0, "ShardPlan: empty graph");
  const graph::Components components = graph::connected_components(g);
  ShardPlan plan;
  plan.label_ = components.label;
  const std::size_t n = g.node_count();
  const std::uint32_t k = components.count;
  // Counting sort by label; the scan ascends over node ids, so each shard's
  // member list comes out ascending — the on_start order Runtime needs.
  std::vector<std::uint32_t> sizes(k, 0);
  for (NodeId u = 0; u < n; ++u) ++sizes[plan.label_[u]];
  plan.offset_.assign(k + 1, 0);
  for (std::uint32_t c = 0; c < k; ++c) {
    plan.offset_[c + 1] = plan.offset_[c] + sizes[c];
  }
  plan.members_.resize(n);
  std::vector<std::uint32_t> cursor(plan.offset_.begin(),
                                    plan.offset_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    plan.members_[cursor[plan.label_[u]]++] = u;
  }
  return plan;
}

std::uint64_t shard_stream_seed(std::uint64_t seed, std::uint32_t component) {
  // Two SplitMix64 passes: the first whitens the run seed, the second splits
  // it per component.  SplitMix64 is designed exactly for deriving
  // decorrelated streams from consecutive seeds.
  geom::SplitMix64 whiten(seed);
  geom::SplitMix64 split(whiten.next() + component);
  return split.next();
}

}  // namespace wcds::sim
