#include "sim/runtime.h"

#include <algorithm>
#include <string>

#include "check/check.h"

namespace wcds::sim {

std::span<const NodeId> Context::neighbors() const {
  return runtime_.graph_.neighbors(self_);
}

std::size_t Context::node_count() const { return runtime_.graph_.node_count(); }

void Context::broadcast(MessageType type, std::vector<std::uint32_t> payload) {
  runtime_.send(self_, now_, kBroadcastDst, type, std::move(payload));
}

void Context::unicast(NodeId dst, MessageType type,
                      std::vector<std::uint32_t> payload) {
  runtime_.send(self_, now_, dst, type, std::move(payload));
}

Runtime::Runtime(const graph::Graph& g, const NodeFactory& factory,
                 const DelayModel& delays, obs::Recorder* recorder)
    : graph_(g), delays_(delays), delay_rng_(delays.seed + 1),
      recorder_(recorder) {
  WCDS_REQUIRE(delays_.min_delay >= 1 && delays_.max_delay >= delays_.min_delay,
               "Runtime: invalid delay model");
  nodes_.reserve(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    nodes_.push_back(factory(u));
    WCDS_REQUIRE(nodes_.back() != nullptr,
                 "Runtime: factory returned null node for " << u);
  }
}

SimTime Runtime::schedule_delivery(NodeId src, NodeId recipient, SimTime now) {
  SimTime delay = delays_.min_delay;
  if (!delays_.is_unit()) {
    delay += delay_rng_.next_below(delays_.max_delay - delays_.min_delay + 1);
  }
  SimTime at = now + delay;
  if (!delays_.is_unit()) {
    // Radio links never reorder: a later send on the same link arrives
    // strictly after every earlier one.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 32) | recipient;
    auto [it, inserted] = link_clock_.try_emplace(key, at);
    if (!inserted) {
      at = std::max(at, it->second + 1);
      it->second = at;
    }
  }
  return at;
}

void Runtime::send(NodeId src, SimTime now, NodeId dst, MessageType type,
                   std::vector<std::uint32_t> payload) {
  ++stats_.transmissions;
  ++stats_.per_type[type];
  Message msg{src, dst, type, std::move(payload)};
  if (dst == kBroadcastDst) {
    for (NodeId v : graph_.neighbors(src)) {
      const SimTime at = schedule_delivery(src, v, now);
      queue_.emplace(std::pair{at, send_seq_},
                     PendingDelivery{at, send_seq_, msg, v});
      ++send_seq_;
    }
    if (recorder_ != nullptr) [[unlikely]] record_send(msg, now);
  } else {
    WCDS_REQUIRE_STATE(graph_.has_edge(src, dst),
                       "Runtime: unicast " << src << " -> " << dst
                                           << " to a non-neighbor");
    const SimTime at = schedule_delivery(src, dst, now);
    if (recorder_ != nullptr) [[unlikely]] record_send(msg, now);
    queue_.emplace(std::pair{at, send_seq_},
                   PendingDelivery{at, send_seq_, std::move(msg), dst});
    ++send_seq_;
  }
}

void Runtime::record_send(const Message& msg, SimTime now) {
  max_queue_depth_ = std::max<std::uint64_t>(max_queue_depth_, queue_.size());
  if (obs::TraceSink* sink = recorder_->trace_sink()) {
    obs::TraceEvent event;
    event.kind = obs::TraceEvent::Kind::kSend;
    event.time = now;
    event.src = msg.src;
    event.dst = msg.dst == kBroadcastDst ? obs::kTraceBroadcastDst : msg.dst;
    event.message_type = msg.type;
    event.queue_depth = queue_.size();
    sink->on_event(event);
  }
}

void Runtime::record_deliver(const PendingDelivery& delivery) {
  if (obs::TraceSink* sink = recorder_->trace_sink()) {
    obs::TraceEvent event;
    event.kind = obs::TraceEvent::Kind::kDeliver;
    event.time = delivery.time;
    event.src = delivery.message.src;
    event.dst = delivery.recipient;
    event.message_type = delivery.message.type;
    event.queue_depth = queue_.size();
    sink->on_event(event);
  }
}

void Runtime::record_run_stats() {
  auto& metrics = recorder_->metrics();
  metrics.add("sim/transmissions", stats_.transmissions);
  metrics.add("sim/deliveries", stats_.deliveries);
  metrics.set_max("sim/completion_time",
                  static_cast<double>(stats_.completion_time));
  metrics.set_max("sim/max_queue_depth",
                  static_cast<double>(max_queue_depth_));
  for (const auto& [type, count] : stats_.per_type) {
    metrics.add("sim/msg_type/" + std::to_string(type), count);
  }
}

RunStats Runtime::run(std::uint64_t max_events) {
  WCDS_REQUIRE_STATE(!ran_, "Runtime: run() called twice");
  ran_ = true;
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    Context ctx(*this, u, 0);
    nodes_[u]->on_start(ctx);
  }
  std::uint64_t events = 0;
  while (!queue_.empty()) {
    if (++events > max_events) {
      stats_.quiescent = false;
      return stats_;
    }
    auto first = queue_.begin();
    PendingDelivery delivery = std::move(first->second);
    queue_.erase(first);
    ++stats_.deliveries;
    stats_.completion_time = delivery.time;
    if (recorder_ != nullptr) [[unlikely]] record_deliver(delivery);
    Context ctx(*this, delivery.recipient, delivery.time);
    nodes_[delivery.recipient]->on_receive(ctx, delivery.message);
  }
  stats_.quiescent = true;
  if (recorder_ != nullptr) record_run_stats();
  return stats_;
}

}  // namespace wcds::sim
