#include "sim/runtime.h"

#include <algorithm>
#include <string>

#include "check/check.h"

namespace wcds::sim {
namespace {

// Strict total order on (time, seq); seq is unique per event (deliveries and
// timers share the counter, so the merged order is total).
[[nodiscard]] bool earlier(const auto& a, const auto& b) {
  return a.time != b.time ? a.time < b.time : a.seq < b.seq;
}

// Contiguous binary min-heap primitives shared by the delivery heap and the
// timer heap (both keyed by `earlier`).
template <typename T>
void sift_up(std::vector<T>& heap) {
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap[i], heap[parent])) break;
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

template <typename T>
T pop_min(std::vector<T>& heap) {
  const T top = heap.front();
  const T last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n > 0) {
    std::size_t i = 0;
    while (true) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      std::size_t child = left;
      if (left + 1 < n && earlier(heap[left + 1], heap[left])) {
        child = left + 1;
      }
      if (!earlier(heap[child], last)) break;
      heap[i] = heap[child];
      i = child;
    }
    heap[i] = last;
  }
  return top;
}

}  // namespace

std::span<const NodeId> Context::neighbors() const {
  return runtime_.graph_.neighbors(self_);
}

std::size_t Context::node_count() const { return runtime_.graph_.node_count(); }

void Context::broadcast(MessageType type, std::vector<std::uint32_t> payload) {
  runtime_.send(self_, now_, kBroadcastDst, type, std::move(payload));
}

void Context::unicast(NodeId dst, MessageType type,
                      std::vector<std::uint32_t> payload) {
  runtime_.send(self_, now_, dst, type, std::move(payload));
}

void Context::set_timer(SimTime delay, std::uint64_t token) {
  runtime_.schedule_timer(self_, now_ + delay, token);
}

Runtime::Runtime(const graph::Graph& g, const NodeFactory& factory,
                 const DelayModel& delays, obs::Recorder* recorder,
                 QueuePolicy policy, FaultHook* faults,
                 std::span<const NodeId> active)
    : graph_(g), active_(active.begin(), active.end()), policy_(policy),
      delays_(delays), delay_rng_(delays.seed + 1), recorder_(recorder),
      fault_(faults) {
  WCDS_REQUIRE(delays_.min_delay >= 1 && delays_.max_delay >= delays_.min_delay,
               "Runtime: invalid delay model");
  WCDS_REQUIRE(fault_ == nullptr || policy_ == QueuePolicy::kFlat,
               "Runtime: fault injection requires the flat queue policy "
               "(the reference map exists only as a fault-free oracle)");
  if (!delays_.is_unit()) {
    // Zero-initialized clocks need no first-send branch: every real delivery
    // time is >= 1, so max(at, 0 + 1) leaves a first send untouched.
    link_clock_.assign(graph_.adjacency_slots(), 0);
  }
  nodes_.resize(g.node_count());
  if (active_.empty()) {
    for (NodeId u = 0; u < g.node_count(); ++u) {
      nodes_[u] = factory(u);
      WCDS_REQUIRE(nodes_[u] != nullptr,
                   "Runtime: factory returned null node for " << u);
    }
  } else {
    for (NodeId u : active_) {
      WCDS_REQUIRE(u < g.node_count() && nodes_[u] == nullptr,
                   "Runtime: invalid or repeated active node " << u);
      nodes_[u] = factory(u);
      WCDS_REQUIRE(nodes_[u] != nullptr,
                   "Runtime: factory returned null node for " << u);
    }
  }
}

SimTime Runtime::delivery_time(std::size_t link_slot, SimTime now) {
  SimTime delay = delays_.min_delay;
  if (!delays_.is_unit()) {
    delay += delay_rng_.next_below(delays_.max_delay - delays_.min_delay + 1);
  }
  SimTime at = now + delay;
  if (!delays_.is_unit()) {
    // Radio links never reorder: a later send on the same link arrives
    // strictly after every earlier one.
    at = std::max(at, link_clock_[link_slot] + 1);
    link_clock_[link_slot] = at;
  }
  return at;
}

void Runtime::count_type(MessageType type) {
  if (type >= per_type_counts_.size()) per_type_counts_.resize(type + 1, 0);
  ++per_type_counts_[type];
}

std::uint32_t Runtime::acquire_slot(NodeId src, NodeId dst, MessageType type,
                                    std::vector<std::uint32_t>&& payload,
                                    std::uint32_t refs) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  PoolSlot& entry = pool_[slot];
  entry.message.src = src;
  entry.message.dst = dst;
  entry.message.type = type;
  entry.message.payload = std::move(payload);
  entry.refs = refs;
  return slot;
}

void Runtime::add_ref(std::uint32_t slot) { ++pool_[slot].refs; }

void Runtime::release_ref(std::uint32_t slot) {
  PoolSlot& entry = pool_[slot];
  WCDS_DCHECK(entry.refs > 0, "Runtime: pool slot over-released");
  if (--entry.refs == 0) free_slots_.push_back(slot);
}

void Runtime::enqueue_flat(const PendingDelivery& delivery) {
  if (use_calendar()) {
    // Unit delays: every new delivery is due exactly one step after the one
    // being processed, so it belongs to the next calendar bucket; appending
    // preserves seq order within the step.
    WCDS_DCHECK(bucket_next_.empty() ||
                    bucket_next_.back().time == delivery.time,
                "Runtime: calendar bucket time skew");
    bucket_next_.push_back(delivery);
  } else {
    heap_push(delivery);
  }
}

void Runtime::heap_push(const PendingDelivery& delivery) {
  heap_.push_back(delivery);
  sift_up(heap_);
}

Runtime::PendingDelivery Runtime::heap_pop() { return pop_min(heap_); }

void Runtime::timer_push(const TimerEvent& event) {
  timer_heap_.push_back(event);
  sift_up(timer_heap_);
}

Runtime::TimerEvent Runtime::timer_pop() { return pop_min(timer_heap_); }

void Runtime::schedule_timer(NodeId node, SimTime at, std::uint64_t token) {
  WCDS_REQUIRE_STATE(
      policy_ == QueuePolicy::kFlat && !use_calendar(),
      "Runtime: timers require an async delay model or a fault hook (the "
      "unit-delay calendar cannot host arbitrary-delay events)");
  timer_push({at, send_seq_, token, node});
  ++send_seq_;
}

std::size_t Runtime::queue_size() const {
  // Pending local timers are node-internal clocks, not queued deliveries,
  // so they do not count toward the depth.
  if (policy_ == QueuePolicy::kReferenceMap) return ref_queue_.size();
  if (use_calendar()) {
    return (bucket_now_.size() - bucket_pos_) + bucket_next_.size();
  }
  return heap_.size();
}

void Runtime::send(NodeId src, SimTime now, NodeId dst, MessageType type,
                   std::vector<std::uint32_t> payload) {
  if (fault_ != nullptr) [[unlikely]] {
    // A crashed sender's radio is off: the transmission never happens, so
    // it is not part of the paper's message complexity either.
    if (fault_->send_blocked(src, now)) return;
    ++stats_.transmissions;
    count_type(type);
    send_faulty(src, now, dst, type, std::move(payload));
    return;
  }
  ++stats_.transmissions;
  count_type(type);
  if (policy_ == QueuePolicy::kReferenceMap) {
    send_reference(src, now, dst, type, std::move(payload));
  } else {
    send_flat(src, now, dst, type, std::move(payload));
  }
}

std::uint32_t Runtime::enqueue_faulty_copy(std::uint32_t slot,
                                           NodeId recipient,
                                           std::size_t link_slot,
                                           SimTime now) {
  if (fault_->drop_copy(link_slot)) return 0;
  const std::uint32_t copies = fault_->duplicate_copy(link_slot) ? 2U : 1U;
  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    // Each copy (the duplicate too) draws its own jitter, so duplicates may
    // overtake the original — exactly the reordering a hardened protocol
    // must survive.
    const SimTime at = delivery_time(link_slot, now) + fault_->extra_delay();
    add_ref(slot);
    heap_push({at, send_seq_, slot, recipient});
    ++send_seq_;
  }
  return copies;
}

void Runtime::send_faulty(NodeId src, SimTime now, NodeId dst,
                          MessageType type,
                          std::vector<std::uint32_t>&& payload) {
  if (dst == kBroadcastDst) {
    const auto neighbors = graph_.neighbors(src);
    if (!neighbors.empty()) {
      // The extra guard ref keeps the slot alive across the loop and frees
      // it immediately when every copy was dropped.
      const std::uint32_t slot =
          acquire_slot(src, dst, type, std::move(payload), 1);
      const std::size_t base = graph_.row_begin(src);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        enqueue_faulty_copy(slot, neighbors[i], base + i, now);
      }
      release_ref(slot);
    }
    if (recorder_ != nullptr) [[unlikely]] record_send(src, dst, type, now);
  } else {
    const std::size_t link_slot = graph_.edge_slot(src, dst);
    WCDS_REQUIRE_STATE(link_slot != graph::Graph::kNoSlot,
                       "Runtime: unicast " << src << " -> " << dst
                                           << " to a non-neighbor");
    const std::uint32_t slot =
        acquire_slot(src, dst, type, std::move(payload), 1);
    if (recorder_ != nullptr) [[unlikely]] record_send(src, dst, type, now);
    enqueue_faulty_copy(slot, dst, link_slot, now);
    release_ref(slot);
  }
}

void Runtime::send_flat(NodeId src, SimTime now, NodeId dst, MessageType type,
                        std::vector<std::uint32_t>&& payload) {
  if (dst == kBroadcastDst) {
    const auto neighbors = graph_.neighbors(src);
    if (!neighbors.empty()) {
      // One interned payload, d POD queue records.
      const std::uint32_t slot =
          acquire_slot(src, dst, type, std::move(payload),
                       static_cast<std::uint32_t>(neighbors.size()));
      const std::size_t base = graph_.row_begin(src);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const SimTime at = delivery_time(base + i, now);
        enqueue_flat({at, send_seq_, slot, neighbors[i]});
        ++send_seq_;
      }
    }
    if (recorder_ != nullptr) [[unlikely]] record_send(src, dst, type, now);
  } else {
    const std::size_t link_slot = graph_.edge_slot(src, dst);
    WCDS_REQUIRE_STATE(link_slot != graph::Graph::kNoSlot,
                       "Runtime: unicast " << src << " -> " << dst
                                           << " to a non-neighbor");
    const std::uint32_t slot = acquire_slot(src, dst, type, std::move(payload), 1);
    const SimTime at = delivery_time(link_slot, now);
    if (recorder_ != nullptr) [[unlikely]] record_send(src, dst, type, now);
    enqueue_flat({at, send_seq_, slot, dst});
    ++send_seq_;
  }
}

void Runtime::send_reference(NodeId src, SimTime now, NodeId dst,
                             MessageType type,
                             std::vector<std::uint32_t>&& payload) {
  Message msg{src, dst, type, std::move(payload)};
  if (dst == kBroadcastDst) {
    const auto neighbors = graph_.neighbors(src);
    const std::size_t base = graph_.row_begin(src);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const SimTime at = delivery_time(base + i, now);
      ref_queue_.emplace(std::pair{at, send_seq_},
                         RefPendingDelivery{at, send_seq_, msg, neighbors[i]});
      ++send_seq_;
    }
    if (recorder_ != nullptr) [[unlikely]] record_send(src, dst, type, now);
  } else {
    const std::size_t link_slot = graph_.edge_slot(src, dst);
    WCDS_REQUIRE_STATE(link_slot != graph::Graph::kNoSlot,
                       "Runtime: unicast " << src << " -> " << dst
                                           << " to a non-neighbor");
    const SimTime at = delivery_time(link_slot, now);
    if (recorder_ != nullptr) [[unlikely]] record_send(src, dst, type, now);
    ref_queue_.emplace(std::pair{at, send_seq_},
                       RefPendingDelivery{at, send_seq_, std::move(msg), dst});
    ++send_seq_;
  }
}

void Runtime::record_send(NodeId src, NodeId dst, MessageType type,
                          SimTime now) {
  max_queue_depth_ = std::max<std::uint64_t>(max_queue_depth_, queue_size());
  if (obs::TraceSink* sink = recorder_->trace_sink()) {
    obs::TraceEvent event;
    event.kind = obs::TraceEvent::Kind::kSend;
    event.time = now;
    event.src = src;
    event.dst = dst == kBroadcastDst ? obs::kTraceBroadcastDst : dst;
    event.message_type = type;
    event.queue_depth = queue_size();
    sink->on_event(event);
  }
}

void Runtime::record_deliver(SimTime time, NodeId src, NodeId recipient,
                             MessageType type) {
  if (obs::TraceSink* sink = recorder_->trace_sink()) {
    obs::TraceEvent event;
    event.kind = obs::TraceEvent::Kind::kDeliver;
    event.time = time;
    event.src = src;
    event.dst = recipient;
    event.message_type = type;
    event.queue_depth = queue_size();
    sink->on_event(event);
  }
}

void record_run_metrics(obs::Recorder* recorder, const RunStats& stats,
                        std::uint64_t max_queue_depth) {
  if (recorder == nullptr) return;
  auto& metrics = recorder->metrics();
  metrics.add("sim/transmissions", stats.transmissions);
  metrics.add("sim/deliveries", stats.deliveries);
  metrics.set_max("sim/completion_time",
                  static_cast<double>(stats.completion_time));
  metrics.set_max("sim/max_queue_depth",
                  static_cast<double>(max_queue_depth));
  metrics.set("sim/quiescent", stats.quiescent ? 1.0 : 0.0);
  for (const auto& [type, count] : stats.per_type) {
    metrics.add("sim/msg_type/" + std::to_string(type), count);
  }
}

void Runtime::finalize_stats(bool quiescent) {
  stats_.quiescent = quiescent;
  for (std::size_t type = 0; type < per_type_counts_.size(); ++type) {
    if (per_type_counts_[type] != 0) {
      stats_.per_type[static_cast<MessageType>(type)] = per_type_counts_[type];
    }
  }
  // Budget-tripped runs fold their stats too — those are exactly the runs
  // worth inspecting.
  record_run_metrics(recorder_, stats_, max_queue_depth_);
}

RunStats Runtime::run(std::uint64_t max_events) {
  WCDS_REQUIRE_STATE(!ran_, "Runtime: run() called twice");
  ran_ = true;
  if (active_.empty()) {
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      Context ctx(*this, u, 0);
      nodes_[u]->on_start(ctx);
    }
  } else {
    // A shard's members ascend within the component, so a member-restricted
    // sweep sees exactly the global on_start order restricted to the shard.
    for (NodeId u : active_) {
      Context ctx(*this, u, 0);
      nodes_[u]->on_start(ctx);
    }
  }
  std::uint64_t events = 0;
  if (policy_ == QueuePolicy::kReferenceMap) {
    while (!ref_queue_.empty()) {
      if (++events > max_events) {
        finalize_stats(false);
        return stats_;
      }
      auto first = ref_queue_.begin();
      RefPendingDelivery delivery = std::move(first->second);
      ref_queue_.erase(first);
      ++stats_.deliveries;
      stats_.completion_time = delivery.time;
      if (recorder_ != nullptr) [[unlikely]] {
        record_deliver(delivery.time, delivery.message.src, delivery.recipient,
                       delivery.message.type);
      }
      Context ctx(*this, delivery.recipient, delivery.time);
      nodes_[delivery.recipient]->on_receive(ctx, delivery.message);
    }
  } else if (use_calendar()) {
    while (true) {
      if (bucket_pos_ == bucket_now_.size()) {
        // Step the calendar: the next bucket becomes current; swap + clear
        // keeps both capacities, so steady state allocates nothing.
        bucket_now_.clear();
        bucket_pos_ = 0;
        std::swap(bucket_now_, bucket_next_);
        if (bucket_now_.empty()) break;
      }
      if (++events > max_events) {
        finalize_stats(false);
        return stats_;
      }
      const PendingDelivery delivery = bucket_now_[bucket_pos_++];
      ++stats_.deliveries;
      stats_.completion_time = delivery.time;
      PoolSlot& entry = pool_[delivery.slot];
      if (recorder_ != nullptr) [[unlikely]] {
        record_deliver(delivery.time, entry.message.src, delivery.recipient,
                       entry.message.type);
      }
      Context ctx(*this, delivery.recipient, delivery.time);
      nodes_[delivery.recipient]->on_receive(ctx, entry.message);
      release_ref(delivery.slot);
    }
  } else {
    while (!heap_.empty() || !timer_heap_.empty()) {
      if (++events > max_events) {
        finalize_stats(false);
        return stats_;
      }
      // Merge the delivery and timer heaps on the shared (time, seq) key;
      // seq is globally unique, so the pick is deterministic.
      if (!timer_heap_.empty() &&
          (heap_.empty() || earlier(timer_heap_.front(), heap_.front()))) {
        const TimerEvent timer = timer_pop();
        ++stats_.timer_fires;
        Context ctx(*this, timer.node, timer.time);
        nodes_[timer.node]->on_timer(ctx, timer.token);
        continue;
      }
      const PendingDelivery delivery = heap_pop();
      if (fault_ != nullptr &&
          fault_->receive_blocked(delivery.recipient, delivery.time))
          [[unlikely]] {
        // Recipient radio is off: the copy evaporates without touching
        // delivery stats or the recipient's state.
        release_ref(delivery.slot);
        continue;
      }
      ++stats_.deliveries;
      stats_.completion_time = delivery.time;
      PoolSlot& entry = pool_[delivery.slot];
      if (recorder_ != nullptr) [[unlikely]] {
        record_deliver(delivery.time, entry.message.src, delivery.recipient,
                       entry.message.type);
      }
      Context ctx(*this, delivery.recipient, delivery.time);
      nodes_[delivery.recipient]->on_receive(ctx, entry.message);
      release_ref(delivery.slot);
    }
  }
  finalize_stats(true);
  return stats_;
}

}  // namespace wcds::sim
