// Messages exchanged by simulated protocol nodes.
//
// The cost model matches the paper's: one *transmission* is one message,
// whether unicast or local broadcast (a single radio transmission reaches
// every UDG neighbor).  Message complexity counts transmissions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace wcds::sim {

// Destination sentinel for a local broadcast.
inline constexpr NodeId kBroadcastDst = kInvalidNode;

// Simulated time; every transmission takes one time unit to deliver.
using SimTime = std::uint64_t;

// Protocol-defined message type tag.  Each protocol owns its own enum and
// registers names for the stats breakdown.
using MessageType = std::uint16_t;

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kBroadcastDst;  // kBroadcastDst or a UDG neighbor of src
  MessageType type = 0;
  std::vector<std::uint32_t> payload;
};

}  // namespace wcds::sim
