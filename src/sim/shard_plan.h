// Component shard plan for the parallel simulation runner (sim/sharded.h).
//
// Nodes in different connected components can never exchange messages, so a
// run over a multi-component topology decomposes exactly into independent
// per-component sub-runs.  The plan is a CSR over components: shard c owns
// the nodes labeled c by graph::connected_components, in ascending id order.
// Component labels are assigned in discovery order (BFS from the smallest
// unvisited id), so shard order — and therefore the deterministic merge
// order — is itself a pure function of the topology.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace wcds::sim {

class ShardPlan {
 public:
  [[nodiscard]] static ShardPlan build(const graph::Graph& g);

  [[nodiscard]] std::size_t shard_count() const { return offset_.size() - 1; }

  // Members of shard c, ascending node ids.
  [[nodiscard]] std::span<const NodeId> shard(std::size_t c) const {
    return std::span<const NodeId>(members_).subspan(
        offset_[c], offset_[c + 1] - offset_[c]);
  }

  // Component label per node (0..shard_count()-1).
  [[nodiscard]] const std::vector<std::uint32_t>& labels() const {
    return label_;
  }

 private:
  std::vector<std::uint32_t> label_;
  std::vector<std::uint32_t> offset_;  // shard_count()+1 entries
  std::vector<NodeId> members_;        // grouped by shard, ascending within
};

// Deterministic per-shard RNG stream seed: a pure function of the run seed
// and the component index, independent of thread schedule and of how many
// other components exist.  Both the delay model and the fault injector of
// shard c reseed through this, so their draws replay exactly whether shards
// run serially or in parallel.
[[nodiscard]] std::uint64_t shard_stream_seed(std::uint64_t seed,
                                              std::uint32_t component);

}  // namespace wcds::sim
