// Contract/invariant checking layer used across every wcds subsystem.
//
// Three macro families, all with optional streamed messages:
//
//   WCDS_CHECK(cond, "context " << value)       always-on invariant check;
//   WCDS_CHECK_EQ/NE/LT/LE/GT/GE(a, b, ...)     comparison forms that format
//                                               both operands on failure;
//   WCDS_DCHECK / WCDS_DCHECK_*                 compiled out unless audits
//                                               are enabled (see below);
//   WCDS_REQUIRE(cond, ...)                     API-precondition forms with
//   WCDS_REQUIRE_BOUNDS(cond, ...)              fixed exception types
//   WCDS_REQUIRE_STATE(cond, ...)               (invalid_argument /
//                                               out_of_range / logic_error),
//                                               matching the library's
//                                               documented contracts.
//
// CHECK/DCHECK failures route through a pluggable failure handler: the
// default throws check::CheckError (what tests want); abort_handler prints
// the formatted failure and aborts (release-audit mode).  REQUIRE failures
// always throw their std exception type — argument errors are part of the
// public API contract, not a tunable policy.
//
// Audit gating: WCDS_ENABLE_AUDITS (set by the WCDS_AUDIT_INVARIANTS CMake
// option, defaulting to !NDEBUG when unset) fixes the compile-time default;
// set_audits_enabled() adjusts it at runtime (benchmarks switch audits off
// so measured hot paths stay honest).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#if !defined(WCDS_ENABLE_AUDITS)
#if defined(NDEBUG)
#define WCDS_ENABLE_AUDITS 0
#else
#define WCDS_ENABLE_AUDITS 1
#endif
#endif

namespace wcds::check {

// Everything the failure site knows, handed to the failure handler.
struct FailureContext {
  const char* expression;  // stringified condition
  const char* file;
  int line;
  std::string message;  // streamed user message ("" if none)
};

// "<file>:<line>: check failed: <expr>  <message>"
[[nodiscard]] std::string format_failure(const FailureContext& context);

// Thrown by the default failure handler.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

using FailureHandler = void (*)(const FailureContext&);

// Installs `handler` and returns the previous one.  Not thread-safe against
// concurrent check failures (swap handlers only at quiescent points).
FailureHandler set_failure_handler(FailureHandler handler) noexcept;
[[nodiscard]] FailureHandler failure_handler() noexcept;

// Built-in handlers.
[[noreturn]] void throw_handler(const FailureContext& context);  // default
[[noreturn]] void abort_handler(const FailureContext& context);

// Routes through the installed handler; throws CheckError itself if a
// custom handler declines to terminate.
[[noreturn]] void fail(const char* expression, const char* file, int line,
                       std::string message);

// REQUIRE failures: fixed exception types, not handler-routed.
[[noreturn]] void fail_argument(const char* expression, const char* file,
                                int line, std::string message);
[[noreturn]] void fail_bounds(const char* expression, const char* file,
                              int line, std::string message);
[[noreturn]] void fail_state(const char* expression, const char* file,
                             int line, std::string message);

// Compile-time default for DCHECKs and the paper-invariant auditor.
[[nodiscard]] constexpr bool audits_compiled_in() noexcept {
  return WCDS_ENABLE_AUDITS != 0;
}

// Runtime switch (initially audits_compiled_in()); returns the previous
// value.  audits_enabled() gates every wired-in audit_invariants call.
bool set_audits_enabled(bool enabled) noexcept;
[[nodiscard]] bool audits_enabled() noexcept;

namespace internal {

// Builds the optional streamed message: (MessageBuilder{} << a << b).str().
struct MessageBuilder {
  std::ostringstream out;

  template <typename T>
  MessageBuilder& operator<<(const T& value) & {
    out << value;
    return *this;
  }
  template <typename T>
  MessageBuilder&& operator<<(const T& value) && {
    out << value;
    return std::move(*this);
  }
  [[nodiscard]] std::string str() const { return out.str(); }
};

// "(lhs vs rhs)  <message>" for the comparison macros.
template <typename A, typename B>
[[nodiscard]] std::string binary_message(const A& lhs, const B& rhs,
                                         const std::string& message) {
  std::ostringstream out;
  out << "(" << lhs << " vs " << rhs << ")";
  if (!message.empty()) out << "  " << message;
  return out.str();
}

}  // namespace internal
}  // namespace wcds::check

// --- Always-on checks -------------------------------------------------------

#define WCDS_CHECK(cond, ...)                                               \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::wcds::check::fail(                                                  \
          #cond, __FILE__, __LINE__,                                        \
          (::wcds::check::internal::MessageBuilder{} __VA_OPT__(<<)         \
               __VA_ARGS__)                                                 \
              .str());                                                      \
    }                                                                       \
  } while (false)

#define WCDS_CHECK_OP_(op, a, b, ...)                                       \
  do {                                                                      \
    const auto& wcds_check_lhs_ = (a);                                      \
    const auto& wcds_check_rhs_ = (b);                                      \
    if (!(wcds_check_lhs_ op wcds_check_rhs_)) [[unlikely]] {               \
      ::wcds::check::fail(                                                  \
          #a " " #op " " #b, __FILE__, __LINE__,                            \
          ::wcds::check::internal::binary_message(                          \
              wcds_check_lhs_, wcds_check_rhs_,                             \
              (::wcds::check::internal::MessageBuilder{} __VA_OPT__(<<)     \
                   __VA_ARGS__)                                             \
                  .str()));                                                 \
    }                                                                       \
  } while (false)

#define WCDS_CHECK_EQ(a, b, ...) WCDS_CHECK_OP_(==, a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_CHECK_NE(a, b, ...) WCDS_CHECK_OP_(!=, a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_CHECK_LT(a, b, ...) WCDS_CHECK_OP_(<, a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_CHECK_LE(a, b, ...) WCDS_CHECK_OP_(<=, a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_CHECK_GT(a, b, ...) WCDS_CHECK_OP_(>, a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_CHECK_GE(a, b, ...) WCDS_CHECK_OP_(>=, a, b __VA_OPT__(, ) __VA_ARGS__)

// --- Debug/audit checks (compiled out when audits are off) ------------------

#if WCDS_ENABLE_AUDITS
#define WCDS_DCHECK(cond, ...) WCDS_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_DCHECK_EQ(a, b, ...) WCDS_CHECK_EQ(a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_DCHECK_NE(a, b, ...) WCDS_CHECK_NE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_DCHECK_LT(a, b, ...) WCDS_CHECK_LT(a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_DCHECK_LE(a, b, ...) WCDS_CHECK_LE(a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_DCHECK_GT(a, b, ...) WCDS_CHECK_GT(a, b __VA_OPT__(, ) __VA_ARGS__)
#define WCDS_DCHECK_GE(a, b, ...) WCDS_CHECK_GE(a, b __VA_OPT__(, ) __VA_ARGS__)
#else
// Dead-branch expansion keeps operands odr-used (no unused-variable
// warnings) while the optimizer removes the whole statement.
#define WCDS_DCHECK(cond, ...)                                              \
  do {                                                                      \
    if (false) WCDS_CHECK(cond __VA_OPT__(, ) __VA_ARGS__);                 \
  } while (false)
#define WCDS_DCHECK_EQ(a, b, ...)                                           \
  do {                                                                      \
    if (false) WCDS_CHECK_EQ(a, b __VA_OPT__(, ) __VA_ARGS__);              \
  } while (false)
#define WCDS_DCHECK_NE(a, b, ...)                                           \
  do {                                                                      \
    if (false) WCDS_CHECK_NE(a, b __VA_OPT__(, ) __VA_ARGS__);              \
  } while (false)
#define WCDS_DCHECK_LT(a, b, ...)                                           \
  do {                                                                      \
    if (false) WCDS_CHECK_LT(a, b __VA_OPT__(, ) __VA_ARGS__);              \
  } while (false)
#define WCDS_DCHECK_LE(a, b, ...)                                           \
  do {                                                                      \
    if (false) WCDS_CHECK_LE(a, b __VA_OPT__(, ) __VA_ARGS__);              \
  } while (false)
#define WCDS_DCHECK_GT(a, b, ...)                                           \
  do {                                                                      \
    if (false) WCDS_CHECK_GT(a, b __VA_OPT__(, ) __VA_ARGS__);              \
  } while (false)
#define WCDS_DCHECK_GE(a, b, ...)                                           \
  do {                                                                      \
    if (false) WCDS_CHECK_GE(a, b __VA_OPT__(, ) __VA_ARGS__);              \
  } while (false)
#endif

// --- API preconditions (fixed exception types) ------------------------------

#define WCDS_REQUIRE(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::wcds::check::fail_argument(                                         \
          #cond, __FILE__, __LINE__,                                        \
          (::wcds::check::internal::MessageBuilder{} __VA_OPT__(<<)         \
               __VA_ARGS__)                                                 \
              .str());                                                      \
    }                                                                       \
  } while (false)

#define WCDS_REQUIRE_BOUNDS(cond, ...)                                      \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::wcds::check::fail_bounds(                                           \
          #cond, __FILE__, __LINE__,                                        \
          (::wcds::check::internal::MessageBuilder{} __VA_OPT__(<<)         \
               __VA_ARGS__)                                                 \
              .str());                                                      \
    }                                                                       \
  } while (false)

#define WCDS_REQUIRE_STATE(cond, ...)                                       \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::wcds::check::fail_state(                                            \
          #cond, __FILE__, __LINE__,                                        \
          (::wcds::check::internal::MessageBuilder{} __VA_OPT__(<<)         \
               __VA_ARGS__)                                                 \
              .str());                                                      \
    }                                                                       \
  } while (false)
