// Paper-invariant auditor: machine-checks the structural theorems of
// Alzoubi-Wan-Frieder (ICDCS 2003) on a concrete (graph, WcdsResult) pair.
//
// Every violated invariant fails through the WCDS_CHECK layer with a message
// naming the lemma/theorem, so a corrupted construction surfaces as a
// check::CheckError (or aborts under the release-audit handler) instead of a
// silently wrong experiment.  The constants below are the re-derived
// annulus-packing bounds (see docs/CHECKING.md and DESIGN.md for the
// derivation; the published OCR garbles them).
//
// Invariant families, in audit order:
//   * WcdsResult consistency — mask/color/dominators agree, mis + additional
//     partition the dominator set (the audit_result contract, itemized);
//   * Section 1 — the set dominates and is weakly connected, judged per
//     connected component;
//   * Section 2 — mis_dominators is a maximal independent set (skipped when
//     mis_dominators is empty: pure-greedy baselines carry no MIS);
//   * Lemma 1   — (unit-disk) a non-MIS node has <= 5 MIS neighbors;
//   * Lemma 2   — (unit-disk) an MIS node has <= 23 MIS nodes at exactly
//     two hops and <= 47 within three hops;
//   * Lemma 3   — complementary MIS subsets are <= 3 hops apart (H_3
//     connected per component);
//   * Theorem 4 — under the (level, ID) ranking, exactly 2 (H_2 connected);
//   * Theorem 10 — (unit-disk) spanner edge count <= 9*#gray + 47*|S|;
//   * Theorem 11 — spanner hop distance <= 3*delta + 2 for non-adjacent
//     pairs (sampled BFS sources; opt-in, it is the expensive one);
//   * (k,m)-resilience — m-fold domination plus single-crash survivability
//     of the weakly induced subgraph (opt-in via AuditOptions::resilience;
//     see audit_resilience below).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "wcds/wcds_result.h"

namespace wcds::check {

// Re-derived packing constants (Section 2; see docs/CHECKING.md).
inline constexpr std::size_t kLemma1MaxMisNeighbors = 5;
inline constexpr std::size_t kLemma2TwoHopBound = 23;
inline constexpr std::size_t kLemma2ThreeHopBound = 47;
inline constexpr HopCount kLemma3MaxSubsetDistance = 3;
inline constexpr HopCount kTheorem4SubsetDistance = 2;
inline constexpr std::size_t kTheorem10GrayFactor = 9;
inline constexpr std::size_t kTheorem10MisFactor = 47;
inline constexpr HopCount kTheorem11Multiplier = 3;
inline constexpr HopCount kTheorem11Additive = 2;

struct AuditOptions {
  // The graph is a unit-disk graph: enforce the packing bounds (Lemmas 1-2,
  // Theorem 10).  Off by default — they are false for arbitrary graphs.
  bool unit_disk = false;

  // The MIS was built under the (level, ID) ranking: enforce Theorem 4's
  // two-hop complementary-subset distance instead of only Lemma 3's three.
  bool level_ranked = false;

  // Verify Theorem 11's dilation bound from `dilation_sources` sampled BFS
  // sources (exact when >= node count).  Costs extra BFS rounds.
  bool check_dilation = false;
  std::size_t dilation_sources = 4;

  // Restrict the audit to active nodes (dynamic maintenance).  Inactive
  // nodes must be isolated in `g` and outside the dominator set; they are
  // exempt from domination/coloring requirements.
  const std::vector<bool>* active = nullptr;

  // The result was built as a (k,m)-resilient backbone (wcds/resilient.h):
  // additionally enforce m-fold domination and, for k >= 2, single-crash
  // survivability.  An enabled spec also *disables* the Theorem 10 edge
  // bound — the theorem is proven for the plain Algorithm II backbone, and
  // the extra dominator layers legitimately thicken the spanner (the A9
  // experiment reports the measured sparseness instead).
  core::ResilienceSpec resilience;

  // Survivability audit sampling: check every ceil(|U| / sample)-th
  // backbone node's removal when nonzero, all of them when 0.  Each probe
  // costs two BFS sweeps, so large maintained backbones sample.
  std::size_t resilience_survivor_sample = 0;
};

// Runs every applicable invariant; failures raise through the check layer
// with the lemma/theorem name in the message.  Callers gate on
// check::audits_enabled() when the audit is a debug tripwire rather than an
// explicit verification request.
void audit_invariants(const graph::Graph& g, const core::WcdsResult& result,
                      const AuditOptions& options = {});

// True iff the backbone survives the concurrent crash of `crashed` with no
// repair: every surviving node that still has a live neighbor is dominated
// by a surviving dominator, and the weakly induced subgraph of the
// surviving dominators is connected within every connected component of
// g minus the crashed nodes.  Nodes isolated by the crash (their entire
// neighborhood went down) are exempt — no backbone can serve a node with
// no live radio link.  Pure predicate; never raises.
[[nodiscard]] bool survives_crashes(const graph::Graph& g,
                                    const core::WcdsResult& result,
                                    std::span<const NodeId> crashed);

// The (k,m) invariant family on its own: m-fold domination (every
// non-dominator has >= m dominators among its neighbors) and, for k >= 2,
// survives_crashes for every (sampled) single backbone removal.  Violations
// raise through the check layer naming the failed sub-invariant.
// audit_invariants dispatches here when options.resilience is enabled.
void audit_resilience(const graph::Graph& g, const core::WcdsResult& result,
                      const AuditOptions& options);

}  // namespace wcds::check
