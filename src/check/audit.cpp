#include "check/audit.h"

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "check/check.h"
#include "graph/bfs.h"
#include "mis/mis.h"
#include "mis/properties.h"

namespace wcds::check {
namespace {

bool node_active(const AuditOptions& options, NodeId u) {
  return options.active == nullptr || (*options.active)[u];
}

// Every structural field of WcdsResult agrees with every other (the
// audit_result contract, itemized so failures name the broken field).
void audit_consistency(const graph::Graph& g, const core::WcdsResult& result,
                       const AuditOptions& options) {
  const std::size_t n = g.node_count();
  WCDS_CHECK_EQ(result.mask.size(), n, "WcdsResult.mask is not node-indexed");
  WCDS_CHECK_EQ(result.color.size(), n, "WcdsResult.color is not node-indexed");
  WCDS_CHECK(std::is_sorted(result.dominators.begin(), result.dominators.end()),
             "WcdsResult.dominators must be ascending");
  WCDS_CHECK(std::is_sorted(result.mis_dominators.begin(),
                            result.mis_dominators.end()),
             "WcdsResult.mis_dominators must be ascending");
  WCDS_CHECK(std::is_sorted(result.additional_dominators.begin(),
                            result.additional_dominators.end()),
             "WcdsResult.additional_dominators must be ascending");

  std::size_t black = 0;
  for (NodeId u = 0; u < n; ++u) {
    WCDS_CHECK_EQ(result.mask[u], result.color[u] == core::NodeColor::kBlack,
                  "WcdsResult mask/color disagree at node " << u);
    if (result.mask[u]) ++black;
    if (!node_active(options, u)) {
      WCDS_CHECK(!result.mask[u],
                 "inactive node " << u << " is in the dominator set");
      continue;
    }
    if (!result.mask[u] && n > 1) {
      WCDS_CHECK(result.color[u] != core::NodeColor::kWhite,
                 "node " << u << " left white after construction");
    }
  }
  WCDS_CHECK_EQ(black, result.dominators.size(),
                "WcdsResult mask/dominators cardinality mismatch");
  for (NodeId u : result.dominators) {
    WCDS_CHECK_LT(u, n, "dominator id out of range");
    WCDS_CHECK(result.mask[u], "dominator " << u << " missing from mask");
  }
  // mis + additional partition the dominators (Algorithm II's U = S + C).
  std::vector<NodeId> merged = result.mis_dominators;
  merged.insert(merged.end(), result.additional_dominators.begin(),
                result.additional_dominators.end());
  std::sort(merged.begin(), merged.end());
  WCDS_CHECK(merged == result.dominators,
             "mis_dominators + additional_dominators do not partition "
             "WcdsResult.dominators");
}

// Section 1: the dominator set dominates every active node, and the weakly
// induced subgraph is connected within every connected component of g.
void audit_wcds_property(const graph::Graph& g, const core::WcdsResult& result,
                         const AuditOptions& options) {
  const std::size_t n = g.node_count();
  for (NodeId u = 0; u < n; ++u) {
    if (!node_active(options, u)) {
      WCDS_CHECK_EQ(g.degree(u), std::size_t{0},
                    "Section 1: inactive node " << u << " still has edges");
      continue;
    }
    if (result.mask[u]) continue;
    const auto row = g.neighbors(u);
    WCDS_CHECK(std::any_of(row.begin(), row.end(),
                           [&](NodeId v) { return result.mask[v]; }),
               "Section 1 (domination): node " << u
                                               << " has no dominator in its "
                                                  "closed neighborhood");
  }

  // Weak connectivity per component: a single BFS restricted to edges with
  // at least one black endpoint must sweep the whole component from ONE
  // dominator.  (Seeding from every dominator would visit each weakly
  // induced fragment separately and make the check vacuous.)
  const auto components = graph::connected_components(g);
  std::vector<NodeId> seed(components.count, kInvalidNode);
  for (NodeId u : result.dominators) {
    NodeId& s = seed[components.label[u]];
    if (s == kInvalidNode) s = u;
  }
  std::vector<bool> visited(n, false);
  for (NodeId s : seed) {
    if (s == kInvalidNode) continue;
    std::queue<NodeId> frontier;
    visited[s] = true;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (visited[v] || (!result.mask[u] && !result.mask[v])) continue;
        visited[v] = true;
        frontier.push(v);
      }
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (!node_active(options, u)) continue;
    if (seed[components.label[u]] != kInvalidNode) {
      WCDS_CHECK(visited[u],
                 "Section 1 (weak connectivity): node "
                     << u
                     << " is unreachable in the weakly induced subgraph of "
                        "its component");
    }
    // A component with no dominator at all already failed domination above.
  }
}

// Section 2: mis_dominators is an independent set.
void audit_mis_independence(const graph::Graph& g,
                            const core::WcdsResult& result,
                            const std::vector<bool>& mis_mask) {
  for (NodeId u : result.mis_dominators) {
    for (NodeId v : g.neighbors(u)) {
      WCDS_CHECK(!mis_mask[v], "Section 2 (independence): MIS dominators "
                                   << u << " and " << v << " are adjacent");
    }
  }
}

// Section 2: the independent set is maximal over active nodes.  Runs after
// the subset-distance audits: maximality mathematically implies Lemma 3, so
// checking it first would mask any subset-distance defect.
void audit_mis_maximality(const graph::Graph& g, const AuditOptions& options,
                          const std::vector<bool>& mis_mask) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!node_active(options, u) || mis_mask[u]) continue;
    const auto row = g.neighbors(u);
    WCDS_CHECK(std::any_of(row.begin(), row.end(),
                           [&](NodeId v) { return mis_mask[v]; }),
               "Section 2 (maximality): node "
                   << u << " has no MIS dominator in its neighborhood");
  }
}

// Lemma 3 / Theorem 4: within every connected component of g, the MIS
// proximity graph H_k is connected (complementary subsets <= k hops apart).
void audit_subset_distance(const graph::Graph& g, const mis::MisResult& s,
                           HopCount max_hops, const char* invariant) {
  if (s.members.size() <= 1) return;
  const auto proximity = mis::mis_proximity_graph(g, s, max_hops);
  const auto h_components = graph::connected_components(proximity);
  const auto g_components = graph::connected_components(g);
  // Members sharing a g-component must share an H_k component.
  std::vector<std::uint32_t> representative(g_components.count, kInvalidNode);
  for (NodeId i = 0; i < s.members.size(); ++i) {
    auto& rep = representative[g_components.label[s.members[i]]];
    if (rep == kInvalidNode) {
      rep = h_components.label[i];
    } else {
      WCDS_CHECK_EQ(rep, h_components.label[i],
                    invariant << ": complementary MIS subsets more than "
                              << max_hops << " hops apart (witness MIS node "
                              << s.members[i] << ")");
    }
  }
}

// Number of edges with at least one endpoint in the dominator set (the
// Section 4 spanner G').
std::size_t spanner_edge_count(const graph::Graph& g,
                               const core::WcdsResult& result) {
  std::size_t count = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && (result.mask[u] || result.mask[v])) ++count;
    }
  }
  return count;
}

// Theorem 11: spanner hop distance <= 3*delta + 2 for non-adjacent pairs,
// verified from an evenly strided sample of BFS sources.
void audit_dilation(const graph::Graph& g, const core::WcdsResult& result,
                    const AuditOptions& options) {
  const std::size_t n = g.node_count();
  if (n == 0) return;
  // Spanner as an explicit graph: keep edges with a black endpoint.
  graph::GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v && (result.mask[u] || result.mask[v])) builder.add_edge(u, v);
    }
  }
  const auto spanner = std::move(builder).build();
  const std::size_t count = std::min(n, options.dilation_sources);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<NodeId>(i * n / count);
    if (!node_active(options, u)) continue;
    const auto in_g = graph::bfs_distances(g, u);
    const auto in_spanner = graph::bfs_distances(spanner, u);
    for (NodeId v = 0; v < n; ++v) {
      if (v == u || in_g[v] == kUnreachable || in_g[v] == 1) continue;
      WCDS_CHECK(in_spanner[v] != kUnreachable,
                 "Theorem 11: pair (" << u << ", " << v
                                      << ") disconnected in the spanner");
      WCDS_CHECK_LE(in_spanner[v],
                    kTheorem11Multiplier * in_g[v] + kTheorem11Additive,
                    "Theorem 11 (topological dilation): pair (" << u << ", "
                                                                << v << ")");
    }
  }
}

}  // namespace

bool survives_crashes(const graph::Graph& g, const core::WcdsResult& result,
                      std::span<const NodeId> crashed) {
  const std::size_t n = g.node_count();
  std::vector<bool> down(n, false);
  for (NodeId v : crashed) {
    if (v < n) down[v] = true;
  }

  const auto is_survivor_dominator = [&](NodeId u) {
    return !down[u] && result.contains(u);
  };

  // Exempt crash-orphans (every neighbor down) and check residual
  // domination in one pass.
  std::vector<bool> orphan(n, false);
  for (NodeId u = 0; u < n; ++u) {
    if (down[u]) continue;
    const auto row = g.neighbors(u);
    const bool isolated =
        std::all_of(row.begin(), row.end(), [&](NodeId v) { return down[v]; });
    if (isolated) {
      orphan[u] = true;
      continue;
    }
    if (is_survivor_dominator(u)) continue;
    const bool dominated = std::any_of(row.begin(), row.end(), [&](NodeId v) {
      return is_survivor_dominator(v);
    });
    if (!dominated) return false;
  }

  // Component labels of g minus the crashed nodes.
  std::vector<std::uint32_t> component(n, kInvalidNode);
  std::uint32_t component_count = 0;
  std::queue<NodeId> frontier;
  for (NodeId s = 0; s < n; ++s) {
    if (down[s] || component[s] != kInvalidNode) continue;
    const std::uint32_t label = component_count++;
    component[s] = label;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (down[v] || component[v] != kInvalidNode) continue;
        component[v] = label;
        frontier.push(v);
      }
    }
  }

  // One weakly-induced BFS per component, seeded at its first surviving
  // dominator; every non-orphan survivor in a seeded component must be
  // swept (the same single-seed argument as audit_wcds_property).
  std::vector<NodeId> seed(component_count, kInvalidNode);
  for (NodeId u : result.dominators) {
    if (u >= n || down[u]) continue;
    NodeId& s = seed[component[u]];
    if (s == kInvalidNode) s = u;
  }
  std::vector<bool> visited(n, false);
  for (NodeId s : seed) {
    if (s == kInvalidNode) continue;
    visited[s] = true;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : g.neighbors(u)) {
        if (down[v] || visited[v]) continue;
        if (!is_survivor_dominator(u) && !is_survivor_dominator(v)) continue;
        visited[v] = true;
        frontier.push(v);
      }
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (down[u] || orphan[u]) continue;
    if (seed[component[u]] == kInvalidNode) return false;  // no dominator left
    if (!visited[u]) return false;
  }
  return true;
}

void audit_resilience(const graph::Graph& g, const core::WcdsResult& result,
                      const AuditOptions& options) {
  const core::ResilienceSpec& spec = options.resilience;
  const std::size_t n = g.node_count();

  if (spec.m > 1) {
    for (NodeId u = 0; u < n; ++u) {
      if (!node_active(options, u) || result.mask[u]) continue;
      std::size_t cover = 0;
      for (NodeId v : g.neighbors(u)) {
        if (result.mask[v]) ++cover;
      }
      WCDS_CHECK_GE(cover, static_cast<std::size_t>(spec.m),
                    "(k,m)-resilience (m-fold domination): node "
                        << u << " has " << cover << " dominators, needs "
                        << spec.m);
    }
  }

  if (spec.k >= 2 && !result.dominators.empty()) {
    std::size_t stride = 1;
    if (options.resilience_survivor_sample != 0 &&
        result.dominators.size() > options.resilience_survivor_sample) {
      stride = (result.dominators.size() +
                options.resilience_survivor_sample - 1) /
               options.resilience_survivor_sample;
    }
    for (std::size_t i = 0; i < result.dominators.size(); i += stride) {
      const NodeId v = result.dominators[i];
      const NodeId single[] = {v};
      WCDS_CHECK(survives_crashes(g, result, single),
                 "(k,m)-resilience (survivability): removing backbone node "
                     << v
                     << " disconnects or un-dominates the surviving "
                        "backbone");
    }
  }
}

void audit_invariants(const graph::Graph& g, const core::WcdsResult& result,
                      const AuditOptions& options) {
  const std::size_t n = g.node_count();
  WCDS_CHECK(options.active == nullptr || options.active->size() == n,
             "AuditOptions.active is not node-indexed");
  audit_consistency(g, result, options);
  audit_wcds_property(g, result, options);

  if (!result.mis_dominators.empty()) {
    mis::MisResult s;
    s.members = result.mis_dominators;
    s.mask.assign(n, false);
    for (NodeId u : s.members) s.mask[u] = true;
    audit_mis_independence(g, result, s.mask);

    audit_subset_distance(g, s, kLemma3MaxSubsetDistance, "Lemma 3");
    if (options.level_ranked) {
      audit_subset_distance(g, s, kTheorem4SubsetDistance, "Theorem 4");
    }

    audit_mis_maximality(g, options, s.mask);

    if (options.unit_disk) {
      WCDS_CHECK_LE(mis::max_mis_neighbors(g, s.mask), kLemma1MaxMisNeighbors,
                    "Lemma 1: a node has more than "
                        << kLemma1MaxMisNeighbors << " MIS neighbors");
      const auto stats = mis::mis_hop_neighborhood_stats(g, s);
      WCDS_CHECK_LE(stats.max_at_two_hops, kLemma2TwoHopBound,
                    "Lemma 2: an MIS node has more than "
                        << kLemma2TwoHopBound
                        << " MIS nodes at exactly two hops");
      WCDS_CHECK_LE(stats.max_within_three_hops, kLemma2ThreeHopBound,
                    "Lemma 2: an MIS node has more than "
                        << kLemma2ThreeHopBound
                        << " MIS nodes within three hops");

      // Theorem 10 is proven for the plain Algorithm II backbone; the extra
      // (k,m) dominator layers thicken the spanner past the 9/47 bound by
      // design, so the edge-count check only applies to plain results.
      if (!options.resilience.enabled()) {
        std::size_t active_count = n;
        if (options.active != nullptr) {
          active_count = static_cast<std::size_t>(std::count(
              options.active->begin(), options.active->end(), true));
        }
        const std::size_t gray = active_count - result.dominators.size();
        WCDS_CHECK_LE(
            spanner_edge_count(g, result),
            kTheorem10GrayFactor * gray +
                kTheorem10MisFactor * result.mis_dominators.size(),
            "Theorem 10: spanner edge count exceeds 9*#gray + 47*|S|");
      }
    }
  }

  if (options.resilience.enabled()) audit_resilience(g, result, options);

  if (options.check_dilation) audit_dilation(g, result, options);
}

}  // namespace wcds::check
