#include "check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wcds::check {
namespace {

std::atomic<FailureHandler> g_handler{&throw_handler};
std::atomic<bool> g_audits_enabled{audits_compiled_in()};

}  // namespace

std::string format_failure(const FailureContext& context) {
  std::ostringstream out;
  out << context.file << ":" << context.line
      << ": check failed: " << context.expression;
  if (!context.message.empty()) out << "  " << context.message;
  return out.str();
}

FailureHandler set_failure_handler(FailureHandler handler) noexcept {
  return g_handler.exchange(handler == nullptr ? &throw_handler : handler);
}

FailureHandler failure_handler() noexcept { return g_handler.load(); }

void throw_handler(const FailureContext& context) {
  throw CheckError(format_failure(context));
}

void abort_handler(const FailureContext& context) {
  const std::string text = format_failure(context);
  std::fputs(text.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  // The one sanctioned abort: this *is* the contract layer's terminator.
  std::abort();  // wcds-lint: allow(no-bare-assert)
}

void fail(const char* expression, const char* file, int line,
          std::string message) {
  const FailureContext context{expression, file, line, std::move(message)};
  g_handler.load()(context);
  // A custom handler that returns still may not let the caller continue past
  // a failed invariant.
  throw CheckError(format_failure(context));
}

void fail_argument(const char* expression, const char* file, int line,
                   std::string message) {
  throw std::invalid_argument(
      format_failure({expression, file, line, std::move(message)}));
}

void fail_bounds(const char* expression, const char* file, int line,
                 std::string message) {
  throw std::out_of_range(
      format_failure({expression, file, line, std::move(message)}));
}

void fail_state(const char* expression, const char* file, int line,
                std::string message) {
  throw std::logic_error(
      format_failure({expression, file, line, std::move(message)}));
}

bool set_audits_enabled(bool enabled) noexcept {
  return g_audits_enabled.exchange(enabled);
}

bool audits_enabled() noexcept { return g_audits_enabled.load(); }

}  // namespace wcds::check
