#include "io/svg.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace wcds::io {
namespace {

struct Mapper {
  double scale;
  double ox, oy;
  double map_x(double x) const { return ox + x * scale; }
  double map_y(double y) const { return oy + y * scale; }
};

Mapper make_mapper(const std::vector<geom::Point>& points,
                   const SvgOptions& options) {
  geom::BoundingBox box{{0, 0}, {1, 1}};
  if (!points.empty()) {
    box = {points[0], points[0]};
    for (const auto& p : points) box.expand(p);
  }
  const double w = std::max(box.width(), 1e-9);
  const double h = std::max(box.height(), 1e-9);
  const double usable = options.canvas_px - 2.0 * options.margin_px;
  const double scale = usable / std::max(w, h);
  return {scale, options.margin_px - box.min.x * scale,
          options.margin_px - box.min.y * scale};
}

}  // namespace

void write_svg(std::ostream& os, const std::vector<geom::Point>& points,
               const graph::Graph& g, const core::WcdsResult& wcds,
               const SvgOptions& options) {
  if (points.size() != g.node_count()) {
    throw std::invalid_argument("write_svg: point/graph size mismatch");
  }
  const bool have_wcds = wcds.mask.size() == points.size();
  const Mapper m = make_mapper(points, options);
  const double width = options.canvas_px;
  const double height = options.canvas_px;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
     << height << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  const auto is_black_edge = [&](NodeId u, NodeId v) {
    return have_wcds && (wcds.mask[u] || wcds.mask[v]);
  };

  if (options.draw_udg_edges) {
    os << "<g stroke=\"#d0d0d0\" stroke-width=\"0.7\">\n";
    for (const auto& [u, v] : g.edges()) {
      if (is_black_edge(u, v) && options.draw_spanner_edges) continue;
      os << "<line x1=\"" << m.map_x(points[u].x) << "\" y1=\""
         << m.map_y(points[u].y) << "\" x2=\"" << m.map_x(points[v].x)
         << "\" y2=\"" << m.map_y(points[v].y) << "\"/>\n";
    }
    os << "</g>\n";
  }
  if (options.draw_spanner_edges && have_wcds) {
    os << "<g stroke=\"#303030\" stroke-width=\"1.4\">\n";
    for (const auto& [u, v] : g.edges()) {
      if (!is_black_edge(u, v)) continue;
      os << "<line x1=\"" << m.map_x(points[u].x) << "\" y1=\""
         << m.map_y(points[u].y) << "\" x2=\"" << m.map_x(points[v].x)
         << "\" y2=\"" << m.map_y(points[v].y) << "\"/>\n";
    }
    os << "</g>\n";
  }

  std::vector<bool> additional(points.size(), false);
  if (have_wcds) {
    for (NodeId v : wcds.additional_dominators) additional[v] = true;
  }
  os << "<g>\n";
  const double r = options.node_radius_px;
  for (NodeId u = 0; u < points.size(); ++u) {
    const double x = m.map_x(points[u].x);
    const double y = m.map_y(points[u].y);
    if (have_wcds && additional[u]) {
      os << "<rect x=\"" << x - r << "\" y=\"" << y - r << "\" width=\""
         << 2 * r << "\" height=\"" << 2 * r
         << "\" fill=\"#c62828\" stroke=\"black\" stroke-width=\"0.5\"/>\n";
    } else if (have_wcds && wcds.mask[u]) {
      os << "<circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"" << r * 1.3
         << "\" fill=\"black\"/>\n";
    } else {
      os << "<circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"" << r
         << "\" fill=\"#9e9e9e\" stroke=\"#606060\" stroke-width=\"0.4\"/>\n";
    }
  }
  os << "</g>\n</svg>\n";
  if (!os) throw std::runtime_error("write_svg: stream failure");
}

void save_svg(const std::string& path, const std::vector<geom::Point>& points,
              const graph::Graph& g, const core::WcdsResult& wcds,
              const SvgOptions& options) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_svg: cannot open " + path);
  write_svg(os, points, g, wcds, options);
}

}  // namespace wcds::io
