// SVG rendering of deployments, backbones, and spanners.
//
// Produces figures in the style of the paper's illustrations: gray nodes as
// small circles, MIS-dominators as filled black discs, additional-dominators
// as filled squares, white (non-backbone) UDG edges as light strokes and
// black (spanner) edges as dark strokes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"
#include "wcds/wcds_result.h"

namespace wcds::io {

struct SvgOptions {
  double canvas_px = 900.0;   // longest side in pixels
  double margin_px = 24.0;
  double node_radius_px = 3.5;
  bool draw_udg_edges = true;      // light background edges
  bool draw_spanner_edges = true;  // dark backbone-incident edges
};

// Render the deployment with its WCDS.  `wcds` may be empty-initialized
// (default WcdsResult) to draw the bare UDG.
void write_svg(std::ostream& os, const std::vector<geom::Point>& points,
               const graph::Graph& g, const core::WcdsResult& wcds,
               const SvgOptions& options = {});

void save_svg(const std::string& path, const std::vector<geom::Point>& points,
              const graph::Graph& g, const core::WcdsResult& wcds,
              const SvgOptions& options = {});

}  // namespace wcds::io
