// Plain-text serialization for deployments and graphs.
//
// Deployment format (one point per line after the count):
//     wcds-points v1
//     <n>
//     <x> <y>
//     ...
// Graph format (undirected edge list, canonical u < v):
//     wcds-graph v1
//     <n> <m>
//     <u> <v>
//     ...
// Both formats round-trip exactly (doubles serialized with max_digits10).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geom/point.h"
#include "graph/graph.h"

namespace wcds::io {

void write_points(std::ostream& os, const std::vector<geom::Point>& points);
[[nodiscard]] std::vector<geom::Point> read_points(std::istream& is);

void write_graph(std::ostream& os, const graph::Graph& g);
[[nodiscard]] graph::Graph read_graph(std::istream& is);

// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_points(const std::string& path,
                 const std::vector<geom::Point>& points);
[[nodiscard]] std::vector<geom::Point> load_points(const std::string& path);
void save_graph(const std::string& path, const graph::Graph& g);
[[nodiscard]] graph::Graph load_graph(const std::string& path);

}  // namespace wcds::io
