#include "io/text_format.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wcds::io {
namespace {

constexpr const char* kPointsMagic = "wcds-points v1";
constexpr const char* kGraphMagic = "wcds-graph v1";

std::string read_header_line(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("wcds::io: truncated input (missing header)");
  }
  return line;
}

}  // namespace

void write_points(std::ostream& os, const std::vector<geom::Point>& points) {
  os << kPointsMagic << '\n' << points.size() << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& p : points) os << p.x << ' ' << p.y << '\n';
  if (!os) throw std::runtime_error("wcds::io: write_points failed");
}

std::vector<geom::Point> read_points(std::istream& is) {
  if (read_header_line(is) != kPointsMagic) {
    throw std::runtime_error("wcds::io: bad points header");
  }
  std::size_t n = 0;
  if (!(is >> n)) throw std::runtime_error("wcds::io: bad point count");
  std::vector<geom::Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    geom::Point p;
    if (!(is >> p.x >> p.y)) {
      throw std::runtime_error("wcds::io: truncated point list");
    }
    points.push_back(p);
  }
  return points;
}

void write_graph(std::ostream& os, const graph::Graph& g) {
  os << kGraphMagic << '\n' << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
  if (!os) throw std::runtime_error("wcds::io: write_graph failed");
}

graph::Graph read_graph(std::istream& is) {
  if (read_header_line(is) != kGraphMagic) {
    throw std::runtime_error("wcds::io: bad graph header");
  }
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(is >> n >> m)) throw std::runtime_error("wcds::io: bad graph sizes");
  graph::GraphBuilder builder(n);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    if (!(is >> u >> v)) {
      throw std::runtime_error("wcds::io: truncated edge list");
    }
    builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

void save_points(const std::string& path,
                 const std::vector<geom::Point>& points) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("wcds::io: cannot open " + path);
  write_points(os, points);
}

std::vector<geom::Point> load_points(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("wcds::io: cannot open " + path);
  return read_points(is);
}

void save_graph(const std::string& path, const graph::Graph& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("wcds::io: cannot open " + path);
  write_graph(os, g);
}

graph::Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("wcds::io: cannot open " + path);
  return read_graph(is);
}

}  // namespace wcds::io
