// Dynamic backbone: the distributed MIS maintenance protocol keeping the
// dominator set alive while the whole fleet moves (random waypoint).
//
// Unlike mobile_maintenance (centralized bookkeeping with localized scope),
// this demo runs the *message protocol*: every role change is a COLOR
// broadcast on the dynamic-topology simulator, links drop packets when they
// break, and the protocol re-stabilizes after every mobility step.
//
//   $ ./dynamic_backbone [node_count] [steps] [seed]
#include <iostream>
#include <string>

#include "geom/workload.h"
#include "mis/mis.h"
#include "mobility/models.h"
#include "protocols/mis_maintenance_protocol.h"
#include "udg/udg.h"

int main(int argc, char** argv) {
  using namespace wcds;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 250;
  const std::uint32_t steps =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 30;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 4;

  const double side = geom::side_for_expected_degree(n, 12.0);
  auto points = geom::uniform_square(n, side, seed);
  mobility::RandomWaypoint motion(points, {side, side},
                                  mobility::WaypointParams{}, seed + 1);

  protocols::MisMaintenanceSession session(udg::build_udg(points));
  if (!session.stabilize()) {
    std::cerr << "bootstrap did not stabilize\n";
    return 1;
  }
  const auto bootstrap_msgs = session.stats().transmissions;
  std::size_t initial_mis = 0;
  for (const bool b : session.mis_mask()) initial_mis += b;
  std::cout << "bootstrap: " << initial_mis << " dominators, "
            << bootstrap_msgs << " messages ("
            << static_cast<double>(bootstrap_msgs) / n << " per node)\n";

  std::size_t invalid_steps = 0;
  auto last_msgs = session.stats().transmissions;
  for (std::uint32_t step = 0; step < steps; ++step) {
    motion.step(0.5);
    const auto g = udg::build_udg(motion.positions());
    if (!session.update(g)) {
      std::cerr << "step " << step << " did not stabilize\n";
      return 1;
    }
    if (!mis::is_maximal_independent_set(g, session.mis_mask())) {
      ++invalid_steps;
    }
    last_msgs = session.stats().transmissions;
  }
  std::size_t final_mis = 0;
  for (const bool b : session.mis_mask()) final_mis += b;

  std::cout << "after " << steps << " mobility steps:\n"
            << "  maintenance messages: " << (last_msgs - bootstrap_msgs)
            << " total, "
            << static_cast<double>(last_msgs - bootstrap_msgs) / steps
            << " per step\n"
            << "  dropped in-flight/stale: " << session.stats().dropped << "\n"
            << "  MIS invariant violations: " << invalid_steps << "\n"
            << "  final dominator count: " << final_mis << "\n";
  return invalid_steps == 0 ? 0 : 1;
}
