// Quickstart: deploy a random ad hoc network, build the WCDS backbone with
// both of the paper's algorithms, and inspect the resulting sparse spanner.
//
//   $ ./quickstart [node_count] [expected_degree] [seed]
#include <cstdint>
#include <iostream>
#include <string>

#include "facade/build.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "spanner/analysis.h"
#include "udg/udg.h"
#include "wcds/verify.h"

namespace {

// Run the unified facade in one mode (see docs/PROTOCOLS.md).
wcds::core::BuildReport build_mode(const wcds::graph::Graph& g,
                                   wcds::core::BuildAlgorithm algorithm) {
  wcds::core::BuildOptions options;
  options.algorithm = algorithm;
  return wcds::core::build(g, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wcds;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 500;
  const double degree = argc > 2 ? std::stod(argv[2]) : 12.0;
  std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 1;

  // 1. Place nodes and build the unit-disk graph; retry seeds until the
  //    deployment is connected (the backbone problem assumes connectivity).
  const double side = geom::side_for_expected_degree(n, degree);
  std::vector<geom::Point> points;
  graph::Graph g;
  do {
    points = geom::uniform_square(n, side, seed++);
    g = udg::build_udg(points);
  } while (!graph::is_connected(g));

  std::cout << "deployment: " << n << " nodes, " << g.edge_count()
            << " UDG edges, avg degree " << g.average_degree() << "\n\n";

  // 2. Algorithm I: spanning-tree levels + level-ranked MIS (ratio 5).
  const auto r1 = build_mode(g, core::BuildAlgorithm::kAlgorithm1Central).result;
  std::cout << "Algorithm I   WCDS size: " << r1.size()
            << "  (is WCDS: " << std::boolalpha << core::is_wcds(g, r1.mask)
            << ")\n";

  // 3. Algorithm II: ID-ranked MIS + 3-hop bridges (localized, O(n) msgs).
  const auto out2 = build_mode(g, core::BuildAlgorithm::kAlgorithm2Central);
  std::cout << "Algorithm II  WCDS size: " << out2.result.size() << "  ("
            << out2.result.mis_dominators.size() << " MIS + "
            << out2.result.additional_dominators.size()
            << " additional dominators)\n\n";

  // 4. The weakly induced subgraph is the sparse spanner.
  const auto spanner = core::extract_spanner(g, out2.result);
  const auto sp = spanner::sparseness(g, spanner, out2.result);
  std::cout << "spanner: " << sp.spanner_edges << " edges ("
            << sp.edges_per_node << " per node, vs " << g.edge_count()
            << " in the UDG)\n";

  const auto topo = spanner::topological_dilation(g, spanner, 50);
  std::cout << "topological dilation: max " << topo.max_ratio << ", mean "
            << topo.mean_ratio << "  [Theorem 11 bound 3*delta + 2 holds: "
            << (topo.max_slack <= 0) << "]\n";
  return 0;
}
