// Visualize: render a deployment, its WCDS backbone and sparse spanner as
// SVG figures in the style of the paper's illustrations.
//
// Writes three files:
//   <prefix>_udg.svg       the bare unit-disk graph (paper Fig. 1)
//   <prefix>_alg1.svg      Algorithm I's WCDS + spanner
//   <prefix>_alg2.svg      Algorithm II's WCDS + spanner (squares mark the
//                          additional-dominators bridging 3-hop MIS pairs)
//
//   $ ./visualize [node_count] [expected_degree] [seed] [prefix]
#include <iostream>
#include <string>

#include "geom/workload.h"
#include "graph/bfs.h"
#include "io/svg.h"
#include "io/text_format.h"
#include "facade/build.h"
#include "udg/udg.h"

int main(int argc, char** argv) {
  using namespace wcds;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 250;
  const double degree = argc > 2 ? std::stod(argv[2]) : 10.0;
  std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 1;
  const std::string prefix = argc > 4 ? argv[4] : "wcds_demo";

  const double side = geom::side_for_expected_degree(n, degree);
  std::vector<geom::Point> points;
  graph::Graph g;
  do {
    points = geom::uniform_square(n, side, seed++);
    g = udg::build_udg(points);
  } while (!graph::is_connected(g));

  io::save_svg(prefix + "_udg.svg", points, g, core::WcdsResult{});

  core::BuildOptions options1;
  options1.algorithm = core::BuildAlgorithm::kAlgorithm1Central;
  const auto r1 = core::build(g, options1).result;
  io::save_svg(prefix + "_alg1.svg", points, g, r1);

  core::BuildOptions options2;
  options2.algorithm = core::BuildAlgorithm::kAlgorithm2Central;
  const auto out2 = core::build(g, options2);
  io::save_svg(prefix + "_alg2.svg", points, g, out2.result);

  io::save_points(prefix + "_points.txt", points);

  std::cout << "wrote " << prefix << "_udg.svg (" << g.edge_count()
            << " edges), " << prefix << "_alg1.svg (" << r1.size()
            << " dominators), " << prefix << "_alg2.svg ("
            << out2.result.mis_dominators.size() << " MIS + "
            << out2.result.additional_dominators.size()
            << " additional dominators), and " << prefix << "_points.txt\n";
  return 0;
}
