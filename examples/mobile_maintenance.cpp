// Mobile maintenance: vehicles drift across the field while the WCDS
// backbone self-repairs locally (paper, Section 4.2: "the nodes that get
// affected are within three-hop distance").
//
// Scenario: random-waypoint-style motion; after every movement step the
// backbone invariants are re-audited, and we report how few nodes each
// repair touched compared to rebuilding the backbone from scratch.
//
//   $ ./mobile_maintenance [node_count] [steps] [seed]
#include <iostream>
#include <string>

#include "geom/rng.h"
#include "geom/workload.h"
#include "maintenance/dynamic_wcds.h"

int main(int argc, char** argv) {
  using namespace wcds;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 300;
  const std::uint32_t steps =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 100;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 5;

  const double degree = 12.0;
  const double side = geom::side_for_expected_degree(n, degree);
  maintenance::DynamicWcds net(
      geom::uniform_square(n, side, seed));

  std::cout << "initial backbone: " << net.dominators().size()
            << " dominators over " << n << " nodes\n";

  geom::Xoshiro256ss rng(seed * 7919 + 17);
  std::size_t total_demoted = 0;
  std::size_t total_promoted = 0;
  std::size_t total_region = 0;
  std::size_t audits_failed = 0;
  std::size_t events = 0;

  for (std::uint32_t step = 0; step < steps; ++step) {
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const auto kind = rng.next_below(10);
    maintenance::RepairReport report;
    if (kind < 8) {  // 80% short moves
      geom::Point p = net.position(u);
      p.x += rng.next_double(-0.5, 0.5);
      p.y += rng.next_double(-0.5, 0.5);
      report = net.move_node(u, p);
    } else if (kind == 8) {  // radio off
      report = net.deactivate(u);
    } else {  // radio on
      report = net.activate(u);
    }
    ++events;
    total_demoted += report.demoted;
    total_promoted += report.promoted;
    total_region += report.region_size;
    if (!net.audit().ok()) ++audits_failed;
  }

  std::cout << "after " << events << " mobility events:\n"
            << "  role changes: " << total_demoted << " demotions, "
            << total_promoted << " promotions\n"
            << "  mean repair region: "
            << static_cast<double>(total_region) /
                   static_cast<double>(events)
            << " nodes (full rebuild would touch " << n << ")\n"
            << "  invariant violations: " << audits_failed << "\n"
            << "final backbone: " << net.dominators().size()
            << " dominators\n";
  return audits_failed == 0 ? 0 : 1;
}
