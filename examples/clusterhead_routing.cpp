// Routing over the backbone (paper, Section 4.2) behind the unified
// routing::Router interface.  The default clusterhead strategy sends unicast
// packets src -> clusterhead -> ... -> clusterhead -> dst over black
// (spanner) edges only, using the dominators' routing tables; the geographic
// strategy routes greedily by position with no routing state at all.
//
// Scenario: a field deployment where pairs of sensors exchange readings.  We
// route a batch of random pairs, verify delivery, and report the stretch
// against shortest-path routing (which would need global state at every
// node; the clusterhead scheme keeps routing state only at dominators).
//
//   $ ./clusterhead_routing [node_count] [expected_degree] [pairs] [seed]
//       [clusterhead|geographic]
#include <iostream>
#include <string>

#include "geom/rng.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "routing/clusterhead_routing.h"
#include "routing/router.h"
#include "facade/build.h"
#include "udg/udg.h"

int main(int argc, char** argv) {
  using namespace wcds;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 600;
  const double degree = argc > 2 ? std::stod(argv[2]) : 14.0;
  const std::uint32_t pair_count =
      argc > 3 ? static_cast<std::uint32_t>(std::stoul(argv[3])) : 2000;
  std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 3;
  const routing::Strategy strategy =
      argc > 5 && std::string(argv[5]) == "geographic"
          ? routing::Strategy::kGeographic
          : routing::Strategy::kClusterhead;

  const double side = geom::side_for_expected_degree(n, degree);
  std::vector<geom::Point> points;
  graph::Graph g;
  do {
    points = geom::uniform_square(n, side, seed++);
    g = udg::build_udg(points);
  } while (!graph::is_connected(g));

  core::BuildOptions build_options;
  build_options.algorithm = core::BuildAlgorithm::kAlgorithm2Central;
  const auto report = core::build(g, build_options);
  const auto router =
      routing::make_router(strategy, g, report.algorithm2_view(), points);

  std::cout << "network: " << n << " nodes; strategy: "
            << routing::to_string(router->strategy()) << "\n";
  if (strategy == routing::Strategy::kClusterhead) {
    const auto& ch = static_cast<const routing::ClusterheadRouter&>(*router);
    std::cout << "clusterheads: " << ch.clusterhead_count()
              << "; overlay edges: " << ch.overlay_edge_count()
              << "; routing-table entries: " << ch.table_entries()
              << " (held at dominators only)\n";
  }
  std::cout << "\n";

  geom::Xoshiro256ss rng(909);
  std::size_t delivered = 0;
  std::size_t total_hops = 0;
  std::size_t total_optimal = 0;
  double worst_stretch = 0.0;
  for (std::uint32_t i = 0; i < pair_count; ++i) {
    const NodeId src = static_cast<NodeId>(rng.next_below(n));
    const NodeId dst = static_cast<NodeId>(rng.next_below(n));
    if (src == dst) continue;
    const auto route = router->route(src, dst);
    if (!route.delivered) continue;
    ++delivered;
    const auto opt = graph::hop_distance(g, src, dst);
    total_hops += route.hops();
    total_optimal += opt;
    if (opt > 0) {
      worst_stretch = std::max(
          worst_stretch,
          static_cast<double>(route.hops()) / static_cast<double>(opt));
    }
  }

  std::cout << "routed " << delivered << " packets; mean route length "
            << static_cast<double>(total_hops) /
                   static_cast<double>(delivered)
            << " hops (shortest-path mean "
            << static_cast<double>(total_optimal) /
                   static_cast<double>(delivered)
            << ")\n";
  std::cout << "mean stretch "
            << static_cast<double>(total_hops) /
                   static_cast<double>(total_optimal)
            << ", worst stretch " << worst_stretch << "\n";
  return 0;
}
