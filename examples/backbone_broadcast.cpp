// Backbone broadcast: the paper's core motivation — disseminating a message
// over the WCDS virtual backbone instead of blind flooding reduces the
// number of transmissions to roughly the relay-structure size.
//
// Scenario: a sensor field disseminates an alarm network-wide.  We build the
// Algorithm II backbone, derive the broadcast relay set (backbone + one
// gateway per two-hop backbone pair; see src/broadcast), and compare against
// blind flooding where every node retransmits once.  Both reach everyone.
//
//   $ ./backbone_broadcast [node_count] [expected_degree] [seed]
#include <iostream>
#include <string>

#include "broadcast/backbone_broadcast.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "facade/build.h"
#include "udg/udg.h"

int main(int argc, char** argv) {
  using namespace wcds;
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 800;
  const double degree = argc > 2 ? std::stod(argv[2]) : 15.0;
  std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 7;

  const double side = geom::side_for_expected_degree(n, degree);
  std::vector<geom::Point> points;
  graph::Graph g;
  do {
    points = geom::uniform_square(n, side, seed++);
    g = udg::build_udg(points);
  } while (!graph::is_connected(g));

  core::BuildOptions build_options;
  build_options.algorithm = core::BuildAlgorithm::kAlgorithm2Central;
  const auto backbone = core::build(g, build_options);
  auto relays = broadcast::relay_set(g, backbone.result.mask);
  std::size_t relay_count = 0;
  for (NodeId u = 0; u < n; ++u) relay_count += relays[u];
  relays[0] = true;  // the source always transmits

  std::cout << "network: " << n << " nodes, " << g.edge_count()
            << " edges\nbackbone: " << backbone.result.size()
            << " dominators, relay set (backbone + gateways): " << relay_count
            << "\n\n";

  const auto blind = broadcast::blind_flood(g, 0);
  const auto bb = broadcast::flood(g, 0, relays);

  std::cout << "blind flood:    " << blind.transmissions
            << " transmissions, reached " << blind.reached << "/" << n
            << ", completion time " << blind.completion << "\n";
  std::cout << "backbone flood: " << bb.transmissions
            << " transmissions, reached " << bb.reached << "/" << n
            << ", completion time " << bb.completion << "\n";
  if (blind.transmissions > 0) {
    std::cout << "saved " << (blind.transmissions - bb.transmissions)
              << " transmissions ("
              << 100.0 *
                     static_cast<double>(blind.transmissions -
                                         bb.transmissions) /
                     static_cast<double>(blind.transmissions)
              << "%)\n";
  }
  return bb.reached == n && blind.reached == n ? 0 : 1;
}
