#include <gtest/gtest.h>

#include <sstream>

#include "bench_support/stats.h"
#include "bench_support/table.h"

namespace wcds::bench {
namespace {

TEST(Table, RejectsEmptyHeadersAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"n", "value"});
  t.add_row({"10", "1.5"});
  t.add_row({"1000", "2.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_ratio(0.5), "0.500");
  EXPECT_EQ(fmt_count(42), "42");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  banner(os, "T1: approximation ratios");
  EXPECT_NE(os.str().find("T1: approximation ratios"), std::string::npos);
}

TEST(Stats, EmptyIsZero) {
  const auto s = summarize({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownValues) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, SingleValue) {
  const double v[] = {3.5};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

}  // namespace
}  // namespace wcds::bench
