// Paper-invariant auditor: positive runs over real constructions, then one
// seeded corruption per invariant, each required to fail through the check
// layer with a message naming the violated lemma/theorem.  audit_result must
// reject the same structural corruptions it has always covered.
#include "check/audit.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.h"
#include "graph/graph.h"
#include "test_util.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"
#include "wcds/wcds_result.h"

namespace wcds {
namespace {

using check::AuditOptions;
using check::CheckError;
using core::NodeColor;
using core::WcdsResult;

// Asserts the audit rejects (g, result) and that the failure message names
// `invariant`.
void ExpectAuditFailure(const graph::Graph& g, const WcdsResult& result,
                        const AuditOptions& options,
                        const std::string& invariant) {
  try {
    check::audit_invariants(g, result, options);
    FAIL() << "audit_invariants accepted a corruption that violates "
           << invariant;
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(invariant), std::string::npos)
        << "failure message does not name " << invariant << ": " << e.what();
  }
}

// A valid Algorithm II result to corrupt.
struct Fixture {
  wcds::testing::Instance inst = wcds::testing::connected_udg(60, 8.0, 7);
  WcdsResult result = core::algorithm2(inst.g).result;
};

TEST(AuditInvariants, AcceptsAlgorithm1AndAlgorithm2Results) {
  const auto inst = wcds::testing::connected_udg(80, 9.0, 11);
  AuditOptions unit_disk_options;
  unit_disk_options.unit_disk = true;
  unit_disk_options.check_dilation = true;

  const auto a2 = core::algorithm2(inst.g);
  EXPECT_TRUE(core::audit_result(inst.g, a2.result));
  EXPECT_NO_THROW(check::audit_invariants(inst.g, a2.result, unit_disk_options));

  // Theorem 11 is proven for Algorithm II only; Algorithm I's spanner has no
  // per-pair dilation guarantee (no 3-hop bridges), so no check_dilation here.
  AuditOptions level_options;
  level_options.unit_disk = true;
  level_options.level_ranked = true;
  const auto a1 = core::algorithm1(inst.g);
  EXPECT_TRUE(core::audit_result(inst.g, a1));
  EXPECT_NO_THROW(check::audit_invariants(inst.g, a1, level_options));
}

TEST(AuditInvariants, RejectsMaskColorDisagreement) {
  Fixture f;
  // Flip a dominator's color without touching the mask.
  f.result.color[f.result.dominators.front()] = NodeColor::kGray;
  EXPECT_FALSE(core::audit_result(f.inst.g, f.result));
  ExpectAuditFailure(f.inst.g, f.result, {}, "mask/color");
}

TEST(AuditInvariants, RejectsMaskMembershipCorruption) {
  Fixture f;
  // Knock a dominator out of the mask (and color, to get past coloring).
  const NodeId victim = f.result.dominators.front();
  f.result.mask[victim] = false;
  f.result.color[victim] = NodeColor::kGray;
  EXPECT_FALSE(core::audit_result(f.inst.g, f.result));
  ExpectAuditFailure(f.inst.g, f.result, {}, "cardinality");
}

TEST(AuditInvariants, RejectsUnsortedDominators) {
  Fixture f;
  ASSERT_GE(f.result.dominators.size(), 2u);
  std::swap(f.result.dominators.front(), f.result.dominators.back());
  EXPECT_FALSE(core::audit_result(f.inst.g, f.result));
  ExpectAuditFailure(f.inst.g, f.result, {}, "ascending");
}

TEST(AuditInvariants, RejectsBrokenPartition) {
  Fixture f;
  // Drop an MIS dominator from the partition but keep it everywhere else.
  ASSERT_FALSE(f.result.mis_dominators.empty());
  f.result.mis_dominators.erase(f.result.mis_dominators.begin());
  EXPECT_FALSE(core::audit_result(f.inst.g, f.result));
  ExpectAuditFailure(f.inst.g, f.result, {}, "partition");
}

TEST(AuditInvariants, RejectsWhiteSurvivor) {
  Fixture f;
  // A non-dominator left white means the marking process never finished.
  for (NodeId u = 0; u < f.inst.g.node_count(); ++u) {
    if (!f.result.mask[u]) {
      f.result.color[u] = NodeColor::kWhite;
      break;
    }
  }
  EXPECT_FALSE(core::audit_result(f.inst.g, f.result));
  ExpectAuditFailure(f.inst.g, f.result, {}, "white");
}

TEST(AuditInvariants, RejectsDominationLoss) {
  // Star: center 0 dominates leaves; remove it from the set entirely.
  const auto g = graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  WcdsResult result;
  result.mask.assign(4, false);
  result.color.assign(4, NodeColor::kGray);
  result.mask[1] = true;
  result.color[1] = NodeColor::kBlack;
  result.dominators = {1};
  result.mis_dominators = {1};
  EXPECT_FALSE(core::audit_result(g, result));
  ExpectAuditFailure(g, result, {}, "Section 1 (domination)");
}

TEST(AuditInvariants, RejectsWeakDisconnection) {
  // Path 0-1-2-3-4-5-6: {0, 3, 6} dominates but edges 1-2 and 4-5 have no
  // black endpoint, so the weakly induced subgraph splits.
  const auto g = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  WcdsResult result;
  result.mask.assign(7, false);
  result.color.assign(7, NodeColor::kGray);
  for (NodeId u : {NodeId{0}, NodeId{3}, NodeId{6}}) {
    result.mask[u] = true;
    result.color[u] = NodeColor::kBlack;
    result.dominators.push_back(u);
    result.mis_dominators.push_back(u);
  }
  EXPECT_FALSE(core::audit_result(g, result));
  ExpectAuditFailure(g, result, {}, "Section 1 (weak connectivity)");
}

TEST(AuditInvariants, RejectsDependentMisDominators) {
  Fixture f;
  // Promote a gray neighbor of an MIS dominator into the MIS.
  const NodeId head = f.result.mis_dominators.front();
  const NodeId neighbor = f.inst.g.neighbors(head).front();
  ASSERT_FALSE(f.result.contains(neighbor));  // gray next to a dominator
  f.result.mask[neighbor] = true;
  f.result.color[neighbor] = NodeColor::kBlack;
  f.result.mis_dominators.push_back(neighbor);
  std::sort(f.result.mis_dominators.begin(), f.result.mis_dominators.end());
  f.result.dominators.push_back(neighbor);
  std::sort(f.result.dominators.begin(), f.result.dominators.end());
  // Still a structurally consistent WCDS, so the legacy audit accepts it;
  // only the MIS-aware auditor sees the broken independence.
  EXPECT_TRUE(core::audit_result(f.inst.g, f.result));
  ExpectAuditFailure(f.inst.g, f.result, {}, "Section 2 (independence)");
}

// --- Lemma 1: <= 5 MIS neighbors, near-miss at the bound ---------------------

// Star with `leaves` leaves; the MIS is the leaf set, so the center has
// `leaves` MIS neighbors.
WcdsResult star_mis_result(const graph::Graph& g, NodeId leaves) {
  WcdsResult result;
  const std::size_t n = g.node_count();
  result.mask.assign(n, false);
  result.color.assign(n, NodeColor::kGray);
  for (NodeId u = 1; u <= leaves; ++u) {
    result.mask[u] = true;
    result.color[u] = NodeColor::kBlack;
    result.dominators.push_back(u);
    result.mis_dominators.push_back(u);
  }
  return result;
}

TEST(AuditInvariants, Lemma1NearMissAtFiveThenSixFails) {
  AuditOptions options;
  options.unit_disk = true;

  std::vector<std::pair<NodeId, NodeId>> edges5;
  for (NodeId u = 1; u <= 5; ++u) edges5.emplace_back(0, u);
  const auto star5 = graph::from_edges(6, edges5);
  EXPECT_NO_THROW(
      check::audit_invariants(star5, star_mis_result(star5, 5), options));

  std::vector<std::pair<NodeId, NodeId>> edges6;
  for (NodeId u = 1; u <= 6; ++u) edges6.emplace_back(0, u);
  const auto star6 = graph::from_edges(7, edges6);
  const auto result6 = star_mis_result(star6, 6);
  EXPECT_TRUE(core::audit_result(star6, result6));  // a fine WCDS, bad UDG MIS
  ExpectAuditFailure(star6, result6, options, "Lemma 1");
}

// --- Lemma 2: 23 two-hop / 47 within-three-hop, near-misses at both bounds ---

// Hub MIS node 0 with `two_hop` MIS satellites at exactly 2 hops (via private
// relays adjacent to the hub) and `three_hop` MIS nodes at exactly 3 hops
// (via private 2-relay chains).  Not a UDG — that is the point: the auditor
// must catch counts no genuine unit-disk instance can produce.
struct HubInstance {
  graph::Graph g;
  WcdsResult result;
};

HubInstance hub_instance(NodeId two_hop, NodeId three_hop) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> mis = {0};
  // The 3-hop chains' first relays become additional dominators: without
  // them the relay1-relay2 edges have no black endpoint and the set would
  // (correctly) fail Section 1 weak connectivity before reaching Lemma 2.
  std::vector<NodeId> bridges;
  NodeId next = 1;
  for (NodeId i = 0; i < two_hop; ++i) {
    const NodeId relay = next++;
    const NodeId satellite = next++;
    edges.emplace_back(0, relay);
    edges.emplace_back(relay, satellite);
    mis.push_back(satellite);
  }
  for (NodeId i = 0; i < three_hop; ++i) {
    const NodeId relay1 = next++;
    const NodeId relay2 = next++;
    const NodeId far = next++;
    edges.emplace_back(0, relay1);
    edges.emplace_back(relay1, relay2);
    edges.emplace_back(relay2, far);
    mis.push_back(far);
    bridges.push_back(relay1);
  }
  HubInstance inst;
  inst.g = graph::from_edges(next, edges);
  inst.result.mask.assign(next, false);
  inst.result.color.assign(next, NodeColor::kGray);
  std::sort(mis.begin(), mis.end());
  inst.result.mis_dominators = mis;
  inst.result.additional_dominators = bridges;
  inst.result.dominators = mis;
  inst.result.dominators.insert(inst.result.dominators.end(), bridges.begin(),
                                bridges.end());
  std::sort(inst.result.dominators.begin(), inst.result.dominators.end());
  for (NodeId u : inst.result.dominators) {
    inst.result.mask[u] = true;
    inst.result.color[u] = NodeColor::kBlack;
  }
  return inst;
}

TEST(AuditInvariants, Lemma2TwoHopNearMissAt23Then24Fails) {
  AuditOptions options;
  options.unit_disk = true;
  const auto ok = hub_instance(23, 0);
  EXPECT_TRUE(core::audit_result(ok.g, ok.result));
  EXPECT_NO_THROW(check::audit_invariants(ok.g, ok.result, options));

  const auto bad = hub_instance(24, 0);
  EXPECT_TRUE(core::audit_result(bad.g, bad.result));
  ExpectAuditFailure(bad.g, bad.result, options, "Lemma 2");
}

TEST(AuditInvariants, Lemma2ThreeHopNearMissAt47Then48Fails) {
  AuditOptions options;
  options.unit_disk = true;
  // 23 at two hops + 24 at three hops = 47 within three: exactly the bound.
  const auto ok = hub_instance(23, 24);
  EXPECT_NO_THROW(check::audit_invariants(ok.g, ok.result, options));

  // One more three-hop member: 48 within three hops.
  const auto bad = hub_instance(23, 25);
  ExpectAuditFailure(bad.g, bad.result, options, "Lemma 2");
}

// --- Lemma 3 / Theorem 4 -----------------------------------------------------

TEST(AuditInvariants, Theorem4RejectsThreeHopComplementarySubsets) {
  // Path 0..6 with MIS {0, 3, 6} (pairwise 3 hops) plus bridges {1, 4}:
  // a valid WCDS whose complementary-subset distance is 3, not 2.
  const auto g = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  WcdsResult result;
  result.mask.assign(7, false);
  result.color.assign(7, NodeColor::kGray);
  result.dominators = {0, 1, 3, 4, 6};
  result.mis_dominators = {0, 3, 6};
  result.additional_dominators = {1, 4};
  for (NodeId u : result.dominators) {
    result.mask[u] = true;
    result.color[u] = NodeColor::kBlack;
  }
  ASSERT_TRUE(core::audit_result(g, result));
  // Lemma 3 (any MIS): fine.
  EXPECT_NO_THROW(check::audit_invariants(g, result, {}));
  // Theorem 4 (level-ranked claim): violated at distance 3.
  AuditOptions options;
  options.level_ranked = true;
  ExpectAuditFailure(g, result, options, "Theorem 4");
}

TEST(AuditInvariants, Lemma3RejectsFourHopComplementarySubsets) {
  // Path 0..8, "MIS" {0, 4, 8} is pairwise 4 hops apart.  (It is also not
  // maximal — node 2 has no MIS neighbor — which is exactly why the auditor
  // checks subset distance before maximality: a maximal independent set can
  // never violate Lemma 3, so the other order would make this unreachable.)
  // Additional dominators {1, 2, 6, 7} keep Section 1 satisfied.
  const auto g = graph::from_edges(
      9, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}});
  WcdsResult result;
  result.mask.assign(9, false);
  result.color.assign(9, NodeColor::kGray);
  result.dominators = {0, 1, 2, 4, 6, 7, 8};
  result.mis_dominators = {0, 4, 8};
  result.additional_dominators = {1, 2, 6, 7};
  for (NodeId u : result.dominators) {
    result.mask[u] = true;
    result.color[u] = NodeColor::kBlack;
  }
  ASSERT_TRUE(core::audit_result(g, result));
  ExpectAuditFailure(g, result, {}, "Lemma 3");
}

// --- Theorem 11 --------------------------------------------------------------

TEST(AuditInvariants, Theorem11RejectsExcessDilation) {
  // Gadget: edge u-v is the only shortcut between two long arms; the
  // dominator set (all relay nodes, no MIS claimed) drops u-v from the
  // spanner, stretching d(u, v') from 2 to 11 > 3*2 + 2.
  //   u(0) - v(1);  u - u'(2);  v - v'(3);  u' - p1..p9 - v' (chain).
  std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {0, 2}, {1, 3}};
  NodeId prev = 2;
  for (NodeId p = 4; p < 13; ++p) {
    edges.emplace_back(prev, p);
    prev = p;
  }
  edges.emplace_back(prev, 3);
  const auto g = graph::from_edges(13, edges);
  WcdsResult result;
  result.mask.assign(13, false);
  result.color.assign(13, NodeColor::kGray);
  for (NodeId u = 2; u < 13; ++u) {
    result.mask[u] = true;
    result.color[u] = NodeColor::kBlack;
    result.dominators.push_back(u);
    result.additional_dominators.push_back(u);
  }
  // No MIS claimed: MIS-layer checks are skipped, WCDS checks still run.
  ASSERT_TRUE(core::is_wcds(g, result.mask));
  EXPECT_NO_THROW(check::audit_invariants(g, result, {}));
  AuditOptions options;
  options.check_dilation = true;
  options.dilation_sources = 13;  // exact
  ExpectAuditFailure(g, result, options, "Theorem 11");
}

// --- Active-node scope -------------------------------------------------------

TEST(AuditInvariants, ActiveMaskExemptsInactiveNodesButNotEdges) {
  // Two nodes, no edges (node 1 inactive and isolated): {0} is a valid
  // dominator set for the active part.
  const auto g = graph::from_edges(2, std::initializer_list<
                                          std::pair<NodeId, NodeId>>{});
  WcdsResult result;
  result.mask = {true, false};
  result.color = {NodeColor::kBlack, NodeColor::kGray};
  result.dominators = {0};
  result.mis_dominators = {0};
  const std::vector<bool> active = {true, false};
  AuditOptions options;
  options.active = &active;
  EXPECT_NO_THROW(check::audit_invariants(g, result, options));

  // An inactive node that still has an edge is a maintenance bug.
  const auto g_bad = graph::from_edges(2, {{0, 1}});
  ExpectAuditFailure(g_bad, result, options, "inactive");
}

}  // namespace
}  // namespace wcds
