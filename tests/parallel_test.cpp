// Thread-pool unit tests plus the determinism contract the analysis layer
// relies on: running under 1, 2 or 8 threads produces byte-identical
// results (docs/PERFORMANCE.md).
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "graph/diameter.h"
#include "parallel/thread_pool.h"
#include "spanner/analysis.h"
#include "test_util.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace {

using namespace wcds;

// Exact bit equality: doubles compared through their representation, so a
// "close enough" reassociated sum fails the test.
std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t grain : {1u, 3u, 64u, 1000u}) {
      parallel::ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(257);
      pool.parallel_for(0, hits.size(), grain, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                     << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  parallel::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  parallel::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  parallel::ThreadPool pool(2);
  parallel::ScopedPool scoped(pool);
  std::vector<std::atomic<int>> hits(64);
  parallel::parallel_for(0, 8, 1, [&](std::size_t outer) {
    // The nested call must not deadlock on the same pool: it runs inline
    // on this lane.
    parallel::parallel_for(0, 8, 1, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPool, WcdsThreadsEnvControlsDefaultCount) {
  ASSERT_EQ(setenv("WCDS_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel::default_thread_count(), 3u);
  ASSERT_EQ(setenv("WCDS_THREADS", "1", 1), 0);
  EXPECT_EQ(parallel::default_thread_count(), 1u);
  // Garbage and non-positive values fall back to hardware defaults (>= 1).
  ASSERT_EQ(setenv("WCDS_THREADS", "0", 1), 0);
  EXPECT_GE(parallel::default_thread_count(), 1u);
  ASSERT_EQ(setenv("WCDS_THREADS", "banana", 1), 0);
  EXPECT_GE(parallel::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("WCDS_THREADS"), 0);
  EXPECT_GE(parallel::default_thread_count(), 1u);
}

// The contract the analysis layer builds on: dilation and distance metrics
// are byte-identical no matter how many lanes computed them, because every
// source's floating-point accumulation stays on one lane and the cross-
// source merge order is fixed.
TEST(ParallelDeterminism, AnalysesAreByteIdenticalAcrossThreadCounts) {
  const auto inst = wcds::testing::connected_udg(220, 9.0, 5);
  const auto wcds = core::algorithm2(inst.g).result;
  const auto sp = core::extract_spanner(inst.g, wcds);

  struct Observed {
    std::uint64_t max_ratio, mean_ratio;
    std::int64_t max_slack;
    std::uint64_t pairs;
    HopCount diameter;
    std::uint64_t apl;
    std::vector<std::uint64_t> buckets;
  };
  auto observe = [&]() {
    const auto dilation = spanner::topological_dilation(inst.g, sp);
    const auto dist = spanner::topological_stretch_distribution(inst.g, sp);
    const auto metrics = graph::distance_metrics(inst.g);
    return Observed{bits(dilation.max_ratio),
                    bits(dilation.mean_ratio),
                    dilation.max_slack,
                    dilation.pairs,
                    metrics.diameter,
                    bits(metrics.average_path_length),
                    dist.buckets};
  };

  std::vector<Observed> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    parallel::ScopedPool scoped(pool);
    runs.push_back(observe());
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].max_ratio, runs[i].max_ratio);
    EXPECT_EQ(runs[0].mean_ratio, runs[i].mean_ratio);
    EXPECT_EQ(runs[0].max_slack, runs[i].max_slack);
    EXPECT_EQ(runs[0].pairs, runs[i].pairs);
    EXPECT_EQ(runs[0].diameter, runs[i].diameter);
    EXPECT_EQ(runs[0].apl, runs[i].apl);
    EXPECT_EQ(runs[0].buckets, runs[i].buckets);
  }
}

}  // namespace
