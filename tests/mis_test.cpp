#include <gtest/gtest.h>

#include <algorithm>

#include "graph/spanning_tree.h"
#include "mis/mis.h"
#include "mis/ranking.h"
#include "test_util.h"

namespace wcds::mis {
namespace {

using graph::from_edges;
using graph::Graph;

TEST(Ranking, IdRanking) {
  const auto ranks = id_ranking(4);
  ASSERT_EQ(ranks.size(), 4u);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(ranks[u].primary, 0u);
    EXPECT_EQ(ranks[u].id, u);
  }
  EXPECT_LT(ranks[0], ranks[1]);
}

TEST(Ranking, LevelRankingLexicographic) {
  // Path 0-1-2 rooted at 1: levels 1,0,1.
  const Graph g = from_edges(3, {{0, 1}, {1, 2}});
  const auto tree = graph::bfs_tree(g, 1);
  const auto ranks = level_ranking(tree);
  EXPECT_LT(ranks[1], ranks[0]);  // root first
  EXPECT_LT(ranks[0], ranks[2]);  // same level, lower id first
}

TEST(Ranking, DegreeRankingOrdersHighDegreeFirst) {
  // Star: center 2 has degree 3, leaves degree 1.
  const Graph g = from_edges(4, {{2, 0}, {2, 1}, {2, 3}});
  const auto ranks = degree_ranking(g);
  EXPECT_LT(ranks[2], ranks[0]);
  EXPECT_LT(ranks[0], ranks[1]);  // equal degree: lower id first
}

TEST(Ranking, OrderByRank) {
  std::vector<Rank> ranks{{2, 0}, {0, 1}, {1, 2}};
  const auto order = order_by_rank(ranks);
  EXPECT_EQ(order, (std::vector<NodeId>{1, 2, 0}));
}

TEST(GreedyMis, PathByIdRanking) {
  // 0-1-2-3-4: greedy lowest-id picks 0, 2, 4.
  const Graph g = from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto mis = greedy_mis_by_id(g);
  EXPECT_EQ(mis.members, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(is_maximal_independent_set(g, mis.mask));
}

TEST(GreedyMis, SingleNode) {
  graph::GraphBuilder b(1);
  const Graph g = std::move(b).build();
  const auto mis = greedy_mis_by_id(g);
  EXPECT_EQ(mis.size(), 1u);
  EXPECT_TRUE(mis.contains(0));
}

TEST(GreedyMis, CompleteGraphPicksOne) {
  graph::GraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.add_edge(u, v);
  }
  const auto mis = greedy_mis_by_id(std::move(b).build());
  EXPECT_EQ(mis.members, std::vector<NodeId>{0});
}

TEST(GreedyMis, RespectsRankOrderNotIdOrder) {
  // Path 0-1-2; ranking that makes node 1 lowest picks {1} only.
  const Graph g = from_edges(3, {{0, 1}, {1, 2}});
  std::vector<Rank> ranks{{1, 0}, {0, 1}, {1, 2}};
  const auto mis = greedy_mis(g, ranks);
  EXPECT_EQ(mis.members, std::vector<NodeId>{1});
  EXPECT_TRUE(is_maximal_independent_set(g, mis.mask));
}

TEST(GreedyMis, RankSizeMismatchThrows) {
  const Graph g = from_edges(2, {{0, 1}});
  EXPECT_THROW(greedy_mis(g, id_ranking(3)), std::invalid_argument);
}

TEST(GreedyMisMaxDegree, StarPicksCenter) {
  const Graph g = from_edges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto mis = greedy_mis_max_degree(g);
  EXPECT_EQ(mis.members, std::vector<NodeId>{0});
}

TEST(GreedyMisMaxDegree, ProducesValidMis) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = testing::connected_udg(250, 10.0, seed);
    const auto mis = greedy_mis_max_degree(inst.g);
    EXPECT_TRUE(is_maximal_independent_set(inst.g, mis.mask)) << seed;
  }
}

TEST(Verify, IndependenceDetectsAdjacentPair) {
  const Graph g = from_edges(3, {{0, 1}, {1, 2}});
  std::vector<bool> bad{true, true, false};
  EXPECT_FALSE(is_independent_set(g, bad));
  std::vector<bool> good{true, false, true};
  EXPECT_TRUE(is_independent_set(g, good));
}

TEST(Verify, DominationDetectsGap) {
  const Graph g = from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<bool> only0{true, false, false, false};
  EXPECT_FALSE(is_dominating_set(g, only0));  // 2, 3 uncovered
  std::vector<bool> mid{false, true, false, true};
  EXPECT_TRUE(is_dominating_set(g, mid));
}

TEST(Verify, EmptySetOnNonemptyGraphNotDominating) {
  const Graph g = from_edges(2, {{0, 1}});
  std::vector<bool> none{false, false};
  EXPECT_FALSE(is_dominating_set(g, none));
  EXPECT_TRUE(is_independent_set(g, none));
}

// Every ranking yields a valid MIS on random UDGs (paper, Table 1 invariant).
class MisRankingSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MisRankingSweep, GreedyAlwaysMaximalIndependent) {
  const auto [ranking_kind, seed] = GetParam();
  const auto inst = testing::connected_udg(300, 12.0, seed);
  std::vector<Rank> ranks;
  switch (ranking_kind) {
    case 0:
      ranks = id_ranking(inst.g.node_count());
      break;
    case 1:
      ranks = level_ranking(graph::bfs_tree(inst.g, 0));
      break;
    default:
      ranks = degree_ranking(inst.g);
      break;
  }
  const auto mis = greedy_mis(inst.g, ranks);
  EXPECT_TRUE(is_maximal_independent_set(inst.g, mis.mask));
  EXPECT_GT(mis.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RankingsBySeed, MisRankingSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

// The greedy MIS under ID ranking picks the lexicographically smallest MIS.
TEST(GreedyMis, LexicographicallyFirst) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = testing::connected_udg(120, 9.0, seed);
    const auto mis = greedy_mis_by_id(inst.g);
    // Every node smaller than the first member must be excluded because of
    // adjacency to a member... equivalently: for each node u not in the MIS,
    // some member smaller than u is adjacent to u OR u is adjacent to a
    // member (maximality); lexicographic minimality means: u's exclusion is
    // forced by a *smaller* member.
    for (NodeId u = 0; u < inst.g.node_count(); ++u) {
      if (mis.mask[u]) continue;
      bool forced = false;
      for (NodeId v : inst.g.neighbors(u)) {
        if (v < u && mis.mask[v]) forced = true;
      }
      EXPECT_TRUE(forced) << "node " << u << " excluded by larger member only";
    }
  }
}

}  // namespace
}  // namespace wcds::mis
