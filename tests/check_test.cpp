// The contract-macro layer: formatting, handler plumbing, REQUIRE exception
// types, and the audit runtime switch.
#include "check/check.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wcds::check {
namespace {

testing::AssertionResult MessageContains(const std::string& haystack,
                                         const std::string& needle) {
  if (haystack.find(needle) != std::string::npos) {
    return testing::AssertionSuccess();
  }
  return testing::AssertionFailure()
         << "expected \"" << haystack << "\" to contain \"" << needle << "\"";
}

TEST(CheckMacros, PassingChecksAreSilent) {
  EXPECT_NO_THROW(WCDS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(WCDS_CHECK(true, "never shown " << 42));
  EXPECT_NO_THROW(WCDS_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(WCDS_CHECK_LE(3, 4, "context"));
  EXPECT_NO_THROW(WCDS_REQUIRE(true, "fine"));
}

TEST(CheckMacros, FailureThrowsCheckErrorWithLocationAndMessage) {
  try {
    WCDS_CHECK(2 + 2 == 5, "arithmetic slipped by " << 1);
    FAIL() << "WCDS_CHECK did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(MessageContains(what, "2 + 2 == 5"));
    EXPECT_TRUE(MessageContains(what, "arithmetic slipped by 1"));
    EXPECT_TRUE(MessageContains(what, "check_test.cpp"));
  }
}

TEST(CheckMacros, ComparisonFormsFormatBothOperands) {
  try {
    const int lhs = 7;
    const int rhs = 3;
    WCDS_CHECK_LE(lhs, rhs, "budget exceeded");
    FAIL() << "WCDS_CHECK_LE did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(MessageContains(what, "lhs <= rhs"));
    EXPECT_TRUE(MessageContains(what, "(7 vs 3)"));
    EXPECT_TRUE(MessageContains(what, "budget exceeded"));
  }
}

TEST(CheckMacros, CheckErrorIsALogicError) {
  EXPECT_THROW(WCDS_CHECK(false), std::logic_error);
}

TEST(CheckMacros, RequireFamilyThrowsContractTypes) {
  EXPECT_THROW(WCDS_REQUIRE(false, "bad argument"), std::invalid_argument);
  EXPECT_THROW(WCDS_REQUIRE_BOUNDS(false, "bad index"), std::out_of_range);
  EXPECT_THROW(WCDS_REQUIRE_STATE(false, "bad state"), std::logic_error);
}

TEST(CheckMacros, DchecksAreActiveInAuditBuilds) {
  // The test suite always compiles with WCDS_AUDIT_INVARIANTS=ON.
  static_assert(audits_compiled_in());
  EXPECT_THROW(WCDS_DCHECK(false, "caught"), CheckError);
  EXPECT_THROW(WCDS_DCHECK_EQ(1, 2), CheckError);
}

TEST(CheckHandler, CustomHandlerObservesFailureThenCheckStillThrows) {
  static int calls = 0;
  static std::string last_expression;
  calls = 0;
  const FailureHandler previous =
      set_failure_handler(+[](const FailureContext& context) {
        ++calls;
        last_expression = context.expression;
      });
  // A handler that declines to terminate must not let execution continue.
  EXPECT_THROW(WCDS_CHECK(false, "observed"), CheckError);
  set_failure_handler(previous);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last_expression, "false");
  EXPECT_EQ(failure_handler(), previous);
}

TEST(CheckHandler, NullHandlerRestoresDefault) {
  const FailureHandler previous = set_failure_handler(nullptr);
  EXPECT_EQ(failure_handler(), &throw_handler);
  EXPECT_THROW(WCDS_CHECK(false), CheckError);
  set_failure_handler(previous);
}

TEST(CheckAudits, RuntimeSwitchRoundTrips) {
  const bool was = audits_enabled();
  EXPECT_EQ(set_audits_enabled(false), was);
  EXPECT_FALSE(audits_enabled());
  set_audits_enabled(true);
  EXPECT_TRUE(audits_enabled());
  set_audits_enabled(was);
}

TEST(CheckHandler, ConcurrentInstallAndFireIsDataRaceFree) {
  // The handler and audit-switch globals are atomics: installing from one
  // thread while others fire checks or flip audits must be race-free (this
  // is what the tsan preset pins down).  Every handler in rotation throws,
  // so each failing check surfaces as CheckError regardless of which
  // install won.
  const FailureHandler previous = failure_handler();
  const bool audits_were = audits_enabled();
  static std::atomic<int> custom_calls{0};
  const FailureHandler custom = +[](const FailureContext& context) {
    custom_calls.fetch_add(1, std::memory_order_relaxed);
    throw CheckError(format_failure(context));
  };

  constexpr int kIterations = 500;
  std::atomic<int> caught{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        set_failure_handler(t == 0 ? &throw_handler : custom);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kIterations; ++i) {
      set_audits_enabled(i % 2 == 0);
      (void)audits_enabled();
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < kIterations; ++i) {
      try {
        WCDS_CHECK(false, "concurrent");
      } catch (const CheckError&) {
        caught.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(caught.load(), kIterations);
  set_failure_handler(previous);
  set_audits_enabled(audits_were);
}

TEST(CheckFormat, FormatFailureIsStable) {
  const FailureContext context{"x > 0", "file.cpp", 12, "x was -1"};
  EXPECT_EQ(format_failure(context),
            "file.cpp:12: check failed: x > 0  x was -1");
  const FailureContext bare{"ok()", "f.cpp", 3, ""};
  EXPECT_EQ(format_failure(bare), "f.cpp:3: check failed: ok()");
}

}  // namespace
}  // namespace wcds::check
