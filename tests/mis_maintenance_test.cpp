// Dynamic-topology runtime + distributed self-stabilizing MIS maintenance.
#include <gtest/gtest.h>

#include "geom/workload.h"
#include "mis/mis.h"
#include "protocols/mis_maintenance_protocol.h"
#include "test_util.h"
#include "udg/udg.h"

namespace wcds::protocols {
namespace {

// --- DynamicRuntime semantics -----------------------------------------------

class EchoNode final : public sim::DynamicProtocolNode {
 public:
  void on_start(sim::DynamicContext& ctx) override {
    if (ctx.self() == 0) ctx.broadcast(1);
  }
  void on_receive(sim::DynamicContext&, const sim::Message&) override {
    ++received;
  }
  void on_link_up(sim::DynamicContext&, NodeId) override { ++ups; }
  void on_link_down(sim::DynamicContext&, NodeId) override { ++downs; }
  int received = 0;
  int ups = 0;
  int downs = 0;
};

TEST(DynamicRuntime, LinkEventsFireOnBothEndpoints) {
  const auto before = graph::from_edges(3, {{0, 1}});
  const auto after = graph::from_edges(3, {{1, 2}});
  sim::DynamicRuntime rt(before,
                         [](NodeId) { return std::make_unique<EchoNode>(); });
  (void)rt.run_to_quiescence();
  rt.apply_topology(after);
  (void)rt.run_to_quiescence();
  EXPECT_EQ(static_cast<EchoNode&>(rt.node(0)).downs, 1);
  EXPECT_EQ(static_cast<EchoNode&>(rt.node(1)).downs, 1);
  EXPECT_EQ(static_cast<EchoNode&>(rt.node(1)).ups, 1);
  EXPECT_EQ(static_cast<EchoNode&>(rt.node(2)).ups, 1);
  EXPECT_TRUE(rt.has_edge(1, 2));
  EXPECT_FALSE(rt.has_edge(0, 1));
}

class LateSender final : public sim::DynamicProtocolNode {
 public:
  void on_start(sim::DynamicContext& ctx) override {
    if (ctx.self() == 0) ctx.broadcast(1);  // in flight when the link dies
  }
  void on_receive(sim::DynamicContext&, const sim::Message&) override {
    ++received;
  }
  void on_link_up(sim::DynamicContext&, NodeId) override {}
  void on_link_down(sim::DynamicContext&, NodeId) override {}
  int received = 0;
};

TEST(DynamicRuntime, InFlightMessagesOnDeadLinksAreDropped) {
  const auto before = graph::from_edges(2, {{0, 1}});
  graph::GraphBuilder b(2);
  const auto after = std::move(b).build();
  sim::DynamicRuntime rt(before,
                         [](NodeId) { return std::make_unique<LateSender>(); });
  // Do NOT run yet: on_start fires inside run_to_quiescence, so change the
  // topology after starting but before delivery by interleaving manually.
  // Simplest deterministic variant: start (delivers), then break the link,
  // then send again via a second broadcast — covered by the stale-unicast
  // path instead:
  (void)rt.run_to_quiescence();
  EXPECT_EQ(static_cast<LateSender&>(rt.node(1)).received, 1);
  rt.apply_topology(after);
  (void)rt.run_to_quiescence();
  EXPECT_EQ(rt.stats().dropped, 0u);  // nothing was in flight
}

TEST(DynamicRuntime, StaleUnicastIsCountedDropped) {
  class StaleUnicaster final : public sim::DynamicProtocolNode {
   public:
    void on_start(sim::DynamicContext&) override {}
    void on_receive(sim::DynamicContext&, const sim::Message&) override {}
    void on_link_up(sim::DynamicContext&, NodeId) override {}
    void on_link_down(sim::DynamicContext& ctx, NodeId gone) override {
      ctx.unicast(gone, 7);  // farewell into the void
    }
  };
  const auto before = graph::from_edges(2, {{0, 1}});
  graph::GraphBuilder b(2);
  sim::DynamicRuntime rt(
      before, [](NodeId) { return std::make_unique<StaleUnicaster>(); });
  (void)rt.run_to_quiescence();
  rt.apply_topology(std::move(b).build());
  (void)rt.run_to_quiescence();
  EXPECT_EQ(rt.stats().dropped, 2u);  // both farewells missed
}

// Regression: without per-link FIFO, reordered COLOR broadcasts leave stale
// state behind (a node's final color announcement overtaken by an earlier
// one).  The MIS must stabilize under wide random jitter.
TEST(DynamicRuntime, PerLinkFifoPreservedUnderAsync) {
  class Sequencer final : public sim::DynamicProtocolNode {
   public:
    void on_start(sim::DynamicContext& ctx) override {
      if (ctx.self() == 0) {
        for (std::uint32_t i = 0; i < 20; ++i) ctx.broadcast(1, {i});
      }
    }
    void on_receive(sim::DynamicContext&, const sim::Message& msg) override {
      in_order = in_order && msg.payload[0] == next;
      ++next;
    }
    void on_link_up(sim::DynamicContext&, NodeId) override {}
    void on_link_down(sim::DynamicContext&, NodeId) override {}
    bool in_order = true;
    std::uint32_t next = 0;
  };
  const auto g = graph::from_edges(2, {{0, 1}});
  sim::DynamicRuntime rt(
      g, [](NodeId) { return std::make_unique<Sequencer>(); },
      sim::DelayModel::uniform(1, 25, 7));
  ASSERT_TRUE(rt.run_to_quiescence().quiescent);
  const auto& receiver = static_cast<Sequencer&>(rt.node(1));
  EXPECT_TRUE(receiver.in_order);
  EXPECT_EQ(receiver.next, 20u);
}

// --- MIS maintenance ---------------------------------------------------------

void expect_valid_mis(const graph::Graph& g, const std::vector<bool>& mask,
                      const char* context) {
  EXPECT_TRUE(mis::is_maximal_independent_set(g, mask)) << context;
}

TEST(MisMaintenance, InitialStabilizationIsAnMis) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = testing::connected_udg(150, 9.0, seed);
    MisMaintenanceSession session(inst.g);
    ASSERT_TRUE(session.stabilize());
    expect_valid_mis(inst.g, session.mis_mask(), "initial");
  }
}

TEST(MisMaintenance, SingleNodeAndEdgeless) {
  graph::GraphBuilder b1(1);
  MisMaintenanceSession one(std::move(b1).build());
  ASSERT_TRUE(one.stabilize());
  EXPECT_TRUE(one.mis_mask()[0]);

  graph::GraphBuilder b3(3);  // three isolated nodes
  MisMaintenanceSession iso(std::move(b3).build());
  ASSERT_TRUE(iso.stabilize());
  const auto mask = iso.mis_mask();
  EXPECT_TRUE(mask[0] && mask[1] && mask[2]);
}

TEST(MisMaintenance, LinkUpConflictResolvesTowardLowerId) {
  // Two components, each with its own dominator; join them.
  const auto before = graph::from_edges(4, {{0, 1}, {2, 3}});
  MisMaintenanceSession session(before);
  ASSERT_TRUE(session.stabilize());
  auto mask = session.mis_mask();
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[2]);
  // Join the dominators directly: 0-2 edge appears.
  const auto after = graph::from_edges(4, {{0, 1}, {2, 3}, {0, 2}});
  ASSERT_TRUE(session.update(after));
  mask = session.mis_mask();
  expect_valid_mis(after, mask, "after join");
  EXPECT_TRUE(mask[0]);   // lower ID keeps the role
  EXPECT_FALSE(mask[2]);  // higher ID yielded
  EXPECT_TRUE(mask[3]);   // 3 lost its dominator and self-promoted
}

TEST(MisMaintenance, LinkDownOrphanPromotes) {
  const auto before = graph::from_edges(3, {{0, 1}, {1, 2}});
  MisMaintenanceSession session(before);
  ASSERT_TRUE(session.stabilize());
  EXPECT_TRUE(session.mis_mask()[0]);
  // Cut 1-2: node 2 is alone and must become its own dominator.
  const auto after = graph::from_edges(3, {{0, 1}});
  ASSERT_TRUE(session.update(after));
  const auto mask = session.mis_mask();
  expect_valid_mis(after, mask, "after cut");
  EXPECT_TRUE(mask[2]);
}

TEST(MisMaintenance, MobilityChurnKeepsMisValid) {
  const std::uint32_t n = 120;
  const double side = geom::side_for_expected_degree(n, 10.0);
  auto points = geom::uniform_square(n, side, 3);
  MisMaintenanceSession session(udg::build_udg(points));
  ASSERT_TRUE(session.stabilize());
  geom::Xoshiro256ss rng(99);
  for (int step = 0; step < 25; ++step) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    points[u].x += rng.next_double(-1.0, 1.0);
    points[u].y += rng.next_double(-1.0, 1.0);
    const auto g = udg::build_udg(points);
    ASSERT_TRUE(session.update(g)) << "step " << step;
    expect_valid_mis(g, session.mis_mask(), "churn step");
  }
}

TEST(MisMaintenance, ChurnUnderMessageLossRecoversViaWatchdog) {
  // Topology churn while every message copy independently rolls a 20% loss.
  // Lost COLOR announcements can strand stale knowledge, so plain
  // stabilization no longer guarantees a valid MIS — the liveness watchdog
  // (re-announce everywhere, restabilize, repeat) must close the gaps.
  const std::uint32_t n = 100;
  const double side = geom::side_for_expected_degree(n, 10.0);
  auto points = geom::uniform_square(n, side, 5);
  MisMaintenanceSession session(udg::build_udg(points));
  ASSERT_TRUE(session.stabilize());
  session.set_loss(0.2, 77);
  geom::Xoshiro256ss rng(42);
  for (int step = 0; step < 15; ++step) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    points[u].x += rng.next_double(-1.0, 1.0);
    points[u].y += rng.next_double(-1.0, 1.0);
    const auto g = udg::build_udg(points);
    ASSERT_TRUE(session.update(g)) << "step " << step;
    ASSERT_TRUE(session.watchdog()) << "step " << step;
    expect_valid_mis(g, session.mis_mask(), "lossy churn step");
  }
}

TEST(MisMaintenance, CrashRecoverUnderLossConverges) {
  // Crash a node (all its links vanish), then bring it back — both under
  // 15% message loss.  The MIS must be valid over the survivor topology
  // while the node is down and again after it recovers.
  const std::uint32_t n = 90;
  const double side = geom::side_for_expected_degree(n, 10.0);
  auto points = geom::uniform_square(n, side, 8);
  MisMaintenanceSession session(udg::build_udg(points));
  ASSERT_TRUE(session.stabilize());
  session.set_loss(0.15, 31);
  for (const NodeId victim : {NodeId{7}, NodeId{42}}) {
    const geom::Point home = points[victim];
    points[victim] = {1e6 + victim, 1e6};  // out of everyone's range
    const auto down_graph = udg::build_udg(points);
    ASSERT_TRUE(session.update(down_graph));
    ASSERT_TRUE(session.watchdog()) << "victim " << victim << " down";
    expect_valid_mis(down_graph, session.mis_mask(), "victim down");
    points[victim] = home;
    const auto up_graph = udg::build_udg(points);
    ASSERT_TRUE(session.update(up_graph));
    ASSERT_TRUE(session.watchdog()) << "victim " << victim << " recovered";
    expect_valid_mis(up_graph, session.mis_mask(), "victim recovered");
  }
}

TEST(MisMaintenance, WorksUnderAsyncDelays) {
  const auto inst = testing::connected_udg(100, 9.0, 7);
  MisMaintenanceSession session(inst.g, sim::DelayModel::uniform(1, 5, 17));
  ASSERT_TRUE(session.stabilize());
  expect_valid_mis(inst.g, session.mis_mask(), "async initial");
}

TEST(MisMaintenance, RepeatedUpdatesStayQuiescent) {
  // Applying the same topology twice must cost nothing the second time.
  const auto inst = testing::connected_udg(80, 9.0, 11);
  MisMaintenanceSession session(inst.g);
  ASSERT_TRUE(session.stabilize());
  const auto tx_before = session.stats().transmissions;
  ASSERT_TRUE(session.update(inst.g));
  EXPECT_EQ(session.stats().transmissions, tx_before);
}

}  // namespace
}  // namespace wcds::protocols
