// Gabriel graph / RNG construction and the greedy geographic routing
// baseline.
#include <gtest/gtest.h>

#include "routing/geographic.h"
#include "spanner/geometric_structures.h"
#include "test_util.h"
#include "udg/udg.h"

namespace wcds::spanner {
namespace {

TEST(GeometricStructures, SizeMismatchThrows) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  std::vector<geom::Point> two{{0, 0}, {1, 0}};
  EXPECT_THROW(gabriel_graph(g, two), std::invalid_argument);
  EXPECT_THROW(relative_neighborhood_graph(g, two), std::invalid_argument);
}

TEST(GeometricStructures, TriangleDropsLongestEdgeInRng) {
  // Isoceles-ish triangle: the long edge has a lune witness.
  const std::vector<geom::Point> pts{{0.0, 0.0}, {0.9, 0.0}, {0.45, 0.5}};
  const auto udg = udg::build_udg(pts);
  ASSERT_EQ(udg.edge_count(), 3u);
  const auto rng = relative_neighborhood_graph(udg, pts);
  // |01| = 0.9 is the longest; node 2 is closer than 0.9 to both -> dropped.
  EXPECT_FALSE(rng.has_edge(0, 1));
  EXPECT_TRUE(rng.has_edge(0, 2));
  EXPECT_TRUE(rng.has_edge(1, 2));
}

TEST(GeometricStructures, GabrielKeepsRightAngleWitnessEdge) {
  // A witness exactly on the diameter circle does not remove the edge
  // (strict inequality), one inside does.
  const std::vector<geom::Point> on_circle{
      {0.0, 0.0}, {1.0, 0.0}, {0.5, 0.5}};  // |mid-w| = 0.5 = r
  const auto udg1 = udg::build_udg(on_circle);
  EXPECT_TRUE(gabriel_graph(udg1, on_circle).has_edge(0, 1));

  const std::vector<geom::Point> inside{
      {0.0, 0.0}, {1.0, 0.0}, {0.5, 0.3}};  // strictly inside
  const auto udg2 = udg::build_udg(inside);
  EXPECT_FALSE(gabriel_graph(udg2, inside).has_edge(0, 1));
}

class StructureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructureSweep, NestingAndConnectivity) {
  const auto inst = testing::connected_udg(300, 12.0, GetParam());
  const auto gg = gabriel_graph(inst.g, inst.points);
  const auto rng = relative_neighborhood_graph(inst.g, inst.points);
  // RNG ⊆ GG ⊆ UDG.
  EXPECT_LE(rng.edge_count(), gg.edge_count());
  EXPECT_LE(gg.edge_count(), inst.g.edge_count());
  for (const auto& [u, v] : rng.edges()) {
    EXPECT_TRUE(gg.has_edge(u, v));
  }
  for (const auto& [u, v] : gg.edges()) {
    EXPECT_TRUE(inst.g.has_edge(u, v));
  }
  // Both stay connected (they contain the Euclidean MST of each component).
  EXPECT_TRUE(graph::is_connected(gg));
  EXPECT_TRUE(graph::is_connected(rng));
}

TEST_P(StructureSweep, BothAreSparse) {
  const auto inst = testing::connected_udg(400, 25.0, GetParam());
  const auto gg = gabriel_graph(inst.g, inst.points);
  const auto rng = relative_neighborhood_graph(inst.g, inst.points);
  // Planar-graph edge bounds: GG <= 3n - 8ish, RNG even sparser; use the
  // generous planarity bound 3n.
  EXPECT_LE(gg.edge_count(), 3 * inst.g.node_count());
  EXPECT_LE(rng.edge_count(), 3 * inst.g.node_count());
  // And both are much sparser than the dense UDG.
  EXPECT_LT(gg.edge_count(), inst.g.edge_count() / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructureSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace wcds::spanner

namespace wcds::routing {
namespace {

TEST(GeographicRouting, Validation) {
  const auto g = graph::from_edges(2, {{0, 1}});
  std::vector<geom::Point> pts{{0, 0}, {1, 0}};
  EXPECT_THROW(greedy_geographic_route(g, pts, 0, 5), std::out_of_range);
  std::vector<geom::Point> one{{0, 0}};
  EXPECT_THROW(greedy_geographic_route(g, one, 0, 1), std::invalid_argument);
}

TEST(GeographicRouting, StraightLineDelivers) {
  std::vector<geom::Point> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.8 * i, 0.0});
  const auto g = udg::build_udg(pts);
  const auto route = greedy_geographic_route(g, pts, 0, 9);
  EXPECT_TRUE(route.delivered);
  EXPECT_EQ(route.hops(), 9u);  // each greedy step advances one node
}

TEST(GeographicRouting, SelfRoute) {
  std::vector<geom::Point> pts{{0, 0}, {0.5, 0}};
  const auto g = udg::build_udg(pts);
  const auto route = greedy_geographic_route(g, pts, 1, 1);
  EXPECT_TRUE(route.delivered);
  EXPECT_EQ(route.hops(), 0u);
}

TEST(GeographicRouting, VoidGetsStuck) {
  // A "C" shaped obstacle: src on the left must route around, but its only
  // progress neighbor dead-ends closer to dst than any of its neighbors.
  //        2 (0.9, 0.8)
  //  0 --- 1 (0.9, 0)          dst 3 (2.6, 0)  [unreachable greedily:
  //                             1 is a local minimum; 2 is farther]
  std::vector<geom::Point> pts{
      {0.0, 0.0}, {0.9, 0.0}, {0.9, 0.8}, {2.6, 0.0}, {1.7, 0.9}, {2.5, 0.95}};
  // Connectivity: 0-1, 1-2, 2-4, 4-5, 5-3: the detour over the top works,
  // but greedy at 1 has no neighbor closer to 3 than itself.
  const auto g = udg::build_udg(pts);
  ASSERT_TRUE(graph::is_connected(g));
  const auto route = greedy_geographic_route(g, pts, 0, 3);
  EXPECT_FALSE(route.delivered);
  EXPECT_TRUE(route.stuck);
}

TEST(GeographicRouting, NoLoopsEverTerminates) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = testing::connected_udg(250, 9.0, seed);
    for (NodeId dst = 1; dst < inst.g.node_count(); dst += 31) {
      const auto route =
          greedy_geographic_route(inst.g, inst.points, 0, dst);
      EXPECT_TRUE(route.delivered || route.stuck);
      EXPECT_LE(route.hops(), inst.g.node_count());
      if (route.delivered) {
        EXPECT_EQ(route.path.back(), dst);
        for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
          EXPECT_TRUE(inst.g.has_edge(route.path[i], route.path[i + 1]));
        }
      }
    }
  }
}

}  // namespace
}  // namespace wcds::routing
