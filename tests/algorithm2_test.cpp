// Centralized Algorithm II: ID-ranked MIS + additional-dominators.
#include <gtest/gtest.h>

#include <set>

#include "graph/bfs.h"
#include "mis/mis.h"
#include "test_util.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace wcds::core {
namespace {

TEST(DominatorLists, PathGraph) {
  // 0-1-2-3-4 with MIS {0,2,4}.
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto s = mis::greedy_mis_by_id(g);
  const auto lists = compute_dominator_lists(g, s);
  EXPECT_EQ(lists.one_hop[1], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(lists.one_hop[0], (std::vector<NodeId>{}));
  ASSERT_EQ(lists.two_hop[0].size(), 1u);
  EXPECT_EQ(lists.two_hop[0][0].dom, 2u);
  EXPECT_EQ(lists.two_hop[0][0].via, 1u);
  // Node 1 is adjacent to 0 and 2; its only 2-hop dominator is 4 (via 3)?
  // 1's neighbors are 0 and 2; 2's 1HopDomList is empty (2 is a dominator)...
  // entries come from *gray* neighbors' lists; via node 2 nothing, via 0
  // nothing.  1 has no gray neighbor, so no 2-hop dominators.
  EXPECT_TRUE(lists.two_hop[1].empty());
  // Node 3 (gray) sees dominator 0 via 1?  3's neighbors: 2 (dominator,
  // one_hop empty) and 4 (dominator).  So two_hop[3] is empty too.
  EXPECT_TRUE(lists.two_hop[3].empty());
}

TEST(Algorithm2, RejectsEmptyAndDisconnected) {
  graph::GraphBuilder empty(0);
  EXPECT_THROW(algorithm2(std::move(empty).build()), std::invalid_argument);
  const auto g = graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(algorithm2(g), std::invalid_argument);
}

TEST(Algorithm2, SingleNode) {
  graph::GraphBuilder b(1);
  const auto out = algorithm2(std::move(b).build());
  EXPECT_EQ(out.result.dominators, std::vector<NodeId>{0});
  EXPECT_TRUE(out.result.additional_dominators.empty());
}

TEST(Algorithm2, TwoHopMisNeedsNoBridge) {
  // 0-1-2: MIS {0,2} at two hops; no additional dominator needed.
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto out = algorithm2(g);
  EXPECT_EQ(out.result.mis_dominators, (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(out.result.additional_dominators.empty());
  EXPECT_TRUE(audit_result(g, out.result));
}

TEST(Algorithm2, ThreeHopPairGetsBridged) {
  // 6-path with forced MIS {0, 3, 5}?  With ID ranking the MIS of a 6-path
  // is {0, 2, 4} (all 2-hop).  Build a graph where the ID-ranked MIS has a
  // 3-hop pair:
  //      0 - 1 - 2 - 3
  // with extra leaf 4 on node 2?  MIS: 0 black; 1 gray; 2: lower nbrs {1}
  // gray -> black; 3, 4 gray.  Still 2-hop.
  // Use:  0 - a - b - 3 where a=1, b=2 and 3 has a private leaf... any path
  // MIS by ID is 2-hop spaced.  Force 3 hops with a 7-node "H" shape:
  //   0-1, 1-2, 2-3, 1-4, 4-5, 5-6:   MIS: 0 black; 1 gray; 2 (lower {1}
  //   gray) black; 3 gray... 4: lower {1} gray -> black!  4 adjacent 1,5.
  //   Then 5 gray, 6: lower {5} gray -> black.  MIS = {0,2,4,6}.
  //   dist(2,6) = 2-1-4-5-6 = 4 hops?  2-1, 1-4, 4-5, 5-6: 4 hops.  dist(0,6)
  //   = 0-1-4-5-6 = 4.  dist(4,2)=2.  Hmm no 3-hop pair.
  // Simplest forced 3-hop pair: cycle of length 7: 0..6.
  //   MIS by id: 0 black; 1,6 gray; 2: lower {1} gray -> black; 3 gray;
  //   4: lower {3} gray -> black; 5 gray.  MIS = {0,2,4}; dist(0,4) = 3
  //   (0-6-5-4).  Bridge needed between 0 and 4.
  const auto g = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}});
  const auto out = algorithm2(g);
  EXPECT_EQ(out.result.mis_dominators, (std::vector<NodeId>{0, 2, 4}));
  ASSERT_EQ(out.result.additional_dominators.size(), 1u);
  // The pair (0,4) is bridged through 0's smallest candidate neighbor: 6
  // (path 0-6-5-4); candidates sorted by (v, x) -> v=6, x=5.
  EXPECT_EQ(out.result.additional_dominators[0], 6u);
  EXPECT_TRUE(audit_result(g, out.result));
  // 0 carries the forward entry, 4 the reverse.
  ASSERT_EQ(out.lists.three_hop[0].size(), 1u);
  EXPECT_EQ(out.lists.three_hop[0][0].dom, 4u);
  EXPECT_EQ(out.lists.three_hop[0][0].via1, 6u);
  EXPECT_EQ(out.lists.three_hop[0][0].via2, 5u);
  ASSERT_EQ(out.lists.three_hop[4].size(), 1u);
  EXPECT_EQ(out.lists.three_hop[4][0].dom, 0u);
  EXPECT_EQ(out.lists.three_hop[4][0].via1, 5u);
  EXPECT_EQ(out.lists.three_hop[4][0].via2, 6u);
}

TEST(Algorithm2, MisMatchesGreedyById) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = testing::connected_udg(250, 9.0, seed);
    const auto out = algorithm2(inst.g);
    const auto s = mis::greedy_mis_by_id(inst.g);
    std::vector<NodeId> sorted = s.members;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(out.result.mis_dominators, sorted);
  }
}

// Theorem 10 invariants across densities and workloads.
class Algorithm2Sweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(Algorithm2Sweep, ProducesAuditedWcds) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(350, degree, seed);
  const auto out = algorithm2(inst.g);
  EXPECT_TRUE(audit_result(inst.g, out.result));
  // The MIS part alone is a maximal independent set.
  std::vector<bool> mis_mask(inst.g.node_count(), false);
  for (NodeId u : out.result.mis_dominators) mis_mask[u] = true;
  EXPECT_TRUE(mis::is_maximal_independent_set(inst.g, mis_mask));
  // Every 3-hop entry is a real path u - via1 - via2 - dom.
  for (NodeId u : out.result.mis_dominators) {
    for (const ThreeHopEntry& e : out.lists.three_hop[u]) {
      EXPECT_TRUE(inst.g.has_edge(u, e.via1));
      EXPECT_TRUE(inst.g.has_edge(e.via1, e.via2));
      EXPECT_TRUE(inst.g.has_edge(e.via2, e.dom));
    }
  }
}

TEST_P(Algorithm2Sweep, EveryThreeHopMisPairBridged) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(250, degree, seed);
  const auto out = algorithm2(inst.g);
  // Oracle: recompute 3-hop pairs by BFS and check a forward entry exists at
  // the smaller endpoint.
  for (NodeId a : out.result.mis_dominators) {
    const auto dist = graph::bfs_distances(inst.g, a);
    for (NodeId b : out.result.mis_dominators) {
      if (b <= a || dist[b] != 3) continue;
      const auto& entries = out.lists.three_hop[a];
      const bool bridged =
          std::any_of(entries.begin(), entries.end(),
                      [&](const ThreeHopEntry& e) { return e.dom == b; });
      EXPECT_TRUE(bridged) << "pair (" << a << ", " << b << ") unbridged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreeSeed, Algorithm2Sweep,
    ::testing::Combine(::testing::Values(6.0, 10.0, 16.0),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Algorithm2, ReuseSelectionNoLargerThanLexAndStillValid) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = testing::connected_udg(300, 7.0, seed);
    Algorithm2Options lex;
    Algorithm2Options reuse;
    reuse.selection = Algorithm2Options::Selection::kReuseIntermediates;
    const auto out_lex = algorithm2(inst.g, lex);
    const auto out_reuse = algorithm2(inst.g, reuse);
    EXPECT_TRUE(audit_result(inst.g, out_reuse.result));
    EXPECT_LE(out_reuse.result.additional_dominators.size(),
              out_lex.result.additional_dominators.size());
    EXPECT_EQ(out_reuse.result.mis_dominators, out_lex.result.mis_dominators);
  }
}

}  // namespace
}  // namespace wcds::core
