// The wcds::core::build() facade: per-mode report contents, observability
// snapshot wiring, error contracts, and the hardened WcdsResult accessors.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "check/check.h"
#include "facade/build.h"
#include "graph/graph.h"
#include "obs/recorder.h"
#include "routing/clusterhead_routing.h"
#include "test_util.h"
#include "wcds/verify.h"

namespace wcds {
namespace {

constexpr core::BuildAlgorithm kAllModes[] = {
    core::BuildAlgorithm::kAlgorithm1Central,
    core::BuildAlgorithm::kAlgorithm2Central,
    core::BuildAlgorithm::kAlgorithm1Protocol,
    core::BuildAlgorithm::kAlgorithm2Protocol,
};

core::BuildReport build_mode(const graph::Graph& g,
                             core::BuildAlgorithm algorithm,
                             obs::Recorder* recorder = nullptr) {
  core::BuildOptions options;
  options.algorithm = algorithm;
  options.recorder = recorder;
  return core::build(g, options);
}

TEST(Facade, EveryModeProducesAVerifiedWcds) {
  const auto inst = testing::connected_udg(90, 8.0, 2);
  for (const auto mode : kAllModes) {
    const auto report = build_mode(inst.g, mode);
    EXPECT_TRUE(core::is_wcds(inst.g, report.result.mask))
        << core::to_string(mode);
    // The report's MIS mirrors the result's MIS-dominators.
    EXPECT_EQ(report.mis.members, report.result.mis_dominators)
        << core::to_string(mode);
    for (const NodeId u : report.mis.members) {
      EXPECT_TRUE(report.mis.mask[u]) << core::to_string(mode);
    }
  }
}

TEST(Facade, CentralModesReportNoSimCosts) {
  const auto inst = testing::connected_udg(70, 8.0, 3);
  for (const auto mode : {core::BuildAlgorithm::kAlgorithm1Central,
                          core::BuildAlgorithm::kAlgorithm2Central}) {
    const auto report = build_mode(inst.g, mode);
    EXPECT_EQ(report.stats.transmissions, 0u) << core::to_string(mode);
    EXPECT_EQ(report.stats.completion_time, 0u) << core::to_string(mode);
  }
}

TEST(Facade, ProtocolModesReportSimCosts) {
  const auto inst = testing::connected_udg(70, 8.0, 3);
  for (const auto mode : {core::BuildAlgorithm::kAlgorithm1Protocol,
                          core::BuildAlgorithm::kAlgorithm2Protocol}) {
    const auto report = build_mode(inst.g, mode);
    EXPECT_TRUE(report.stats.quiescent) << core::to_string(mode);
    EXPECT_GT(report.stats.transmissions, 0u) << core::to_string(mode);
    EXPECT_GT(report.stats.completion_time, 0u) << core::to_string(mode);
  }
}

TEST(Facade, Algorithm1ModesReportLeaderAndLevels) {
  const auto inst = testing::connected_udg(70, 8.0, 4);
  const auto central =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm1Central);
  EXPECT_EQ(central.leader, 0u);  // min-ID leadership criterion

  const auto protocol =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm1Protocol);
  EXPECT_EQ(protocol.leader, 0u);
  ASSERT_EQ(protocol.levels.size(), inst.g.node_count());
  EXPECT_EQ(protocol.levels[protocol.leader], 0u);
}

TEST(Facade, ExplicitRootIsHonored) {
  const auto inst = testing::connected_udg(50, 8.0, 5);
  core::BuildOptions options;
  options.algorithm = core::BuildAlgorithm::kAlgorithm1Central;
  options.root = 7;
  const auto report = core::build(inst.g, options);
  EXPECT_EQ(report.leader, 7u);
  EXPECT_TRUE(core::is_wcds(inst.g, report.result.mask));
}

TEST(Facade, Algorithm2ViewFeedsTheRouter) {
  const auto inst = testing::connected_udg(80, 9.0, 6);
  const auto report =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
  EXPECT_EQ(report.lists.one_hop.size(), inst.g.node_count());
  // The view borrows the report's storage — no copies on the serving path.
  const core::Algorithm2View view = report.algorithm2_view();
  EXPECT_EQ(&view.result(), &report.result);
  EXPECT_EQ(&view.mis(), &report.mis);
  EXPECT_EQ(&view.lists(), &report.lists);
  const routing::ClusterheadRouter router(inst.g, view);
  const auto route = router.route(0, inst.g.node_count() - 1);
  EXPECT_TRUE(route.delivered);
}

TEST(Facade, OwningAlgorithm2OutputStillConverts) {
  const auto inst = testing::connected_udg(80, 9.0, 6);
  const auto report =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
  // The owning accessor remains for callers that outlive the report; an
  // lvalue of it converts implicitly to the view.
  const core::Algorithm2Output owned = report.algorithm2_output();
  EXPECT_EQ(owned.result.mis_dominators, report.result.mis_dominators);
  const routing::ClusterheadRouter router(inst.g, owned);
  EXPECT_TRUE(router.route(0, inst.g.node_count() - 1).delivered);
}

TEST(Facade, ProtocolAlgorithm2ListsMatchCentralized) {
  // The protocol mode recomputes the dominator lists centrally from the
  // timing-independent MIS fixpoint — they must agree with the centralized
  // mode's lists wholesale.
  const auto inst = testing::connected_udg(80, 9.0, 7);
  const auto central =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
  const auto protocol =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm2Protocol);
  EXPECT_EQ(protocol.result.mis_dominators, central.result.mis_dominators);
  EXPECT_EQ(protocol.lists.one_hop, central.lists.one_hop);
}

TEST(Facade, RecorderSnapshotCapturesBuildMetrics) {
  const auto inst = testing::connected_udg(60, 8.0, 8);
  obs::Recorder recorder;
  const auto report = build_mode(
      inst.g, core::BuildAlgorithm::kAlgorithm2Protocol, &recorder);
  const auto& metrics = report.metrics;
  EXPECT_EQ(metrics.counters.at("build/runs"), 1u);
  EXPECT_EQ(metrics.counters.at("build/runs/algorithm2-protocol"), 1u);
  EXPECT_DOUBLE_EQ(metrics.histograms.at("build/wcds_size").mean,
                   static_cast<double>(report.result.size()));
  EXPECT_DOUBLE_EQ(metrics.histograms.at("build/transmissions").mean,
                   static_cast<double>(report.stats.transmissions));
  EXPECT_EQ(metrics.histograms.at("phase_ms/build/total").count, 1u);
  // The sim's own counters flow through the same recorder.
  EXPECT_EQ(metrics.counters.at("sim/transmissions"),
            report.stats.transmissions);
}

TEST(Facade, NoRecorderLeavesMetricsEmpty) {
  const auto inst = testing::connected_udg(40, 8.0, 9);
  const auto report =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
  EXPECT_TRUE(report.metrics.empty());
}

TEST(Facade, EmptyGraphThrows) {
  EXPECT_THROW((void)core::build(graph::Graph{}), std::invalid_argument);
}

// --- Hardened WcdsResult accessors ------------------------------------------

TEST(WcdsResultAccessors, ContainsIsBoundsChecked) {
  const auto inst = testing::connected_udg(30, 8.0, 10);
  const auto report =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm2Central);
  for (const NodeId u : report.result.dominators) {
    EXPECT_TRUE(report.result.contains(u));
  }
  EXPECT_FALSE(report.result.contains(static_cast<NodeId>(1000000)));
  EXPECT_FALSE(report.result.contains(kInvalidNode));
}

TEST(WcdsResultAccessors, CheckedAccessorsAgreeWithVectors) {
  const auto inst = testing::connected_udg(30, 8.0, 11);
  const auto report =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm1Central);
  for (NodeId u = 0; u < inst.g.node_count(); ++u) {
    EXPECT_EQ(report.result.in_mask(u), report.result.contains(u));
    EXPECT_EQ(report.result.color_of(u) == core::NodeColor::kBlack,
              report.result.contains(u));
  }
}

TEST(WcdsResultAccessors, OutOfRangeAccessThrows) {
  const auto inst = testing::connected_udg(30, 8.0, 12);
  const auto report =
      build_mode(inst.g, core::BuildAlgorithm::kAlgorithm1Central);
  const auto n = static_cast<NodeId>(inst.g.node_count());
  EXPECT_THROW((void)report.result.color_of(n), std::out_of_range);
  EXPECT_THROW((void)report.result.in_mask(n), std::out_of_range);
}

TEST(WcdsResultAccessors, AuditBuildsCatchColorMaskMismatch) {
  if constexpr (check::audits_compiled_in()) {
    core::WcdsResult broken;
    broken.mask.assign(4, false);
    broken.color.assign(3, core::NodeColor::kGray);  // size disagreement
    EXPECT_THROW((void)broken.color_of(0), check::CheckError);
  }
}

}  // namespace
}  // namespace wcds
