// Discrete-event runtime semantics: delivery order, cost accounting,
// quiescence.
#include <gtest/gtest.h>

#include <memory>

#include "graph/graph.h"
#include "sim/runtime.h"
#include "test_util.h"

namespace wcds::sim {
namespace {

// Flood protocol: node 0 broadcasts PING at start; everyone re-broadcasts the
// first PING they hear.  Tests broadcast fan-out, time = eccentricity.
class FloodNode final : public ProtocolNode {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) {
      seen_ = true;
      ctx.broadcast(1);
    }
  }
  void on_receive(Context& ctx, const Message& msg) override {
    last_from_ = msg.src;
    ++received_;
    if (!seen_) {
      seen_ = true;
      hop_ = static_cast<std::uint32_t>(ctx.now());
      ctx.broadcast(1);
    }
  }
  bool seen_ = false;
  std::uint32_t hop_ = 0;
  NodeId last_from_ = kInvalidNode;
  int received_ = 0;
};

TEST(Runtime, FloodReachesEveryoneInBfsTime) {
  const auto g = graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Runtime rt(g, [](NodeId) { return std::make_unique<FloodNode>(); });
  const auto stats = rt.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_EQ(stats.transmissions, 6u);  // everyone broadcasts exactly once
  for (NodeId u = 0; u < 6; ++u) {
    const auto& node = static_cast<const FloodNode&>(rt.node(u));
    EXPECT_TRUE(node.seen_);
    if (u > 0) {
      EXPECT_EQ(node.hop_, u);  // path graph: hop = id
    }
  }
  EXPECT_EQ(stats.completion_time, 6u);  // node 5's re-broadcast dies at t=6
}

TEST(Runtime, BroadcastCountsOneTransmissionManyDeliveries) {
  const auto g = graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  Runtime rt(g, [](NodeId) { return std::make_unique<FloodNode>(); });
  const auto stats = rt.run();
  // 0 broadcasts once (3 deliveries); leaves each broadcast once (1 delivery
  // to 0 each).
  EXPECT_EQ(stats.transmissions, 4u);
  EXPECT_EQ(stats.deliveries, 6u);
}

// Unicast protocol: node 0 pings its largest neighbor, which pongs back.
class PingPongNode final : public ProtocolNode {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0 && !ctx.neighbors().empty()) {
      ctx.unicast(ctx.neighbors().back(), 1, {42});
    }
  }
  void on_receive(Context& ctx, const Message& msg) override {
    payload_seen_ = msg.payload.empty() ? 0 : msg.payload[0];
    if (msg.type == 1) ctx.unicast(msg.src, 2, {msg.payload[0] + 1});
  }
  std::uint32_t payload_seen_ = 0;
};

TEST(Runtime, UnicastRoundTripAndPayload) {
  const auto g = graph::from_edges(3, {{0, 1}, {0, 2}});
  Runtime rt(g, [](NodeId) { return std::make_unique<PingPongNode>(); });
  const auto stats = rt.run();
  EXPECT_EQ(stats.transmissions, 2u);
  EXPECT_EQ(stats.completion_time, 2u);
  EXPECT_EQ(static_cast<const PingPongNode&>(rt.node(2)).payload_seen_, 42u);
  EXPECT_EQ(static_cast<const PingPongNode&>(rt.node(0)).payload_seen_, 43u);
  EXPECT_EQ(stats.per_type.at(1), 1u);
  EXPECT_EQ(stats.per_type.at(2), 1u);
}

class MisbehavingNode final : public ProtocolNode {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.unicast(2, 1);  // 2 is NOT a neighbor of 0
  }
  void on_receive(Context&, const Message&) override {}
};

TEST(Runtime, UnicastToNonNeighborThrows) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  Runtime rt(g, [](NodeId) { return std::make_unique<MisbehavingNode>(); });
  EXPECT_THROW(rt.run(), std::logic_error);
}

// Chatter protocol that never quiesces: every message triggers another.
class ChatterNode final : public ProtocolNode {
 public:
  void on_start(Context& ctx) override {
    if (ctx.self() == 0) ctx.broadcast(1);
  }
  void on_receive(Context& ctx, const Message&) override { ctx.broadcast(1); }
};

TEST(Runtime, EventBudgetStopsRunaway) {
  const auto g = graph::from_edges(2, {{0, 1}});
  Runtime rt(g, [](NodeId) { return std::make_unique<ChatterNode>(); });
  const auto stats = rt.run(/*max_events=*/1000);
  EXPECT_FALSE(stats.quiescent);
}

TEST(Runtime, RunTwiceThrows) {
  const auto g = graph::from_edges(2, {{0, 1}});
  Runtime rt(g, [](NodeId) { return std::make_unique<FloodNode>(); });
  (void)rt.run();
  EXPECT_THROW(rt.run(), std::logic_error);
}

TEST(Runtime, DeterministicAcrossRuns) {
  const auto inst = testing::connected_udg(120, 8.0, 3);
  const auto run_once = [&]() {
    Runtime rt(inst.g, [](NodeId) { return std::make_unique<FloodNode>(); });
    auto stats = rt.run();
    std::vector<NodeId> froms;
    for (NodeId u = 0; u < inst.g.node_count(); ++u) {
      froms.push_back(static_cast<const FloodNode&>(rt.node(u)).last_from_);
    }
    return std::pair{stats.transmissions, froms};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Runtime, NullFactoryRejected) {
  const auto g = graph::from_edges(2, {{0, 1}});
  EXPECT_THROW(Runtime(g, [](NodeId) -> std::unique_ptr<ProtocolNode> {
                 return nullptr;
               }),
               std::invalid_argument);
}

}  // namespace
}  // namespace wcds::sim
