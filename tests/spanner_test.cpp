// Spanner quality: sparseness (Theorems 8/10) and dilation (Theorem 11).
#include <gtest/gtest.h>

#include "graph/dijkstra.h"
#include "spanner/analysis.h"
#include "test_util.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace wcds::spanner {
namespace {

TEST(Sparseness, CountsAndBound) {
  const auto inst = testing::connected_udg(300, 14.0, 3);
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  const auto stats = sparseness(inst.g, sp, out.result);
  EXPECT_EQ(stats.nodes, 300u);
  EXPECT_EQ(stats.udg_edges, inst.g.edge_count());
  EXPECT_LE(stats.spanner_edges, stats.udg_edges);
  EXPECT_GT(stats.spanner_edges, 0u);
  // Theorem 10's accounting bound.
  EXPECT_LE(stats.spanner_edges, stats.theorem10_bound);
}

TEST(Sparseness, SpannerEdgesLinearWhileUdgGrowsQuadratic) {
  // At fixed n, doubling density multiplies UDG edges ~2x but the spanner
  // barely moves (it is Theta(n)).
  const auto sparse_inst = testing::connected_udg(400, 10.0, 5);
  const auto dense_inst = testing::connected_udg(400, 30.0, 5);
  const auto out_s = core::algorithm2(sparse_inst.g);
  const auto out_d = core::algorithm2(dense_inst.g);
  const auto sp_s = core::extract_spanner(sparse_inst.g, out_s.result);
  const auto sp_d = core::extract_spanner(dense_inst.g, out_d.result);
  const double udg_growth = static_cast<double>(dense_inst.g.edge_count()) /
                            static_cast<double>(sparse_inst.g.edge_count());
  const double spanner_growth = static_cast<double>(sp_d.edge_count()) /
                                static_cast<double>(sp_s.edge_count());
  EXPECT_GT(udg_growth, 2.0);
  EXPECT_LT(spanner_growth, udg_growth);
}

TEST(TopologicalDilation, IdentitySpannerHasRatioOne) {
  const auto inst = testing::connected_udg(150, 9.0, 2);
  const auto stats = topological_dilation(inst.g, inst.g);
  EXPECT_DOUBLE_EQ(stats.max_ratio, 1.0);
  EXPECT_TRUE(stats.all_reachable);
  EXPECT_LE(stats.max_slack, 0);
}

TEST(TopologicalDilation, NodeCountMismatchThrows) {
  const auto a = graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto b = graph::from_edges(2, {{0, 1}});
  EXPECT_THROW((void)topological_dilation(a, b), std::invalid_argument);
}

// Theorem 11: Algorithm II's spanner satisfies delta' <= 3*delta + 2 for
// every non-adjacent pair (exact check, all pairs).
class DilationSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DilationSweep, Theorem11TopologicalBoundHolds) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(250, degree, seed);
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  const auto stats = topological_dilation(inst.g, sp);
  EXPECT_TRUE(stats.all_reachable);
  EXPECT_LE(stats.max_slack, 0) << "delta' exceeded 3*delta + 2";
  EXPECT_GE(stats.max_ratio, 1.0);
}

TEST_P(DilationSweep, Theorem11GeometricBoundHolds) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(220, degree, seed);
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  const auto stats = geometric_dilation(inst.g, sp, inst.points);
  EXPECT_TRUE(stats.all_reachable);
  EXPECT_LE(stats.max_slack, 1e-9) << "l' exceeded 6*l + 5";
}

INSTANTIATE_TEST_SUITE_P(
    DegreeSeed, DilationSweep,
    ::testing::Combine(::testing::Values(7.0, 12.0),
                       ::testing::Values(1u, 2u, 3u)));

TEST(TopologicalDilation, Algorithm1SpannerAlsoBounded) {
  // Theorem 11 is proven for Algorithm II only; Algorithm I's spanner has no
  // per-pair dilation guarantee (no 3-hop bridges), but it must stay
  // connected and its stretch stays small in practice (the T3 experiment
  // reports the measured gap between the two).
  const auto inst = testing::connected_udg(220, 10.0, 4);
  const auto r = core::algorithm1(inst.g);
  const auto sp = core::extract_spanner(inst.g, r);
  const auto stats = topological_dilation(inst.g, sp);
  EXPECT_TRUE(stats.all_reachable);
  EXPECT_GE(stats.max_ratio, 1.0);
  EXPECT_LE(stats.max_ratio, 12.0);  // loose sanity envelope
}

TEST(TopologicalDilation, SampledSourcesSubsetOfExact) {
  const auto inst = testing::connected_udg(200, 9.0, 6);
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  const auto exact = topological_dilation(inst.g, sp);
  const auto sampled = topological_dilation(inst.g, sp, 20);
  EXPECT_LE(sampled.max_ratio, exact.max_ratio + 1e-12);
  EXPECT_LT(sampled.pairs, exact.pairs);
}

// Lemma 6's proof hinges on: along any *minimum-distance* path in G, two
// consecutive edges sum to more than one unit (else a shortcut edge would
// exist), hence delta(u, v) < 2 * l_G(u, v) + 1.  Verify that inequality
// per pair on random UDGs — it is what turns the topological bound 3d+2
// into the geometric bound 6l+5.
class Lemma6Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma6Sweep, HopCountBoundedByTwiceGeometricLength) {
  const auto inst = testing::connected_udg(200, 9.0, GetParam());
  for (NodeId u = 0; u < inst.g.node_count(); u += 23) {
    const auto hops = graph::bfs_distances(inst.g, u);
    const auto len = graph::geometric_shortest_paths(inst.g, inst.points, u);
    for (NodeId v = 0; v < inst.g.node_count(); ++v) {
      if (v == u || hops[v] == kUnreachable || hops[v] == 1) continue;
      EXPECT_LT(static_cast<double>(hops[v]), 2.0 * len[v] + 1.0)
          << u << "->" << v;
    }
  }
}

// End-to-end Lemma 6: since Theorem 11 gives delta' <= 3*delta + 2, the
// geometric dilation must satisfy l' <= 2*3*l + 3 + 2 = 6l + 5.  (The
// paper's printed conclusion drops the factor 2 to OCR damage; the proof's
// own arithmetic yields 2*alpha*l + alpha + beta.)
TEST_P(Lemma6Sweep, GeometricFollowsFromTopological) {
  const auto inst = testing::connected_udg(150, 10.0, GetParam());
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  const auto topo = spanner::topological_dilation(inst.g, sp);
  ASSERT_LE(topo.max_slack, 0);
  const auto geo = spanner::geometric_dilation(inst.g, sp, inst.points);
  EXPECT_LE(geo.max_slack, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma6Sweep, ::testing::Values(1u, 2u, 3u));

TEST(StretchDistribution, IdentityAllInFirstBucket) {
  const auto inst = testing::connected_udg(120, 9.0, 3);
  const auto dist = topological_stretch_distribution(inst.g, inst.g);
  EXPECT_GT(dist.pairs, 0u);
  EXPECT_EQ(dist.buckets[0], dist.pairs);  // ratio exactly 1 everywhere
  EXPECT_DOUBLE_EQ(dist.max_ratio, 1.0);
  EXPECT_LE(dist.percentile(0.5), 1.0 + dist.width);
  EXPECT_LE(dist.percentile(1.0), 1.0 + dist.width);
}

TEST(StretchDistribution, BadSpecThrows) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_THROW(topological_stretch_distribution(g, g, 10, 0.0),
               std::invalid_argument);
  EXPECT_THROW(topological_stretch_distribution(g, g, 10, 0.25, 0),
               std::invalid_argument);
}

TEST(StretchDistribution, PercentilesMonotoneAndBoundedByMax) {
  const auto inst = testing::connected_udg(200, 10.0, 5);
  const auto out = core::algorithm2(inst.g);
  const auto sp = core::extract_spanner(inst.g, out.result);
  const auto dist = topological_stretch_distribution(inst.g, sp);
  const double p50 = dist.percentile(0.5);
  const double p95 = dist.percentile(0.95);
  const double p100 = dist.percentile(1.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p100);
  // Bucket upper bounds over-approximate by at most one bucket width.
  EXPECT_LE(dist.max_ratio, p100 + 1e-12);
  // Count conservation.
  std::uint64_t total = 0;
  for (const auto b : dist.buckets) total += b;
  EXPECT_EQ(total, dist.pairs);
}

TEST(StretchDistribution, EmptyGraphSafe) {
  graph::GraphBuilder b(1);
  const auto g = std::move(b).build();
  const auto dist = topological_stretch_distribution(g, g);
  EXPECT_EQ(dist.pairs, 0u);
  EXPECT_DOUBLE_EQ(dist.percentile(0.5), 0.0);
}

TEST(GeometricDilation, SizeMismatchThrows) {
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  std::vector<geom::Point> two_points{{0, 0}, {1, 0}};
  EXPECT_THROW((void)geometric_dilation(g, g, two_points), std::invalid_argument);
}

TEST(GeometricDilation, IdentityRatioAtLeastOne) {
  const auto inst = testing::connected_udg(120, 9.0, 8);
  const auto stats = geometric_dilation(inst.g, inst.g, inst.points);
  EXPECT_GE(stats.max_ratio, 1.0 - 1e-12);
  EXPECT_TRUE(stats.all_reachable);
}

}  // namespace
}  // namespace wcds::spanner
