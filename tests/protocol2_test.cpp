// Distributed Algorithm II must equal the centralized reference on the MIS
// and satisfy all WCDS/bridge invariants, with O(n) messages.
#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "mis/mis.h"
#include "protocols/algorithm2_protocol.h"
#include "test_util.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace wcds::protocols {
namespace {

TEST(Protocol2, RejectsBadInput) {
  graph::GraphBuilder empty(0);
  EXPECT_THROW(run_algorithm2(std::move(empty).build()),
               std::invalid_argument);
}

// Disconnected deployments compose per-component sub-runs (sim/sharded.h):
// the lowest ID in each component turns MIS-dominator independently.
TEST(Protocol2, DisconnectedComposesPerComponent) {
  const auto g = graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto run = run_algorithm2(g);
  EXPECT_EQ(run.wcds.mis_dominators, (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(run.wcds.additional_dominators.empty());
}

TEST(Protocol2, SingleNode) {
  graph::GraphBuilder b(1);
  const auto run = run_algorithm2(std::move(b).build());
  EXPECT_EQ(run.wcds.dominators, std::vector<NodeId>{0});
}

TEST(Protocol2, PathGraph) {
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto run = run_algorithm2(g);
  EXPECT_EQ(run.wcds.mis_dominators, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(run.wcds.additional_dominators.empty());
  EXPECT_TRUE(core::audit_result(g, run.wcds));
}

TEST(Protocol2, SevenCycleBridges) {
  const auto g = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}});
  const auto run = run_algorithm2(g);
  EXPECT_EQ(run.wcds.mis_dominators, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(run.wcds.additional_dominators.size(), 1u);
  EXPECT_TRUE(core::audit_result(g, run.wcds));
}

TEST(Protocol2, MessageNamesCover) {
  EXPECT_STREQ(algorithm2_message_name(kMsgMisDominator), "MIS-DOMINATOR");
  EXPECT_STREQ(algorithm2_message_name(kMsgSelection), "SELECTION");
  EXPECT_STREQ(algorithm2_message_name(999), "?");
}

class Protocol2Sweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(Protocol2Sweep, MisMatchesCentralizedAndInvariantsHold) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(250, degree, seed);
  const auto run = run_algorithm2(inst.g);
  EXPECT_TRUE(core::audit_result(inst.g, run.wcds));

  // The distributed MIS is exactly the greedy lowest-ID-first MIS.
  const auto s = mis::greedy_mis_by_id(inst.g);
  std::vector<NodeId> expected = s.members;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run.wcds.mis_dominators, expected);

  // Every 3-hop MIS pair is bridged by some additional dominator: check the
  // resulting weakly induced graph connects (already in audit) plus bridge
  // adjacency: each additional dominator touches an MIS dominator.
  std::vector<bool> mis_mask(inst.g.node_count(), false);
  for (NodeId u : run.wcds.mis_dominators) mis_mask[u] = true;
  for (NodeId v : run.wcds.additional_dominators) {
    const auto row = inst.g.neighbors(v);
    EXPECT_TRUE(std::any_of(row.begin(), row.end(),
                            [&](NodeId w) { return mis_mask[w]; }));
  }
}

TEST_P(Protocol2Sweep, MessageComplexityLinear) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(400, degree, seed);
  const auto run = run_algorithm2(inst.g);
  // Theorem 12: O(n) messages.  Each node sends a constant number of
  // broadcasts (one color, one 1-HOP, one 2-HOP for gray nodes) plus
  // SELECTION/confirmation traffic bounded by the 3-hop pair count (<= 47
  // per MIS node, much smaller in practice).  60 per node is a generous
  // constant that fails loudly if the protocol regresses to superlinear.
  EXPECT_LE(run.stats.transmissions, 60u * inst.g.node_count());
  EXPECT_GE(run.stats.transmissions, inst.g.node_count());  // everyone speaks
}

INSTANTIATE_TEST_SUITE_P(
    DegreeSeed, Protocol2Sweep,
    ::testing::Combine(::testing::Values(6.0, 10.0, 16.0),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(Protocol2, WorstCaseTimeIsLinearOnSortedChain) {
  // Theorem 12's proof: with nodes arranged in ID order along a chain, each
  // node must wait for its predecessor's GRAY, so the marking wave crawls
  // one hop per time unit — Theta(n) time.
  const std::size_t n = 200;
  graph::GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  const auto run = run_algorithm2(std::move(b).build());
  EXPECT_GE(run.stats.completion_time, n / 2);  // the crawling wave
  EXPECT_LE(run.stats.completion_time, 4 * n);  // ... but still linear
}

TEST(Protocol2, DenseCliqueFinishesInConstantTime) {
  // Contrast to the chain: one MIS-DOMINATOR message settles everyone.
  graph::GraphBuilder b(60);
  for (NodeId u = 0; u < 60; ++u) {
    for (NodeId v = u + 1; v < 60; ++v) b.add_edge(u, v);
  }
  const auto run = run_algorithm2(std::move(b).build());
  EXPECT_LE(run.stats.completion_time, 12u);
}

TEST(Protocol2, AdditionalDominatorsBridgeAllThreeHopPairs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = testing::connected_udg(200, 7.0, seed);
    const auto run = run_algorithm2(inst.g);
    std::vector<bool> u_mask(inst.g.node_count(), false);
    for (NodeId d : run.wcds.dominators) u_mask[d] = true;
    // Oracle: for every 3-hop MIS pair there must exist a path a-v-x-b with
    // v a dominator (then all three edges are black).
    for (NodeId a : run.wcds.mis_dominators) {
      const auto dist = graph::bfs_distances(inst.g, a);
      for (NodeId b : run.wcds.mis_dominators) {
        if (b <= a || dist[b] != 3) continue;
        bool bridged = false;
        for (NodeId v : inst.g.neighbors(a)) {
          if (!u_mask[v]) continue;
          for (NodeId x : inst.g.neighbors(v)) {
            if (inst.g.has_edge(x, b)) bridged = true;
          }
        }
        // Or the reverse orientation (bridge adjacent to b).
        if (!bridged) {
          for (NodeId v : inst.g.neighbors(b)) {
            if (!u_mask[v]) continue;
            for (NodeId x : inst.g.neighbors(v)) {
              if (inst.g.has_edge(x, a)) bridged = true;
            }
          }
        }
        EXPECT_TRUE(bridged) << "pair (" << a << "," << b << ")";
      }
    }
  }
}

}  // namespace
}  // namespace wcds::protocols
