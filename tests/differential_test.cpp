// Differential fuzzing: many random instances, every implementation checked
// against an independent oracle —
//   * exact solver vs every heuristic (lower-bound sandwich),
//   * distributed protocol state vs the centralized list computation,
//   * distributed Algorithm I vs the centralized reference across workloads,
//   * the data plane vs BFS reachability.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/exact.h"
#include "baselines/greedy_cds.h"
#include "baselines/greedy_wcds.h"
#include "baselines/mis_tree_cds.h"
#include "facade/build.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "protocols/routing_protocol.h"
#include "sim/runtime.h"
#include "test_util.h"
#include "udg/udg.h"
#include "wcds/algorithm1.h"
#include "wcds/algorithm2.h"
#include "wcds/verify.h"

namespace wcds {
namespace {

TEST(Differential, ExactSandwichesEveryHeuristicOnTinyInstances) {
  // For 40 tiny instances: lb <= opt <= every heuristic <= n, and every
  // heuristic's output verifies.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto inst = testing::connected_udg(12, 4.5, seed);
    const auto exact = baselines::exact_min_wcds(inst.g);
    ASSERT_TRUE(exact.has_value()) << seed;
    const std::size_t opt = exact->members.size();
    EXPECT_TRUE(core::is_wcds(inst.g, graph::make_mask(12, exact->members)));

    const auto mis = mis::greedy_mis_by_id(inst.g);
    EXPECT_LE(baselines::udg_mwcds_lower_bound(mis.size()), opt) << seed;

    const auto a1 = core::algorithm1(inst.g);
    const auto a2 = core::algorithm2(inst.g);
    const auto gw = baselines::greedy_wcds(inst.g);
    const auto gc = baselines::greedy_cds(inst.g);
    const auto mc = baselines::mis_tree_cds(inst.g);
    for (const auto* r : {&a1, &a2.result, &gw, &gc, &mc}) {
      EXPECT_GE(r->size(), opt) << seed;
      EXPECT_LE(r->size(), 12u) << seed;
    }
    EXPECT_LE(a1.size(), 5 * opt) << seed;  // Lemma 7, instance by instance
  }
}

TEST(Differential, DistributedAlgorithm2ListsMatchCentralized) {
  // The protocol's per-node 1Hop/2Hop dominator knowledge must equal the
  // centralized list computation (as dominator sets; intermediate choices
  // are tie-break dependent but must name real paths).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = testing::connected_udg(120, 9.0, seed);
    const auto central = core::algorithm2(inst.g);

    sim::Runtime runtime(inst.g, [](NodeId) {
      return std::make_unique<protocols::Algorithm2Node>();
    });
    ASSERT_TRUE(runtime.run().quiescent);

    for (NodeId u = 0; u < inst.g.node_count(); ++u) {
      const auto& node =
          static_cast<const protocols::Algorithm2Node&>(runtime.node(u));
      // 1-hop lists are exactly equal (both sorted).
      EXPECT_EQ(node.one_hop_doms(), central.lists.one_hop[u]) << "node " << u;
      // 2-hop dominator sets are equal.
      std::vector<NodeId> dist_doms;
      for (const auto& e : node.two_hop_doms()) dist_doms.push_back(e.dom);
      std::sort(dist_doms.begin(), dist_doms.end());
      std::vector<NodeId> cent_doms;
      for (const auto& e : central.lists.two_hop[u]) cent_doms.push_back(e.dom);
      std::sort(cent_doms.begin(), cent_doms.end());
      EXPECT_EQ(dist_doms, cent_doms) << "node " << u;
      // Every distributed 2-hop intermediate names a real 2-hop path.
      for (const auto& e : node.two_hop_doms()) {
        EXPECT_TRUE(inst.g.has_edge(u, e.via));
        EXPECT_TRUE(inst.g.has_edge(e.via, e.dom));
      }
      // Every distributed 3-hop entry names a real 3-hop path.
      for (const auto& e : node.three_hop_doms()) {
        EXPECT_TRUE(inst.g.has_edge(u, e.via1));
        EXPECT_TRUE(inst.g.has_edge(e.via1, e.via2));
        EXPECT_TRUE(inst.g.has_edge(e.via2, e.dom));
      }
    }
  }
}

TEST(Differential, Algorithm1AcrossWorkloadFamilies) {
  using geom::WorkloadKind;
  for (const auto kind : {WorkloadKind::kUniform, WorkloadKind::kClustered,
                          WorkloadKind::kPerturbedGrid, WorkloadKind::kRing}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      geom::WorkloadParams params;
      params.kind = kind;
      params.count = 220;
      params.side = 7.0;
      params.seed = seed;
      const auto pts = geom::generate(params);
      const auto g = udg::build_udg(pts);
      if (!graph::is_connected(g)) continue;
      const auto distributed = protocols::run_algorithm1(g);
      core::Algorithm1Options options;
      options.root = distributed.leader;
      const auto central = core::algorithm1(g, options);
      EXPECT_EQ(distributed.wcds.dominators, central.dominators)
          << geom::to_string(kind) << " seed " << seed;
    }
  }
}

TEST(Differential, DataPlaneReachabilityEqualsBfs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = testing::connected_udg(130, 10.0, seed);
    const auto out = core::algorithm2(inst.g);
    std::vector<protocols::FlowRequest> requests;
    geom::Xoshiro256ss rng(seed * 991);
    for (int i = 0; i < 60; ++i) {
      requests.push_back(
          {static_cast<NodeId>(rng.next_below(inst.g.node_count())),
           static_cast<NodeId>(rng.next_below(inst.g.node_count()))});
    }
    const auto run = protocols::route_flows(inst.g, out, requests);
    // Connected graph: everything BFS-reachable must be delivered.
    EXPECT_EQ(run.delivered_count(), requests.size()) << seed;
  }
}

TEST(Differential, FacadeMatchesDirectEntrypoints) {
  // core::build() is a pure dispatcher: for every mode its report must be
  // bit-for-bit the corresponding direct entrypoint's output (the runs are
  // deterministic under the unit-delay model).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = testing::connected_udg(110, 9.0, seed);

    core::BuildOptions options;
    options.algorithm = core::BuildAlgorithm::kAlgorithm1Central;
    const auto f1c = core::build(inst.g, options);
    const auto d1c = core::algorithm1(inst.g);
    EXPECT_EQ(f1c.result.dominators, d1c.dominators) << seed;
    EXPECT_EQ(f1c.result.mask, d1c.mask) << seed;

    options.algorithm = core::BuildAlgorithm::kAlgorithm2Central;
    const auto f2c = core::build(inst.g, options);
    const auto d2c = core::algorithm2(inst.g);
    EXPECT_EQ(f2c.result.dominators, d2c.result.dominators) << seed;
    EXPECT_EQ(f2c.result.additional_dominators,
              d2c.result.additional_dominators)
        << seed;
    EXPECT_EQ(f2c.mis.members, d2c.mis.members) << seed;
    EXPECT_EQ(f2c.lists.one_hop, d2c.lists.one_hop) << seed;
    EXPECT_EQ(f2c.lists.two_hop, d2c.lists.two_hop) << seed;
    EXPECT_EQ(f2c.lists.three_hop, d2c.lists.three_hop) << seed;

    options.algorithm = core::BuildAlgorithm::kAlgorithm1Protocol;
    const auto f1p = core::build(inst.g, options);
    const auto d1p = protocols::run_algorithm1(inst.g);
    EXPECT_EQ(f1p.result.dominators, d1p.wcds.dominators) << seed;
    EXPECT_EQ(f1p.leader, d1p.leader) << seed;
    EXPECT_EQ(f1p.levels, d1p.levels) << seed;
    EXPECT_EQ(f1p.stats.transmissions, d1p.stats.transmissions) << seed;
    EXPECT_EQ(f1p.stats.completion_time, d1p.stats.completion_time) << seed;

    options.algorithm = core::BuildAlgorithm::kAlgorithm2Protocol;
    const auto f2p = core::build(inst.g, options);
    const auto d2p = protocols::run_algorithm2(inst.g);
    EXPECT_EQ(f2p.result.dominators, d2p.wcds.dominators) << seed;
    EXPECT_EQ(f2p.result.mis_dominators, d2p.wcds.mis_dominators) << seed;
    EXPECT_EQ(f2p.stats.transmissions, d2p.stats.transmissions) << seed;
    EXPECT_EQ(f2p.stats.completion_time, d2p.stats.completion_time) << seed;
  }
}

TEST(Differential, FacadeMatchesDirectEntrypointsUnderAsyncDelays) {
  // Same dispatcher claim under a seeded random-delay model: the facade must
  // reproduce the direct run exactly because both draw the same delay
  // sequence from the same seed.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto inst = testing::connected_udg(100, 9.0, seed);
    const auto delays = sim::DelayModel::uniform(1, 8, seed * 17 + 5);

    core::BuildOptions options;
    options.algorithm = core::BuildAlgorithm::kAlgorithm1Protocol;
    options.delays = delays;
    const auto f1 = core::build(inst.g, options);
    const auto d1 = protocols::run_algorithm1(inst.g, delays);
    EXPECT_EQ(f1.result.dominators, d1.wcds.dominators) << seed;
    EXPECT_EQ(f1.levels, d1.levels) << seed;
    EXPECT_EQ(f1.stats.transmissions, d1.stats.transmissions) << seed;
    EXPECT_EQ(f1.stats.completion_time, d1.stats.completion_time) << seed;

    options.algorithm = core::BuildAlgorithm::kAlgorithm2Protocol;
    const auto f2 = core::build(inst.g, options);
    const auto d2 = protocols::run_algorithm2(inst.g, delays);
    EXPECT_EQ(f2.result.dominators, d2.wcds.dominators) << seed;
    EXPECT_EQ(f2.stats.transmissions, d2.stats.transmissions) << seed;
    EXPECT_EQ(f2.stats.completion_time, d2.stats.completion_time) << seed;
  }
}

TEST(Differential, ReuseSelectionStillBridgesEverything) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = testing::connected_udg(160, 7.5, seed);
    core::Algorithm2Options options;
    options.selection = core::Algorithm2Options::Selection::kReuseIntermediates;
    const auto out = core::algorithm2(inst.g, options);
    for (NodeId a : out.result.mis_dominators) {
      const auto dist = graph::bfs_distances(inst.g, a);
      for (NodeId b : out.result.mis_dominators) {
        if (b <= a || dist[b] != 3) continue;
        const auto& entries = out.lists.three_hop[a];
        EXPECT_TRUE(std::any_of(
            entries.begin(), entries.end(),
            [&](const core::ThreeHopEntry& e) { return e.dom == b; }))
            << seed << ": pair (" << a << ", " << b << ")";
      }
    }
  }
}

}  // namespace
}  // namespace wcds
