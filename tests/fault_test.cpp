// Fault-injection layer: deterministic fault plans, the hardened reliable
// transport, and protocol convergence under loss / duplication / jitter /
// crash-recover schedules (docs/ROBUSTNESS.md).
//
// The two load-bearing guarantees pinned down here:
//  1. Transparency — a null fault plan leaves the runtime byte-identical to
//     the pre-fault-layer behavior (same traces, same stats, no added
//     allocations), and a *trivial* plan behaves exactly like a null hook
//     even though it routes through the (time, seq) heap instead of the
//     unit-delay calendar.
//  2. Convergence — under the issue's acceptance fault regime
//     (drop=0.2, dup=0.05, crash/recover events) both distributed
//     algorithms still reach quiescence with an audit-clean WCDS, across
//     seeds.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/audit.h"
#include "facade/build.h"
#include "fault/hardened.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "maintenance/crash_schedule.h"
#include "geom/rng.h"
#include "geom/workload.h"
#include "graph/graph.h"
#include "maintenance/dynamic_wcds.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "sim/runtime.h"
#include "test_util.h"

// --- Counting global allocator (see runtime_queue_test.cpp) ----------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

// ---------------------------------------------------------------------------

namespace {

using namespace wcds;

sim::Runtime::NodeFactory raw_factory(bool alg1) {
  if (alg1) {
    return [](NodeId) { return std::make_unique<protocols::Algorithm1Node>(); };
  }
  return [](NodeId) { return std::make_unique<protocols::Algorithm2Node>(); };
}

struct TracedRun {
  sim::RunStats stats;
  std::vector<obs::TraceEvent> events;
};

// Raw runtime run (no driver, no hardened wrapper) with an optional hook.
TracedRun traced_raw_run(const graph::Graph& g, bool alg1,
                         const sim::DelayModel& delays,
                         sim::FaultHook* hook) {
  obs::Recorder recorder;
  obs::MemoryTraceSink sink;
  recorder.set_trace_sink(&sink);
  sim::Runtime rt(g, raw_factory(alg1), delays, &recorder,
                  sim::QueuePolicy::kFlat, hook);
  TracedRun out;
  out.stats = rt.run();
  out.events = sink.events();
  return out;
}

void expect_same_trace(const TracedRun& a, const TracedRun& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    ASSERT_EQ(a.events[i].time, b.events[i].time) << "event " << i;
    ASSERT_EQ(a.events[i].src, b.events[i].src) << "event " << i;
    ASSERT_EQ(a.events[i].dst, b.events[i].dst) << "event " << i;
    ASSERT_EQ(a.events[i].message_type, b.events[i].message_type)
        << "event " << i;
    ASSERT_EQ(a.events[i].queue_depth, b.events[i].queue_depth)
        << "event " << i;
  }
  EXPECT_EQ(a.stats, b.stats);
}

void expect_audit_clean(const graph::Graph& g, const core::WcdsResult& result) {
  check::AuditOptions options;
  options.unit_disk = true;  // all fault-suite instances are UDGs
  EXPECT_NO_THROW(check::audit_invariants(g, result, options));
}

// --- Plan semantics ---------------------------------------------------------

TEST(FaultPlan, TrivialityAndBuilders) {
  fault::Plan plan;
  EXPECT_TRUE(plan.trivial());
  EXPECT_FALSE(fault::Plan::lossy(0.1, 7).trivial());
  EXPECT_FALSE(fault::Plan::chaos(0.0, 0.0, 3, 7).trivial());
  plan.crash(4, 10, 20);
  EXPECT_FALSE(plan.trivial());
  EXPECT_EQ(plan.crashes.size(), 1u);
}

TEST(FaultPlan, BlackoutRegionCoversTheDisk) {
  const auto inst = wcds::testing::connected_udg(60, 8.0, 5);
  fault::Plan plan;
  const geom::Point center = inst.points[0];
  const std::size_t covered =
      plan.blackout_region(inst.points, center, 1.0, 5, 25);
  EXPECT_GE(covered, 1u);  // at least node 0 itself
  EXPECT_EQ(plan.crashes.size(), covered);
  fault::Injector injector(plan, inst.g.node_count());
  EXPECT_TRUE(injector.down(0, 5));
  EXPECT_TRUE(injector.down(0, 24));
  EXPECT_FALSE(injector.down(0, 25));
  EXPECT_FALSE(injector.down(0, 4));
}

TEST(FaultInjector, DeterministicGivenSeedAndCallSequence) {
  const fault::Plan plan = fault::Plan::chaos(0.3, 0.2, 4, 42);
  fault::Injector a(plan, 16);
  fault::Injector b(plan, 16);
  for (std::size_t call = 0; call < 500; ++call) {
    EXPECT_EQ(a.drop_copy(call % 7), b.drop_copy(call % 7));
    EXPECT_EQ(a.duplicate_copy(call % 5), b.duplicate_copy(call % 5));
    EXPECT_EQ(a.extra_delay(), b.extra_delay());
  }
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_GT(a.counters().dropped, 0u);
  EXPECT_GT(a.counters().duplicated, 0u);
}

TEST(FaultInjector, LinkOverridesShadowTheGlobalRates) {
  // Probability 1.0 is rejected (a certainly-dead link can never settle).
  fault::Plan rejected;
  rejected.link_overrides.push_back({/*link_slot=*/0, /*drop=*/1.0, 0.0});
  EXPECT_THROW(fault::Injector(rejected, 4), std::exception);

  fault::Plan plan;
  plan.seed = 9;  // fixed seed: the draw sequence below is reproducible
  plan.link_overrides.push_back({/*link_slot=*/3, /*drop=*/0.9, /*dup=*/0.0});
  fault::Injector injector(plan, 4);
  for (int i = 0; i < 64; ++i) {
    (void)injector.drop_copy(3);          // override applies its own rate
    EXPECT_FALSE(injector.drop_copy(1));  // global rate stays zero
  }
  EXPECT_GT(injector.counters().dropped, 0u);
}

// --- Transparency -----------------------------------------------------------

// A trivial-plan injector must replay the exact null-hook run even though it
// forces the heap queue: under unit delays heap (time, seq) order equals
// calendar order, and the injector's draws never perturb anything.
TEST(FaultTransparency, TrivialPlanMatchesNullHookExactly) {
  const auto inst = wcds::testing::connected_udg(100, 8.0, 2);
  for (const bool alg1 : {true, false}) {
    for (const bool async : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "alg1=" << alg1
                                        << " async=" << async);
      const auto delays = async ? sim::DelayModel::uniform(1, 4, 11)
                                : sim::DelayModel::unit();
      const auto null_run = traced_raw_run(inst.g, alg1, delays, nullptr);
      fault::Injector trivial(fault::Plan{}, inst.g.node_count());
      const auto hooked = traced_raw_run(inst.g, alg1, delays, &trivial);
      expect_same_trace(null_run, hooked);
      EXPECT_EQ(trivial.counters(), fault::Injector::Counters{});
    }
  }
}

// The facade with faults == nullptr takes the exact pre-fault-layer path.
TEST(FaultTransparency, FacadeNullPlanMatchesDirectDriver) {
  const auto inst = wcds::testing::connected_udg(80, 8.0, 4);
  core::BuildOptions options;
  options.algorithm = core::BuildAlgorithm::kAlgorithm2Protocol;
  const auto report = core::build(inst.g, options);
  const auto direct = protocols::run_algorithm2(inst.g);
  EXPECT_EQ(report.result.dominators, direct.wcds.dominators);
  EXPECT_EQ(report.stats, direct.stats);
}

// The null-hook broadcast path must stay allocation-free per delivery (the
// fault branch may not add heap traffic when no hook is installed).
TEST(FaultTransparency, NullHookPathAddsNoAllocations) {
  constexpr std::uint32_t kLeaves = 512;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(kLeaves);
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) edges.push_back({0, leaf});
  const graph::Graph g = graph::from_edges(kLeaves + 1, edges);

  class OneShotNode final : public sim::ProtocolNode {
   public:
    void on_start(sim::Context& ctx) override { ctx.broadcast(1); }
    void on_receive(sim::Context&, const sim::Message&) override {}
  };

  sim::Runtime rt(
      g, [](NodeId) { return std::make_unique<OneShotNode>(); },
      sim::DelayModel::unit(), nullptr, sim::QueuePolicy::kFlat, nullptr);
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  const auto stats = rt.run();
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(stats.deliveries, 2u * kLeaves);
  // Amortized container growth only — same budget the queue differential
  // suite enforced before the fault layer existed.
  EXPECT_LT(g_alloc_count.load(std::memory_order_relaxed), 100u);
}

// --- Idempotent handlers under raw duplication ------------------------------

// Duplication alone (no loss) must be survivable WITHOUT the hardened
// transport: the protocol handlers are duplicate-safe by themselves.  The
// MIS fixpoint is timing-independent, so even the dominator set matches the
// fault-free run.
TEST(FaultIdempotence, RawAlgorithm2SurvivesDuplication) {
  const auto inst = wcds::testing::connected_udg(90, 8.0, 6);
  const auto clean = protocols::run_algorithm2(inst.g);

  fault::Plan plan;
  plan.duplicate = 0.3;
  plan.seed = 13;
  fault::Injector injector(plan, inst.g.node_count());
  sim::Runtime rt(inst.g, raw_factory(/*alg1=*/false), sim::DelayModel::unit(),
                  nullptr, sim::QueuePolicy::kFlat, &injector);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.quiescent);
  EXPECT_GT(injector.counters().duplicated, 0u);

  std::vector<NodeId> mis;
  for (NodeId u = 0; u < inst.g.node_count(); ++u) {
    const auto& node =
        static_cast<const protocols::Algorithm2Node&>(rt.node(u));
    if (node.is_mis_dominator()) mis.push_back(u);
  }
  EXPECT_EQ(mis, clean.wcds.mis_dominators);
}

// --- Convergence under the hardened transport -------------------------------

TEST(FaultConvergence, LossyRunsConvergeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = wcds::testing::connected_udg(80, 8.0, seed);
    const fault::Plan plan = fault::Plan::lossy(0.2, seed);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    const auto run1 = protocols::run_algorithm1(
        inst.g, sim::DelayModel::unit(), nullptr, sim::QueuePolicy::kFlat,
        &plan);
    EXPECT_TRUE(run1.stats.quiescent);
    expect_audit_clean(inst.g, run1.wcds);

    const auto run2 = protocols::run_algorithm2(
        inst.g, sim::DelayModel::unit(), nullptr, sim::QueuePolicy::kFlat,
        &plan);
    EXPECT_TRUE(run2.stats.quiescent);
    expect_audit_clean(inst.g, run2.wcds);
  }
}

// The issue's acceptance regime: drop=0.2, dup=0.05, jitter, plus two
// crash/recover events, across 8 seeds.  Both protocols re-converge to an
// audit-clean WCDS; Algorithm II additionally reproduces the fault-free MIS
// (the fixpoint is timing-independent).
TEST(FaultConvergence, ChaosWithCrashRecoverAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = wcds::testing::connected_udg(70, 8.0, seed);
    fault::Plan plan = fault::Plan::chaos(0.2, 0.05, 3, seed);
    const auto n = static_cast<NodeId>(inst.g.node_count());
    plan.crash(static_cast<NodeId>(seed % n), 5, 40);
    plan.crash(static_cast<NodeId>((3 * seed + 1) % n), 20, 70);
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);

    const auto run1 = protocols::run_algorithm1(
        inst.g, sim::DelayModel::unit(), nullptr, sim::QueuePolicy::kFlat,
        &plan);
    EXPECT_TRUE(run1.stats.quiescent);
    expect_audit_clean(inst.g, run1.wcds);

    const auto clean = protocols::run_algorithm2(inst.g);
    const auto run2 = protocols::run_algorithm2(
        inst.g, sim::DelayModel::unit(), nullptr, sim::QueuePolicy::kFlat,
        &plan);
    EXPECT_TRUE(run2.stats.quiescent);
    expect_audit_clean(inst.g, run2.wcds);
    EXPECT_EQ(run2.wcds.mis_dominators, clean.wcds.mis_dominators);
  }
}

TEST(FaultConvergence, RegionBlackoutConverges) {
  const auto inst = wcds::testing::connected_udg(100, 9.0, 3);
  fault::Plan plan = fault::Plan::lossy(0.1, 21);
  const std::size_t covered = plan.blackout_region(
      inst.points, inst.points[inst.g.node_count() / 2], 1.0, 10, 60);
  ASSERT_GE(covered, 1u);
  const auto run = protocols::run_algorithm2(
      inst.g, sim::DelayModel::unit(), nullptr, sim::QueuePolicy::kFlat,
      &plan);
  EXPECT_TRUE(run.stats.quiescent);
  expect_audit_clean(inst.g, run.wcds);
}

TEST(FaultConvergence, FacadeRunsFaultPlans) {
  const auto inst = wcds::testing::connected_udg(60, 8.0, 7);
  const fault::Plan plan = fault::Plan::chaos(0.15, 0.05, 2, 7);
  for (const auto algorithm : {core::BuildAlgorithm::kAlgorithm1Protocol,
                               core::BuildAlgorithm::kAlgorithm2Protocol}) {
    SCOPED_TRACE(core::to_string(algorithm));
    core::BuildOptions options;
    options.algorithm = algorithm;
    options.faults = &plan;
    const auto report = core::build(inst.g, options);
    EXPECT_TRUE(report.stats.quiescent);
    expect_audit_clean(inst.g, report.result);
  }
}

// --- Metrics ----------------------------------------------------------------

TEST(FaultMetrics, InjectorAndTransportCountersReachTheRecorder) {
  const auto inst = wcds::testing::connected_udg(60, 8.0, 9);
  const fault::Plan plan = fault::Plan::chaos(0.2, 0.05, 2, 9);
  obs::Recorder recorder;
  const auto run = protocols::run_algorithm2(
      inst.g, sim::DelayModel::unit(), &recorder, sim::QueuePolicy::kFlat,
      &plan);
  EXPECT_TRUE(run.stats.quiescent);
  const auto snapshot = recorder.snapshot();
  ASSERT_TRUE(snapshot.counters.contains("fault/dropped"));
  EXPECT_GT(snapshot.counters.at("fault/dropped"), 0u);
  ASSERT_TRUE(snapshot.counters.contains("fault/frames"));
  EXPECT_GT(snapshot.counters.at("fault/frames"), 0u);
  ASSERT_TRUE(snapshot.counters.contains("fault/retransmits"));
  EXPECT_GT(snapshot.counters.at("fault/retransmits"), 0u);
  ASSERT_TRUE(snapshot.counters.contains("fault/acks"));
  EXPECT_GT(snapshot.counters.at("fault/acks"), 0u);
}

// --- Crash schedules over the maintained backbone ---------------------------

TEST(FaultSchedule, CrashRecoverKeepsBackboneAuditClean) {
  maintenance::DynamicWcds dyn(geom::uniform_square(
      120, geom::side_for_expected_degree(120, 10.0), 17));
  ASSERT_TRUE(dyn.audit().ok());
  obs::Recorder recorder;
  const std::vector<NodeId> victims = {3, 40, 77, 111};
  const auto report = maintenance::run_crash_schedule(dyn, victims, &recorder);
  ASSERT_EQ(report.outcomes.size(), victims.size());
  EXPECT_TRUE(dyn.audit().ok());
  EXPECT_GE(report.total_repair_ms, 0.0);
  const auto snapshot = recorder.snapshot();
  ASSERT_TRUE(snapshot.histograms.contains("fault/repair_ms"));
  EXPECT_EQ(snapshot.histograms.at("fault/repair_ms").count,
            2 * victims.size());
  // The liveness watchdog finds nothing to do on a healthy structure.
  const auto watchdog_report = dyn.watchdog();
  EXPECT_EQ(watchdog_report.demoted, 0u);
  EXPECT_EQ(watchdog_report.promoted, 0u);
  EXPECT_EQ(watchdog_report.region_size, 0u);
}

// --- Nightly soak (WCDS_SOAK=1) ---------------------------------------------

// Wide seed x loss-rate sweep for the scheduled CI job.  Skipped in the
// regular suite; under WCDS_SOAK=1 any failing combination is appended to a
// reproducer file (WCDS_SOAK_OUT, default fault_soak_failures.txt) that the
// nightly workflow uploads as an artifact.
TEST(FaultSoak, SeedSweep) {
  if (std::getenv("WCDS_SOAK") == nullptr) {
    GTEST_SKIP() << "set WCDS_SOAK=1 to run the extended fault sweep";
  }
  const char* out_env = std::getenv("WCDS_SOAK_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "fault_soak_failures.txt";
  std::vector<std::string> failures;

  for (const double drop : {0.1, 0.2, 0.3}) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const auto inst = wcds::testing::connected_udg(70, 8.0, seed);
      fault::Plan plan = fault::Plan::chaos(drop, 0.05, 3, seed);
      const auto n = static_cast<NodeId>(inst.g.node_count());
      plan.crash(static_cast<NodeId>(seed % n), 5, 50);
      for (const bool alg1 : {true, false}) {
        const auto tag = std::string("alg") + (alg1 ? "1" : "2") +
                         " drop=" + std::to_string(drop) +
                         " seed=" + std::to_string(seed);
        try {
          const auto stats =
              alg1 ? protocols::run_algorithm1(inst.g, sim::DelayModel::unit(),
                                               nullptr,
                                               sim::QueuePolicy::kFlat, &plan)
                         .stats
                   : protocols::run_algorithm2(inst.g, sim::DelayModel::unit(),
                                               nullptr,
                                               sim::QueuePolicy::kFlat, &plan)
                         .stats;
          if (!stats.quiescent) failures.push_back(tag + " (not quiescent)");
        } catch (const std::exception& e) {
          failures.push_back(tag + " (" + e.what() + ")");
        }
      }
    }
  }

  if (!failures.empty()) {
    std::ofstream out(out_path);
    for (const auto& line : failures) out << line << "\n";
  }
  EXPECT_TRUE(failures.empty())
      << failures.size() << " failing combinations written to " << out_path;
}

// --- Scaled nightly soak (WCDS_SCALED_SOAK=1) --------------------------------

// Mobility x loss x crash matrix over a 16-cluster fleet at n >= 10^4,
// executed with the component-sharded runner — the scaled companion of
// FaultSoak.SeedSweep.  One matrix cell per job when WCDS_SCALED_SOAK_CELL
// is set (the nightly workflow fans the cells out), all cells otherwise.
// Failing combinations (with their reproducer seeds) are appended to
// WCDS_SCALED_SOAK_OUT for the artifact upload.
TEST(ScaledSoak, FleetMatrix) {
  if (std::getenv("WCDS_SCALED_SOAK") == nullptr) {
    GTEST_SKIP() << "set WCDS_SCALED_SOAK=1 to run the scaled fleet sweep";
  }
  const char* out_env = std::getenv("WCDS_SCALED_SOAK_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "scaled_soak_failures.txt";

  struct Cell {
    double jitter;   // mobility: per-node uniform displacement before build
    double drop;     // loss rate
    NodeId crashes;  // crash/recover windows sprinkled over the fleet
  };
  std::vector<Cell> cells;
  for (const double jitter : {0.0, 0.05}) {
    for (const double drop : {0.1, 0.3}) {
      for (const NodeId crashes : {NodeId{0}, NodeId{8}}) {
        cells.push_back({jitter, drop, crashes});
      }
    }
  }
  const char* cell_env = std::getenv("WCDS_SCALED_SOAK_CELL");
  if (cell_env != nullptr) {
    const std::size_t index = std::stoul(cell_env);
    ASSERT_LT(index, cells.size()) << "WCDS_SCALED_SOAK_CELL out of range";
    cells = {cells[index]};
  }

  constexpr std::size_t kClusters = 16;
  constexpr std::uint32_t kPerCluster = 640;  // 16 x 640 = 10240 nodes
  std::vector<std::string> failures;
  for (const Cell& cell : cells) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      // The A8 fleet shape: clusters separated far beyond the unit radius,
      // node ids interleaved round-robin so components are non-contiguous
      // in id space.  Mobility is a pre-build position jitter: each node
      // drifts by up to `jitter` in x and y from its seeded deployment.
      std::vector<std::vector<geom::Point>> parts(kClusters);
      geom::Xoshiro256ss drift(0xA950AC00 + seed);
      for (std::size_t i = 0; i < kClusters; ++i) {
        auto part =
            wcds::testing::connected_udg(kPerCluster, 10.0, seed + 101 * i);
        for (auto& p : part.points) {
          p.x += 1000.0 * static_cast<double>(i) +
                 drift.next_double(-cell.jitter, cell.jitter);
          p.y += drift.next_double(-cell.jitter, cell.jitter);
        }
        parts[i] = std::move(part.points);
      }
      std::vector<geom::Point> points;
      for (std::uint32_t j = 0; j < kPerCluster; ++j) {
        for (std::size_t i = 0; i < kClusters; ++i) {
          points.push_back(parts[i][j]);
        }
      }
      const auto g = udg::build_udg(points);
      const auto n = static_cast<NodeId>(g.node_count());

      fault::Plan plan = fault::Plan::chaos(cell.drop, 0.05, 3, seed);
      for (NodeId c = 0; c < cell.crashes; ++c) {
        plan.crash(static_cast<NodeId>(((c + 1) * n) / 11 % n), 5, 50);
      }

      const auto tag = "jitter=" + std::to_string(cell.jitter) +
                       " drop=" + std::to_string(cell.drop) +
                       " crashes=" + std::to_string(cell.crashes) +
                       " seed=" + std::to_string(seed);
      for (const bool alg1 : {true, false}) {
        const auto arm = std::string("alg") + (alg1 ? "1" : "2") + " " + tag;
        try {
          const auto stats =
              alg1 ? protocols::run_algorithm1(
                         g, sim::DelayModel::unit(), nullptr,
                         sim::QueuePolicy::kFlat, &plan,
                         sim::ExecutionPolicy::kComponentSharded)
                         .stats
                   : protocols::run_algorithm2(
                         g, sim::DelayModel::unit(), nullptr,
                         sim::QueuePolicy::kFlat, &plan,
                         sim::ExecutionPolicy::kComponentSharded)
                         .stats;
          if (!stats.quiescent) failures.push_back(arm + " (not quiescent)");
        } catch (const std::exception& e) {
          failures.push_back(arm + " (" + e.what() + ")");
        }
      }

      // The resilient arm A9 relies on: a fault-free sharded (2,2) build
      // over the same fleet must absorb the cell's crash set with zero
      // repair.
      try {
        core::BuildOptions options;
        options.algorithm = core::BuildAlgorithm::kAlgorithm2Protocol;
        options.resilience = core::ResilienceSpec{2, 2};
        const auto report = core::build(g, options);
        std::vector<NodeId> victims;
        for (NodeId c = 0; c < std::max(cell.crashes, NodeId{4}); ++c) {
          victims.push_back(static_cast<NodeId>(((c + 1) * n) / 11 % n));
        }
        const auto survival =
            maintenance::run_survival_schedule(g, report.result, victims);
        if (!survival.all_survived()) {
          failures.push_back("resilient " + tag + " (" +
                             std::to_string(survival.failed.size()) +
                             " crashes broke the (2,2) backbone)");
        }
      } catch (const std::exception& e) {
        failures.push_back("resilient " + tag + " (" + e.what() + ")");
      }
    }
  }

  if (!failures.empty()) {
    std::ofstream out(out_path, std::ios::app);
    for (const auto& line : failures) out << line << "\n";
  }
  EXPECT_TRUE(failures.empty())
      << failures.size() << " failing combinations written to " << out_path;
}

}  // namespace
