// Differential suite for the sim's two event-queue implementations
// (docs/PERFORMANCE.md).
//
// The flat queue (pooled payloads + calendar/heap) must be observationally
// identical to the reference std::map queue it replaced: the same delivery
// sequence — every trace event's (kind, time, src, dst, type, queue depth) —
// the same RunStats, and the same WCDS, across both algorithms, both delay
// regimes and many seeds.  A counting-allocator test then pins down the
// point of the exercise: the flat broadcast path performs no per-delivery
// heap allocation.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "facade/build.h"
#include "graph/graph.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "sim/runtime.h"
#include "test_util.h"

// --- Counting global allocator -------------------------------------------
//
// Replacing the global operator new/delete in this TU lets one test count
// exactly how many heap allocations Runtime::run performs.  Counting is
// gated on a flag so the rest of the suite (and gtest itself) is unaffected.

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

// --------------------------------------------------------------------------

namespace {

using namespace wcds;

struct TracedRun {
  sim::RunStats stats;
  std::vector<obs::TraceEvent> events;
  std::vector<NodeId> dominators;
};

TracedRun traced_run(const graph::Graph& g, bool alg1,
                     const sim::DelayModel& delays, sim::QueuePolicy queue) {
  obs::Recorder recorder;
  obs::MemoryTraceSink sink;
  recorder.set_trace_sink(&sink);
  TracedRun out;
  if (alg1) {
    auto run = protocols::run_algorithm1(g, delays, &recorder, queue);
    out.stats = run.stats;
    out.dominators = run.wcds.dominators;
  } else {
    auto run = protocols::run_algorithm2(g, delays, &recorder, queue);
    out.stats = run.stats;
    out.dominators = run.wcds.dominators;
  }
  out.events = sink.events();
  return out;
}

void expect_same_trace(const TracedRun& flat, const TracedRun& map) {
  ASSERT_EQ(flat.events.size(), map.events.size());
  for (std::size_t i = 0; i < flat.events.size(); ++i) {
    const obs::TraceEvent& a = flat.events[i];
    const obs::TraceEvent& b = map.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.time, b.time) << "event " << i;
    ASSERT_EQ(a.src, b.src) << "event " << i;
    ASSERT_EQ(a.dst, b.dst) << "event " << i;
    ASSERT_EQ(a.message_type, b.message_type) << "event " << i;
    ASSERT_EQ(a.queue_depth, b.queue_depth) << "event " << i;
  }
  EXPECT_EQ(flat.stats, map.stats);
  EXPECT_EQ(flat.dominators, map.dominators);
}

TEST(RuntimeQueueDifferential, FlatMatchesReferenceMapAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inst = wcds::testing::connected_udg(150, 8.0, seed);
    for (const bool alg1 : {true, false}) {
      for (const bool async : {false, true}) {
        const auto delays = async ? sim::DelayModel::uniform(1, 5, seed)
                                  : sim::DelayModel::unit();
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " alg1=" << alg1
                     << " async=" << async);
        const auto flat =
            traced_run(inst.g, alg1, delays, sim::QueuePolicy::kFlat);
        const auto map =
            traced_run(inst.g, alg1, delays, sim::QueuePolicy::kReferenceMap);
        expect_same_trace(flat, map);
        EXPECT_TRUE(flat.stats.quiescent);
      }
    }
  }
}

// All four facade build modes honor BuildOptions::queue_policy and yield the
// same WCDS under either queue (central modes trivially — the sim never
// runs; protocol modes are where the policies must agree).
TEST(RuntimeQueueDifferential, FacadeModesAgreeAcrossQueuePolicies) {
  const auto inst = wcds::testing::connected_udg(120, 8.0, 3);
  for (const auto algorithm :
       {core::BuildAlgorithm::kAlgorithm1Central,
        core::BuildAlgorithm::kAlgorithm2Central,
        core::BuildAlgorithm::kAlgorithm1Protocol,
        core::BuildAlgorithm::kAlgorithm2Protocol}) {
    SCOPED_TRACE(core::to_string(algorithm));
    core::BuildOptions options;
    options.algorithm = algorithm;
    options.queue_policy = sim::QueuePolicy::kFlat;
    const auto flat = core::build(inst.g, options);
    options.queue_policy = sim::QueuePolicy::kReferenceMap;
    const auto map = core::build(inst.g, options);
    EXPECT_EQ(flat.result.dominators, map.result.dominators);
    EXPECT_EQ(flat.stats, map.stats);
  }
}

// A protocol that floods forever: every node broadcasts on start; every
// delivery triggers one more broadcast.  Used to trip the event budget and
// to count allocations on the broadcast hot path.
class ChatterNode final : public sim::ProtocolNode {
 public:
  void on_start(sim::Context& ctx) override { ctx.broadcast(1); }
  void on_receive(sim::Context& ctx, const sim::Message&) override {
    ctx.broadcast(1);
  }
};

TEST(RuntimeQueue, BudgetTripStillFoldsStatsAndRecordsQuiescentGauge) {
  const graph::Graph g = graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  for (const auto policy :
       {sim::QueuePolicy::kFlat, sim::QueuePolicy::kReferenceMap}) {
    obs::Recorder recorder;
    sim::Runtime rt(
        g, [](NodeId) { return std::make_unique<ChatterNode>(); },
        sim::DelayModel::unit(), &recorder, policy);
    const auto stats = rt.run(/*max_events=*/100);
    EXPECT_FALSE(stats.quiescent);
    EXPECT_EQ(stats.deliveries, 100u);
    // The budget-tripped run still folds the dense counters into per_type
    // and the metrics into the recorder (the pre-fix code skipped both).
    ASSERT_TRUE(stats.per_type.contains(1));
    EXPECT_GT(stats.per_type.at(1), 0u);
    const auto snapshot = recorder.snapshot();
    ASSERT_TRUE(snapshot.gauges.contains("sim/quiescent"));
    EXPECT_EQ(snapshot.gauges.at("sim/quiescent"), 0.0);
    EXPECT_EQ(snapshot.counters.at("sim/transmissions"),
              stats.transmissions);
  }
}

TEST(RuntimeQueue, QuiescentRunRecordsGaugeOne) {
  const auto inst = wcds::testing::connected_udg(40, 8.0, 1);
  obs::Recorder recorder;
  const auto run = protocols::run_algorithm2(inst.g, sim::DelayModel::unit(),
                                             &recorder);
  EXPECT_TRUE(run.stats.quiescent);
  const auto snapshot = recorder.snapshot();
  ASSERT_TRUE(snapshot.gauges.contains("sim/quiescent"));
  EXPECT_EQ(snapshot.gauges.at("sim/quiescent"), 1.0);
}

// The point of the pooled flat queue: a degree-d broadcast enqueues d POD
// records sharing one interned payload, so a full run performs only the
// amortized container growth — far fewer allocations than deliveries.  The
// reference map allocates at least one tree node per delivery.
TEST(RuntimeQueue, BroadcastPathAllocationCount) {
  // Star K_{1,512}: the hub's single broadcast fans out to 512 recipients.
  constexpr std::uint32_t kLeaves = 512;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(kLeaves);
  for (NodeId leaf = 1; leaf <= kLeaves; ++leaf) edges.push_back({0, leaf});
  const graph::Graph g = graph::from_edges(kLeaves + 1, edges);

  // Every node broadcasts once on start; nobody replies.  Deliveries:
  // 512 (hub's broadcast) + 512 (each leaf's broadcast reaching the hub).
  class OneShotNode final : public sim::ProtocolNode {
   public:
    void on_start(sim::Context& ctx) override { ctx.broadcast(1); }
    void on_receive(sim::Context&, const sim::Message&) override {}
  };

  auto count_allocs = [&](sim::QueuePolicy policy) {
    sim::Runtime rt(
        g, [](NodeId) { return std::make_unique<OneShotNode>(); },
        sim::DelayModel::unit(), nullptr, policy);
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    const auto stats = rt.run();
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(stats.deliveries, 2u * kLeaves);
    return g_alloc_count.load(std::memory_order_relaxed);
  };

  const std::uint64_t flat_allocs = count_allocs(sim::QueuePolicy::kFlat);
  const std::uint64_t map_allocs =
      count_allocs(sim::QueuePolicy::kReferenceMap);
  // Flat: pool-deque blocks, calendar-bucket doublings, the per-type vector —
  // all amortized, orders of magnitude below the 1024 deliveries.
  EXPECT_LT(flat_allocs, 100u);
  // Reference map: >= one node allocation per pending delivery.
  EXPECT_GT(map_allocs, 1000u);
}

}  // namespace
