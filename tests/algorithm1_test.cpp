// Centralized Algorithm I: level-ranked MIS is a WCDS with ratio 5.
#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "graph/bfs.h"
#include "mis/mis.h"
#include "mis/properties.h"
#include "test_util.h"
#include "wcds/algorithm1.h"
#include "wcds/verify.h"

namespace wcds::core {
namespace {

TEST(Algorithm1, RejectsEmptyAndDisconnected) {
  graph::GraphBuilder empty(0);
  EXPECT_THROW(algorithm1(std::move(empty).build()), std::invalid_argument);
  const auto g = graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(algorithm1(g), std::invalid_argument);
}

TEST(Algorithm1, RootOutOfRangeThrows) {
  const auto g = graph::from_edges(2, {{0, 1}});
  Algorithm1Options options;
  options.root = 7;
  EXPECT_THROW(algorithm1(g, options), std::out_of_range);
}

TEST(Algorithm1, SingleNode) {
  graph::GraphBuilder b(1);
  const auto r = algorithm1(std::move(b).build());
  EXPECT_EQ(r.dominators, std::vector<NodeId>{0});
}

TEST(Algorithm1, PathGraphFromEnd) {
  // Path 0-1-2-3-4 rooted at 0: levels = ids; level-ranked greedy MIS is
  // {0, 2, 4}.
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto r = algorithm1(g);
  EXPECT_EQ(r.dominators, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(audit_result(g, r));
}

TEST(Algorithm1, RootSelectionChangesResult) {
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Algorithm1Options options;
  options.root = 2;
  const auto r = algorithm1(g, options);
  // Root 2 has rank (0,2): picked first; then 0 and 4 at level 2.
  EXPECT_EQ(r.dominators, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(audit_result(g, r));
}

TEST(Algorithm1, Figure2StyleGraph) {
  const auto g = testing::figure2_graph();
  const auto r = algorithm1(g);
  EXPECT_TRUE(is_wcds(g, r.mask));
}

// Theorem 5: the result is always a WCDS; Theorem 4: its MIS has 2-hop
// complementary-subset distance.
class Algorithm1Sweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(Algorithm1Sweep, ProducesWcdsWithTwoHopSubsets) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(300, degree, seed);
  const auto r = algorithm1(inst.g);
  EXPECT_TRUE(audit_result(inst.g, r));
  // The dominators form an MIS...
  EXPECT_TRUE(mis::is_maximal_independent_set(inst.g, r.mask));
  // ...whose complementary subsets are exactly two hops apart (Theorem 4).
  mis::MisResult as_mis;
  as_mis.members = r.dominators;
  as_mis.mask = r.mask;
  EXPECT_LE(mis::max_complementary_subset_distance(inst.g, as_mis), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    DegreeSeed, Algorithm1Sweep,
    ::testing::Combine(::testing::Values(6.0, 10.0, 18.0),
                       ::testing::Values(1u, 2u, 3u)));

// The paper's "arbitrary spanning tree": a DFS tree must give the same
// guarantees — valid WCDS, MIS, and 2-hop complementary-subset separation
// (Theorems 4/5 only use that levels are tree distances).
class Algorithm1DfsSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(Algorithm1DfsSweep, DfsTreeAlsoYieldsTwoHopWcds) {
  const auto [degree, seed] = GetParam();
  const auto inst = testing::connected_udg(250, degree, seed);
  Algorithm1Options options;
  options.tree = Algorithm1Options::Tree::kDfs;
  const auto r = algorithm1(inst.g, options);
  EXPECT_TRUE(audit_result(inst.g, r));
  EXPECT_TRUE(mis::is_maximal_independent_set(inst.g, r.mask));
  mis::MisResult as_mis;
  as_mis.members = r.dominators;
  as_mis.mask = r.mask;
  EXPECT_LE(mis::max_complementary_subset_distance(inst.g, as_mis), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    DegreeSeed, Algorithm1DfsSweep,
    ::testing::Combine(::testing::Values(7.0, 14.0),
                       ::testing::Values(1u, 2u, 3u)));

// Theorem 8's accounting: every black edge joins a gray node to one of its
// <= 5 MIS neighbors, so |E'| <= 5 * #gray.
TEST(Algorithm1, Theorem8EdgeAccountingBound) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = testing::connected_udg(300, 15.0, seed);
    const auto r = algorithm1(inst.g);
    const auto spanner = extract_spanner(inst.g, r);
    const std::size_t gray = inst.g.node_count() - r.size();
    EXPECT_LE(spanner.edge_count(), 5 * gray) << seed;
  }
}

// Lemma 7: |WCDS| <= 5 opt, checked against the exact optimum on small
// instances.
TEST(Algorithm1, WithinFiveTimesOptimum) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = testing::connected_udg(18, 5.0, seed);
    const auto r = algorithm1(inst.g);
    const auto exact = baselines::exact_min_wcds(inst.g);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(exact->proven_optimal);
    EXPECT_LE(r.size(), 5 * exact->members.size())
        << "seed " << seed << ": |alg1|=" << r.size()
        << " opt=" << exact->members.size();
  }
}

// Lemma 7's UDG lower bound is consistent: |MIS| <= 5 opt.
TEST(Algorithm1, MisLowerBoundConsistent) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = testing::connected_udg(16, 5.0, seed);
    const auto r = algorithm1(inst.g);
    const auto exact = baselines::exact_min_wcds(inst.g);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(exact->members.size(),
              baselines::udg_mwcds_lower_bound(r.size()));
  }
}

}  // namespace
}  // namespace wcds::core
