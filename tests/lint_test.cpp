// wcds_lint engine tests: the lexer's channel separation, every rule firing
// on a seeded violation with the exact rule id and line, and every rule
// honoring a `wcds-lint: allow(...)` suppression.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace wcds::lint {
namespace {

std::vector<Diagnostic> lint_one(const std::string& path,
                                 const std::string& content,
                                 Config config = {}) {
  Linter linter(std::move(config));
  linter.add_file(path, content);
  return linter.run();
}

bool has(const std::vector<Diagnostic>& diags, const std::string& rule,
         int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line;
  });
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, BlanksCommentsInCodeChannel) {
  const SourceFile file =
      annotate_source("src/a.cpp", "int x; // assert(x) in prose\n");
  ASSERT_EQ(file.code.size(), 1u);
  EXPECT_EQ(file.code[0].find("assert"), std::string::npos);
  EXPECT_NE(file.raw[0].find("assert"), std::string::npos);
  // Channels stay column-aligned.
  EXPECT_EQ(file.code[0].size(), file.raw[0].size());
  EXPECT_EQ(file.pure[0].size(), file.raw[0].size());
}

TEST(LintLexer, BlanksStringContentsOnlyInPureChannel) {
  const SourceFile file =
      annotate_source("src/a.cpp", "auto s = \"assert(47)\";\n");
  EXPECT_NE(file.code[0].find("assert(47)"), std::string::npos);
  EXPECT_EQ(file.pure[0].find("assert"), std::string::npos);
  EXPECT_EQ(file.pure[0].find("47"), std::string::npos);
}

TEST(LintLexer, MultiLineBlockCommentBlanked) {
  const SourceFile file =
      annotate_source("src/a.cpp", "/* new\n   std::map */ int y;\n");
  EXPECT_EQ(file.pure[0].find("new"), std::string::npos);
  EXPECT_EQ(file.pure[1].find("std::map"), std::string::npos);
  EXPECT_NE(file.pure[1].find("int y;"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  // If the ' opened a char literal, the rest of the line would be blanked
  // out of the pure channel.
  const SourceFile file =
      annotate_source("src/a.cpp", "auto n = 100'000; int z = 1;\n");
  EXPECT_NE(file.pure[0].find("int z = 1;"), std::string::npos);
}

TEST(LintLexer, ParsesSuppressionsPerLine) {
  const SourceFile file = annotate_source(
      "src/a.cpp",
      "int a;  // wcds-lint: allow(rule-a, rule-b)\n"
      "// wcds-lint: allow(rule-c)\n"
      "int b;\n");
  ASSERT_EQ(file.allowed.size(), 3u);
  EXPECT_EQ(file.allowed[0].count("rule-a"), 1u);
  EXPECT_EQ(file.allowed[0].count("rule-b"), 1u);
  // A comment-only line covers the next line too.
  EXPECT_EQ(file.allowed[1].count("rule-c"), 1u);
  EXPECT_EQ(file.allowed[2].count("rule-c"), 1u);
  EXPECT_EQ(file.allowed[2].count("rule-a"), 0u);
}

// ---------------------------------------------------------------------------
// no-bare-assert

TEST(LintRules, NoBareAssertFires) {
  const auto diags = lint_one("src/a.cpp",
                              "#include <cassert>\n"
                              "void f(int x) {\n"
                              "  assert(x > 0);\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-bare-assert", 3));
}

TEST(LintRules, NoBareAssertIgnoresCommentsStringsAndOtherTrees) {
  EXPECT_TRUE(lint_one("src/a.cpp", "// assert(x)\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "auto s = \"assert(x)\";\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "int my_assert_count = 0;\n").empty());
  // Only src/ must route through the contract macros.
  EXPECT_TRUE(lint_one("bench/a.cpp", "void f() { assert(1); }\n").empty());
}

TEST(LintRules, NoBareAssertSuppressed) {
  const auto diags = lint_one(
      "src/a.cpp", "void f() { std::abort(); }  // wcds-lint: allow(no-bare-assert)\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// paper-constant

TEST(LintRules, PaperConstantFires) {
  const auto diags = lint_one("src/wcds/a.cpp",
                              "int bound(int mis) {\n"
                              "  return 47 * mis;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "paper-constant", 2));
}

TEST(LintRules, PaperConstantSkipsNonMatchingLiterals) {
  // 470, 4.7, 0x47-as-word, 5u-suffix boundary handling: none of these are
  // the bare packing literals.
  const auto diags = lint_one("src/a.cpp",
                              "int a = 470;\n"
                              "double b = 4.7;\n"
                              "double c = 23.5;\n"
                              "int d = 247;\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, PaperConstantExemptFilesAndSuppression) {
  EXPECT_TRUE(
      lint_one("src/check/audit.h", "#pragma once\nint k = 47;\n").empty());
  EXPECT_TRUE(
      lint_one("src/a.cpp", "int k = 47;  // wcds-lint: allow(paper-constant)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// hot-path-alloc

TEST(LintRules, HotPathAllocFires) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  const auto diags = lint_one("src/sim/hot.cpp",
                              "#include <map>\n"
                              "std::map<int, int> m;\n"
                              "int* p = new int;\n",
                              config);
  EXPECT_TRUE(has(diags, "hot-path-alloc", 2));
  EXPECT_TRUE(has(diags, "hot-path-alloc", 3));
}

TEST(LintRules, HotPathAllocOnlyGuardsListedFiles) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  EXPECT_TRUE(
      lint_one("src/sim/cold.cpp", "std::map<int, int> m;\n", config).empty());
}

TEST(LintRules, HotPathAllocSuppressed) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  const auto diags = lint_one(
      "src/sim/hot.cpp",
      "std::map<int, int> m;  // wcds-lint: allow(hot-path-alloc)\n", config);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// message-type-registry

TEST(LintRules, MessageTypeRegistryFires) {
  const auto diags = lint_one("src/protocols/p.h",
                              "enum DemoMessageType : sim::MessageType {\n"
                              "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                              "  kMsgPong = 2,\n"
                              "};\n"
                              "const char* demo_message_name(sim::MessageType t) {\n"
                              "  switch (t) {\n"
                              "    case kMsgPing: return \"PING\";\n"
                              "    default: return \"?\";\n"
                              "  }\n"
                              "}\n");
  // kMsgPing has a trace-name entry; kMsgPong does not.
  EXPECT_FALSE(has(diags, "message-type-registry", 2));
  EXPECT_TRUE(has(diags, "message-type-registry", 3));
}

TEST(LintRules, MessageTypeRegistrySeesCrossFileCases) {
  Linter linter;
  linter.add_file("src/protocols/p.h",
                  "#pragma once\n"
                  "enum DemoMessageType : sim::MessageType {\n"
                  "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                  "};\n");
  linter.add_file("src/protocols/p.cpp",
                  "const char* demo_message_name(sim::MessageType t) {\n"
                  "  switch (t) {\n"
                  "    case kMsgPing:\n"
                  "      return \"PING\";\n"
                  "    default: return \"?\";\n"
                  "  }\n"
                  "}\n");
  EXPECT_TRUE(linter.run().empty());
}

TEST(LintRules, MessageTypeRegistrySuppressed) {
  const auto diags =
      lint_one("src/protocols/p.h",
               "#pragma once\n"
               "enum DemoMessageType : sim::MessageType {\n"
               "  kMsgSecret = 9,  // wcds-lint: allow(message-type-registry)\n"
               "};\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// metric-doc-sync

TEST(LintRules, MetricDocSyncFires) {
  Config config;
  config.observability_doc = "Registry: `demo/documented` only.\n";
  const auto diags = lint_one("src/wcds/a.cpp",
                              "void f(obs::Recorder* r) {\n"
                              "  r->metrics().add(\"demo/documented\", 1);\n"
                              "  r->metrics().add(\"demo/missing\", 1);\n"
                              "}\n",
                              config);
  EXPECT_FALSE(has(diags, "metric-doc-sync", 2));
  EXPECT_TRUE(has(diags, "metric-doc-sync", 3));
}

TEST(LintRules, MetricDocSyncPlaceholderFamilyAndPhaseTimer) {
  Config config;
  config.observability_doc =
      "Families: `demo/per_type/<k>` and `phase_ms/<phase>`.\n";
  const auto diags =
      lint_one("src/wcds/a.cpp",
               "void f(obs::Recorder* r) {\n"
               "  r->metrics().add(\"demo/per_type/3\", 1);\n"
               "  obs::PhaseTimer timer(r, \"demo/total\");\n"
               "}\n",
               config);
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, MetricDocSyncSuppressedAndDisabledWithoutDoc) {
  Config config;
  config.observability_doc = "nothing documented\n";
  const auto diags = lint_one(
      "src/wcds/a.cpp",
      "void f(obs::Recorder* r) {\n"
      "  r->metrics().add(\"demo/adhoc\", 1);  // wcds-lint: allow(metric-doc-sync)\n"
      "}\n",
      config);
  EXPECT_TRUE(diags.empty());
  // An empty doc (partial checkout) disables the rule entirely.
  Config no_doc;
  no_doc.observability_doc.clear();
  EXPECT_TRUE(lint_one("src/wcds/a.cpp",
                       "void f(obs::Recorder* r) {\n"
                       "  r->metrics().add(\"demo/adhoc\", 1);\n"
                       "}\n",
                       no_doc)
                  .empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(LintRules, PragmaOnceMissingFires) {
  const auto diags = lint_one("src/a.h", "// header comment\nint x;\n");
  EXPECT_TRUE(has(diags, "pragma-once", 2));
}

TEST(LintRules, PragmaOnceDuplicateAndMisplacedFire) {
  EXPECT_TRUE(has(
      lint_one("src/a.h", "#pragma once\nint x;\n#pragma once\n"),
      "pragma-once", 3));
  EXPECT_TRUE(has(lint_one("src/a.h", "int x;\n#pragma once\n"),
                  "pragma-once", 2));
}

TEST(LintRules, PragmaOnceCleanHeaderAndNonHeaders) {
  EXPECT_TRUE(
      lint_one("src/a.h", "// doc\n#pragma once\nint x;\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "int x;\n").empty());
}

TEST(LintRules, PragmaOnceSuppressed) {
  const auto diags = lint_one(
      "src/a.h", "// wcds-lint: allow(pragma-once)\nint x;\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// include-hygiene

TEST(LintRules, IncludeHygieneFires) {
  const auto diags = lint_one("src/a.cpp",
                              "#include \"../geom/rng.h\"\n"
                              "#include <bits/stdc++.h>\n"
                              "#include \"geom/rng.h\"\n");
  EXPECT_TRUE(has(diags, "include-hygiene", 1));
  EXPECT_TRUE(has(diags, "include-hygiene", 2));
  EXPECT_FALSE(has(diags, "include-hygiene", 3));
}

TEST(LintRules, IncludeHygieneSuppressed) {
  const auto diags = lint_one(
      "src/a.cpp",
      "#include \"../geom/rng.h\"  // wcds-lint: allow(include-hygiene)\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// no-unordered-iteration

TEST(LintRules, NoUnorderedIterationRangeForFires) {
  const auto diags = lint_one("src/sim/a.cpp",
                              "#include <unordered_map>\n"
                              "std::unordered_map<int, int> table;\n"
                              "int sum() {\n"
                              "  int s = 0;\n"
                              "  for (const auto& [k, v] : table) s += v;\n"
                              "  return s;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-unordered-iteration", 5));
}

TEST(LintRules, NoUnorderedIterationBeginWalkFires) {
  const auto diags = lint_one("src/wcds/a.cpp",
                              "#include <unordered_set>\n"
                              "std::unordered_set<long> seen;\n"
                              "long first() {\n"
                              "  return *seen.begin();\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-unordered-iteration", 4));
}

TEST(LintRules, NoUnorderedIterationSeesCrossFileMemberDecls) {
  Linter linter;
  linter.add_file("src/udg/grid.h",
                  "#pragma once\n"
                  "#include <unordered_map>\n"
                  "struct Grid {\n"
                  "  std::unordered_map<long, int> cells;\n"
                  "};\n");
  linter.add_file("src/udg/grid.cpp",
                  "#include \"udg/grid.h\"\n"
                  "int f(const Grid& g) {\n"
                  "  int s = 0;\n"
                  "  for (const auto& kv : g.cells) s += kv.second;\n"
                  "  return s;\n"
                  "}\n");
  EXPECT_TRUE(has(linter.run(), "no-unordered-iteration", 4));
}

TEST(LintRules, NoUnorderedIterationTracksLocalAliases) {
  const auto diags = lint_one("src/mis/a.cpp",
                              "#include <unordered_map>\n"
                              "using Table = std::unordered_map<int, int>;\n"
                              "Table ranks;\n"
                              "int f() {\n"
                              "  int s = 0;\n"
                              "  for (const auto& kv : ranks) s += kv.second;\n"
                              "  return s;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-unordered-iteration", 6));
}

TEST(LintRules, NoUnorderedIterationScopeAndOrderedContainersClean) {
  // io/ is not a trace-affecting module: lookups may stay unordered there.
  EXPECT_TRUE(lint_one("src/io/a.cpp",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> table;\n"
                       "int f() {\n"
                       "  int s = 0;\n"
                       "  for (const auto& [k, v] : table) s += v;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Iterating an ordered container in a trace-affecting module is fine.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <vector>\n"
                       "std::vector<int> queue_ids;\n"
                       "int f() {\n"
                       "  int s = 0;\n"
                       "  for (int id : queue_ids) s += id;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Point lookups into an unordered map are fine; only iteration leaks.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> table;\n"
                       "int f(int k) { return table.at(k); }\n")
                  .empty());
}

TEST(LintRules, NoUnorderedIterationSuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> table;\n"
                       "int f() {\n"
                       "  int s = 0;\n"
                       "  // wcds-lint: allow(no-unordered-iteration)\n"
                       "  for (const auto& [k, v] : table) s += v;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Comments and strings never produce iteration events.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "// for (const auto& kv : table)\n"
                       "auto s = \"std::unordered_map<int, int> table;\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// no-pointer-order

TEST(LintRules, NoPointerOrderKeyedContainersFire) {
  const auto diags = lint_one("src/mis/a.cpp",
                              "#include <set>\n"
                              "struct Node;\n"
                              "std::set<Node*> frontier;\n");
  EXPECT_TRUE(has(diags, "no-pointer-order", 3));
}

TEST(LintRules, NoPointerOrderHashAndLessFire) {
  const auto diags = lint_one("src/wcds/a.h",
                              "#pragma once\n"
                              "struct Node;\n"
                              "using Order = std::less<Node*>;\n"
                              "using Hash = std::hash<const Node*>;\n");
  EXPECT_TRUE(has(diags, "no-pointer-order", 3));
  EXPECT_TRUE(has(diags, "no-pointer-order", 4));
}

TEST(LintRules, NoPointerOrderRelationalCompareFires) {
  const auto diags = lint_one("src/maintenance/a.cpp",
                              "struct Node;\n"
                              "bool before(Node* a, Node* b) {\n"
                              "  return a < b;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-pointer-order", 3));
}

TEST(LintRules, NoPointerOrderCleanCases) {
  // Value comparisons and arithmetic never match.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "int area(int width, int height) {\n"
                       "  return width * height;\n"
                       "}\n"
                       "bool less(int a, int b) { return a < b; }\n")
                  .empty());
  // Pointer *keys by stable id* are fine: only pointer-keyed ordering fires.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <set>\n"
                       "std::set<long> ids;\n")
                  .empty());
  // io/ is outside the trace-affecting scope.
  EXPECT_TRUE(lint_one("src/io/a.cpp",
                       "struct Node;\n"
                       "std::set<Node*> frontier;\n")
                  .empty());
}

TEST(LintRules, NoPointerOrderSuppressedAndLexerImmune) {
  EXPECT_TRUE(
      lint_one("src/mis/a.cpp",
               "struct Node;\n"
               "std::set<Node*> f;  // wcds-lint: allow(no-pointer-order)\n")
          .empty());
  EXPECT_TRUE(lint_one("src/mis/a.cpp",
                       "// std::set<Node*> frontier;\n"
                       "auto s = \"std::less<Node*>\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// no-ambient-entropy

TEST(LintRules, NoAmbientEntropyRandomDeviceFires) {
  const auto diags = lint_one("src/geom/seed.cpp",
                              "#include <random>\n"
                              "unsigned s() {\n"
                              "  std::random_device rd;\n"
                              "  return rd();\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 3));
}

TEST(LintRules, NoAmbientEntropyRandAndClockFire) {
  const auto diags = lint_one("src/sim/a.cpp",
                              "#include <chrono>\n"
                              "int r() { return rand(); }\n"
                              "auto t() { return std::chrono::steady_clock::now(); }\n"
                              "long w() { return time(nullptr); }\n");
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 2));
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 3));
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 4));
}

TEST(LintRules, NoAmbientEntropyBoundaryAndMembersClean) {
  // The declared clock boundary may read wall clocks.
  EXPECT_TRUE(lint_one("src/obs/recorder.cpp",
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  // Member functions named time()/clock() are not the libc calls.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "double f(const Event& e) { return e.time(); }\n"
                       "double g(const Sim* s) { return s->clock(); }\n")
                  .empty());
  // Outside the configured scope the rule is silent.
  EXPECT_TRUE(lint_one("bench/a.cpp", "int r() { return rand(); }\n").empty());
}

TEST(LintRules, NoAmbientEntropySuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "// wcds-lint: allow(no-ambient-entropy) — seed scan\n"
                       "unsigned s = std::random_device{}();\n")
                  .empty());
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "// std::random_device in prose\n"
                       "auto s = \"rand() and time()\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// layer-dag

Config layered_config() {
  Config config;
  config.module_prefixes = {{"src/low/", "low"}, {"src/high/", "high"}};
  config.modules = {{"low", {}}, {"high", {"low"}}};
  return config;
}

TEST(LintRules, LayerDagUndeclaredEdgeFires) {
  Linter linter(layered_config());
  linter.add_file("src/low/a.h",
                  "#pragma once\n"
                  "#include \"high/b.h\"\n");
  linter.add_file("src/high/b.h", "#pragma once\n");
  const auto diags = linter.run();
  EXPECT_TRUE(has(diags, "layer-dag", 2));
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags[0].message.find("'low'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("'high'"), std::string::npos);
}

TEST(LintRules, LayerDagDeclaredEdgeAndIntraModuleClean) {
  Linter linter(layered_config());
  linter.add_file("src/high/b.h",
                  "#pragma once\n"
                  "#include \"low/a.h\"\n"
                  "#include \"high/util.h\"\n");
  linter.add_file("src/low/a.h", "#pragma once\n");
  linter.add_file("src/high/util.h", "#pragma once\n");
  EXPECT_TRUE(linter.run().empty());
}

TEST(LintRules, LayerDagIncludeCycleFires) {
  Linter linter(layered_config());
  linter.add_file("src/low/a.h",
                  "#pragma once\n"
                  "#include \"low/b.h\"\n");
  linter.add_file("src/low/b.h",
                  "#pragma once\n"
                  "#include \"low/a.h\"\n");
  const auto diags = linter.run();
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "layer-dag");
  EXPECT_NE(diags[0].message.find("include cycle"), std::string::npos);
}

TEST(LintRules, LayerDagDeclaredCycleIsAConfigError) {
  Config config;
  config.module_prefixes = {{"src/low/", "low"}, {"src/high/", "high"}};
  config.modules = {{"low", {"high"}}, {"high", {"low"}}};
  Linter linter(std::move(config));
  linter.add_file("src/low/a.h", "#pragma once\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layer-dag");
  EXPECT_NE(diags[0].message.find("cycle"), std::string::npos);
}

TEST(LintRules, LayerDagSuppressedAndDisabledWithoutModules) {
  Linter linter(layered_config());
  linter.add_file("src/low/a.h",
                  "#pragma once\n"
                  "#include \"high/b.h\"  // wcds-lint: allow(layer-dag)\n");
  linter.add_file("src/high/b.h", "#pragma once\n");
  EXPECT_TRUE(linter.run().empty());
  // Config{} declares no modules: the rule is disabled entirely.
  Linter bare{Config{}};
  bare.add_file("src/low/a.h",
                "#pragma once\n"
                "#include \"high/b.h\"\n");
  bare.add_file("src/high/b.h", "#pragma once\n");
  EXPECT_TRUE(bare.run().empty());
}

TEST(LintRules, DefaultConfigDagIsAcyclicAtHead) {
  // The shipped layering must itself be a valid DAG: an empty file set
  // still runs the declared-graph acyclicity check.
  Linter linter(default_config());
  linter.add_file("src/sim/a.cpp", "int x;\n");
  EXPECT_TRUE(linter.run().empty());
}

// ---------------------------------------------------------------------------
// facade-only

TEST(LintRules, FacadeOnlyDirectCallFires) {
  const auto diags = lint_one("bench/bench_x.cpp",
                              "void table() {\n"
                              "  const auto out = core::algorithm2(g);\n"
                              "  const auto run =\n"
                              "      protocols::run_algorithm1(g, delays);\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "facade-only", 2));
  EXPECT_TRUE(has(diags, "facade-only", 4));
}

TEST(LintRules, FacadeOnlyBmBodyExempt) {
  // Inside a BM_ fixture the raw entrypoint is the thing being measured;
  // after its closing brace the exemption ends.
  const auto diags = lint_one("bench/bench_x.cpp",
                              "void BM_Build(benchmark::State& state) {\n"
                              "  for (auto _ : state) {\n"
                              "    benchmark::DoNotOptimize(core::algorithm2(g));\n"
                              "  }\n"
                              "}\n"
                              "void table() { core::algorithm2(g); }\n");
  EXPECT_FALSE(has(diags, "facade-only", 3));
  EXPECT_TRUE(has(diags, "facade-only", 6));
}

TEST(LintRules, FacadeOnlyExemptModulesAndNonCallsClean) {
  // The implementing modules may call the entrypoints directly.
  EXPECT_TRUE(lint_one("src/facade/build.cpp",
                       "auto r = core::algorithm2(g);\n", default_config())
                  .empty());
  EXPECT_TRUE(lint_one("src/protocols/driver.cpp",
                       "auto r = protocols::run_algorithm2(g, d);\n",
                       default_config())
                  .empty());
  // Mentions that are not calls: longer identifiers and non-call contexts.
  EXPECT_TRUE(lint_one("bench/bench_x.cpp",
                       "core::algorithm2_options opts;\n"
                       "int my_core::algorithm2x = 0;\n")
                  .empty());
}

TEST(LintRules, FacadeOnlySuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("bench/bench_x.cpp",
                       "void t() {\n"
                       "  // timing the raw entrypoint on purpose\n"
                       "  // wcds-lint: allow(facade-only)\n"
                       "  auto r = core::algorithm2(g);\n"
                       "}\n")
                  .empty());
  // Comment and string mentions never fire.
  EXPECT_TRUE(lint_one("bench/bench_x.cpp",
                       "// call core::algorithm2(g) via the facade instead\n"
                       "const char* kDoc = \"protocols::run_algorithm1(g)\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Engine plumbing

TEST(LintEngine, DiagnosticsSortedAndFormatted) {
  Linter linter;
  linter.add_file("src/b.h", "int x;\n");
  linter.add_file("src/a.h", "int x;\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/a.h");
  EXPECT_EQ(diags[1].file, "src/b.h");
  EXPECT_EQ(format_diagnostic(diags[0]),
            "src/a.h:1: error: [pragma-once] header is missing #pragma once");
}

TEST(LintEngine, EnabledRulesFilter) {
  Config config;
  config.enabled_rules = {"include-hygiene"};
  const auto diags =
      lint_one("src/a.h", "#include \"../x.h\"\nint x;\n", config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-hygiene");
}

TEST(LintEngine, RuleListIsStable) {
  const std::vector<std::string> expected = {
      "no-bare-assert",   "paper-constant",  "hot-path-alloc",
      "message-type-registry", "metric-doc-sync", "pragma-once",
      "include-hygiene", "no-unordered-iteration", "no-pointer-order",
      "no-ambient-entropy", "layer-dag", "facade-only"};
  ASSERT_EQ(rules().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rules()[i].name, expected[i]);
    EXPECT_FALSE(rules()[i].summary.empty());
  }
}

TEST(LintEngine, GithubFormat) {
  const Diagnostic diag{"src/a.h", 3, "pragma-once", "duplicate #pragma once"};
  EXPECT_EQ(format_diagnostic_github(diag),
            "::error file=src/a.h,line=3::[pragma-once] duplicate #pragma "
            "once");
}

// ---------------------------------------------------------------------------
// Semantic index

TEST(LintIndex, BuildsIncludeGraphAndResolvesAgainstScanSet) {
  const FileIndex file = analyze_file("src/sim/a.cpp",
                                      "#include \"sim/a.h\"\n"
                                      "#include <vector>\n"
                                      "#include \"graph/graph.h\"\n",
                                      Config{});
  ASSERT_EQ(file.includes.size(), 2u);  // system includes are not edges
  EXPECT_EQ(file.includes[0].line, 1);
  EXPECT_EQ(file.includes[0].written, "sim/a.h");
  EXPECT_EQ(file.includes[1].line, 3);
  EXPECT_EQ(file.includes[1].written, "graph/graph.h");
  // Resolution happens against the registered scan set at run() time.
  Linter linter;
  linter.add_file("src/sim/a.cpp", "#include \"sim/a.h\"\n");
  linter.add_file("src/sim/a.h", "#pragma once\n");
  (void)linter.run();
  ASSERT_EQ(linter.index().files.size(), 2u);
  const FileIndex& cpp = linter.index().files[0];
  ASSERT_EQ(cpp.includes.size(), 1u);
  EXPECT_EQ(cpp.includes[0].resolved, "src/sim/a.h");
}

TEST(LintIndex, ModuleAssignmentPrefixesAndOverrides) {
  const Config config = default_config();
  EXPECT_EQ(module_for("src/sim/runtime.cpp", config), "sim");
  EXPECT_EQ(module_for("src/maintenance/crash_schedule.cpp", config),
            "maintenance");
  // Exact overrides mirror the CMake split.
  EXPECT_EQ(module_for("src/check/check.h", config), "check");
  EXPECT_EQ(module_for("src/check/audit.h", config), "audit");
  EXPECT_EQ(module_for("src/wcds/wcds_result.h", config), "wcds_types");
  EXPECT_EQ(module_for("src/wcds/algorithm1.cpp", config), "wcds");
  EXPECT_EQ(module_for("tests/lint_test.cpp", config), "");
}

TEST(LintIndex, RecordsDeclsUsesAndAllows) {
  const FileIndex file = analyze_file(
      "src/sim/a.cpp",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;  // wcds-lint: allow(all)\n"
      "struct Node;\n"
      "void f(Node* n, Node* m) {\n"
      "  if (n < m) return;\n"
      "}\n",
      Config{});
  ASSERT_EQ(file.decls.size(), 3u);
  EXPECT_EQ(file.decls[0].kind, "unordered");
  EXPECT_EQ(file.decls[0].name, "table");
  EXPECT_EQ(file.decls[1].kind, "pointer");
  EXPECT_EQ(file.decls[1].name, "n");
  EXPECT_EQ(file.decls[2].name, "m");
  ASSERT_EQ(file.compares.size(), 1u);
  EXPECT_EQ(file.compares[0].lhs, "n");
  EXPECT_EQ(file.compares[0].rhs, "m");
  ASSERT_EQ(file.allows.size(), 1u);
  EXPECT_EQ(file.allows[0].line, 2);
}

TEST(LintIndex, SerializationRoundTripsExactly) {
  Config config = default_config();
  config.observability_doc = "`fault/repair_ms`\n";
  Linter linter(config);
  linter.add_file("src/sim/a.h",
                  "#pragma once\n"
                  "#include <unordered_map>\n"
                  "enum DemoMessageType : sim::MessageType {\n"
                  "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                  "};\n"
                  "std::unordered_map<int, int> table;\n");
  linter.add_file("src/sim/a.cpp",
                  "#include \"sim/a.h\"\n"
                  "int f() {\n"
                  "  int s = 0;\n"
                  "  for (const auto& [k, v] : table) s += v;\n"
                  "  return s;\n"
                  "}\n");
  (void)linter.run();
  const std::string text = serialize_index(linter.index());
  SemanticIndex parsed;
  ASSERT_TRUE(parse_index(text, parsed));
  EXPECT_EQ(parsed, linter.index());
  // And the round-trip is a fixed point.
  EXPECT_EQ(serialize_index(parsed), text);
}

TEST(LintIndex, ParseRejectsCorruptDocuments) {
  SemanticIndex out;
  EXPECT_FALSE(parse_index("", out));
  EXPECT_FALSE(parse_index("not-an-index\n", out));
  EXPECT_FALSE(parse_index("wcds-lint-index/v1\nbogus-tag 1\n", out));
  // A `file` record must be closed by `end`.
  EXPECT_FALSE(parse_index("wcds-lint-index/v1\nfile src/a.h\nhash 1\n", out));
  EXPECT_TRUE(parse_index(
      "wcds-lint-index/v1\nconfig 1\nfile src/a.h\nhash 1\nmodule -\nend\n",
      out));
  ASSERT_EQ(out.files.size(), 1u);
  EXPECT_EQ(out.files[0].path, "src/a.h");
}

TEST(LintIndex, CacheSkipsUnchangedFilesAndAgreesWithFreshRun) {
  Config config = default_config();
  const std::string header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n";
  const std::string source =
      "#include \"sim/a.h\"\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : table) s += v;\n"
      "  return s;\n"
      "}\n";
  Linter cold(config);
  cold.add_file("src/sim/a.h", header);
  cold.add_file("src/sim/a.cpp", source);
  const auto fresh = cold.run();
  EXPECT_EQ(cold.cache_hits(), 0u);

  // Seed a second linter with the serialized index: both files hit.
  SemanticIndex cache;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache));
  Linter warm(config);
  warm.set_cached_index(std::move(cache));
  warm.add_file("src/sim/a.h", header);
  warm.add_file("src/sim/a.cpp", source);
  EXPECT_EQ(warm.run(), fresh);
  EXPECT_EQ(warm.cache_hits(), 2u);

  // An edited file re-analyzes; the untouched one still hits.
  Linter edited(config);
  SemanticIndex cache2;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache2));
  edited.set_cached_index(std::move(cache2));
  edited.add_file("src/sim/a.h", header);
  edited.add_file("src/sim/a.cpp", source + "int g();\n");
  (void)edited.run();
  EXPECT_EQ(edited.cache_hits(), 1u);

  // A different config fingerprint invalidates every entry.
  Config other = config;
  other.entropy_scope_prefixes.push_back("bench/");
  Linter invalidated(other);
  SemanticIndex cache3;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache3));
  invalidated.set_cached_index(std::move(cache3));
  invalidated.add_file("src/sim/a.h", header);
  invalidated.add_file("src/sim/a.cpp", source);
  (void)invalidated.run();
  EXPECT_EQ(invalidated.cache_hits(), 0u);
}

}  // namespace
}  // namespace wcds::lint
