// wcds_lint engine tests: the lexer's channel separation, every rule firing
// on a seeded violation with the exact rule id and line, and every rule
// honoring a `wcds-lint: allow(...)` suppression.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace wcds::lint {
namespace {

std::vector<Diagnostic> lint_one(const std::string& path,
                                 const std::string& content,
                                 Config config = {}) {
  Linter linter(std::move(config));
  linter.add_file(path, content);
  return linter.run();
}

bool has(const std::vector<Diagnostic>& diags, const std::string& rule,
         int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line;
  });
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, BlanksCommentsInCodeChannel) {
  const SourceFile file =
      annotate_source("src/a.cpp", "int x; // assert(x) in prose\n");
  ASSERT_EQ(file.code.size(), 1u);
  EXPECT_EQ(file.code[0].find("assert"), std::string::npos);
  EXPECT_NE(file.raw[0].find("assert"), std::string::npos);
  // Channels stay column-aligned.
  EXPECT_EQ(file.code[0].size(), file.raw[0].size());
  EXPECT_EQ(file.pure[0].size(), file.raw[0].size());
}

TEST(LintLexer, BlanksStringContentsOnlyInPureChannel) {
  const SourceFile file =
      annotate_source("src/a.cpp", "auto s = \"assert(47)\";\n");
  EXPECT_NE(file.code[0].find("assert(47)"), std::string::npos);
  EXPECT_EQ(file.pure[0].find("assert"), std::string::npos);
  EXPECT_EQ(file.pure[0].find("47"), std::string::npos);
}

TEST(LintLexer, MultiLineBlockCommentBlanked) {
  const SourceFile file =
      annotate_source("src/a.cpp", "/* new\n   std::map */ int y;\n");
  EXPECT_EQ(file.pure[0].find("new"), std::string::npos);
  EXPECT_EQ(file.pure[1].find("std::map"), std::string::npos);
  EXPECT_NE(file.pure[1].find("int y;"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  // If the ' opened a char literal, the rest of the line would be blanked
  // out of the pure channel.
  const SourceFile file =
      annotate_source("src/a.cpp", "auto n = 100'000; int z = 1;\n");
  EXPECT_NE(file.pure[0].find("int z = 1;"), std::string::npos);
}

TEST(LintLexer, ParsesSuppressionsPerLine) {
  const SourceFile file = annotate_source(
      "src/a.cpp",
      "int a;  // wcds-lint: allow(rule-a, rule-b)\n"
      "// wcds-lint: allow(rule-c)\n"
      "int b;\n");
  ASSERT_EQ(file.allowed.size(), 3u);
  EXPECT_EQ(file.allowed[0].count("rule-a"), 1u);
  EXPECT_EQ(file.allowed[0].count("rule-b"), 1u);
  // A comment-only line covers the next line too.
  EXPECT_EQ(file.allowed[1].count("rule-c"), 1u);
  EXPECT_EQ(file.allowed[2].count("rule-c"), 1u);
  EXPECT_EQ(file.allowed[2].count("rule-a"), 0u);
}

// ---------------------------------------------------------------------------
// no-bare-assert

TEST(LintRules, NoBareAssertFires) {
  const auto diags = lint_one("src/a.cpp",
                              "#include <cassert>\n"
                              "void f(int x) {\n"
                              "  assert(x > 0);\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-bare-assert", 3));
}

TEST(LintRules, NoBareAssertIgnoresCommentsStringsAndOtherTrees) {
  EXPECT_TRUE(lint_one("src/a.cpp", "// assert(x)\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "auto s = \"assert(x)\";\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "int my_assert_count = 0;\n").empty());
  // Only src/ must route through the contract macros.
  EXPECT_TRUE(lint_one("bench/a.cpp", "void f() { assert(1); }\n").empty());
}

TEST(LintRules, NoBareAssertSuppressed) {
  const auto diags = lint_one(
      "src/a.cpp", "void f() { std::abort(); }  // wcds-lint: allow(no-bare-assert)\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// paper-constant

TEST(LintRules, PaperConstantFires) {
  const auto diags = lint_one("src/wcds/a.cpp",
                              "int bound(int mis) {\n"
                              "  return 47 * mis;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "paper-constant", 2));
}

TEST(LintRules, PaperConstantSkipsNonMatchingLiterals) {
  // 470, 4.7, 0x47-as-word, 5u-suffix boundary handling: none of these are
  // the bare packing literals.
  const auto diags = lint_one("src/a.cpp",
                              "int a = 470;\n"
                              "double b = 4.7;\n"
                              "double c = 23.5;\n"
                              "int d = 247;\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, PaperConstantExemptFilesAndSuppression) {
  EXPECT_TRUE(
      lint_one("src/check/audit.h", "#pragma once\nint k = 47;\n").empty());
  EXPECT_TRUE(
      lint_one("src/a.cpp", "int k = 47;  // wcds-lint: allow(paper-constant)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// hot-path-alloc

TEST(LintRules, HotPathAllocFires) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  const auto diags = lint_one("src/sim/hot.cpp",
                              "#include <map>\n"
                              "std::map<int, int> m;\n"
                              "int* p = new int;\n",
                              config);
  EXPECT_TRUE(has(diags, "hot-path-alloc", 2));
  EXPECT_TRUE(has(diags, "hot-path-alloc", 3));
}

TEST(LintRules, HotPathAllocOnlyGuardsListedFiles) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  EXPECT_TRUE(
      lint_one("src/sim/cold.cpp", "std::map<int, int> m;\n", config).empty());
}

TEST(LintRules, HotPathAllocSuppressed) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  const auto diags = lint_one(
      "src/sim/hot.cpp",
      "std::map<int, int> m;  // wcds-lint: allow(hot-path-alloc)\n", config);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// message-type-registry

TEST(LintRules, MessageTypeRegistryFires) {
  const auto diags = lint_one("src/protocols/p.h",
                              "enum DemoMessageType : sim::MessageType {\n"
                              "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                              "  kMsgPong = 2,\n"
                              "};\n"
                              "const char* demo_message_name(sim::MessageType t) {\n"
                              "  switch (t) {\n"
                              "    case kMsgPing: return \"PING\";\n"
                              "    default: return \"?\";\n"
                              "  }\n"
                              "}\n");
  // kMsgPing has a trace-name entry; kMsgPong does not.
  EXPECT_FALSE(has(diags, "message-type-registry", 2));
  EXPECT_TRUE(has(diags, "message-type-registry", 3));
}

TEST(LintRules, MessageTypeRegistrySeesCrossFileCases) {
  Linter linter;
  linter.add_file("src/protocols/p.h",
                  "#pragma once\n"
                  "enum DemoMessageType : sim::MessageType {\n"
                  "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                  "};\n");
  linter.add_file("src/protocols/p.cpp",
                  "const char* demo_message_name(sim::MessageType t) {\n"
                  "  switch (t) {\n"
                  "    case kMsgPing:\n"
                  "      return \"PING\";\n"
                  "    default: return \"?\";\n"
                  "  }\n"
                  "}\n");
  EXPECT_TRUE(linter.run().empty());
}

TEST(LintRules, MessageTypeRegistrySuppressed) {
  const auto diags =
      lint_one("src/protocols/p.h",
               "#pragma once\n"
               "enum DemoMessageType : sim::MessageType {\n"
               "  kMsgSecret = 9,  // wcds-lint: allow(message-type-registry)\n"
               "};\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// metric-doc-sync

TEST(LintRules, MetricDocSyncFires) {
  Config config;
  config.observability_doc = "Registry: `demo/documented` only.\n";
  const auto diags = lint_one("src/wcds/a.cpp",
                              "void f(obs::Recorder* r) {\n"
                              "  r->metrics().add(\"demo/documented\", 1);\n"
                              "  r->metrics().add(\"demo/missing\", 1);\n"
                              "}\n",
                              config);
  EXPECT_FALSE(has(diags, "metric-doc-sync", 2));
  EXPECT_TRUE(has(diags, "metric-doc-sync", 3));
}

TEST(LintRules, MetricDocSyncPlaceholderFamilyAndPhaseTimer) {
  Config config;
  config.observability_doc =
      "Families: `demo/per_type/<k>` and `phase_ms/<phase>`.\n";
  const auto diags =
      lint_one("src/wcds/a.cpp",
               "void f(obs::Recorder* r) {\n"
               "  r->metrics().add(\"demo/per_type/3\", 1);\n"
               "  obs::PhaseTimer timer(r, \"demo/total\");\n"
               "}\n",
               config);
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, MetricDocSyncSuppressedAndDisabledWithoutDoc) {
  Config config;
  config.observability_doc = "nothing documented\n";
  const auto diags = lint_one(
      "src/wcds/a.cpp",
      "void f(obs::Recorder* r) {\n"
      "  r->metrics().add(\"demo/adhoc\", 1);  // wcds-lint: allow(metric-doc-sync)\n"
      "}\n",
      config);
  EXPECT_TRUE(diags.empty());
  // An empty doc (partial checkout) disables the rule entirely.
  Config no_doc;
  no_doc.observability_doc.clear();
  EXPECT_TRUE(lint_one("src/wcds/a.cpp",
                       "void f(obs::Recorder* r) {\n"
                       "  r->metrics().add(\"demo/adhoc\", 1);\n"
                       "}\n",
                       no_doc)
                  .empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(LintRules, PragmaOnceMissingFires) {
  const auto diags = lint_one("src/a.h", "// header comment\nint x;\n");
  EXPECT_TRUE(has(diags, "pragma-once", 2));
}

TEST(LintRules, PragmaOnceDuplicateAndMisplacedFire) {
  EXPECT_TRUE(has(
      lint_one("src/a.h", "#pragma once\nint x;\n#pragma once\n"),
      "pragma-once", 3));
  EXPECT_TRUE(has(lint_one("src/a.h", "int x;\n#pragma once\n"),
                  "pragma-once", 2));
}

TEST(LintRules, PragmaOnceCleanHeaderAndNonHeaders) {
  EXPECT_TRUE(
      lint_one("src/a.h", "// doc\n#pragma once\nint x;\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "int x;\n").empty());
}

TEST(LintRules, PragmaOnceSuppressed) {
  const auto diags = lint_one(
      "src/a.h", "// wcds-lint: allow(pragma-once)\nint x;\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// include-hygiene

TEST(LintRules, IncludeHygieneFires) {
  const auto diags = lint_one("src/a.cpp",
                              "#include \"../geom/rng.h\"\n"
                              "#include <bits/stdc++.h>\n"
                              "#include \"geom/rng.h\"\n");
  EXPECT_TRUE(has(diags, "include-hygiene", 1));
  EXPECT_TRUE(has(diags, "include-hygiene", 2));
  EXPECT_FALSE(has(diags, "include-hygiene", 3));
}

TEST(LintRules, IncludeHygieneSuppressed) {
  const auto diags = lint_one(
      "src/a.cpp",
      "#include \"../geom/rng.h\"  // wcds-lint: allow(include-hygiene)\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// no-unordered-iteration

TEST(LintRules, NoUnorderedIterationRangeForFires) {
  const auto diags = lint_one("src/sim/a.cpp",
                              "#include <unordered_map>\n"
                              "std::unordered_map<int, int> table;\n"
                              "int sum() {\n"
                              "  int s = 0;\n"
                              "  for (const auto& [k, v] : table) s += v;\n"
                              "  return s;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-unordered-iteration", 5));
}

TEST(LintRules, NoUnorderedIterationBeginWalkFires) {
  const auto diags = lint_one("src/wcds/a.cpp",
                              "#include <unordered_set>\n"
                              "std::unordered_set<long> seen;\n"
                              "long first() {\n"
                              "  return *seen.begin();\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-unordered-iteration", 4));
}

TEST(LintRules, NoUnorderedIterationSeesCrossFileMemberDecls) {
  Linter linter;
  linter.add_file("src/udg/grid.h",
                  "#pragma once\n"
                  "#include <unordered_map>\n"
                  "struct Grid {\n"
                  "  std::unordered_map<long, int> cells;\n"
                  "};\n");
  linter.add_file("src/udg/grid.cpp",
                  "#include \"udg/grid.h\"\n"
                  "int f(const Grid& g) {\n"
                  "  int s = 0;\n"
                  "  for (const auto& kv : g.cells) s += kv.second;\n"
                  "  return s;\n"
                  "}\n");
  EXPECT_TRUE(has(linter.run(), "no-unordered-iteration", 4));
}

TEST(LintRules, NoUnorderedIterationTracksLocalAliases) {
  const auto diags = lint_one("src/mis/a.cpp",
                              "#include <unordered_map>\n"
                              "using Table = std::unordered_map<int, int>;\n"
                              "Table ranks;\n"
                              "int f() {\n"
                              "  int s = 0;\n"
                              "  for (const auto& kv : ranks) s += kv.second;\n"
                              "  return s;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-unordered-iteration", 6));
}

TEST(LintRules, NoUnorderedIterationScopeAndOrderedContainersClean) {
  // io/ is not a trace-affecting module: lookups may stay unordered there.
  EXPECT_TRUE(lint_one("src/io/a.cpp",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> table;\n"
                       "int f() {\n"
                       "  int s = 0;\n"
                       "  for (const auto& [k, v] : table) s += v;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Iterating an ordered container in a trace-affecting module is fine.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <vector>\n"
                       "std::vector<int> queue_ids;\n"
                       "int f() {\n"
                       "  int s = 0;\n"
                       "  for (int id : queue_ids) s += id;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Point lookups into an unordered map are fine; only iteration leaks.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> table;\n"
                       "int f(int k) { return table.at(k); }\n")
                  .empty());
}

TEST(LintRules, NoUnorderedIterationSuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <unordered_map>\n"
                       "std::unordered_map<int, int> table;\n"
                       "int f() {\n"
                       "  int s = 0;\n"
                       "  // wcds-lint: allow(no-unordered-iteration)\n"
                       "  for (const auto& [k, v] : table) s += v;\n"
                       "  return s;\n"
                       "}\n")
                  .empty());
  // Comments and strings never produce iteration events.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "// for (const auto& kv : table)\n"
                       "auto s = \"std::unordered_map<int, int> table;\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// no-pointer-order

TEST(LintRules, NoPointerOrderKeyedContainersFire) {
  const auto diags = lint_one("src/mis/a.cpp",
                              "#include <set>\n"
                              "struct Node;\n"
                              "std::set<Node*> frontier;\n");
  EXPECT_TRUE(has(diags, "no-pointer-order", 3));
}

TEST(LintRules, NoPointerOrderHashAndLessFire) {
  const auto diags = lint_one("src/wcds/a.h",
                              "#pragma once\n"
                              "struct Node;\n"
                              "using Order = std::less<Node*>;\n"
                              "using Hash = std::hash<const Node*>;\n");
  EXPECT_TRUE(has(diags, "no-pointer-order", 3));
  EXPECT_TRUE(has(diags, "no-pointer-order", 4));
}

TEST(LintRules, NoPointerOrderRelationalCompareFires) {
  const auto diags = lint_one("src/maintenance/a.cpp",
                              "struct Node;\n"
                              "bool before(Node* a, Node* b) {\n"
                              "  return a < b;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-pointer-order", 3));
}

TEST(LintRules, NoPointerOrderCleanCases) {
  // Value comparisons and arithmetic never match.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "int area(int width, int height) {\n"
                       "  return width * height;\n"
                       "}\n"
                       "bool less(int a, int b) { return a < b; }\n")
                  .empty());
  // Pointer *keys by stable id* are fine: only pointer-keyed ordering fires.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "#include <set>\n"
                       "std::set<long> ids;\n")
                  .empty());
  // io/ is outside the trace-affecting scope.
  EXPECT_TRUE(lint_one("src/io/a.cpp",
                       "struct Node;\n"
                       "std::set<Node*> frontier;\n")
                  .empty());
}

TEST(LintRules, NoPointerOrderSuppressedAndLexerImmune) {
  EXPECT_TRUE(
      lint_one("src/mis/a.cpp",
               "struct Node;\n"
               "std::set<Node*> f;  // wcds-lint: allow(no-pointer-order)\n")
          .empty());
  EXPECT_TRUE(lint_one("src/mis/a.cpp",
                       "// std::set<Node*> frontier;\n"
                       "auto s = \"std::less<Node*>\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// no-ambient-entropy

TEST(LintRules, NoAmbientEntropyRandomDeviceFires) {
  const auto diags = lint_one("src/geom/seed.cpp",
                              "#include <random>\n"
                              "unsigned s() {\n"
                              "  std::random_device rd;\n"
                              "  return rd();\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 3));
}

TEST(LintRules, NoAmbientEntropyRandAndClockFire) {
  const auto diags = lint_one("src/sim/a.cpp",
                              "#include <chrono>\n"
                              "int r() { return rand(); }\n"
                              "auto t() { return std::chrono::steady_clock::now(); }\n"
                              "long w() { return time(nullptr); }\n");
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 2));
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 3));
  EXPECT_TRUE(has(diags, "no-ambient-entropy", 4));
}

TEST(LintRules, NoAmbientEntropyBoundaryAndMembersClean) {
  // The declared clock boundary may read wall clocks.
  EXPECT_TRUE(lint_one("src/obs/recorder.cpp",
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  // Member functions named time()/clock() are not the libc calls.
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "double f(const Event& e) { return e.time(); }\n"
                       "double g(const Sim* s) { return s->clock(); }\n")
                  .empty());
  // Outside the configured scope the rule is silent.
  EXPECT_TRUE(lint_one("bench/a.cpp", "int r() { return rand(); }\n").empty());
}

TEST(LintRules, NoAmbientEntropySuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "// wcds-lint: allow(no-ambient-entropy) — seed scan\n"
                       "unsigned s = std::random_device{}();\n")
                  .empty());
  EXPECT_TRUE(lint_one("src/sim/a.cpp",
                       "// std::random_device in prose\n"
                       "auto s = \"rand() and time()\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// layer-dag

Config layered_config() {
  Config config;
  config.module_prefixes = {{"src/low/", "low"}, {"src/high/", "high"}};
  config.modules = {{"low", {}}, {"high", {"low"}}};
  return config;
}

TEST(LintRules, LayerDagUndeclaredEdgeFires) {
  Linter linter(layered_config());
  linter.add_file("src/low/a.h",
                  "#pragma once\n"
                  "#include \"high/b.h\"\n");
  linter.add_file("src/high/b.h", "#pragma once\n");
  const auto diags = linter.run();
  EXPECT_TRUE(has(diags, "layer-dag", 2));
  ASSERT_FALSE(diags.empty());
  EXPECT_NE(diags[0].message.find("'low'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("'high'"), std::string::npos);
}

TEST(LintRules, LayerDagDeclaredEdgeAndIntraModuleClean) {
  Linter linter(layered_config());
  linter.add_file("src/high/b.h",
                  "#pragma once\n"
                  "#include \"low/a.h\"\n"
                  "#include \"high/util.h\"\n");
  linter.add_file("src/low/a.h", "#pragma once\n");
  linter.add_file("src/high/util.h", "#pragma once\n");
  EXPECT_TRUE(linter.run().empty());
}

TEST(LintRules, LayerDagIncludeCycleFires) {
  Linter linter(layered_config());
  linter.add_file("src/low/a.h",
                  "#pragma once\n"
                  "#include \"low/b.h\"\n");
  linter.add_file("src/low/b.h",
                  "#pragma once\n"
                  "#include \"low/a.h\"\n");
  const auto diags = linter.run();
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].rule, "layer-dag");
  EXPECT_NE(diags[0].message.find("include cycle"), std::string::npos);
}

TEST(LintRules, LayerDagDeclaredCycleIsAConfigError) {
  Config config;
  config.module_prefixes = {{"src/low/", "low"}, {"src/high/", "high"}};
  config.modules = {{"low", {"high"}}, {"high", {"low"}}};
  Linter linter(std::move(config));
  linter.add_file("src/low/a.h", "#pragma once\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layer-dag");
  EXPECT_NE(diags[0].message.find("cycle"), std::string::npos);
}

TEST(LintRules, LayerDagSuppressedAndDisabledWithoutModules) {
  Linter linter(layered_config());
  linter.add_file("src/low/a.h",
                  "#pragma once\n"
                  "#include \"high/b.h\"  // wcds-lint: allow(layer-dag)\n");
  linter.add_file("src/high/b.h", "#pragma once\n");
  EXPECT_TRUE(linter.run().empty());
  // Config{} declares no modules: the rule is disabled entirely.
  Linter bare{Config{}};
  bare.add_file("src/low/a.h",
                "#pragma once\n"
                "#include \"high/b.h\"\n");
  bare.add_file("src/high/b.h", "#pragma once\n");
  EXPECT_TRUE(bare.run().empty());
}

TEST(LintRules, DefaultConfigDagIsAcyclicAtHead) {
  // The shipped layering must itself be a valid DAG: an empty file set
  // still runs the declared-graph acyclicity check.
  Linter linter(default_config());
  linter.add_file("src/sim/a.cpp", "int x;\n");
  EXPECT_TRUE(linter.run().empty());
}

// ---------------------------------------------------------------------------
// facade-only

TEST(LintRules, FacadeOnlyDirectCallFires) {
  const auto diags = lint_one("bench/bench_x.cpp",
                              "void table() {\n"
                              "  const auto out = core::algorithm2(g);\n"
                              "  const auto run =\n"
                              "      protocols::run_algorithm1(g, delays);\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "facade-only", 2));
  EXPECT_TRUE(has(diags, "facade-only", 4));
}

TEST(LintRules, FacadeOnlyBmBodyExempt) {
  // Inside a BM_ fixture the raw entrypoint is the thing being measured;
  // after its closing brace the exemption ends.
  const auto diags = lint_one("bench/bench_x.cpp",
                              "void BM_Build(benchmark::State& state) {\n"
                              "  for (auto _ : state) {\n"
                              "    benchmark::DoNotOptimize(core::algorithm2(g));\n"
                              "  }\n"
                              "}\n"
                              "void table() { core::algorithm2(g); }\n");
  EXPECT_FALSE(has(diags, "facade-only", 3));
  EXPECT_TRUE(has(diags, "facade-only", 6));
}

TEST(LintRules, FacadeOnlyExemptModulesAndNonCallsClean) {
  // The implementing modules may call the entrypoints directly.
  EXPECT_TRUE(lint_one("src/facade/build.cpp",
                       "auto r = core::algorithm2(g);\n", default_config())
                  .empty());
  EXPECT_TRUE(lint_one("src/protocols/driver.cpp",
                       "auto r = protocols::run_algorithm2(g, d);\n",
                       default_config())
                  .empty());
  // Mentions that are not calls: longer identifiers and non-call contexts.
  EXPECT_TRUE(lint_one("bench/bench_x.cpp",
                       "core::algorithm2_options opts;\n"
                       "int my_core::algorithm2x = 0;\n")
                  .empty());
}

TEST(LintRules, FacadeOnlySuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("bench/bench_x.cpp",
                       "void t() {\n"
                       "  // timing the raw entrypoint on purpose\n"
                       "  // wcds-lint: allow(facade-only)\n"
                       "  auto r = core::algorithm2(g);\n"
                       "}\n")
                  .empty());
  // Comment and string mentions never fire.
  EXPECT_TRUE(lint_one("bench/bench_x.cpp",
                       "// call core::algorithm2(g) via the facade instead\n"
                       "const char* kDoc = \"protocols::run_algorithm1(g)\";\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// Engine plumbing

TEST(LintEngine, DiagnosticsSortedAndFormatted) {
  Linter linter;
  linter.add_file("src/b.h", "int x;\n");
  linter.add_file("src/a.h", "int x;\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/a.h");
  EXPECT_EQ(diags[1].file, "src/b.h");
  EXPECT_EQ(format_diagnostic(diags[0]),
            "src/a.h:1: error: [pragma-once] header is missing #pragma once");
}

TEST(LintEngine, EnabledRulesFilter) {
  Config config;
  config.enabled_rules = {"include-hygiene"};
  const auto diags =
      lint_one("src/a.h", "#include \"../x.h\"\nint x;\n", config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-hygiene");
}

TEST(LintEngine, RuleListIsStable) {
  const std::vector<std::string> expected = {
      "no-bare-assert",   "paper-constant",  "hot-path-alloc",
      "message-type-registry", "metric-doc-sync", "pragma-once",
      "include-hygiene", "no-unordered-iteration", "no-pointer-order",
      "no-ambient-entropy", "layer-dag", "facade-only",
      "lock-order", "audit-after-mutation", "rng-draw-discipline"};
  ASSERT_EQ(rules().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rules()[i].name, expected[i]);
    EXPECT_FALSE(rules()[i].summary.empty());
  }
}

TEST(LintEngine, GithubFormat) {
  const Diagnostic diag{"src/a.h", 3, "pragma-once", "duplicate #pragma once"};
  EXPECT_EQ(format_diagnostic_github(diag),
            "::error file=src/a.h,line=3::[pragma-once] duplicate #pragma "
            "once");
}

// ---------------------------------------------------------------------------
// Semantic index

TEST(LintIndex, BuildsIncludeGraphAndResolvesAgainstScanSet) {
  const FileIndex file = analyze_file("src/sim/a.cpp",
                                      "#include \"sim/a.h\"\n"
                                      "#include <vector>\n"
                                      "#include \"graph/graph.h\"\n",
                                      Config{});
  ASSERT_EQ(file.includes.size(), 2u);  // system includes are not edges
  EXPECT_EQ(file.includes[0].line, 1);
  EXPECT_EQ(file.includes[0].written, "sim/a.h");
  EXPECT_EQ(file.includes[1].line, 3);
  EXPECT_EQ(file.includes[1].written, "graph/graph.h");
  // Resolution happens against the registered scan set at run() time.
  Linter linter;
  linter.add_file("src/sim/a.cpp", "#include \"sim/a.h\"\n");
  linter.add_file("src/sim/a.h", "#pragma once\n");
  (void)linter.run();
  ASSERT_EQ(linter.index().files.size(), 2u);
  const FileIndex& cpp = linter.index().files[0];
  ASSERT_EQ(cpp.includes.size(), 1u);
  EXPECT_EQ(cpp.includes[0].resolved, "src/sim/a.h");
}

TEST(LintIndex, ModuleAssignmentPrefixesAndOverrides) {
  const Config config = default_config();
  EXPECT_EQ(module_for("src/sim/runtime.cpp", config), "sim");
  EXPECT_EQ(module_for("src/maintenance/crash_schedule.cpp", config),
            "maintenance");
  // Exact overrides mirror the CMake split.
  EXPECT_EQ(module_for("src/check/check.h", config), "check");
  EXPECT_EQ(module_for("src/check/audit.h", config), "audit");
  EXPECT_EQ(module_for("src/wcds/wcds_result.h", config), "wcds_types");
  EXPECT_EQ(module_for("src/wcds/algorithm1.cpp", config), "wcds");
  EXPECT_EQ(module_for("tests/lint_test.cpp", config), "");
}

TEST(LintIndex, RecordsDeclsUsesAndAllows) {
  const FileIndex file = analyze_file(
      "src/sim/a.cpp",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;  // wcds-lint: allow(all)\n"
      "struct Node;\n"
      "void f(Node* n, Node* m) {\n"
      "  if (n < m) return;\n"
      "}\n",
      Config{});
  ASSERT_EQ(file.decls.size(), 3u);
  EXPECT_EQ(file.decls[0].kind, "unordered");
  EXPECT_EQ(file.decls[0].name, "table");
  EXPECT_EQ(file.decls[1].kind, "pointer");
  EXPECT_EQ(file.decls[1].name, "n");
  EXPECT_EQ(file.decls[2].name, "m");
  ASSERT_EQ(file.compares.size(), 1u);
  EXPECT_EQ(file.compares[0].lhs, "n");
  EXPECT_EQ(file.compares[0].rhs, "m");
  ASSERT_EQ(file.allows.size(), 1u);
  EXPECT_EQ(file.allows[0].line, 2);
}

TEST(LintIndex, SerializationRoundTripsExactly) {
  Config config = default_config();
  config.observability_doc = "`fault/repair_ms`\n";
  Linter linter(config);
  linter.add_file("src/sim/a.h",
                  "#pragma once\n"
                  "#include <unordered_map>\n"
                  "enum DemoMessageType : sim::MessageType {\n"
                  "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                  "};\n"
                  "std::unordered_map<int, int> table;\n");
  linter.add_file("src/sim/a.cpp",
                  "#include \"sim/a.h\"\n"
                  "int f() {\n"
                  "  int s = 0;\n"
                  "  for (const auto& [k, v] : table) s += v;\n"
                  "  return s;\n"
                  "}\n");
  (void)linter.run();
  const std::string text = serialize_index(linter.index());
  SemanticIndex parsed;
  ASSERT_TRUE(parse_index(text, parsed));
  EXPECT_EQ(parsed, linter.index());
  // And the round-trip is a fixed point.
  EXPECT_EQ(serialize_index(parsed), text);
}

TEST(LintIndex, ParseRejectsCorruptDocuments) {
  SemanticIndex out;
  EXPECT_FALSE(parse_index("", out));
  EXPECT_FALSE(parse_index("not-an-index\n", out));
  EXPECT_FALSE(parse_index("wcds-lint-index/v2\nbogus-tag 1\n", out));
  // v1 documents predate the function summaries and are rejected outright —
  // a stale CI cache must re-lint, not mis-parse.
  EXPECT_FALSE(parse_index(
      "wcds-lint-index/v1\nconfig 1\nfile src/a.h\nhash 1\nmodule -\nend\n",
      out));
  // A `file` record must be closed by `end`.
  EXPECT_FALSE(parse_index("wcds-lint-index/v2\nfile src/a.h\nhash 1\n", out));
  EXPECT_TRUE(parse_index(
      "wcds-lint-index/v2\nconfig 1\nfile src/a.h\nhash 1\nmodule -\nend\n",
      out));
  ASSERT_EQ(out.files.size(), 1u);
  EXPECT_EQ(out.files[0].path, "src/a.h");
}

TEST(LintIndex, ParseRejectsCorruptFunctionRecords) {
  SemanticIndex out;
  // A `func` record must close with `fend` before `end` or the next `file`.
  EXPECT_FALSE(parse_index(
      "wcds-lint-index/v2\nfile src/a.h\nfunc 1 2 - f\nend\n", out));
  // Node ids must be dense and in order.
  EXPECT_FALSE(parse_index(
      "wcds-lint-index/v2\nfile src/a.h\nfunc 1 2 - f\n"
      "fnode 1 entry 1 0 - -\nfend\nend\n",
      out));
  // Successor and event node ids must stay in range.
  EXPECT_FALSE(parse_index(
      "wcds-lint-index/v2\nfile src/a.h\nfunc 1 2 - f\n"
      "fnode 0 entry 1 0 5 -\nfend\nend\n",
      out));
  EXPECT_FALSE(parse_index(
      "wcds-lint-index/v2\nfile src/a.h\nfunc 1 2 - f\n"
      "fev 0 1 call 0 g - -\nfend\nend\n",
      out));
  // A well-formed single-node function parses.
  EXPECT_TRUE(parse_index(
      "wcds-lint-index/v2\nfile src/a.h\nhash 1\nmodule -\n"
      "func 1 3 Q push\nfreq mu_\n"
      "fnode 0 entry 1 0 - -\nfev 0 2 call 0 g - -\nfend\nend\n",
      out));
  ASSERT_EQ(out.files[0].functions.size(), 1u);
  EXPECT_EQ(out.files[0].functions[0].scope, "Q");
  EXPECT_EQ(out.files[0].functions[0].requires_locks,
            std::vector<std::string>{"mu_"});
  ASSERT_EQ(out.files[0].functions[0].nodes.size(), 1u);
  ASSERT_EQ(out.files[0].functions[0].nodes[0].events.size(), 1u);
  EXPECT_EQ(out.files[0].functions[0].nodes[0].events[0].name, "g");
}

TEST(LintIndex, CacheSkipsUnchangedFilesAndAgreesWithFreshRun) {
  Config config = default_config();
  const std::string header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table;\n";
  const std::string source =
      "#include \"sim/a.h\"\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (const auto& [k, v] : table) s += v;\n"
      "  return s;\n"
      "}\n";
  Linter cold(config);
  cold.add_file("src/sim/a.h", header);
  cold.add_file("src/sim/a.cpp", source);
  const auto fresh = cold.run();
  EXPECT_EQ(cold.cache_hits(), 0u);

  // Seed a second linter with the serialized index: both files hit.
  SemanticIndex cache;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache));
  Linter warm(config);
  warm.set_cached_index(std::move(cache));
  warm.add_file("src/sim/a.h", header);
  warm.add_file("src/sim/a.cpp", source);
  EXPECT_EQ(warm.run(), fresh);
  EXPECT_EQ(warm.cache_hits(), 2u);

  // An edited file re-analyzes; the untouched one still hits.
  Linter edited(config);
  SemanticIndex cache2;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache2));
  edited.set_cached_index(std::move(cache2));
  edited.add_file("src/sim/a.h", header);
  edited.add_file("src/sim/a.cpp", source + "int g();\n");
  (void)edited.run();
  EXPECT_EQ(edited.cache_hits(), 1u);

  // A different config fingerprint invalidates every entry.
  Config other = config;
  other.entropy_scope_prefixes.push_back("bench/");
  Linter invalidated(other);
  SemanticIndex cache3;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache3));
  invalidated.set_cached_index(std::move(cache3));
  invalidated.add_file("src/sim/a.h", header);
  invalidated.add_file("src/sim/a.cpp", source);
  (void)invalidated.run();
  EXPECT_EQ(invalidated.cache_hits(), 0u);
}

TEST(LintIndex, CachedFunctionSummariesDrivePhaseThreeRules) {
  // The control-flow rules must fire identically whether the function
  // summaries were just extracted or came back from a warm index.
  Config config;
  const std::string source =
      "int pick(Rng& rng_, bool flip) {\n"
      "  if (flip) return rng_.next_below(7);\n"
      "  return 0;\n"
      "}\n";
  Linter cold(config);
  cold.add_file("src/fault/f.cpp", source);
  const auto fresh = cold.run();
  ASSERT_TRUE(has(fresh, "rng-draw-discipline", 2));

  SemanticIndex cache;
  ASSERT_TRUE(parse_index(serialize_index(cold.index()), cache));
  Linter warm(config);
  warm.set_cached_index(std::move(cache));
  warm.add_file("src/fault/f.cpp", source);
  EXPECT_EQ(warm.run(), fresh);
  EXPECT_EQ(warm.cache_hits(), 1u);
}

// ---------------------------------------------------------------------------
// CFG extraction (tools/lint/cfg.h)

const CfgNode* event_node(const FunctionSummary& fn, const std::string& name) {
  for (const CfgNode& node : fn.nodes) {
    for (const CfgEvent& event : node.events) {
      if (event.name == name) return &node;
    }
  }
  return nullptr;
}

const CfgEvent* find_event(const FunctionSummary& fn,
                           const std::string& name) {
  for (const CfgNode& node : fn.nodes) {
    for (const CfgEvent& event : node.events) {
      if (event.name == name) return &event;
    }
  }
  return nullptr;
}

TEST(LintCfg, ExtractsFunctionWithBranchAndEvents) {
  const SourceFile file = annotate_source("src/sim/a.cpp",
                                          "void f(int x) {\n"
                                          "  setup(x);\n"
                                          "  if (x > 0) {\n"
                                          "    teardown();\n"
                                          "  }\n"
                                          "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "f");
  EXPECT_EQ(fns[0].line, 1);
  EXPECT_EQ(fns[0].end_line, 6);
  ASSERT_GE(fns[0].nodes.size(), 4u);
  EXPECT_EQ(fns[0].nodes[0].kind, "entry");
  EXPECT_EQ(fns[0].nodes[1].kind, "exit");
  EXPECT_EQ(fns[0].nodes[2].kind, "throw");
  const CfgEvent* setup = find_event(fns[0], "setup");
  ASSERT_NE(setup, nullptr);
  EXPECT_EQ(setup->line, 2);
  EXPECT_EQ(setup->kind, "call");
  const CfgEvent* teardown = find_event(fns[0], "teardown");
  ASSERT_NE(teardown, nullptr);
  EXPECT_EQ(teardown->line, 4);
}

TEST(LintCfg, NestedBracesStayInOneFunction) {
  const SourceFile file = annotate_source("src/sim/a.cpp",
                                          "void f() {\n"
                                          "  { { a(); } }\n"
                                          "  b();\n"
                                          "}\n"
                                          "void g() { c(); }\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "f");
  EXPECT_NE(find_event(fns[0], "a"), nullptr);
  EXPECT_NE(find_event(fns[0], "b"), nullptr);
  EXPECT_EQ(find_event(fns[0], "c"), nullptr);
  EXPECT_EQ(fns[1].name, "g");
  EXPECT_NE(find_event(fns[1], "c"), nullptr);
}

TEST(LintCfg, LambdaBodyInlinesIntoEnclosingFunction) {
  const SourceFile file = annotate_source(
      "src/sim/a.cpp",
      "void f(std::vector<int>& xs) {\n"
      "  std::sort(xs.begin(), xs.end(), [](int a, int b) {\n"
      "    return key(a) < key(b);\n"
      "  });\n"
      "  done();\n"
      "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 1u);  // the lambda is not a separate function
  EXPECT_NE(find_event(fns[0], "key"), nullptr);
  EXPECT_NE(find_event(fns[0], "done"), nullptr);
}

TEST(LintCfg, SwitchCasesFallThrough) {
  const SourceFile file = annotate_source("src/sim/a.cpp",
                                          "void f(int x) {\n"
                                          "  switch (x) {\n"
                                          "    case 0:\n"
                                          "      first();\n"
                                          "    case 1:\n"
                                          "      second();\n"
                                          "      break;\n"
                                          "    default:\n"
                                          "      third();\n"
                                          "  }\n"
                                          "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  const FunctionSummary& fn = fns[0];
  const CfgNode* head = nullptr;
  for (const CfgNode& node : fn.nodes) {
    if (node.kind == "switch") head = &node;
  }
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->succs.size(), 3u);  // one per case; default absorbs skip
  const CfgNode* case0 = event_node(fn, "first");
  const CfgNode* case1 = event_node(fn, "second");
  ASSERT_NE(case0, nullptr);
  ASSERT_NE(case1, nullptr);
  // `case 0` has no break: it falls through into `case 1`.
  EXPECT_NE(std::find(case0->succs.begin(), case0->succs.end(), case1->id),
            case0->succs.end());
}

TEST(LintCfg, CodeAfterReturnIsUnreachable) {
  const SourceFile file = annotate_source("src/sim/a.cpp",
                                          "int f() {\n"
                                          "  return live();\n"
                                          "  dead();\n"
                                          "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  const CfgNode* live = event_node(fns[0], "live");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->succs, std::vector<int>{1});  // return edges to exit
  const CfgNode* dead = event_node(fns[0], "dead");
  ASSERT_NE(dead, nullptr);
  for (const CfgNode& node : fns[0].nodes) {
    EXPECT_EQ(std::find(node.succs.begin(), node.succs.end(), dead->id),
              node.succs.end());
  }
}

TEST(LintCfg, LoopNodeHasBodyAndSkipSuccessors) {
  const SourceFile file = annotate_source("src/sim/a.cpp",
                                          "void f(int n) {\n"
                                          "  for (int i = 0; i < n; ++i) {\n"
                                          "    work(i);\n"
                                          "  }\n"
                                          "  after_loop();\n"
                                          "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  const FunctionSummary& fn = fns[0];
  const CfgNode* head = nullptr;
  for (const CfgNode& node : fn.nodes) {
    if (node.kind == "loop") head = &node;
  }
  ASSERT_NE(head, nullptr);
  ASSERT_EQ(head->succs.size(), 2u);  // [body, after]
  EXPECT_EQ(fn.nodes[head->succs[0]].loop_depth, head->loop_depth + 1);
  EXPECT_EQ(fn.nodes[head->succs[1]].loop_depth, head->loop_depth);
  const CfgNode* body = event_node(fn, "work");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->loop_depth, 1);
  // The body rejoins after the loop (no back edge: the CFG is a DAG).
  EXPECT_EQ(body->succs, std::vector<int>{head->succs[1]});
  const CfgNode* after = event_node(fn, "after_loop");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->loop_depth, 0);
}

TEST(LintCfg, ScopedLockTrackedInHeldSets) {
  const SourceFile file = annotate_source(
      "src/parallel/q.cpp",
      "void Queue::push(int v) {\n"
      "  const base::MutexLock lock(mu_);\n"
      "  items_.push_back(v);\n"
      "  notify();\n"
      "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].scope, "Queue");
  EXPECT_EQ(fns[0].name, "push");
  const CfgEvent* acquire = find_event(fns[0], "MutexLock");
  ASSERT_NE(acquire, nullptr);
  EXPECT_EQ(acquire->arg0, "mu_");
  // The acquisition event sits on the pre-acquisition node...
  EXPECT_TRUE(event_node(fns[0], "MutexLock")->held.empty());
  // ...and everything after it runs with the lock held.
  const CfgNode* after = event_node(fns[0], "notify");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->held, std::vector<std::string>{"mu_"});
  const CfgEvent* push = find_event(fns[0], "push_back");
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->recv, "items_");
}

TEST(LintCfg, LockAnnotationsCaptured) {
  const SourceFile file = annotate_source("src/parallel/q.cpp",
                                          "void drain() WCDS_REQUIRES(mu_) {\n"
                                          "  flush();\n"
                                          "}\n"
                                          "void grab() WCDS_ACQUIRE(mu_) {\n"
                                          "  flush();\n"
                                          "}\n");
  const std::vector<FunctionSummary> fns = extract_functions(file);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].requires_locks, std::vector<std::string>{"mu_"});
  EXPECT_TRUE(fns[0].acquires_locks.empty());
  EXPECT_EQ(fns[1].acquires_locks, std::vector<std::string>{"mu_"});
  EXPECT_TRUE(fns[1].requires_locks.empty());
}

// ---------------------------------------------------------------------------
// lock-order

TEST(LintRules, LockOrderCycleFires) {
  const auto diags = lint_one("src/parallel/a.cpp",
                              "void first() {\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "  work();\n"
                              "}\n"
                              "void second() {\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "  work();\n"
                              "}\n");
  // Reported once, at the edge leaving the cycle's smallest lock.
  EXPECT_TRUE(has(diags, "lock-order", 3));
  EXPECT_EQ(std::count_if(diags.begin(), diags.end(),
                          [](const Diagnostic& d) {
                            return d.rule == "lock-order";
                          }),
            1);
}

TEST(LintRules, LockOrderTransitiveThroughCalls) {
  const auto diags = lint_one("src/parallel/a.cpp",
                              "void helper() {\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "  work();\n"
                              "}\n"
                              "void outer() {\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "  helper();\n"
                              "}\n"
                              "void inverted() {\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "}\n");
  // outer holds mu_a and acquires mu_b through helper(); inverted closes it.
  EXPECT_TRUE(has(diags, "lock-order", 7));
}

TEST(LintRules, LockOrderAnnotatedRequiresCountsAsHeld) {
  const auto diags = lint_one("src/parallel/a.cpp",
                              "void fwd() WCDS_REQUIRES(mu_a) {\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "}\n"
                              "void rev() WCDS_REQUIRES(mu_b) {\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "lock-order", 2));
}

TEST(LintRules, LockOrderConsistentOrderClean) {
  const auto diags = lint_one("src/parallel/a.cpp",
                              "void first() {\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "}\n"
                              "void second() {\n"
                              "  const base::MutexLock a(mu_a);\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "}\n"
                              "void third() {\n"
                              "  const base::MutexLock b(mu_b);\n"
                              "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, LockOrderScopeEndsReleaseTheLock) {
  // The first lock is released before the second is taken: no edge, even
  // in the same function.
  const auto diags = lint_one("src/parallel/a.cpp",
                              "void first() {\n"
                              "  { const base::MutexLock a(mu_a); }\n"
                              "  { const base::MutexLock b(mu_b); }\n"
                              "}\n"
                              "void second() {\n"
                              "  { const base::MutexLock b(mu_b); }\n"
                              "  { const base::MutexLock a(mu_a); }\n"
                              "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, LockOrderSuppressedAndLexerImmune) {
  EXPECT_TRUE(lint_one("src/parallel/a.cpp",
                       "// const base::MutexLock a(mu_a);\n"
                       "// const base::MutexLock b(mu_b);\n"
                       "void first() {}\n")
                  .empty());
  const auto diags =
      lint_one("src/parallel/a.cpp",
               "void first() {\n"
               "  const base::MutexLock a(mu_a);\n"
               "  // wcds-lint: allow(lock-order)\n"
               "  const base::MutexLock b(mu_b);\n"
               "}\n"
               "void second() {\n"
               "  const base::MutexLock b(mu_b);\n"
               "  const base::MutexLock a(mu_a);\n"
               "}\n");
  // The cycle's report line (the smallest lock's edge) is suppressed; the
  // reverse edge is not re-reported, so the file is clean.
  EXPECT_FALSE(has(diags, "lock-order", 4));
}

// ---------------------------------------------------------------------------
// audit-after-mutation

Config maintenance_config() {
  Config config;
  config.module_prefixes = {{"src/maintenance/", "maintenance"},
                            {"src/wcds/", "wcds"}};
  return config;
}

TEST(LintRules, AuditAfterMutationFires) {
  const auto diags = lint_one("src/maintenance/m.cpp",
                              "void Thing::apply_event(int u) {\n"
                              "  mis_.clear();\n"
                              "  count_ += 1;\n"
                              "}\n",
                              maintenance_config());
  EXPECT_TRUE(has(diags, "audit-after-mutation", 2));
}

TEST(LintRules, AuditAfterMutationAssignAndBranchFire) {
  // The mutation itself is before the branch; the early return is the
  // unaudited path.
  const auto diags = lint_one("src/maintenance/m.cpp",
                              "void Thing::apply_event(bool fast) {\n"
                              "  graph_ = rebuild(points_);\n"
                              "  if (fast) return;\n"
                              "  check::audit_invariants(graph_);\n"
                              "}\n",
                              maintenance_config());
  EXPECT_TRUE(has(diags, "audit-after-mutation", 2));
}

TEST(LintRules, AuditAfterMutationAuditedPathsClean) {
  const auto diags = lint_one(
      "src/maintenance/m.cpp",
      "void Thing::apply_event(int u) {\n"
      "  mis_.clear();\n"
      "  check::audit_invariants(graph_, mis_);\n"
      "}\n"
      "void Thing::gated_event(int u) {\n"
      "  bridges_.erase(u);\n"
      "  if (check::audits_enabled()) check::audit_invariants(graph_);\n"
      "}\n"
      "void Thing::wrapped_event(int u) {\n"
      "  points_.push_back(u);\n"
      "  maybe_audit(\"wrapped\");\n"
      "}\n",
      maintenance_config());
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, AuditAfterMutationThrowPathExempt) {
  const auto diags = lint_one("src/maintenance/m.cpp",
                              "void Thing::apply_event(int u) {\n"
                              "  mis_.clear();\n"
                              "  throw std::runtime_error(\"bad\");\n"
                              "}\n",
                              maintenance_config());
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, AuditAfterMutationHelperBubblesToRootCallSite) {
  const auto diags = lint_one("src/maintenance/m.cpp",
                              "void Thing::repair(int u) {\n"
                              "  mis_.erase(u);\n"
                              "}\n"
                              "void Thing::handle(int u) {\n"
                              "  repair(u);\n"
                              "  check::audit_invariants(graph_);\n"
                              "}\n"
                              "void Thing::mishandle(int u) {\n"
                              "  repair(u);\n"
                              "}\n",
                              maintenance_config());
  // repair() has in-scope callers, so the obligation surfaces at the call
  // sites: handle() audits and is clean, mishandle() does not.
  EXPECT_FALSE(has(diags, "audit-after-mutation", 2));
  EXPECT_FALSE(has(diags, "audit-after-mutation", 5));
  EXPECT_TRUE(has(diags, "audit-after-mutation", 9));
}

TEST(LintRules, AuditAfterMutationOutOfScopeAndSuppressed) {
  // Same code outside the audited modules is clean.
  EXPECT_TRUE(lint_one("src/sim/m.cpp",
                       "void Thing::apply_event(int u) {\n"
                       "  mis_.clear();\n"
                       "}\n",
                       maintenance_config())
                  .empty());
  const auto diags =
      lint_one("src/maintenance/m.cpp",
               "void Thing::apply_event(int u) {\n"
               "  mis_.clear();  // wcds-lint: allow(audit-after-mutation)\n"
               "}\n",
               maintenance_config());
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// rng-draw-discipline

TEST(LintRules, RngConditionalDrawFires) {
  const auto diags = lint_one("src/fault/f.cpp",
                              "int pick(Rng& rng_, bool flip) {\n"
                              "  if (flip) return rng_.next_below(7);\n"
                              "  return 0;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "rng-draw-discipline", 2));
}

TEST(LintRules, RngShortCircuitDrawInLoopFires) {
  // The && right-hand side is skippable, so the loop body's draw count
  // depends on the data — the src/service/engine.cpp transmit() shape.
  const auto diags = lint_one(
      "src/service/s.cpp",
      "bool send(Rng& rng, double p) {\n"
      "  for (int attempt = 0; attempt < 3; ++attempt) {\n"
      "    if (p > 0.0 && rng.next_double() < p) return false;\n"
      "  }\n"
      "  return true;\n"
      "}\n");
  EXPECT_TRUE(has(diags, "rng-draw-discipline", 3));
}

TEST(LintRules, RngDisciplinedDrawsClean) {
  const auto diags = lint_one(
      "src/fault/f.cpp",
      // Unconditional draw, branch on the result: the drop_copy() shape.
      "int roll(Rng& rng_, bool hard) {\n"
      "  const int value = rng_.next_below(6);\n"
      "  if (hard) return value * 2;\n"
      "  return value;\n"
      "}\n"
      // Both paths draw exactly once.
      "int pick(Rng& rng_, bool flip) {\n"
      "  if (flip) return rng_.next_below(7);\n"
      "  return rng_.next_below(9);\n"
      "}\n"
      // A per-iteration draw is the loop's business, not the function's:
      // every iteration draws exactly once.
      "int sum(Rng& rng_, int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    s += rng_.next_below(10);\n"
      "  }\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, RngOutOfScopeAndSuppressed) {
  // Streams outside the declared scopes are not checked.
  EXPECT_TRUE(lint_one("src/sim/f.cpp",
                       "int pick(Rng& rng_, bool flip) {\n"
                       "  if (flip) return rng_.next_below(7);\n"
                       "  return 0;\n"
                       "}\n")
                  .empty());
  const auto diags =
      lint_one("src/fault/f.cpp",
               "int pick(Rng& rng_, bool flip) {\n"
               "  // wcds-lint: allow(rng-draw-discipline)\n"
               "  if (flip) return rng_.next_below(7);\n"
               "  return 0;\n"
               "}\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// hot-path-alloc (flow-aware upgrade)

Config hot_loop_config() {
  Config config;
  config.module_prefixes = {{"src/sim/", "sim"},
                            {"src/parallel/", "parallel"}};
  return config;
}

TEST(LintRules, HotLoopAllocFires) {
  const auto diags = lint_one("src/sim/pump.cpp",
                              "void pump(std::vector<int>& xs) {\n"
                              "  for (int x : xs) {\n"
                              "    auto p = std::make_unique<int>(x);\n"
                              "    use(*p);\n"
                              "  }\n"
                              "}\n",
                              hot_loop_config());
  EXPECT_TRUE(has(diags, "hot-path-alloc", 3));
  const auto nested = lint_one("src/parallel/w.cpp",
                               "void spin(int n) {\n"
                               "  while (n-- > 0) {\n"
                               "    handle(new Job(n));\n"
                               "  }\n"
                               "}\n",
                               hot_loop_config());
  EXPECT_TRUE(has(nested, "hot-path-alloc", 3));
}

TEST(LintRules, HotLoopAllocOutsideLoopAndModuleClean) {
  // An allocation before the loop is the fix, not a finding.
  EXPECT_TRUE(lint_one("src/sim/pump.cpp",
                       "void pump(std::vector<int>& xs) {\n"
                       "  auto p = std::make_unique<int>(0);\n"
                       "  for (int x : xs) use(*p, x);\n"
                       "}\n",
                       hot_loop_config())
                  .empty());
  // Outside the hot modules, loops may allocate.
  EXPECT_TRUE(lint_one("src/io/loader.cpp",
                       "void load(std::vector<int>& xs) {\n"
                       "  for (int x : xs) keep(std::make_unique<int>(x));\n"
                       "}\n",
                       hot_loop_config())
                  .empty());
}

TEST(LintRules, HotLoopAllocSuppressed) {
  const auto diags = lint_one(
      "src/sim/pump.cpp",
      "void pump(std::vector<int>& xs) {\n"
      "  for (int x : xs) {\n"
      "    use(new int(x));  // wcds-lint: allow(hot-path-alloc)\n"
      "  }\n"
      "}\n",
      hot_loop_config());
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// SARIF output

TEST(LintEngine, SarifFormat) {
  const std::vector<Diagnostic> diags = {
      {"src/a.h", 3, "pragma-once", "say \"hi\""}};
  const std::string doc = format_sarif(diags);
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"pragma-once\""), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"uri\": \"src/a.h\""), std::string::npos);
  // Message text is JSON-escaped.
  EXPECT_NE(doc.find("say \\\"hi\\\""), std::string::npos);
  // Every rule is described in the driver block, and an empty run is still
  // a well-formed document.
  EXPECT_NE(doc.find("\"id\": \"lock-order\""), std::string::npos);
  EXPECT_NE(format_sarif({}).find("\"results\": ["), std::string::npos);
}

}  // namespace
}  // namespace wcds::lint
