// wcds_lint engine tests: the lexer's channel separation, every rule firing
// on a seeded violation with the exact rule id and line, and every rule
// honoring a `wcds-lint: allow(...)` suppression.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace wcds::lint {
namespace {

std::vector<Diagnostic> lint_one(const std::string& path,
                                 const std::string& content,
                                 Config config = {}) {
  Linter linter(std::move(config));
  linter.add_file(path, content);
  return linter.run();
}

bool has(const std::vector<Diagnostic>& diags, const std::string& rule,
         int line) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule == rule && d.line == line;
  });
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, BlanksCommentsInCodeChannel) {
  const SourceFile file =
      annotate_source("src/a.cpp", "int x; // assert(x) in prose\n");
  ASSERT_EQ(file.code.size(), 1u);
  EXPECT_EQ(file.code[0].find("assert"), std::string::npos);
  EXPECT_NE(file.raw[0].find("assert"), std::string::npos);
  // Channels stay column-aligned.
  EXPECT_EQ(file.code[0].size(), file.raw[0].size());
  EXPECT_EQ(file.pure[0].size(), file.raw[0].size());
}

TEST(LintLexer, BlanksStringContentsOnlyInPureChannel) {
  const SourceFile file =
      annotate_source("src/a.cpp", "auto s = \"assert(47)\";\n");
  EXPECT_NE(file.code[0].find("assert(47)"), std::string::npos);
  EXPECT_EQ(file.pure[0].find("assert"), std::string::npos);
  EXPECT_EQ(file.pure[0].find("47"), std::string::npos);
}

TEST(LintLexer, MultiLineBlockCommentBlanked) {
  const SourceFile file =
      annotate_source("src/a.cpp", "/* new\n   std::map */ int y;\n");
  EXPECT_EQ(file.pure[0].find("new"), std::string::npos);
  EXPECT_EQ(file.pure[1].find("std::map"), std::string::npos);
  EXPECT_NE(file.pure[1].find("int y;"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  // If the ' opened a char literal, the rest of the line would be blanked
  // out of the pure channel.
  const SourceFile file =
      annotate_source("src/a.cpp", "auto n = 100'000; int z = 1;\n");
  EXPECT_NE(file.pure[0].find("int z = 1;"), std::string::npos);
}

TEST(LintLexer, ParsesSuppressionsPerLine) {
  const SourceFile file = annotate_source(
      "src/a.cpp",
      "int a;  // wcds-lint: allow(rule-a, rule-b)\n"
      "// wcds-lint: allow(rule-c)\n"
      "int b;\n");
  ASSERT_EQ(file.allowed.size(), 3u);
  EXPECT_EQ(file.allowed[0].count("rule-a"), 1u);
  EXPECT_EQ(file.allowed[0].count("rule-b"), 1u);
  // A comment-only line covers the next line too.
  EXPECT_EQ(file.allowed[1].count("rule-c"), 1u);
  EXPECT_EQ(file.allowed[2].count("rule-c"), 1u);
  EXPECT_EQ(file.allowed[2].count("rule-a"), 0u);
}

// ---------------------------------------------------------------------------
// no-bare-assert

TEST(LintRules, NoBareAssertFires) {
  const auto diags = lint_one("src/a.cpp",
                              "#include <cassert>\n"
                              "void f(int x) {\n"
                              "  assert(x > 0);\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "no-bare-assert", 3));
}

TEST(LintRules, NoBareAssertIgnoresCommentsStringsAndOtherTrees) {
  EXPECT_TRUE(lint_one("src/a.cpp", "// assert(x)\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "auto s = \"assert(x)\";\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "int my_assert_count = 0;\n").empty());
  // Only src/ must route through the contract macros.
  EXPECT_TRUE(lint_one("bench/a.cpp", "void f() { assert(1); }\n").empty());
}

TEST(LintRules, NoBareAssertSuppressed) {
  const auto diags = lint_one(
      "src/a.cpp", "void f() { std::abort(); }  // wcds-lint: allow(no-bare-assert)\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// paper-constant

TEST(LintRules, PaperConstantFires) {
  const auto diags = lint_one("src/wcds/a.cpp",
                              "int bound(int mis) {\n"
                              "  return 47 * mis;\n"
                              "}\n");
  EXPECT_TRUE(has(diags, "paper-constant", 2));
}

TEST(LintRules, PaperConstantSkipsNonMatchingLiterals) {
  // 470, 4.7, 0x47-as-word, 5u-suffix boundary handling: none of these are
  // the bare packing literals.
  const auto diags = lint_one("src/a.cpp",
                              "int a = 470;\n"
                              "double b = 4.7;\n"
                              "double c = 23.5;\n"
                              "int d = 247;\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, PaperConstantExemptFilesAndSuppression) {
  EXPECT_TRUE(
      lint_one("src/check/audit.h", "#pragma once\nint k = 47;\n").empty());
  EXPECT_TRUE(
      lint_one("src/a.cpp", "int k = 47;  // wcds-lint: allow(paper-constant)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// hot-path-alloc

TEST(LintRules, HotPathAllocFires) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  const auto diags = lint_one("src/sim/hot.cpp",
                              "#include <map>\n"
                              "std::map<int, int> m;\n"
                              "int* p = new int;\n",
                              config);
  EXPECT_TRUE(has(diags, "hot-path-alloc", 2));
  EXPECT_TRUE(has(diags, "hot-path-alloc", 3));
}

TEST(LintRules, HotPathAllocOnlyGuardsListedFiles) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  EXPECT_TRUE(
      lint_one("src/sim/cold.cpp", "std::map<int, int> m;\n", config).empty());
}

TEST(LintRules, HotPathAllocSuppressed) {
  Config config;
  config.hot_path_files = {"src/sim/hot.cpp"};
  const auto diags = lint_one(
      "src/sim/hot.cpp",
      "std::map<int, int> m;  // wcds-lint: allow(hot-path-alloc)\n", config);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// message-type-registry

TEST(LintRules, MessageTypeRegistryFires) {
  const auto diags = lint_one("src/protocols/p.h",
                              "enum DemoMessageType : sim::MessageType {\n"
                              "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                              "  kMsgPong = 2,\n"
                              "};\n"
                              "const char* demo_message_name(sim::MessageType t) {\n"
                              "  switch (t) {\n"
                              "    case kMsgPing: return \"PING\";\n"
                              "    default: return \"?\";\n"
                              "  }\n"
                              "}\n");
  // kMsgPing has a trace-name entry; kMsgPong does not.
  EXPECT_FALSE(has(diags, "message-type-registry", 2));
  EXPECT_TRUE(has(diags, "message-type-registry", 3));
}

TEST(LintRules, MessageTypeRegistrySeesCrossFileCases) {
  Linter linter;
  linter.add_file("src/protocols/p.h",
                  "#pragma once\n"
                  "enum DemoMessageType : sim::MessageType {\n"
                  "  kMsgPing = 1,  // wcds-lint: allow(paper-constant)\n"
                  "};\n");
  linter.add_file("src/protocols/p.cpp",
                  "const char* demo_message_name(sim::MessageType t) {\n"
                  "  switch (t) {\n"
                  "    case kMsgPing:\n"
                  "      return \"PING\";\n"
                  "    default: return \"?\";\n"
                  "  }\n"
                  "}\n");
  EXPECT_TRUE(linter.run().empty());
}

TEST(LintRules, MessageTypeRegistrySuppressed) {
  const auto diags =
      lint_one("src/protocols/p.h",
               "#pragma once\n"
               "enum DemoMessageType : sim::MessageType {\n"
               "  kMsgSecret = 9,  // wcds-lint: allow(message-type-registry)\n"
               "};\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// metric-doc-sync

TEST(LintRules, MetricDocSyncFires) {
  Config config;
  config.observability_doc = "Registry: `demo/documented` only.\n";
  const auto diags = lint_one("src/wcds/a.cpp",
                              "void f(obs::Recorder* r) {\n"
                              "  r->metrics().add(\"demo/documented\", 1);\n"
                              "  r->metrics().add(\"demo/missing\", 1);\n"
                              "}\n",
                              config);
  EXPECT_FALSE(has(diags, "metric-doc-sync", 2));
  EXPECT_TRUE(has(diags, "metric-doc-sync", 3));
}

TEST(LintRules, MetricDocSyncPlaceholderFamilyAndPhaseTimer) {
  Config config;
  config.observability_doc =
      "Families: `demo/per_type/<k>` and `phase_ms/<phase>`.\n";
  const auto diags =
      lint_one("src/wcds/a.cpp",
               "void f(obs::Recorder* r) {\n"
               "  r->metrics().add(\"demo/per_type/3\", 1);\n"
               "  obs::PhaseTimer timer(r, \"demo/total\");\n"
               "}\n",
               config);
  EXPECT_TRUE(diags.empty());
}

TEST(LintRules, MetricDocSyncSuppressedAndDisabledWithoutDoc) {
  Config config;
  config.observability_doc = "nothing documented\n";
  const auto diags = lint_one(
      "src/wcds/a.cpp",
      "void f(obs::Recorder* r) {\n"
      "  r->metrics().add(\"demo/adhoc\", 1);  // wcds-lint: allow(metric-doc-sync)\n"
      "}\n",
      config);
  EXPECT_TRUE(diags.empty());
  // An empty doc (partial checkout) disables the rule entirely.
  Config no_doc;
  no_doc.observability_doc.clear();
  EXPECT_TRUE(lint_one("src/wcds/a.cpp",
                       "void f(obs::Recorder* r) {\n"
                       "  r->metrics().add(\"demo/adhoc\", 1);\n"
                       "}\n",
                       no_doc)
                  .empty());
}

// ---------------------------------------------------------------------------
// pragma-once

TEST(LintRules, PragmaOnceMissingFires) {
  const auto diags = lint_one("src/a.h", "// header comment\nint x;\n");
  EXPECT_TRUE(has(diags, "pragma-once", 2));
}

TEST(LintRules, PragmaOnceDuplicateAndMisplacedFire) {
  EXPECT_TRUE(has(
      lint_one("src/a.h", "#pragma once\nint x;\n#pragma once\n"),
      "pragma-once", 3));
  EXPECT_TRUE(has(lint_one("src/a.h", "int x;\n#pragma once\n"),
                  "pragma-once", 2));
}

TEST(LintRules, PragmaOnceCleanHeaderAndNonHeaders) {
  EXPECT_TRUE(
      lint_one("src/a.h", "// doc\n#pragma once\nint x;\n").empty());
  EXPECT_TRUE(lint_one("src/a.cpp", "int x;\n").empty());
}

TEST(LintRules, PragmaOnceSuppressed) {
  const auto diags = lint_one(
      "src/a.h", "// wcds-lint: allow(pragma-once)\nint x;\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// include-hygiene

TEST(LintRules, IncludeHygieneFires) {
  const auto diags = lint_one("src/a.cpp",
                              "#include \"../geom/rng.h\"\n"
                              "#include <bits/stdc++.h>\n"
                              "#include \"geom/rng.h\"\n");
  EXPECT_TRUE(has(diags, "include-hygiene", 1));
  EXPECT_TRUE(has(diags, "include-hygiene", 2));
  EXPECT_FALSE(has(diags, "include-hygiene", 3));
}

TEST(LintRules, IncludeHygieneSuppressed) {
  const auto diags = lint_one(
      "src/a.cpp",
      "#include \"../geom/rng.h\"  // wcds-lint: allow(include-hygiene)\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------------
// Engine plumbing

TEST(LintEngine, DiagnosticsSortedAndFormatted) {
  Linter linter;
  linter.add_file("src/b.h", "int x;\n");
  linter.add_file("src/a.h", "int x;\n");
  const auto diags = linter.run();
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/a.h");
  EXPECT_EQ(diags[1].file, "src/b.h");
  EXPECT_EQ(format_diagnostic(diags[0]),
            "src/a.h:1: error: [pragma-once] header is missing #pragma once");
}

TEST(LintEngine, EnabledRulesFilter) {
  Config config;
  config.enabled_rules = {"include-hygiene"};
  const auto diags =
      lint_one("src/a.h", "#include \"../x.h\"\nint x;\n", config);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-hygiene");
}

TEST(LintEngine, RuleListIsStable) {
  const std::vector<std::string> expected = {
      "no-bare-assert",   "paper-constant",  "hot-path-alloc",
      "message-type-registry", "metric-doc-sync", "pragma-once",
      "include-hygiene"};
  ASSERT_EQ(rules().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rules()[i].name, expected[i]);
    EXPECT_FALSE(rules()[i].summary.empty());
  }
}

}  // namespace
}  // namespace wcds::lint
