// Asynchronous-delivery stress tests.
//
// The paper's algorithms are event-driven; their correctness cannot depend
// on the synchronous unit-delay analysis model.  Under seeded random delays
// (FIFO per link):
//  * Algorithm I's flood tree becomes an *arbitrary* spanning tree — the
//    generality Section 2.2 claims — and must still produce a level-ranked
//    MIS that is a WCDS with 2-hop complementary-subset separation.
//  * Algorithm II must produce the same MIS (the marking rules have a
//    timing-independent fixpoint) and a valid bridged WCDS.
#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "mis/mis.h"
#include "mis/properties.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "sim/runtime.h"
#include "test_util.h"
#include "wcds/verify.h"

namespace wcds::protocols {
namespace {

TEST(AsyncRuntime, RejectsInvalidDelayModel) {
  const auto g = graph::from_edges(2, {{0, 1}});
  const auto factory = [](NodeId) -> std::unique_ptr<sim::ProtocolNode> {
    return nullptr;  // never reached: delay validation happens first
  };
  EXPECT_THROW(sim::Runtime(g, factory, sim::DelayModel{0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(sim::Runtime(g, factory, sim::DelayModel{3, 2, 1}),
               std::invalid_argument);
}

TEST(AsyncRuntime, UnitModelIsDefaultShape) {
  EXPECT_TRUE(sim::DelayModel::unit().is_unit());
  EXPECT_FALSE(sim::DelayModel::uniform(1, 4, 9).is_unit());
}

class AsyncSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncSweep, Algorithm1ValidUnderRandomDelays) {
  const auto inst = testing::connected_udg(200, 9.0, GetParam());
  const auto run = run_algorithm1(
      inst.g, sim::DelayModel::uniform(1, 5, GetParam() * 1000 + 1));
  EXPECT_TRUE(core::audit_result(inst.g, run.wcds));
  EXPECT_TRUE(mis::is_maximal_independent_set(inst.g, run.wcds.mask));
  // Theorem 4 through an arbitrary tree: subsets still exactly two hops.
  mis::MisResult as_mis;
  as_mis.members = run.wcds.dominators;
  as_mis.mask = run.wcds.mask;
  EXPECT_LE(mis::max_complementary_subset_distance(inst.g, as_mis), 2u);
  // Levels are tree distances: every non-leader node has a level one above
  // some neighbor (its tree parent); leader has level 0.
  EXPECT_EQ(run.levels[run.leader], 0u);
  const auto bfs = graph::bfs_distances(inst.g, run.leader);
  for (NodeId u = 0; u < inst.g.node_count(); ++u) {
    EXPECT_GE(run.levels[u], bfs[u]);  // tree distance >= hop distance
  }
}

TEST_P(AsyncSweep, Algorithm2MisIsTimingIndependent) {
  const auto inst = testing::connected_udg(200, 9.0, GetParam());
  const auto sync_run = run_algorithm2(inst.g);
  const auto async_run = run_algorithm2(
      inst.g, sim::DelayModel::uniform(1, 7, GetParam() * 77 + 3));
  EXPECT_TRUE(core::audit_result(inst.g, async_run.wcds));
  EXPECT_EQ(async_run.wcds.mis_dominators, sync_run.wcds.mis_dominators);
  // Bridges may differ under racing 2-HOP lists but never shrink below what
  // domination requires; the audit above already proves weak connectivity.
}

TEST_P(AsyncSweep, AsyncRunsAreSeedDeterministic) {
  const auto inst = testing::connected_udg(120, 9.0, GetParam());
  const auto a =
      run_algorithm2(inst.g, sim::DelayModel::uniform(1, 6, 42));
  const auto b =
      run_algorithm2(inst.g, sim::DelayModel::uniform(1, 6, 42));
  EXPECT_EQ(a.wcds.dominators, b.wcds.dominators);
  EXPECT_EQ(a.stats.transmissions, b.stats.transmissions);
  const auto c =
      run_algorithm2(inst.g, sim::DelayModel::uniform(1, 6, 43));
  EXPECT_TRUE(core::audit_result(inst.g, c.wcds));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Async, WiderJitterStillQuiescent) {
  const auto inst = testing::connected_udg(150, 10.0, 2);
  const auto run =
      run_algorithm1(inst.g, sim::DelayModel::uniform(1, 20, 5));
  EXPECT_TRUE(run.stats.quiescent);
  EXPECT_TRUE(core::is_wcds(inst.g, run.wcds.mask));
}

}  // namespace
}  // namespace wcds::protocols
