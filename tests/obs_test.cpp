// Observability subsystem: metric registry semantics, nearest-rank
// quantiles against known distributions, JSON round-trips of real run
// recordings, trace-sink wiring, and the null-recorder zero-allocation
// guarantee the hot paths rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "check/check.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "protocols/algorithm1_protocol.h"
#include "protocols/algorithm2_protocol.h"
#include "sim/runtime.h"
#include "test_util.h"

namespace wcds {
namespace {

// --- MetricsRegistry --------------------------------------------------------

TEST(Metrics, CountersAccumulate) {
  obs::MetricsRegistry registry;
  registry.add("msgs");
  registry.add("msgs", 4);
  registry.add("other");
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("msgs"), 5u);
  EXPECT_EQ(snap.counters.at("other"), 1u);
}

TEST(Metrics, GaugesLastWriteAndHighWater) {
  obs::MetricsRegistry registry;
  registry.set("level", 3.0);
  registry.set("level", 1.5);
  registry.set_max("peak", 3.0);
  registry.set_max("peak", 1.5);
  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("level"), 1.5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("peak"), 3.0);
}

TEST(Metrics, ClearAndEmpty) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.add("c");
  registry.observe("h", 1.0);
  EXPECT_FALSE(registry.empty());
  registry.clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_TRUE(registry.snapshot().empty());
}

// --- Quantiles --------------------------------------------------------------

TEST(Metrics, NearestRankQuantileKnownDistribution) {
  // Shuffled 1..100: the nearest-rank q-quantile is exactly the ceil(100q)-th
  // smallest value, i.e. p50 = 50, p95 = 95.
  std::vector<double> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i + 1.0;
  std::shuffle(values.begin(), values.end(), std::mt19937(7));

  obs::MetricsRegistry registry;
  for (const double v : values) registry.observe("h", v);
  const auto h = registry.snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_DOUBLE_EQ(h.mean, 50.5);
  EXPECT_DOUBLE_EQ(h.p50, 50.0);
  EXPECT_DOUBLE_EQ(h.p95, 95.0);
}

TEST(Metrics, NearestRankQuantileEdgeCases) {
  EXPECT_DOUBLE_EQ(obs::nearest_rank_quantile({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(obs::nearest_rank_quantile({42.0}, 0.95), 42.0);
  const std::vector<double> two{1.0, 9.0};
  EXPECT_DOUBLE_EQ(obs::nearest_rank_quantile(two, 0.5), 1.0);   // ceil(1)=1st
  EXPECT_DOUBLE_EQ(obs::nearest_rank_quantile(two, 0.95), 9.0);  // ceil(1.9)=2nd
  EXPECT_DOUBLE_EQ(obs::nearest_rank_quantile(two, 1.0), 9.0);
  // The contract is q in (0, 1].
  EXPECT_THROW((void)obs::nearest_rank_quantile(two, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)obs::nearest_rank_quantile(two, 1.5),
               std::invalid_argument);
}

TEST(Metrics, SingleObservationHistogram) {
  obs::MetricsRegistry registry;
  registry.observe("h", 3.25);
  const auto h = registry.snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.min, 3.25);
  EXPECT_DOUBLE_EQ(h.max, 3.25);
  EXPECT_DOUBLE_EQ(h.mean, 3.25);
  EXPECT_DOUBLE_EQ(h.p50, 3.25);
  EXPECT_DOUBLE_EQ(h.p95, 3.25);
}

// --- PhaseTimer -------------------------------------------------------------

TEST(PhaseTimer, RecordsIntoPhaseHistogram) {
  obs::Recorder recorder;
  {
    obs::PhaseTimer outer(&recorder, "outer");
    obs::PhaseTimer inner(&recorder, "inner");  // nesting is fine
  }
  const auto snap = recorder.snapshot();
  EXPECT_EQ(snap.histograms.at("phase_ms/outer").count, 1u);
  EXPECT_EQ(snap.histograms.at("phase_ms/inner").count, 1u);
  EXPECT_GE(snap.histograms.at("phase_ms/outer").min, 0.0);
}

TEST(PhaseTimer, StopIsIdempotent) {
  obs::Recorder recorder;
  {
    obs::PhaseTimer timer(&recorder, "once");
    timer.stop();
    timer.stop();  // second stop and the destructor must not re-record
  }
  EXPECT_EQ(recorder.snapshot().histograms.at("phase_ms/once").count, 1u);
}

TEST(PhaseTimer, NullRecorderIsNoOp) {
  obs::PhaseTimer timer(nullptr, "ghost");
  timer.stop();  // must not crash; nothing to record into
}

// --- Trace sink -------------------------------------------------------------

TEST(Trace, RuntimeFeedsSinkSendAndDeliverEvents) {
  const auto inst = testing::connected_udg(40, 8.0, 3);
  obs::MemoryTraceSink sink;
  obs::Recorder recorder;
  recorder.set_trace_sink(&sink);

  sim::Runtime runtime(
      inst.g,
      [](NodeId) { return std::make_unique<protocols::Algorithm2Node>(); },
      sim::DelayModel::unit(), &recorder);
  const auto stats = runtime.run();
  ASSERT_TRUE(stats.quiescent);

  std::uint64_t sends = 0;
  std::uint64_t delivers = 0;
  for (const auto& event : sink.events()) {
    if (event.kind == obs::TraceEvent::Kind::kSend) {
      ++sends;
    } else {
      ++delivers;
      EXPECT_NE(event.dst, obs::kTraceBroadcastDst);
    }
    EXPECT_LT(event.src, inst.g.node_count());
  }
  EXPECT_EQ(sends, stats.transmissions);
  EXPECT_EQ(delivers, stats.deliveries);
}

// --- Runtime metrics --------------------------------------------------------

TEST(RuntimeMetrics, CountersMatchRunStats) {
  const auto inst = testing::connected_udg(60, 8.0, 5);
  obs::Recorder recorder;
  const auto run = protocols::run_algorithm2(inst.g, sim::DelayModel::unit(),
                                             &recorder);
  ASSERT_TRUE(run.stats.quiescent);
  const auto snap = recorder.snapshot();
  EXPECT_EQ(snap.counters.at("sim/transmissions"), run.stats.transmissions);
  EXPECT_EQ(snap.counters.at("sim/deliveries"), run.stats.deliveries);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim/completion_time"),
                   static_cast<double>(run.stats.completion_time));
  // Per-message-type counters sum to total transmissions.
  std::uint64_t per_type_sum = 0;
  for (const auto& [name, count] : snap.counters) {
    if (name.rfind("sim/msg_type/", 0) == 0) per_type_sum += count;
  }
  EXPECT_EQ(per_type_sum, run.stats.transmissions);
  // Protocol phase timings were recorded.
  EXPECT_EQ(snap.histograms.at("phase_ms/alg2/total").count, 1u);
  EXPECT_EQ(snap.histograms.at("phase_ms/alg2/protocol_run").count, 1u);
}

// --- JSON -------------------------------------------------------------------

TEST(Json, DumpParsesBackExactly) {
  obs::Json doc = obs::Json::object();
  doc["string"] = "with \"quotes\", \\backslash\\ and \n newline \t tab";
  doc["int"] = 123456789.0;
  doc["neg"] = -7.25;
  doc["tiny"] = 1e-9;
  doc["flag_true"] = true;
  doc["flag_false"] = false;
  doc["nothing"] = nullptr;
  obs::Json& arr = doc["arr"] = obs::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(obs::Json::object());

  for (const int indent : {-1, 0, 2}) {
    const auto parsed = obs::Json::parse(doc.dump(indent));
    EXPECT_EQ(parsed.dump(indent), doc.dump(indent)) << "indent " << indent;
    EXPECT_EQ(parsed.at("string").as_string(), doc.at("string").as_string());
    EXPECT_DOUBLE_EQ(parsed.at("tiny").as_number(), 1e-9);
    EXPECT_TRUE(parsed.at("flag_true").as_bool());
    EXPECT_TRUE(parsed.at("nothing").is_null());
    EXPECT_EQ(parsed.at("arr").size(), 3u);
  }
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  obs::Json doc = obs::Json::object();
  doc["zebra"] = 1;
  doc["alpha"] = 2;
  doc["mid"] = 3;
  const auto& object = doc.as_object();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "zebra");
  EXPECT_EQ(object[1].first, "alpha");
  EXPECT_EQ(object[2].first, "mid");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)obs::Json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("{\"a\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW((void)obs::Json::parse("nul"), std::invalid_argument);
}

TEST(Json, MissingKeyThrowsOutOfRange) {
  obs::Json doc = obs::Json::object();
  doc["present"] = 1;
  EXPECT_TRUE(doc.contains("present"));
  EXPECT_FALSE(doc.contains("absent"));
  EXPECT_THROW((void)doc.at("absent"), std::out_of_range);
}

TEST(Json, RunRecordingRoundTrips) {
  // Record a real protocol run, serialize the snapshot, parse it back and
  // compare field by field — the exporter's end-to-end contract.
  const auto inst = testing::connected_udg(50, 8.0, 9);
  obs::Recorder recorder;
  const auto run = protocols::run_algorithm1(inst.g, sim::DelayModel::unit(),
                                             &recorder);
  ASSERT_TRUE(run.stats.quiescent);
  const auto snap = recorder.snapshot();

  const auto parsed = obs::Json::parse(obs::to_json(snap).dump(2));
  for (const auto& [name, count] : snap.counters) {
    EXPECT_DOUBLE_EQ(parsed.at("counters").at(name).as_number(),
                     static_cast<double>(count))
        << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_DOUBLE_EQ(parsed.at("gauges").at(name).as_number(), value) << name;
  }
  for (const auto& [name, histogram] : snap.histograms) {
    const auto& h = parsed.at("histograms").at(name);
    EXPECT_DOUBLE_EQ(h.at("count").as_number(),
                     static_cast<double>(histogram.count))
        << name;
    EXPECT_DOUBLE_EQ(h.at("min").as_number(), histogram.min) << name;
    EXPECT_DOUBLE_EQ(h.at("max").as_number(), histogram.max) << name;
    EXPECT_DOUBLE_EQ(h.at("mean").as_number(), histogram.mean) << name;
    EXPECT_DOUBLE_EQ(h.at("p50").as_number(), histogram.p50) << name;
    EXPECT_DOUBLE_EQ(h.at("p95").as_number(), histogram.p95) << name;
  }
}

// --- Null-recorder zero-cost guarantee --------------------------------------

TEST(NullRecorder, RunAllocatesNoMetrics) {
  const auto inst = testing::connected_udg(60, 8.0, 11);
  // Warm up: intern whatever ambient metrics a first run may create.
  (void)protocols::run_algorithm2(inst.g);
  const std::uint64_t before = obs::MetricsRegistry::metric_creations();
  const auto run = protocols::run_algorithm2(inst.g);
  ASSERT_TRUE(run.stats.quiescent);
  EXPECT_EQ(obs::MetricsRegistry::metric_creations(), before)
      << "a null-recorder run must not intern any metric";
}

TEST(NullRecorder, GlobalRecorderInstallAndRestore) {
  ASSERT_EQ(obs::global_recorder(), nullptr);
  obs::Recorder recorder;
  obs::Recorder* old = obs::set_global_recorder(&recorder);
  EXPECT_EQ(old, nullptr);
  EXPECT_EQ(obs::global_recorder(), &recorder);
  EXPECT_EQ(obs::recorder_or_global(nullptr), &recorder);
  obs::Recorder local;
  EXPECT_EQ(obs::recorder_or_global(&local), &local);
  obs::set_global_recorder(nullptr);
  EXPECT_EQ(obs::global_recorder(), nullptr);
}

}  // namespace
}  // namespace wcds
