// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "geom/point.h"
#include "geom/workload.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "udg/udg.h"

namespace wcds::testing {

struct Instance {
  std::vector<geom::Point> points;
  graph::Graph g;
};

// A *connected* random UDG with the requested expected degree; bumps the
// seed until the instance is connected (dense deployments almost always are).
inline Instance connected_udg(std::uint32_t count, double expected_degree,
                              std::uint64_t seed) {
  double side = geom::side_for_expected_degree(count, expected_degree);
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    Instance inst;
    inst.points = geom::uniform_square(count, side, seed + attempt);
    inst.g = udg::build_udg(inst.points);
    if (graph::is_connected(inst.g)) return inst;
    side *= 0.99;  // sparse targets sit near the connectivity threshold
  }
  throw std::runtime_error(
      "connected_udg: no connected instance found; density too low");
}

// The paper's Figure 2 example shape: a 9-node graph whose WCDS is {1, 2}.
// Node 1 and 2 are adjacent hubs; 1 dominates {3, 4, 5}, 2 dominates
// {6, 7, 8}, and node 0 hangs off node 3's hub... kept simple: two adjacent
// centers each with three private leaves plus one shared leaf.
inline graph::Graph figure2_graph() {
  return graph::from_edges(9, {
                                  {1, 2},  // the two dominators
                                  {1, 3},
                                  {1, 4},
                                  {1, 5},
                                  {2, 6},
                                  {2, 7},
                                  {2, 8},
                                  {1, 0},
                                  {2, 0},  // shared leaf
                              });
}

}  // namespace wcds::testing
