// Tests for the Section 2 structural lemmas (the F3-F5 experiment oracles).
#include <gtest/gtest.h>

#include "graph/spanning_tree.h"
#include "mis/mis.h"
#include "mis/properties.h"
#include "mis/ranking.h"
#include "test_util.h"

namespace wcds::mis {
namespace {

TEST(Lemma1, PathGraph) {
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto mis = greedy_mis_by_id(g);  // {0, 2, 4}
  EXPECT_EQ(max_mis_neighbors(g, mis.mask), 2u);  // node 1 and 3 see two
}

TEST(Lemma1, MaskSizeMismatchThrows) {
  const auto g = graph::from_edges(2, {{0, 1}});
  std::vector<bool> wrong(3, false);
  EXPECT_THROW((void)max_mis_neighbors(g, wrong), std::invalid_argument);
}

// Lemma 1 on unit-disk graphs: at most 5 MIS neighbors, on every workload.
class Lemma1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Sweep, AtMostFiveMisNeighbors) {
  for (const double degree : {6.0, 12.0, 25.0}) {
    const auto inst = testing::connected_udg(400, degree, GetParam());
    const auto mis = greedy_mis_by_id(inst.g);
    EXPECT_LE(max_mis_neighbors(inst.g, mis.mask), 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Sweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// Lemma 2 (constants re-derived, see DESIGN.md): <= 23 MIS nodes at exactly
// two hops, <= 47 within three hops.
class Lemma2Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma2Sweep, HopNeighborhoodBounds) {
  for (const double degree : {8.0, 20.0}) {
    const auto inst = testing::connected_udg(500, degree, GetParam());
    const auto mis = greedy_mis_by_id(inst.g);
    const auto stats = mis_hop_neighborhood_stats(inst.g, mis);
    EXPECT_LE(stats.max_at_two_hops, 23u);
    EXPECT_LE(stats.max_within_three_hops, 47u);
    EXPECT_LE(stats.max_at_two_hops, stats.max_within_three_hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Sweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Lemma2, HandBuiltTwoHopPair) {
  // 0 - 1 - 2: MIS {0, 2}; one MIS node at exactly two hops.
  const auto g = graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto mis = greedy_mis_by_id(g);
  const auto stats = mis_hop_neighborhood_stats(g, mis);
  EXPECT_EQ(stats.max_at_two_hops, 1u);
  EXPECT_EQ(stats.max_within_three_hops, 1u);
}

TEST(ProximityGraph, PathGraphH2) {
  // MIS {0,2,4} on a path: H_2 is itself a path over the members.
  const auto g = graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto mis = greedy_mis_by_id(g);
  const auto h2 = mis_proximity_graph(g, mis, 2);
  EXPECT_EQ(h2.node_count(), 3u);
  EXPECT_EQ(h2.edge_count(), 2u);
  EXPECT_TRUE(graph::is_connected(h2));
}

TEST(ProximityGraph, ThreeHopPairOnlyInH3) {
  // 0 - 1 - 2 - 3: MIS {0, 3}?  greedy: 0 black, 1 gray; 2: lower neighbors
  // {1} gray -> 2 black; 3 gray.  MIS = {0, 2} at two hops.  Force a 3-hop
  // pair instead: 0-1-2-3-4-5, MIS by id = {0,2,4}... use explicit MIS of a
  // 6-path via custom ranks so members are {0, 3, 5}.
  const auto g =
      graph::from_edges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  std::vector<Rank> ranks{{0, 0}, {9, 1}, {9, 2}, {1, 3}, {9, 4}, {2, 5}};
  const auto mis = greedy_mis(g, ranks);
  ASSERT_EQ(mis.members, (std::vector<NodeId>{0, 3, 5}));
  const auto h2 = mis_proximity_graph(g, mis, 2);
  const auto h3 = mis_proximity_graph(g, mis, 3);
  EXPECT_FALSE(graph::is_connected(h2));  // 0 and 3 are 3 hops apart
  EXPECT_TRUE(graph::is_connected(h3));   // Lemma 3
}

// Lemma 3: for any MIS of a connected UDG, H_3 is connected (complementary
// subsets at most 3 hops apart).
class Lemma3Sweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(Lemma3Sweep, ArbitraryMisH3Connected) {
  const auto [ranking_kind, seed] = GetParam();
  const auto inst = testing::connected_udg(300, 8.0, seed);
  const auto mis =
      ranking_kind == 0
          ? greedy_mis_by_id(inst.g)
          : greedy_mis(inst.g, degree_ranking(inst.g));
  const auto audit = audit_subset_distances(inst.g, mis);
  EXPECT_TRUE(audit.h3_connected);
  const auto worst = max_complementary_subset_distance(inst.g, mis);
  EXPECT_GE(worst, 2u);
  EXPECT_LE(worst, 3u);
}

INSTANTIATE_TEST_SUITE_P(RankingsBySeed, Lemma3Sweep,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(1u, 2u, 3u, 4u,
                                                              5u)));

// Theorem 4: under level-based ranking the separation is exactly two hops
// (H_2 connected).
class Theorem4Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem4Sweep, LevelRankedMisH2Connected) {
  for (const double degree : {7.0, 14.0}) {
    const auto inst = testing::connected_udg(350, degree, GetParam());
    const auto tree = graph::bfs_tree(inst.g, 0);
    const auto mis = greedy_mis(inst.g, level_ranking(tree));
    const auto audit = audit_subset_distances(inst.g, mis);
    EXPECT_TRUE(audit.h2_connected);
    EXPECT_LE(max_complementary_subset_distance(inst.g, mis), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem4Sweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(SubsetDistance, SingletonMisTrivial) {
  graph::GraphBuilder b(1);
  const auto g = std::move(b).build();
  const auto mis = greedy_mis_by_id(g);
  const auto audit = audit_subset_distances(g, mis);
  EXPECT_TRUE(audit.h2_connected);
  EXPECT_TRUE(audit.h3_connected);
  EXPECT_EQ(max_complementary_subset_distance(g, mis), 0u);
}

}  // namespace
}  // namespace wcds::mis
